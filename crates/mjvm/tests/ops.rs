//! Instruction-semantics tests: each MJVM opcode against the equivalent Rust
//! computation, including the JVM's wrapping/truncating edge cases, plus a
//! property test running randomly generated straight-line arithmetic through
//! the interpreter against a Rust oracle.

use jsplit_mjvm::builder::ProgramBuilder;
use jsplit_mjvm::class::Program;
use jsplit_mjvm::instr::{Cmp, ElemTy, Ty};
use jsplit_mjvm::localvm::run_program;
use proptest::prelude::*;

fn run_main(f: impl FnOnce(&mut jsplit_mjvm::builder::MethodBuilder)) -> Vec<String> {
    let mut pb = ProgramBuilder::new("M");
    pb.class("M", "java.lang.Object", |cb| {
        cb.static_method("main", &[], None, f);
    });
    let r = run_program(&pb.build_with_stdlib());
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    r.output
}

#[test]
fn integer_arithmetic_wraps_like_the_jvm() {
    let out = run_main(|m| {
        m.const_i32(i32::MAX).const_i32(1).iadd().println_i32();
        m.const_i32(i32::MIN).const_i32(1).isub().println_i32();
        m.const_i32(i32::MIN).const_i32(-1).idiv().println_i32(); // JVM: wraps to MIN
        m.const_i32(-7).const_i32(2).irem().println_i32();
        m.const_i32(i32::MIN).ineg().println_i32();
        m.ret();
    });
    assert_eq!(
        out,
        vec![
            i32::MIN.to_string(),
            i32::MAX.to_string(),
            i32::MIN.to_string(),
            "-1".to_string(),
            i32::MIN.to_string(),
        ]
    );
}

#[test]
fn shifts_mask_the_count() {
    let out = run_main(|m| {
        m.const_i32(1).const_i32(33).ishl().println_i32(); // 1 << (33 & 31) = 2
        m.const_i32(-8).const_i32(1).ishr().println_i32(); // arithmetic
        m.const_i32(-8).const_i32(1).iushr().println_i32(); // logical
        m.ret();
    });
    assert_eq!(out, vec!["2".to_string(), "-4".into(), (((-8i32) as u32 >> 1) as i32).to_string()]);
}

#[test]
fn long_arithmetic_and_lcmp() {
    let out = run_main(|m| {
        m.const_i64(i64::MAX).const_i64(1).ladd().println_i64();
        m.const_i64(10).const_i64(3).ldiv().println_i64();
        m.const_i64(-10).const_i64(3).lrem().println_i64();
        m.const_i64(5).const_i64(7).lcmp().println_i32();
        m.const_i64(7).const_i64(7).lcmp().println_i32();
        m.const_i64(9).const_i64(7).lcmp().println_i32();
        m.ret();
    });
    assert_eq!(out, vec![i64::MIN.to_string(), "3".into(), "-1".into(), "-1".into(), "0".into(), "1".into()]);
}

#[test]
fn double_conversions_truncate() {
    let out = run_main(|m| {
        m.const_f64(2.9).d2i().println_i32();
        m.const_f64(-2.9).d2i().println_i32();
        m.const_f64(1e18).d2l().println_i64();
        m.const_i32(-3).i2d().const_f64(0.5).dmul().println_f64();
        m.const_i64(1).i64_to_d().println_f64();
        m.ret();
    });
    assert_eq!(out, vec!["2".to_string(), "-2".into(), (1e18 as i64).to_string(), "-1.5".into(), "1.0".into()]);
}

// helper: L2D via the builder
trait L2DExt {
    fn i64_to_d(&mut self) -> &mut Self;
}
impl L2DExt for jsplit_mjvm::builder::MethodBuilder {
    fn i64_to_d(&mut self) -> &mut Self {
        self.l2d()
    }
}

#[test]
fn stack_shuffles() {
    // dup_x1: ..a b -> ..b a b ; swap: ..a b -> ..b a
    let out = run_main(|m| {
        m.const_i32(1).const_i32(2).dup_x1();
        // stack: 2 1 2 -> print in pop order
        m.println_i32().println_i32().println_i32();
        m.const_i32(3).const_i32(4).swap();
        m.println_i32().println_i32();
        m.ret();
    });
    assert_eq!(out, vec!["2", "1", "2", "3", "4"]);
}

#[test]
fn reference_comparisons() {
    let out = run_main(|m| {
        let eq = m.new_label();
        let done = m.new_label();
        m.construct("java.lang.Object", &[], |_| {}).store(0);
        m.load(0).load(0).if_acmp_eq(eq);
        m.const_i32(0).println_i32().goto(done);
        m.bind(eq).const_i32(1).println_i32();
        m.bind(done);
        // different objects are not acmp-equal
        let ne = m.new_label();
        let done2 = m.new_label();
        m.construct("java.lang.Object", &[], |_| {});
        m.construct("java.lang.Object", &[], |_| {});
        m.if_acmp_ne(ne);
        m.const_i32(0).println_i32().goto(done2);
        m.bind(ne).const_i32(1).println_i32();
        m.bind(done2).ret();
    });
    assert_eq!(out, vec!["1", "1"]);
}

#[test]
fn arraycopy_overlapping_and_oob() {
    let out = run_main(|m| {
        m.const_i32(5).newarray(ElemTy::I32).store(0);
        for i in 0..5 {
            m.load(0).const_i32(i).const_i32(i * 10).astore(ElemTy::I32);
        }
        // overlapping self-copy [0..3] -> [1..4]
        m.load(0).const_i32(0).load(0).const_i32(1).const_i32(3).invokestatic(
            "java.lang.System",
            "arraycopy",
            &[Ty::Ref, Ty::I32, Ty::Ref, Ty::I32, Ty::I32],
            None,
        );
        for i in 0..5 {
            m.load(0).const_i32(i).aload(ElemTy::I32).println_i32();
        }
        m.ret();
    });
    assert_eq!(out, vec!["0", "0", "10", "20", "40"]);
}

#[test]
fn array_bounds_trap() {
    let mut pb = ProgramBuilder::new("M");
    pb.class("M", "java.lang.Object", |cb| {
        cb.static_method("main", &[], None, |m| {
            m.const_i32(2).newarray(ElemTy::I32).const_i32(5).aload(ElemTy::I32).println_i32().ret();
        });
    });
    let r = run_program(&pb.build_with_stdlib());
    assert_eq!(r.errors.len(), 1);
    assert!(matches!(r.errors[0].1, jsplit_mjvm::interp::VmError::IndexOutOfBounds { len: 2, idx: 5 }));
}

#[test]
fn null_dereference_traps() {
    let mut pb = ProgramBuilder::new("M");
    pb.class("A", "java.lang.Object", |cb| {
        cb.field("x", Ty::I32);
    });
    pb.class("M", "java.lang.Object", |cb| {
        cb.static_method("main", &[], None, |m| {
            m.const_null().getfield("A", "x").println_i32().ret();
        });
    });
    let r = run_program(&pb.build_with_stdlib());
    assert!(matches!(r.errors[0].1, jsplit_mjvm::interp::VmError::NullDeref { .. }));
}

#[test]
fn string_natives() {
    let out = run_main(|m| {
        m.ldc_str("abc").invokevirtual("length", &[], Some(Ty::I32)).println_i32();
        m.ldc_str("abc").const_i32(1).invokevirtual("charAt", &[Ty::I32], Some(Ty::I32)).println_i32();
        m.ldc_str("ab").ldc_str("cd").invokevirtual("concat", &[Ty::Ref], Some(Ty::Ref)).println_str();
        m.ldc_str("x").ldc_str("x").invokevirtual("equals", &[Ty::Ref], Some(Ty::I32)).println_i32();
        m.ldc_str("x").ldc_str("y").invokevirtual("equals", &[Ty::Ref], Some(Ty::I32)).println_i32();
        m.ret();
    });
    assert_eq!(out, vec!["3".to_string(), ('b' as i32).to_string(), "abcd".into(), "1".into(), "0".into()]);
}

#[test]
fn recursion_works() {
    // fib(15) via recursion exercises frame push/pop deeply.
    let mut pb = ProgramBuilder::new("M");
    pb.class("M", "java.lang.Object", |cb| {
        cb.static_method("fib", &[Ty::I32], Some(Ty::I32), |m| {
            let rec = m.new_label();
            m.load(0).const_i32(2).if_icmp(Cmp::Ge, rec);
            m.load(0).ret_val();
            m.bind(rec);
            m.load(0).const_i32(1).isub().invokestatic("M", "fib", &[Ty::I32], Some(Ty::I32));
            m.load(0).const_i32(2).isub().invokestatic("M", "fib", &[Ty::I32], Some(Ty::I32));
            m.iadd().ret_val();
        });
        cb.static_method("main", &[], None, |m| {
            m.const_i32(15).invokestatic("M", "fib", &[Ty::I32], Some(Ty::I32)).println_i32().ret();
        });
    });
    let r = run_program(&pb.build_with_stdlib());
    assert_eq!(r.output, vec!["610"]);
}

/// Straight-line i32 expression oracle.
#[derive(Debug, Clone)]
enum AOp {
    Add(i32),
    Sub(i32),
    Mul(i32),
    Xor(i32),
    Shl(u8),
    Neg,
}

fn apply(acc: i32, op: &AOp) -> i32 {
    match op {
        AOp::Add(k) => acc.wrapping_add(*k),
        AOp::Sub(k) => acc.wrapping_sub(*k),
        AOp::Mul(k) => acc.wrapping_mul(*k),
        AOp::Xor(k) => acc ^ k,
        AOp::Shl(s) => acc.wrapping_shl(*s as u32 & 31),
        AOp::Neg => acc.wrapping_neg(),
    }
}

fn aop() -> impl Strategy<Value = AOp> {
    prop_oneof![
        any::<i32>().prop_map(AOp::Add),
        any::<i32>().prop_map(AOp::Sub),
        any::<i32>().prop_map(AOp::Mul),
        any::<i32>().prop_map(AOp::Xor),
        (0u8..40).prop_map(AOp::Shl),
        Just(AOp::Neg),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn random_arithmetic_matches_rust(seed in any::<i32>(), ops in proptest::collection::vec(aop(), 0..24)) {
        let expected = ops.iter().fold(seed, apply).to_string();
        let program: Program = {
            let mut pb = ProgramBuilder::new("M");
            let ops = ops.clone();
            pb.class("M", "java.lang.Object", |cb| {
                cb.static_method("main", &[], None, move |m| {
                    m.const_i32(seed);
                    for op in &ops {
                        match op {
                            AOp::Add(k) => { m.const_i32(*k).iadd(); }
                            AOp::Sub(k) => { m.const_i32(*k).isub(); }
                            AOp::Mul(k) => { m.const_i32(*k).imul(); }
                            AOp::Xor(k) => { m.const_i32(*k).ixor(); }
                            AOp::Shl(s) => { m.const_i32(*s as i32).ishl(); }
                            AOp::Neg => { m.ineg(); }
                        }
                    }
                    m.println_i32().ret();
                });
            });
            pb.build_with_stdlib()
        };
        let r = run_program(&program);
        prop_assert!(r.errors.is_empty());
        prop_assert_eq!(&r.output, &vec![expected]);
    }
}
