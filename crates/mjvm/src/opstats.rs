//! Dynamic opcode and opcode-pair frequency profiling.
//!
//! `repro opstats <app>` runs an app with counting enabled and prints the
//! hot-pair table — the measurement that justifies which pairs
//! [`crate::pcode`] fuses into superinstructions. Counting is keyed by
//! [`crate::instr::Instr::mnemonic`], so operand values aggregate, and a
//! pair is two *consecutively retired* instructions within one quantum of
//! one thread (the chain resets at quantum boundaries, which keeps the
//! numbers deterministic under any scheduling).

use std::collections::HashMap;

/// Retired-instruction counters for one run (or one node of a run).
#[derive(Debug, Clone, Default)]
pub struct OpStats {
    /// Retirements per opcode.
    pub counts: HashMap<&'static str, u64>,
    /// Retirements per consecutive opcode pair.
    pub pairs: HashMap<(&'static str, &'static str), u64>,
    /// Previous retired opcode within the current chain, if unbroken.
    pub prev: Option<&'static str>,
}

impl OpStats {
    /// Record one retired instruction, extending the current pair chain.
    #[inline]
    pub fn retire(&mut self, m: &'static str) {
        *self.counts.entry(m).or_insert(0) += 1;
        if let Some(p) = self.prev {
            *self.pairs.entry((p, m)).or_insert(0) += 1;
        }
        self.prev = Some(m);
    }

    /// Break the pair chain (quantum boundary, frame switch, trap).
    #[inline]
    pub fn reset_chain(&mut self) {
        self.prev = None;
    }

    /// Fold another node's counters into this one.
    pub fn merge(&mut self, other: &OpStats) {
        for (k, v) in &other.counts {
            *self.counts.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.pairs {
            *self.pairs.entry(*k).or_insert(0) += v;
        }
    }

    /// Total retired instructions.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// The `n` most frequent opcodes, descending (ties broken by name so
    /// the table is stable).
    pub fn top_ops(&self, n: usize) -> Vec<(&'static str, u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v.truncate(n);
        v
    }

    /// The `n` most frequent consecutive pairs, descending.
    pub fn top_pairs(&self, n: usize) -> Vec<((&'static str, &'static str), u64)> {
        let mut v: Vec<_> = self.pairs.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Render the hot tables in the EXPERIMENTS.md markdown style.
    pub fn render(&self, n: usize) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let total = self.total().max(1);
        let _ = writeln!(s, "| # | opcode | count | % |");
        let _ = writeln!(s, "|---|--------|-------|---|");
        for (i, (op, c)) in self.top_ops(n).into_iter().enumerate() {
            let _ =
                writeln!(s, "| {} | `{}` | {} | {:.1} |", i + 1, op, c, c as f64 * 100.0 / total as f64);
        }
        let _ = writeln!(s);
        let _ = writeln!(s, "| # | pair | count | % |");
        let _ = writeln!(s, "|---|------|-------|---|");
        for (i, ((a, b), c)) in self.top_pairs(n).into_iter().enumerate() {
            let _ = writeln!(
                s,
                "| {} | `{}` → `{}` | {} | {:.1} |",
                i + 1,
                a,
                b,
                c,
                c as f64 * 100.0 / total as f64
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_follow_chains() {
        let mut s = OpStats::default();
        s.retire("load");
        s.retire("getfield_q");
        s.retire("load");
        s.reset_chain();
        s.retire("getfield_q");
        assert_eq!(s.counts["load"], 2);
        assert_eq!(s.counts["getfield_q"], 2);
        assert_eq!(s.pairs[&("load", "getfield_q")], 1);
        assert_eq!(s.pairs[&("getfield_q", "load")], 1);
        assert_eq!(s.total(), 4);
        // The reset means getfield_q after it pairs with nothing.
        assert_eq!(s.pairs.len(), 2);
    }

    #[test]
    fn merge_and_rank() {
        let mut a = OpStats::default();
        a.retire("iadd");
        a.retire("iadd");
        let mut b = OpStats::default();
        b.retire("iadd");
        b.retire("load");
        a.merge(&b);
        assert_eq!(a.counts["iadd"], 3);
        assert_eq!(a.top_ops(1), vec![("iadd", 3)]);
        assert_eq!(a.top_pairs(5).len(), 2);
    }
}
