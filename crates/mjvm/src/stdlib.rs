//! The MJVM bootstrap library (the analogue of the JDK bootstrap classes).
//!
//! Pure-bytecode classes (`Thread.join`, `StringBuilder`, `Vector`, `Random`,
//! the thread-exit trampoline) go through the rewriter's *automatic*
//! bootstrap-rewriting path; classes with native methods (`Object`, `Math`,
//! `System`, `String`, `VFile`) keep their natives and play the role of the
//! paper's hand-written `javasplit` wrapper classes (§4.1).
//!
//! `java.util.Vector`'s synchronized methods intentionally mirror the JDK's:
//! they are the paper's canonical example of *unneeded synchronization* that
//! the local-object lock counter optimization (§4.4) makes cheap again.

use crate::builder::ProgramBuilder;
use crate::class::ClassFile;
use crate::instr::{Cmp, ElemTy, Ty};

pub const OBJECT: &str = "java.lang.Object";
pub const STRING: &str = "java.lang.String";
pub const THREAD: &str = "java.lang.Thread";
pub const SYSTEM: &str = "java.lang.System";
pub const MATH: &str = "java.lang.Math";
pub const STRINGBUILDER: &str = "java.lang.StringBuilder";
pub const RANDOM: &str = "java.util.Random";
pub const VECTOR: &str = "java.util.Vector";
pub const VFILE: &str = "java.io.VFile";
/// Runtime support class holding the thread-exit trampoline.
pub const JSRUNTIME: &str = "java.lang.JSRuntime";

/// Build all bootstrap classes.
pub fn stdlib_classes() -> Vec<ClassFile> {
    let mut classes: Vec<ClassFile> = Vec::new();

    // ---- java.lang.Object: the root (no super — assembled by hand) ----
    {
        let mut obj = ClassFile::new(OBJECT, None);
        obj.is_bootstrap = true;
        obj.methods.push(crate::class::MethodDef {
            sig: crate::class::Sig::new("<init>", &[], None),
            is_static: false,
            is_synchronized: false,
            is_native: false,
            max_locals: 1,
            code: vec![crate::instr::Instr::Return],
        });
        push_native(&mut obj, "hashCode", &[], Some(Ty::I32), false);
        push_native(&mut obj, "equals", &[Ty::Ref], Some(Ty::I32), false);
        push_native(&mut obj, "wait", &[], None, false);
        push_native(&mut obj, "notify", &[], None, false);
        push_native(&mut obj, "notifyAll", &[], None, false);
        classes.push(obj);
    }

    // ---- remaining bootstrap classes via the fluent API ----
    let mut pb = ProgramBuilder::new("<stdlib>");

    // java.lang.String — immutable payload; all behaviour native.
    pb.class(STRING, OBJECT, |cb| {
        cb.bootstrap();
        cb.native_method("length", &[], Some(Ty::I32), false)
            .native_method("charAt", &[Ty::I32], Some(Ty::I32), false)
            .native_method("concat", &[Ty::Ref], Some(Ty::Ref), false)
            .native_method("equals", &[Ty::Ref], Some(Ty::I32), false)
            .native_method("valueOfI", &[Ty::I32], Some(Ty::Ref), true)
            .native_method("valueOfJ", &[Ty::I64], Some(Ty::Ref), true)
            .native_method("valueOfD", &[Ty::F64], Some(Ty::Ref), true);
    });

    // java.lang.Math — static natives only.
    pb.class(MATH, OBJECT, |cb| {
        cb.bootstrap();
        for f in ["sqrt", "sin", "cos", "tan", "atan", "exp", "log", "abs", "floor", "ceil"] {
            cb.native_method(f, &[Ty::F64], Some(Ty::F64), true);
        }
        cb.native_method("pow", &[Ty::F64, Ty::F64], Some(Ty::F64), true)
            .native_method("absI", &[Ty::I32], Some(Ty::I32), true)
            .native_method("minI", &[Ty::I32, Ty::I32], Some(Ty::I32), true)
            .native_method("maxI", &[Ty::I32, Ty::I32], Some(Ty::I32), true);
    });

    // java.lang.System — console, arraycopy, virtual clock.
    pb.class(SYSTEM, OBJECT, |cb| {
        cb.bootstrap();
        cb.native_method("println", &[Ty::Ref], None, true)
            .native_method("printlnI", &[Ty::I32], None, true)
            .native_method("printlnJ", &[Ty::I64], None, true)
            .native_method("printlnD", &[Ty::F64], None, true)
            .native_method("arraycopy", &[Ty::Ref, Ty::I32, Ty::Ref, Ty::I32, Ty::I32], None, true)
            .native_method("currentTimeMillis", &[], Some(Ty::I64), true);
    });

    // java.io.VFile — the low-level I/O class the runtime intercepts.
    pb.class(VFILE, OBJECT, |cb| {
        cb.bootstrap();
        cb.native_method("open", &[Ty::Ref], Some(Ty::I32), true)
            .native_method("writeLine", &[Ty::I32, Ty::Ref], None, true)
            .native_method("readLine", &[Ty::I32], Some(Ty::Ref), true)
            .native_method("close", &[Ty::I32], None, true);
    });

    // java.lang.Thread — lifecycle in bytecode, creation via native start0.
    pb.class(THREAD, OBJECT, |cb| {
        cb.bootstrap();
        cb.field("target", Ty::Ref).field("priority", Ty::I32).field("alive", Ty::I32);
        cb.method("<init>", &[], None, |m| {
            m.load(0)
                .invokespecial(OBJECT, "<init>", &[], None)
                .load(0)
                .const_i32(5)
                .putfield(THREAD, "priority")
                .ret();
        });
        cb.method("<init>", &[Ty::Ref], None, |m| {
            m.load(0)
                .invokespecial(OBJECT, "<init>", &[], None)
                .load(0)
                .load(1)
                .putfield(THREAD, "target")
                .load(0)
                .const_i32(5)
                .putfield(THREAD, "priority")
                .ret();
        });
        // Default run(): delegate to the target Runnable, if any.
        cb.method("run", &[], None, |m| {
            let done = m.new_label();
            m.load(0).getfield(THREAD, "target").if_null(done);
            m.load(0).getfield(THREAD, "target").invokevirtual("run", &[], None);
            m.bind(done).ret();
        });
        // start(): publish alive=1 under the monitor, then hand the thread to
        // the VM. The rewriter substitutes the `start0` call site with
        // DsmSpawn (paper §4, change 1).
        cb.method("start", &[], None, |m| {
            m.load(0).monitor_enter();
            m.load(0).const_i32(1).putfield(THREAD, "alive");
            m.load(0).monitor_exit();
            m.load(0).invokevirtual("start0", &[], None).ret();
        });
        cb.native_method("start0", &[], None, false);
        cb.native_method("sleep", &[Ty::I64], None, true);
        cb.native_method("currentThread", &[], Some(Ty::Ref), true);
        cb.native_method("yield", &[], None, true);
        cb.method("setPriority", &[Ty::I32], None, |m| {
            m.load(0).load(1).putfield(THREAD, "priority").ret();
        });
        cb.method("getPriority", &[], Some(Ty::I32), |m| {
            m.load(0).getfield(THREAD, "priority").ret_val();
        });
        cb.synchronized_method("isAlive", &[], Some(Ty::I32), |m| {
            m.load(0).getfield(THREAD, "alive").ret_val();
        });
        // join(): the classic monitor idiom — works across nodes because the
        // DSM lock transfer carries the write notice that invalidates the
        // cached `alive` field.
        cb.synchronized_method("join", &[], None, |m| {
            let top = m.new_label();
            let out = m.new_label();
            m.bind(top);
            m.load(0).getfield(THREAD, "alive").if_i(Cmp::Eq, out);
            m.load(0).invokevirtual("wait", &[], None);
            m.goto(top);
            m.bind(out).ret();
        });
    });

    // java.lang.JSRuntime — the thread-exit trampoline every spawned thread
    // actually runs: run(), then clear `alive` and notify joiners.
    pb.class(JSRUNTIME, OBJECT, |cb| {
        cb.bootstrap();
        cb.static_method("threadMain", &[Ty::Ref], None, |m| {
            m.load(0).invokevirtual("run", &[], None);
            m.load(0).monitor_enter();
            m.load(0).const_i32(0).putfield(THREAD, "alive");
            m.load(0).invokevirtual("notifyAll", &[], None);
            m.load(0).monitor_exit();
            m.ret();
        });
    });

    // java.lang.StringBuilder — concat-based, enough for formatted output.
    pb.class(STRINGBUILDER, OBJECT, |cb| {
        cb.bootstrap();
        cb.field("s", Ty::Ref);
        cb.method("<init>", &[], None, |m| {
            m.load(0)
                .invokespecial(OBJECT, "<init>", &[], None)
                .load(0)
                .ldc_str("")
                .putfield(STRINGBUILDER, "s")
                .ret();
        });
        cb.method("append", &[Ty::Ref], Some(Ty::Ref), |m| {
            m.load(0)
                .load(0)
                .getfield(STRINGBUILDER, "s")
                .load(1)
                .invokevirtual("concat", &[Ty::Ref], Some(Ty::Ref))
                .putfield(STRINGBUILDER, "s")
                .load(0)
                .ret_val();
        });
        cb.method("appendI", &[Ty::I32], Some(Ty::Ref), |m| {
            m.load(0)
                .load(1)
                .invokestatic(STRING, "valueOfI", &[Ty::I32], Some(Ty::Ref))
                .invokevirtual("append", &[Ty::Ref], Some(Ty::Ref))
                .ret_val();
        });
        cb.method("appendJ", &[Ty::I64], Some(Ty::Ref), |m| {
            m.load(0)
                .load(1)
                .invokestatic(STRING, "valueOfJ", &[Ty::I64], Some(Ty::Ref))
                .invokevirtual("append", &[Ty::Ref], Some(Ty::Ref))
                .ret_val();
        });
        cb.method("appendD", &[Ty::F64], Some(Ty::Ref), |m| {
            m.load(0)
                .load(1)
                .invokestatic(STRING, "valueOfD", &[Ty::F64], Some(Ty::Ref))
                .invokevirtual("append", &[Ty::Ref], Some(Ty::Ref))
                .ret_val();
        });
        cb.method("toString", &[], Some(Ty::Ref), |m| {
            m.load(0).getfield(STRINGBUILDER, "s").ret_val();
        });
    });

    // java.util.Random — 64-bit LCG (deterministic across nodes).
    pb.class(RANDOM, OBJECT, |cb| {
        cb.bootstrap();
        cb.field("seed", Ty::I64);
        cb.method("<init>", &[Ty::I64], None, |m| {
            m.load(0)
                .invokespecial(OBJECT, "<init>", &[], None)
                .load(0)
                .load(1)
                .putfield(RANDOM, "seed")
                .ret();
        });
        // nextInt(bound): seed = seed*6364136223846793005 + 1442695040888963407;
        // return abs((int)(seed >> 33)) % bound.
        cb.method("nextInt", &[Ty::I32], Some(Ty::I32), |m| {
            m.load(0)
                .load(0)
                .getfield(RANDOM, "seed")
                .const_i64(6364136223846793005)
                .lmul()
                .const_i64(1442695040888963407)
                .ladd()
                .putfield(RANDOM, "seed");
            // high bits: (seed / 2^33) — adequate mixing for an LCG.
            m.load(0)
                .getfield(RANDOM, "seed")
                .const_i64(8589934592) // 2^33
                .ldiv()
                .l2i()
                .invokestatic(MATH, "absI", &[Ty::I32], Some(Ty::I32))
                .load(1)
                .irem()
                .ret_val();
        });
        cb.method("nextDouble", &[], Some(Ty::F64), |m| {
            m.load(0)
                .const_i32(1000000)
                .invokevirtual("nextInt", &[Ty::I32], Some(Ty::I32))
                .i2d()
                .const_f64(1000000.0)
                .ddiv()
                .ret_val();
        });
    });

    // java.util.Vector — synchronized growable array (JDK-style).
    pb.class(VECTOR, OBJECT, |cb| {
        cb.bootstrap();
        cb.field("arr", Ty::Ref).field("size", Ty::I32);
        cb.method("<init>", &[Ty::I32], None, |m| {
            m.load(0).invokespecial(OBJECT, "<init>", &[], None);
            m.load(0).load(1).newarray(ElemTy::Ref).putfield(VECTOR, "arr");
            m.load(0).const_i32(0).putfield(VECTOR, "size").ret();
        });
        cb.synchronized_method("size", &[], Some(Ty::I32), |m| {
            m.load(0).getfield(VECTOR, "size").ret_val();
        });
        cb.synchronized_method("elementAt", &[Ty::I32], Some(Ty::Ref), |m| {
            m.load(0).getfield(VECTOR, "arr").load(1).aload(ElemTy::Ref).ret_val();
        });
        cb.synchronized_method("addElement", &[Ty::Ref], None, |m| {
            let fits = m.new_label();
            // grow if size == arr.length
            m.load(0)
                .getfield(VECTOR, "size")
                .load(0)
                .getfield(VECTOR, "arr")
                .arraylen()
                .if_icmp(Cmp::Lt, fits);
            // newArr = new Ref[max(1, 2*len)]; arraycopy; arr = newArr
            m.load(0)
                .getfield(VECTOR, "arr")
                .arraylen()
                .const_i32(2)
                .imul()
                .const_i32(1)
                .invokestatic(MATH, "maxI", &[Ty::I32, Ty::I32], Some(Ty::I32))
                .newarray(ElemTy::Ref)
                .store(2);
            m.load(0)
                .getfield(VECTOR, "arr")
                .const_i32(0)
                .load(2)
                .const_i32(0)
                .load(0)
                .getfield(VECTOR, "size")
                .invokestatic(SYSTEM, "arraycopy", &[Ty::Ref, Ty::I32, Ty::Ref, Ty::I32, Ty::I32], None);
            m.load(0).load(2).putfield(VECTOR, "arr");
            m.bind(fits);
            m.load(0)
                .getfield(VECTOR, "arr")
                .load(0)
                .getfield(VECTOR, "size")
                .load(1)
                .astore(ElemTy::Ref);
            m.load(0).load(0).getfield(VECTOR, "size").const_i32(1).iadd().putfield(VECTOR, "size");
            m.ret();
        });
        // removeLast(): pop the most recent element (null if empty).
        cb.synchronized_method("removeLast", &[], Some(Ty::Ref), |m| {
            let empty = m.new_label();
            m.load(0).getfield(VECTOR, "size").if_i(Cmp::Le, empty);
            m.load(0).load(0).getfield(VECTOR, "size").const_i32(1).isub().putfield(VECTOR, "size");
            m.load(0)
                .getfield(VECTOR, "arr")
                .load(0)
                .getfield(VECTOR, "size")
                .aload(ElemTy::Ref)
                .ret_val();
            m.bind(empty).const_null().ret_val();
        });
        cb.synchronized_method("isEmpty", &[], Some(Ty::I32), |m| {
            let yes = m.new_label();
            m.load(0).getfield(VECTOR, "size").if_i(Cmp::Le, yes);
            m.const_i32(0).ret_val();
            m.bind(yes).const_i32(1).ret_val();
        });
    });

    let built = pb.build();
    let mut out = classes;
    out.extend(built.classes.into_iter().map(|mut c| {
        c.is_bootstrap = true;
        c
    }));
    out
}

fn push_native(cf: &mut ClassFile, name: &str, params: &[Ty], ret: Option<Ty>, is_static: bool) {
    cf.methods.push(crate::class::MethodDef {
        sig: crate::class::Sig::new(name, params, ret),
        is_static,
        is_synchronized: false,
        is_native: true,
        max_locals: 0,
        code: vec![],
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stdlib_has_all_core_classes() {
        let classes = stdlib_classes();
        for n in [OBJECT, STRING, THREAD, SYSTEM, MATH, STRINGBUILDER, RANDOM, VECTOR, VFILE, JSRUNTIME] {
            assert!(classes.iter().any(|c| &*c.name == n), "missing {n}");
        }
        assert!(classes.iter().all(|c| c.is_bootstrap));
    }

    #[test]
    fn object_is_root() {
        let classes = stdlib_classes();
        let obj = classes.iter().find(|c| &*c.name == OBJECT).unwrap();
        assert!(obj.super_name.is_none());
        assert!(obj.method("wait").unwrap().is_native);
        assert!(obj.method("<init>").is_some());
    }

    #[test]
    fn vector_methods_are_synchronized() {
        let classes = stdlib_classes();
        let v = classes.iter().find(|c| &*c.name == VECTOR).unwrap();
        for m in ["size", "elementAt", "addElement", "removeLast", "isEmpty"] {
            assert!(v.method(m).unwrap().is_synchronized, "{m} must be synchronized");
        }
    }

    #[test]
    fn thread_join_is_wait_loop() {
        let classes = stdlib_classes();
        let t = classes.iter().find(|c| &*c.name == THREAD).unwrap();
        let join = t.method("join").unwrap();
        assert!(join.is_synchronized);
        assert!(join
            .code
            .iter()
            .any(|i| matches!(i, crate::instr::Instr::InvokeVirtual(s) if &*s.name == "wait")));
    }
}
