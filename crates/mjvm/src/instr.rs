//! The MJVM instruction set.
//!
//! Instructions come in one *symbolic* flavour: class, field and method
//! operands are named by string, exactly like a JVM class file's constant-pool
//! references. The [`crate::loader`] resolves names to dense indices at load
//! time so the interpreter never hashes strings.
//!
//! The `Dsm*` pseudo-instructions model the handler calls and inline fast
//! paths the JavaSplit rewriter injects (paper §4, Figure 3). They are never
//! produced by the program builder directly — only `jsplit-rewriter` emits
//! them — and the baseline [`crate::localvm::LocalVm`] treats executing one as
//! a verification error unless its environment supports DSM checks.

use crate::value::Value;
use std::sync::Arc;

/// Declared slot types (JVM computational types, minus `float`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    I32,
    I64,
    F64,
    Ref,
}

impl Ty {
    /// Compact descriptor character, used in signatures and the disassembler.
    pub fn descriptor(self) -> char {
        match self {
            Ty::I32 => 'I',
            Ty::I64 => 'J',
            Ty::F64 => 'D',
            Ty::Ref => 'L',
        }
    }
}

/// Array element types (what `newarray` can allocate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemTy {
    I32,
    I64,
    F64,
    Ref,
}

impl ElemTy {
    pub fn ty(self) -> Ty {
        match self {
            ElemTy::I32 => Ty::I32,
            ElemTy::I64 => Ty::I64,
            ElemTy::F64 => Ty::F64,
            ElemTy::Ref => Ty::Ref,
        }
    }
}

/// Comparison condition for branch instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cmp {
    #[inline]
    pub fn eval_i32(self, a: i32, b: i32) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
        }
    }
}

/// What kind of heap datum an access-check guards. The paper's Table 1
/// distinguishes exactly these six cases (field/static/array × read/write);
/// carrying the kind lets the cost model and the statistics do the same.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    Field,
    Static,
    Array,
}

/// One MJVM instruction.
///
/// Branch targets are program-counter indices into the owning method's code
/// array (the builder resolves labels to indices at `build()` time).
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    // ---- constants & stack manipulation ----
    /// Push a constant.
    Const(Value),
    /// Push a string literal (allocates/interns a `java.lang.String`).
    LdcStr(Arc<str>),
    /// Duplicate the top slot.
    Dup,
    /// Duplicate the top slot below the second slot (`dup_x1`): `..a b` → `..b a b`.
    DupX1,
    /// Pop the top slot.
    Pop,
    /// Swap the two top slots.
    Swap,

    // ---- locals ----
    /// Push local variable `n`.
    Load(u16),
    /// Pop into local variable `n`.
    Store(u16),
    /// Add an immediate to integer local `n` (JVM `iinc`).
    IInc(u16, i32),

    // ---- integer arithmetic (i32) ----
    IAdd,
    ISub,
    IMul,
    IDiv,
    IRem,
    INeg,
    IShl,
    IShr,
    IUShr,
    IAnd,
    IOr,
    IXor,

    // ---- long arithmetic (i64) ----
    LAdd,
    LSub,
    LMul,
    LDiv,
    LRem,
    LNeg,

    // ---- double arithmetic (f64) ----
    DAdd,
    DSub,
    DMul,
    DDiv,
    DRem,
    DNeg,

    // ---- conversions ----
    I2L,
    I2D,
    L2I,
    L2D,
    D2I,
    D2L,

    // ---- comparisons producing -1/0/1 (JVM lcmp / dcmpg) ----
    LCmp,
    DCmp,

    // ---- control flow ----
    /// Unconditional jump.
    Goto(usize),
    /// Compare two i32 operands and jump (JVM `if_icmp<cond>`).
    IfICmp(Cmp, usize),
    /// Compare top i32 against zero and jump (JVM `if<cond>`).
    IfI(Cmp, usize),
    /// Jump if the top reference is null.
    IfNull(usize),
    /// Jump if the top reference is non-null.
    IfNonNull(usize),
    /// Jump if the two top references are the same object (`if_acmpeq`).
    IfACmpEq(usize),
    /// Jump if the two top references differ (`if_acmpne`).
    IfACmpNe(usize),

    // ---- heap: objects ----
    /// Allocate an instance of the named class (fields zeroed); no constructor
    /// is run — pair with `InvokeSpecial` of `<init>` like JVM `new` + dup.
    New(Arc<str>),
    /// Read instance field `class.field`; stack: `.. obj` → `.. value`.
    GetField(Arc<str>, Arc<str>),
    /// Write instance field; stack: `.. obj value` → `..`.
    PutField(Arc<str>, Arc<str>),
    /// Read static field.
    GetStatic(Arc<str>, Arc<str>),
    /// Write static field; stack: `.. value` → `..`.
    PutStatic(Arc<str>, Arc<str>),

    // ---- heap: arrays ----
    /// Allocate an array; stack: `.. len` → `.. arr`.
    NewArray(ElemTy),
    /// Load element; stack: `.. arr idx` → `.. value`.
    ALoad(ElemTy),
    /// Store element; stack: `.. arr idx value` → `..`.
    AStore(ElemTy),
    /// Array length; stack: `.. arr` → `.. len`.
    ArrayLen,

    // ---- invocation ----
    /// Call a static method of the named class.
    InvokeStatic(Arc<str>, crate::class::Sig),
    /// Call a virtual method: dispatch on the runtime class of the receiver
    /// (first argument). Stack: `.. obj args..` → `.. [ret]`.
    InvokeVirtual(crate::class::Sig),
    /// Non-virtual call on a named class: constructors (`<init>`) and
    /// `super.m()` calls.
    InvokeSpecial(Arc<str>, crate::class::Sig),
    /// Return `void` from the current method.
    Return,
    /// Return the top-of-stack value.
    ReturnVal,

    // ---- synchronization ----
    /// Acquire the monitor of the object on top of the stack (pops it).
    MonitorEnter,
    /// Release the monitor of the object on top of the stack (pops it).
    MonitorExit,

    /// No operation (padding; also used by the rewriter when erasing ops).
    Nop,

    // ---- DSM pseudo-instructions (emitted only by the JavaSplit rewriter) ----
    /// Access check before a heap *read*: inspects the DSM state of the object
    /// whose reference lives `depth` slots below the stack top (Figure 3 of
    /// the paper: dup / getfield `__javasplit__state` / ifeq handler).
    DsmCheckRead {
        depth: u8,
        kind: AccessKind,
    },
    /// Access check before a heap *write*: additionally twins the object on
    /// first write after an invalidation (multiple-writer LRC).
    DsmCheckWrite {
        depth: u8,
        kind: AccessKind,
    },
    /// Substituted `monitorenter`: routes through the DSM synchronization
    /// handler (local-object lock counter fast path, §4.4).
    DsmMonitorEnter,
    /// Substituted `monitorexit`.
    DsmMonitorExit,
    /// Substituted `Thread.start()`: ships the thread object (top of stack,
    /// popped) to a node chosen by the load-balancing function.
    DsmSpawn,
    /// Marks an acquire of the volatile-access pseudo-lock of the object at
    /// `depth` (paper §3: volatile accesses are wrapped in acquire/release).
    /// The interpreter remembers the object on a per-frame volatile stack so
    /// the matching release finds it after the access consumed the reference.
    DsmVolatileAcquire {
        depth: u8,
    },
    /// Releases the object recorded by the innermost `DsmVolatileAcquire`.
    DsmVolatileRelease,

    // ---- quickened instructions (loader-resolved, like JVM `_quick` ops) ----
    // Symbolic heap/call instructions are rewritten to these at load time so
    // the interpreter dispatches on dense indices, never strings. They are
    // not valid in builder/rewriter output.
    /// Quickened `GetField`: direct field-slot index.
    GetFieldQ { slot: u16, kind_cost: AccessKind },
    /// Quickened `PutField`.
    PutFieldQ { slot: u16, kind_cost: AccessKind },
    /// Quickened `GetStatic`: class id + slot into that class's static area.
    /// `free` marks the rewriter's constant `__javasplit__statics__` holder
    /// reads, charged zero cost (their cost is folded into the access check
    /// so Table 1 calibration holds).
    GetStaticQ { class: crate::loader::ClassId, slot: u16, free: bool },
    /// Quickened `PutStatic`.
    PutStaticQ { class: crate::loader::ClassId, slot: u16 },
    /// Quickened `New`.
    NewQ(crate::loader::ClassId),
    /// Quickened `InvokeStatic` / `InvokeSpecial`: direct method id.
    InvokeStaticQ(crate::loader::MethodId),
    InvokeSpecialQ(crate::loader::MethodId),
    /// Quickened `InvokeVirtual`: vtable signature id + arg-slot count
    /// (excluding receiver) + whether a value is returned.
    InvokeVirtualQ { sig: crate::loader::SigId, nargs: u8, ret: bool, site: u32 },
}

impl Instr {
    /// `true` for instructions that may transfer control to a non-sequential
    /// program counter.
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Instr::Goto(_)
                | Instr::IfICmp(..)
                | Instr::IfI(..)
                | Instr::IfNull(_)
                | Instr::IfNonNull(_)
                | Instr::IfACmpEq(_)
                | Instr::IfACmpNe(_)
        )
    }

    /// Branch target, if this is a branch.
    pub fn branch_target(&self) -> Option<usize> {
        match self {
            Instr::Goto(t)
            | Instr::IfICmp(_, t)
            | Instr::IfI(_, t)
            | Instr::IfNull(t)
            | Instr::IfNonNull(t)
            | Instr::IfACmpEq(t)
            | Instr::IfACmpNe(t) => Some(*t),
            _ => None,
        }
    }

    /// Rewrite the branch target in place (used by the rewriter when it
    /// splices access checks into a method body and shifts offsets).
    pub fn set_branch_target(&mut self, new: usize) {
        match self {
            Instr::Goto(t)
            | Instr::IfICmp(_, t)
            | Instr::IfI(_, t)
            | Instr::IfNull(t)
            | Instr::IfNonNull(t)
            | Instr::IfACmpEq(t)
            | Instr::IfACmpNe(t) => *t = new,
            _ => panic!("set_branch_target on non-branch {self:?}"),
        }
    }

    /// Stable short mnemonic, used as the key of the dynamic opcode/pair
    /// frequency profiler (`repro opstats`). One name per variant; operand
    /// values are deliberately dropped so frequencies aggregate.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instr::Const(_) => "const",
            Instr::LdcStr(_) => "ldc_str",
            Instr::Dup => "dup",
            Instr::DupX1 => "dup_x1",
            Instr::Pop => "pop",
            Instr::Swap => "swap",
            Instr::Load(_) => "load",
            Instr::Store(_) => "store",
            Instr::IInc(..) => "iinc",
            Instr::IAdd => "iadd",
            Instr::ISub => "isub",
            Instr::IMul => "imul",
            Instr::IDiv => "idiv",
            Instr::IRem => "irem",
            Instr::INeg => "ineg",
            Instr::IShl => "ishl",
            Instr::IShr => "ishr",
            Instr::IUShr => "iushr",
            Instr::IAnd => "iand",
            Instr::IOr => "ior",
            Instr::IXor => "ixor",
            Instr::LAdd => "ladd",
            Instr::LSub => "lsub",
            Instr::LMul => "lmul",
            Instr::LDiv => "ldiv",
            Instr::LRem => "lrem",
            Instr::LNeg => "lneg",
            Instr::DAdd => "dadd",
            Instr::DSub => "dsub",
            Instr::DMul => "dmul",
            Instr::DDiv => "ddiv",
            Instr::DRem => "drem",
            Instr::DNeg => "dneg",
            Instr::I2L => "i2l",
            Instr::I2D => "i2d",
            Instr::L2I => "l2i",
            Instr::L2D => "l2d",
            Instr::D2I => "d2i",
            Instr::D2L => "d2l",
            Instr::LCmp => "lcmp",
            Instr::DCmp => "dcmp",
            Instr::Goto(_) => "goto",
            Instr::IfICmp(..) => "if_icmp",
            Instr::IfI(..) => "if",
            Instr::IfNull(_) => "ifnull",
            Instr::IfNonNull(_) => "ifnonnull",
            Instr::IfACmpEq(_) => "if_acmpeq",
            Instr::IfACmpNe(_) => "if_acmpne",
            Instr::New(_) => "new",
            Instr::GetField(..) => "getfield",
            Instr::PutField(..) => "putfield",
            Instr::GetStatic(..) => "getstatic",
            Instr::PutStatic(..) => "putstatic",
            Instr::InvokeStatic(..) => "invokestatic",
            Instr::InvokeVirtual(_) => "invokevirtual",
            Instr::InvokeSpecial(..) => "invokespecial",
            Instr::NewArray(_) => "newarray",
            Instr::ALoad(_) => "aload",
            Instr::AStore(_) => "astore",
            Instr::ArrayLen => "arraylength",
            Instr::Return => "return",
            Instr::ReturnVal => "returnval",
            Instr::MonitorEnter => "monitorenter",
            Instr::MonitorExit => "monitorexit",
            Instr::Nop => "nop",
            Instr::DsmCheckRead { .. } => "dsm_check_read",
            Instr::DsmCheckWrite { .. } => "dsm_check_write",
            Instr::DsmMonitorEnter => "dsm_monitorenter",
            Instr::DsmMonitorExit => "dsm_monitorexit",
            Instr::DsmSpawn => "dsm_spawn",
            Instr::DsmVolatileAcquire { .. } => "dsm_vol_acquire",
            Instr::DsmVolatileRelease => "dsm_vol_release",
            Instr::GetFieldQ { .. } => "getfield_q",
            Instr::PutFieldQ { .. } => "putfield_q",
            Instr::GetStaticQ { .. } => "getstatic_q",
            Instr::PutStaticQ { .. } => "putstatic_q",
            Instr::NewQ(_) => "new_q",
            Instr::InvokeStaticQ(_) => "invokestatic_q",
            Instr::InvokeSpecialQ(_) => "invokespecial_q",
            Instr::InvokeVirtualQ { .. } => "invokevirtual_q",
        }
    }

    /// `true` if this is one of the DSM pseudo-instructions injected by the
    /// rewriter (they must never appear in original application bytecode).
    pub fn is_dsm(&self) -> bool {
        matches!(
            self,
            Instr::DsmCheckRead { .. }
                | Instr::DsmCheckWrite { .. }
                | Instr::DsmMonitorEnter
                | Instr::DsmMonitorExit
                | Instr::DsmSpawn
                | Instr::DsmVolatileAcquire { .. }
                | Instr::DsmVolatileRelease
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval() {
        assert!(Cmp::Lt.eval_i32(1, 2));
        assert!(!Cmp::Lt.eval_i32(2, 2));
        assert!(Cmp::Le.eval_i32(2, 2));
        assert!(Cmp::Ne.eval_i32(1, 2));
        assert!(Cmp::Ge.eval_i32(3, 2));
        assert!(Cmp::Gt.eval_i32(3, 2));
        assert!(Cmp::Eq.eval_i32(2, 2));
    }

    #[test]
    fn branch_target_round_trip() {
        let mut i = Instr::IfICmp(Cmp::Eq, 5);
        assert!(i.is_branch());
        assert_eq!(i.branch_target(), Some(5));
        i.set_branch_target(9);
        assert_eq!(i.branch_target(), Some(9));
        assert_eq!(Instr::IAdd.branch_target(), None);
    }

    #[test]
    fn dsm_classification() {
        assert!(Instr::DsmMonitorEnter.is_dsm());
        assert!(Instr::DsmCheckRead { depth: 0, kind: AccessKind::Field }.is_dsm());
        assert!(!Instr::MonitorEnter.is_dsm());
    }
}
