//! The baseline single-node VM: the "original, unmodified JVM" of the paper.
//!
//! Runs a (non-rewritten) multithreaded MJVM program with deterministic
//! round-robin green threads, classic in-heap object monitors, `wait` /
//! `notify`, sleeping and a virtual clock driven by the cost model. It is the
//! correctness oracle for differential tests against the distributed runtime
//! and (with the runtime's multi-CPU scheduler) the denominator of the
//! paper's speedup plots.

use crate::cost::CostModel;
use crate::heap::{Heap, ObjRef, ThreadUid};
use crate::interp::{self, Frame, MonOutcome, StepCtx, StepState, Thread, VmEnv, VmError};
use crate::loader::{Image, LoadError, MethodId};
use crate::pcode::{self, PImage};
use crate::value::Value;
use crate::verifier::{self, VerifyOptions};
use std::collections::VecDeque;
use std::sync::Arc;

/// Instructions per scheduling quantum.
const QUANTUM: u32 = 4_096;

/// Result of a completed run.
#[derive(Debug)]
pub struct RunResult {
    /// Console lines, in emission order.
    pub output: Vec<String>,
    /// Virtual execution time in picoseconds (single CPU: sum of all costs).
    pub time_ps: u64,
    /// Instructions retired.
    pub ops: u64,
    /// Threads that died with a trap.
    pub errors: Vec<(ThreadUid, VmError)>,
    /// `true` if the VM stopped because every remaining thread was blocked.
    pub deadlocked: bool,
}

/// Baseline VM environment: classic in-heap monitors, local scheduling.
/// Public so the distributed runtime can reuse it for the paper's
/// "Original" (unrewritten, single dual-CPU node) configuration.
pub struct BaselineEnv {
    pub model: &'static CostModel,
    /// Threads to move to the ready queue after the current quantum.
    pub wakes: Vec<ThreadUid>,
    /// Thread objects passed to `spawn` during the current quantum.
    pub spawns: Vec<ObjRef>,
    /// Sleepers: (wake time ps, thread).
    pub sleepers: Vec<(u64, ThreadUid)>,
    pub output: Vec<String>,
    pub clock_ps: u64,
    pub thread_class: crate::loader::ClassId,
    files: std::collections::HashMap<i32, (String, Vec<String>, usize)>,
    next_fd: i32,
}

impl BaselineEnv {
    pub fn new(model: &'static CostModel, thread_class: crate::loader::ClassId) -> BaselineEnv {
        BaselineEnv {
            model,
            wakes: Vec::new(),
            spawns: Vec::new(),
            sleepers: Vec::new(),
            output: Vec::new(),
            clock_ps: 0,
            thread_class,
            files: Default::default(),
            next_fd: 3,
        }
    }

    fn grant_or_wake(&mut self, heap: &mut Heap, obj: ObjRef) {
        let mon = heap.get_mut(obj).monitor_mut();
        if mon.owner.is_some() {
            return;
        }
        if let Some(&(uid, count)) = mon.entry_q.front() {
            if count > 0 {
                // wait()-resumer: granted directly with its saved count.
                mon.entry_q.pop_front();
                mon.owner = Some(uid);
                mon.count = count;
            }
            // retry-style enterer: just wake it; it re-executes monitorenter.
            self.wakes.push(uid);
        }
    }
}

impl VmEnv for BaselineEnv {
    fn monitor_enter(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> MonOutcome {
        let uid = t.uid;
        let mon = heap.get_mut(obj).monitor_mut();
        match mon.owner {
            None => {
                mon.owner = Some(uid);
                mon.count = 1;
                mon.entry_q.retain(|&(u, _)| u != uid);
                MonOutcome::Entered { cost: self.model.monitor_enter }
            }
            Some(o) if o == uid => {
                mon.count += 1;
                MonOutcome::Entered { cost: self.model.monitor_enter }
            }
            Some(_) => {
                if !mon.entry_q.iter().any(|&(u, _)| u == uid) {
                    mon.entry_q.push_back((uid, 0));
                }
                MonOutcome::Blocked { cost: self.model.monitor_enter }
            }
        }
    }

    fn monitor_exit(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> Result<u64, VmError> {
        let uid = t.uid;
        {
            let mon = heap.get_mut(obj).monitor_mut();
            if mon.owner != Some(uid) {
                return Err(VmError::IllegalMonitorState { op: "monitorexit" });
            }
            mon.count -= 1;
            if mon.count > 0 {
                return Ok(self.model.monitor_exit);
            }
            mon.owner = None;
        }
        self.grant_or_wake(heap, obj);
        Ok(self.model.monitor_exit)
    }

    fn obj_wait(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> Result<u64, VmError> {
        let uid = t.uid;
        {
            let mon = heap.get_mut(obj).monitor_mut();
            if mon.owner != Some(uid) {
                return Err(VmError::IllegalMonitorState { op: "wait" });
            }
            let saved = mon.count;
            mon.wait_q.push_back((uid, saved));
            mon.owner = None;
            mon.count = 0;
        }
        self.grant_or_wake(heap, obj);
        Ok(self.model.monitor_exit + self.model.monitor_enter)
    }

    fn obj_notify(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef, all: bool) -> Result<u64, VmError> {
        let uid = t.uid;
        let mon = heap.get_mut(obj).monitor_mut();
        if mon.owner != Some(uid) {
            return Err(VmError::IllegalMonitorState { op: "notify" });
        }
        let n = if all { mon.wait_q.len() } else { 1.min(mon.wait_q.len()) };
        for _ in 0..n {
            let e = mon.wait_q.pop_front().unwrap();
            mon.entry_q.push_back(e);
        }
        Ok(self.model.monitor_exit)
    }

    fn spawn(&mut self, _heap: &mut Heap, _t: &mut Thread, thread_obj: ObjRef, _via_dsm: bool) -> Result<u64, VmError> {
        self.spawns.push(thread_obj);
        Ok(self.model.invoke * 4)
    }

    fn sleep(&mut self, t: &mut Thread, millis: i64) -> u64 {
        let wake = self.clock_ps + (millis.max(0) as u64) * crate::cost::PS_PER_MS;
        self.sleepers.push((wake, t.uid));
        self.model.invoke
    }

    fn current_thread_obj(&mut self, heap: &mut Heap, t: &mut Thread) -> ObjRef {
        if let Some(r) = t.thread_obj {
            return r;
        }
        // The primordial main thread materialises its Thread object lazily.
        let cls = self.thread_class;
        let nf = 3; // target, priority, alive
        let r = heap.alloc_object(cls, nf, vec![Value::Null, Value::I32(5), Value::I32(1)]);
        t.thread_obj = Some(r);
        r
    }

    fn println(&mut self, _t: &Thread, line: &str) {
        self.output.push(line.to_string());
    }

    fn now_millis(&self) -> i64 {
        (self.clock_ps / crate::cost::PS_PER_MS) as i64
    }

    fn file_open(&mut self, name: &str) -> i32 {
        let fd = self.next_fd;
        self.next_fd += 1;
        self.files.insert(fd, (name.to_string(), Vec::new(), 0));
        fd
    }

    fn file_write_line(&mut self, fd: i32, line: &str) {
        if let Some((_, lines, _)) = self.files.get_mut(&fd) {
            lines.push(line.to_string());
        }
    }

    fn file_read_line(&mut self, fd: i32) -> Option<String> {
        let (_, lines, pos) = self.files.get_mut(&fd)?;
        let line = lines.get(*pos)?.clone();
        *pos += 1;
        Some(line)
    }

    fn file_close(&mut self, _fd: i32) {}
}

/// The baseline VM.
pub struct LocalVm {
    image: Arc<Image>,
    /// Predecoded bodies (direct-threaded fast path), built at load time.
    pimage: Arc<PImage>,
    heap: Heap,
    env: BaselineEnv,
    threads: Vec<Option<Thread>>,
    ready: VecDeque<ThreadUid>,
    thread_main: MethodId,
    errors: Vec<(ThreadUid, VmError)>,
    ops: u64,
    /// Hard cap on retired instructions (runaway-program guard in tests).
    pub max_ops: u64,
    /// Use the classic enum-dispatch interpreter instead of the predecoded
    /// executor (the differential suites run both and compare).
    pub classic_interp: bool,
}

impl LocalVm {
    /// Load and prepare a program. Verifies it under the ORIGINAL policy.
    pub fn new(program: &crate::class::Program, model: &'static CostModel) -> Result<LocalVm, LoadError> {
        if let Err(errs) = verifier::verify_program(program, VerifyOptions::ORIGINAL) {
            panic!("program failed verification: {}", errs[0]);
        }
        Self::new_unverified(program, model, VerifyOptions::ORIGINAL)
    }

    /// Load without the original-code policy (used by tests that run
    /// rewriter output on a single node).
    pub fn new_rewritten(program: &crate::class::Program, model: &'static CostModel) -> Result<LocalVm, LoadError> {
        if let Err(errs) = verifier::verify_program(program, VerifyOptions::REWRITTEN) {
            panic!("program failed verification: {}", errs[0]);
        }
        Self::new_unverified(program, model, VerifyOptions::REWRITTEN)
    }

    fn new_unverified(
        program: &crate::class::Program,
        model: &'static CostModel,
        _opts: VerifyOptions,
    ) -> Result<LocalVm, LoadError> {
        let image = Arc::new(Image::load(program)?);
        let pimage = Arc::new(pcode::predecode(&image, model));
        let mut heap = Heap::new();
        heap.init_statics(&image);
        let thread_class = image.class_id_any(crate::stdlib::THREAD).expect("stdlib Thread");
        let thread_main = image
            .resolve_method(
                image.class_id_any(crate::stdlib::JSRUNTIME).expect("JSRuntime"),
                &crate::class::Sig::new("threadMain", &[crate::instr::Ty::Ref], None),
            )
            .expect("threadMain");
        let main = image.main_method;
        let main_locals = image.method(main).max_locals;
        let mut vm = LocalVm {
            image,
            pimage,
            heap,
            env: BaselineEnv::new(model, thread_class),
            threads: Vec::new(),
            ready: VecDeque::new(),
            thread_main,
            errors: Vec::new(),
            ops: 0,
            max_ops: u64::MAX,
            classic_interp: false,
        };
        let root = Frame::new(main, main_locals, vec![], false);
        vm.add_thread(root);
        Ok(vm)
    }

    fn add_thread(&mut self, root: Frame) -> ThreadUid {
        let uid = self.threads.len() as ThreadUid;
        self.threads.push(Some(Thread::new(uid, root)));
        self.ready.push_back(uid);
        uid
    }

    /// Access the image (tests use it for reflection-style asserts).
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// Run to completion (all threads finished, deadlocked or trapped).
    pub fn run(mut self) -> RunResult {
        loop {
            // Wake due sleepers; if nothing is ready, jump the clock.
            if self.ready.is_empty() && !self.env.sleepers.is_empty() {
                let min = self.env.sleepers.iter().map(|&(w, _)| w).min().unwrap();
                self.env.clock_ps = self.env.clock_ps.max(min);
            }
            let due: Vec<ThreadUid> = {
                let clock = self.env.clock_ps;
                let (due, rest): (Vec<_>, Vec<_>) =
                    self.env.sleepers.drain(..).partition(|&(w, _)| w <= clock);
                self.env.sleepers = rest;
                due.into_iter().map(|(_, u)| u).collect()
            };
            for u in due {
                self.ready.push_back(u);
            }

            let Some(uid) = self.ready.pop_front() else {
                let alive = self.threads.iter().flatten().count();
                let deadlocked = alive > 0;
                return self.finish(deadlocked);
            };
            let mut thread = match self.threads[uid as usize].take() {
                Some(t) => t,
                None => continue,
            };

            let image = self.image.clone();
            let pimage = self.pimage.clone();
            let model = self.env.model;
            let outcome = {
                let mut ctx = StepCtx {
                    image: &image,
                    heap: &mut self.heap,
                    env: &mut self.env,
                    cost: model,
                };
                if self.classic_interp {
                    interp::step(&mut thread, &mut ctx, QUANTUM)
                } else {
                    pcode::step(&mut thread, &mut ctx, &pimage, QUANTUM)
                }
            };

            match outcome {
                Ok(out) => {
                    self.env.clock_ps += out.cost;
                    self.ops += out.ops;
                    match out.state {
                        StepState::Running => {
                            self.threads[uid as usize] = Some(thread);
                            self.ready.push_back(uid);
                        }
                        StepState::Blocked => {
                            self.threads[uid as usize] = Some(thread);
                        }
                        StepState::Done => { /* thread retired */ }
                    }
                }
                Err(e) => {
                    self.errors.push((uid, e));
                }
            }

            // Materialize spawns requested during the quantum.
            let spawns: Vec<ObjRef> = self.env.spawns.drain(..).collect();
            for tobj in spawns {
                let m = self.image.method(self.thread_main);
                let frame = Frame::new(self.thread_main, m.max_locals, vec![Value::Ref(tobj)], false);
                let new_uid = self.add_thread(frame);
                self.threads[new_uid as usize].as_mut().unwrap().thread_obj = Some(tobj);
            }
            // Move woken threads to the ready queue.
            let wakes: Vec<ThreadUid> = self.env.wakes.drain(..).collect();
            for w in wakes {
                if self.threads[w as usize].is_some() && !self.ready.contains(&w) {
                    self.ready.push_back(w);
                }
            }

            if self.ops > self.max_ops {
                return self.finish(true);
            }
        }
    }

    fn finish(self, deadlocked: bool) -> RunResult {
        RunResult {
            output: self.env.output,
            time_ps: self.env.clock_ps,
            ops: self.ops,
            errors: self.errors,
            deadlocked,
        }
    }
}

/// Convenience: build, run and return the console output of a program on the
/// Sun profile (the common test harness path).
pub fn run_program(program: &crate::class::Program) -> RunResult {
    LocalVm::new(program, crate::cost::JvmProfile::SunSim.cost_model())
        .expect("load")
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::{Cmp, ElemTy, Ty};

    fn run(f: impl FnOnce(&mut crate::builder::MethodBuilder)) -> RunResult {
        let mut pb = ProgramBuilder::new("M");
        pb.class("M", "java.lang.Object", |cb| {
            cb.static_method("main", &[], None, f);
        });
        run_program(&pb.build_with_stdlib())
    }

    #[test]
    fn hello_world() {
        let r = run(|m| {
            m.ldc_str("hello, world").println_str().ret();
        });
        assert_eq!(r.output, vec!["hello, world"]);
        assert!(r.errors.is_empty());
        assert!(!r.deadlocked);
        assert!(r.time_ps > 0);
    }

    #[test]
    fn arithmetic_loop() {
        // sum 0..100 = 4950
        let r = run(|m| {
            let top = m.new_label();
            let out = m.new_label();
            m.const_i32(0).store(0).const_i32(0).store(1);
            m.bind(top);
            m.load(1).const_i32(100).if_icmp(Cmp::Ge, out);
            m.load(0).load(1).iadd().store(0);
            m.iinc(1, 1).goto(top);
            m.bind(out).load(0).println_i32().ret();
        });
        assert_eq!(r.output, vec!["4950"]);
    }

    #[test]
    fn objects_and_virtual_dispatch() {
        let mut pb = ProgramBuilder::new("M");
        pb.class("A", "java.lang.Object", |cb| {
            cb.default_ctor("java.lang.Object");
            cb.method("f", &[], Some(Ty::I32), |m| {
                m.const_i32(1).ret_val();
            });
        });
        pb.class("B", "A", |cb| {
            cb.default_ctor("A");
            cb.method("f", &[], Some(Ty::I32), |m| {
                m.const_i32(2).ret_val();
            });
        });
        pb.class("M", "java.lang.Object", |cb| {
            cb.static_method("main", &[], None, |m| {
                m.construct("B", &[], |_| {})
                    .invokevirtual("f", &[], Some(Ty::I32))
                    .println_i32()
                    .ret();
            });
        });
        let r = run_program(&pb.build_with_stdlib());
        assert_eq!(r.output, vec!["2"]);
    }

    #[test]
    fn arrays_and_doubles() {
        let r = run(|m| {
            m.const_i32(3).newarray(ElemTy::F64).store(0);
            m.load(0).const_i32(1).const_f64(2.5).astore(ElemTy::F64);
            m.load(0).const_i32(1).aload(ElemTy::F64);
            m.const_f64(4.0).dmul().println_f64();
            m.load(0).arraylen().println_i32();
            m.ret();
        });
        assert_eq!(r.output, vec!["10.0", "3"]);
    }

    #[test]
    fn math_natives() {
        let r = run(|m| {
            m.const_f64(16.0)
                .invokestatic("java.lang.Math", "sqrt", &[Ty::F64], Some(Ty::F64))
                .println_f64()
                .ret();
        });
        assert_eq!(r.output, vec!["4.0"]);
    }

    #[test]
    fn string_builder_formats() {
        let r = run(|m| {
            m.construct("java.lang.StringBuilder", &[], |_| {}).store(0);
            m.load(0).ldc_str("n=").invokevirtual("append", &[Ty::Ref], Some(Ty::Ref)).pop_();
            m.load(0).const_i32(42).invokevirtual("appendI", &[Ty::I32], Some(Ty::Ref)).pop_();
            m.load(0).invokevirtual("toString", &[], Some(Ty::Ref)).println_str().ret();
        });
        assert_eq!(r.output, vec!["n=42"]);
    }

    #[test]
    fn spawn_and_join() {
        // A worker thread increments a shared cell; main joins then prints.
        let mut pb = ProgramBuilder::new("M");
        pb.class("Cell", "java.lang.Object", |cb| {
            cb.default_ctor("java.lang.Object");
            cb.field("v", Ty::I32);
        });
        pb.class("W", "java.lang.Thread", |cb| {
            cb.field("cell", Ty::Ref);
            cb.method("<init>", &[Ty::Ref], None, |m| {
                m.load(0)
                    .invokespecial("java.lang.Thread", "<init>", &[], None)
                    .load(0)
                    .load(1)
                    .putfield("W", "cell")
                    .ret();
            });
            cb.method("run", &[], None, |m| {
                m.load(0)
                    .getfield("W", "cell")
                    .const_i32(41)
                    .putfield("Cell", "v")
                    .ret();
            });
        });
        pb.class("M", "java.lang.Object", |cb| {
            cb.static_method("main", &[], None, |m| {
                m.construct("Cell", &[], |_| {}).store(0);
                m.construct("W", &[Ty::Ref], |m| {
                    m.load(0);
                })
                .store(1);
                m.load(1).invokevirtual("start", &[], None);
                m.load(1).invokevirtual("join", &[], None);
                m.load(0).getfield("Cell", "v").const_i32(1).iadd().println_i32();
                m.ret();
            });
        });
        let r = run_program(&pb.build_with_stdlib());
        assert!(r.errors.is_empty(), "{:?}", r.errors);
        assert!(!r.deadlocked);
        assert_eq!(r.output, vec!["42"]);
    }

    #[test]
    fn wait_notify_producer_consumer() {
        // Consumer waits for flag; producer sets it and notifies.
        let mut pb = ProgramBuilder::new("M");
        pb.class("Box", "java.lang.Object", |cb| {
            cb.default_ctor("java.lang.Object");
            cb.field("full", Ty::I32);
            cb.synchronized_method("take", &[], Some(Ty::I32), |m| {
                let top = m.new_label();
                let out = m.new_label();
                m.bind(top);
                m.load(0).getfield("Box", "full").if_i(Cmp::Ne, out);
                m.load(0).invokevirtual("wait", &[], None);
                m.goto(top);
                m.bind(out).load(0).getfield("Box", "full").ret_val();
            });
            cb.synchronized_method("put", &[Ty::I32], None, |m| {
                m.load(0).load(1).putfield("Box", "full");
                m.load(0).invokevirtual("notifyAll", &[], None);
                m.ret();
            });
        });
        pb.class("Producer", "java.lang.Thread", |cb| {
            cb.field("box", Ty::Ref);
            cb.method("<init>", &[Ty::Ref], None, |m| {
                m.load(0)
                    .invokespecial("java.lang.Thread", "<init>", &[], None)
                    .load(0)
                    .load(1)
                    .putfield("Producer", "box")
                    .ret();
            });
            cb.method("run", &[], None, |m| {
                m.load(0)
                    .getfield("Producer", "box")
                    .const_i32(7)
                    .invokevirtual("put", &[Ty::I32], None)
                    .ret();
            });
        });
        pb.class("M", "java.lang.Object", |cb| {
            cb.static_method("main", &[], None, |m| {
                m.construct("Box", &[], |_| {}).store(0);
                m.construct("Producer", &[Ty::Ref], |m| {
                    m.load(0);
                })
                .invokevirtual("start", &[], None);
                m.load(0).invokevirtual("take", &[], Some(Ty::I32)).println_i32();
                m.ret();
            });
        });
        let r = run_program(&pb.build_with_stdlib());
        assert!(r.errors.is_empty(), "{:?}", r.errors);
        assert!(!r.deadlocked);
        assert_eq!(r.output, vec!["7"]);
    }

    #[test]
    fn deadlock_detected() {
        // main waits forever on an un-notified object.
        let mut pb = ProgramBuilder::new("M");
        pb.class("M", "java.lang.Object", |cb| {
            cb.static_method("main", &[], None, |m| {
                m.construct("java.lang.Object", &[], |_| {}).store(0);
                m.load(0).monitor_enter();
                m.load(0).invokevirtual("wait", &[], None);
                m.load(0).monitor_exit();
                m.ret();
            });
        });
        let r = run_program(&pb.build_with_stdlib());
        assert!(r.deadlocked);
    }

    #[test]
    fn vector_is_usable() {
        let r = {
            let mut pb = ProgramBuilder::new("M");
            pb.class("M", "java.lang.Object", |cb| {
                cb.static_method("main", &[], None, |m| {
                    m.construct("java.util.Vector", &[Ty::I32], |m| {
                        m.const_i32(1);
                    })
                    .store(0);
                    for s in ["a", "b", "c"] {
                        m.load(0).ldc_str(s).invokevirtual("addElement", &[Ty::Ref], None);
                    }
                    m.load(0).invokevirtual("size", &[], Some(Ty::I32)).println_i32();
                    m.load(0)
                        .invokevirtual("removeLast", &[], Some(Ty::Ref))
                        .println_str();
                    m.load(0)
                        .const_i32(0)
                        .invokevirtual("elementAt", &[Ty::I32], Some(Ty::Ref))
                        .println_str();
                    m.ret();
                });
            });
            run_program(&pb.build_with_stdlib())
        };
        assert!(r.errors.is_empty(), "{:?}", r.errors);
        assert_eq!(r.output, vec!["3", "c", "a"]);
    }

    #[test]
    fn div_by_zero_traps() {
        let r = run(|m| {
            m.const_i32(1).const_i32(0).idiv().println_i32().ret();
        });
        assert_eq!(r.errors.len(), 1);
        assert!(matches!(r.errors[0].1, VmError::DivByZero { .. }));
    }

    #[test]
    fn random_is_deterministic() {
        let gen = |seed: i64| {
            let mut pb = ProgramBuilder::new("M");
            pb.class("M", "java.lang.Object", |cb| {
                cb.static_method("main", &[], None, move |m| {
                    m.construct("java.util.Random", &[Ty::I64], |m| {
                        m.const_i64(seed);
                    })
                    .store(0);
                    for _ in 0..3 {
                        m.load(0)
                            .const_i32(100)
                            .invokevirtual("nextInt", &[Ty::I32], Some(Ty::I32))
                            .println_i32();
                    }
                    m.ret();
                });
            });
            run_program(&pb.build_with_stdlib()).output
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }
}
