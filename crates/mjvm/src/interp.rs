//! The resumable MJVM interpreter.
//!
//! One [`step`] call runs a thread for up to `fuel` instructions (a CPU
//! quantum in the discrete-event scheduler), charging virtual-time costs from
//! the node's [`CostModel`], until the thread blocks, finishes or exhausts
//! the quantum. All environment-dependent behaviour — monitors, DSM access
//! checks, thread spawning, I/O, time — is delegated to a [`VmEnv`], so the
//! identical interpreter executes the *original* program on the baseline VM
//! and the *rewritten* program inside the distributed JavaSplit runtime.
//!
//! Blocking discipline: instructions that may block come in two styles.
//!
//! * **retry** — access checks, `monitorenter` and friends return before any
//!   stack mutation; the thread suspends with `pc` still at the blocking
//!   instruction and simply re-executes it when woken (the fetch/acquire has
//!   completed by then). This matches how a real DSM read-miss handler
//!   blocks before the faulting access.
//! * **complete** — `wait`, `sleep` and similar natives finish their logical
//!   effect, the interpreter advances `pc`, and the thread resumes *after*
//!   the instruction.

use crate::cost::{CostModel, Rw};
use crate::heap::{Heap, ObjPayload, ObjRef, ThreadUid};
use crate::instr::{AccessKind, ElemTy, Instr};
use crate::intrinsics::{self, NativeOp};
use crate::loader::{Image, MethodId};
use crate::value::Value;

/// Runtime trap (MJVM has no exception handling; a trap kills the thread and
/// is surfaced in the run report — a documented substitution for Java
/// exceptions).
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    NullDeref { method: String, pc: usize },
    DivByZero { method: String, pc: usize },
    IndexOutOfBounds { len: usize, idx: i64 },
    NegativeArraySize(i64),
    StackUnderflow { method: String, pc: usize },
    IllegalMonitorState { op: &'static str },
    NoSuchMethod(String),
    Unquickened(String),
    TypeMismatch(String),
    VolatileStackEmpty,
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::NullDeref { method, pc } => write!(f, "null dereference in {method}@{pc}"),
            VmError::DivByZero { method, pc } => write!(f, "division by zero in {method}@{pc}"),
            VmError::IndexOutOfBounds { len, idx } => {
                write!(f, "array index {idx} out of bounds (len {len})")
            }
            VmError::NegativeArraySize(n) => write!(f, "negative array size {n}"),
            VmError::StackUnderflow { method, pc } => write!(f, "stack underflow in {method}@{pc}"),
            VmError::IllegalMonitorState { op } => write!(f, "illegal monitor state in {op}"),
            VmError::NoSuchMethod(m) => write!(f, "no such method: {m}"),
            VmError::Unquickened(i) => write!(f, "unquickened instruction at runtime: {i}"),
            VmError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            VmError::VolatileStackEmpty => write!(f, "volatile release without acquire"),
        }
    }
}

impl std::error::Error for VmError {}

/// One activation record.
#[derive(Debug, Clone)]
pub struct Frame {
    pub method: MethodId,
    pub pc: usize,
    pub locals: Vec<Value>,
    pub stack: Vec<Value>,
    /// For synchronized methods: whether the receiver monitor is held yet.
    pub entered_monitor: bool,
    /// Objects acquired by `DsmVolatileAcquire`, awaiting release.
    pub vol_stack: Vec<ObjRef>,
}

impl Frame {
    pub fn new(method: MethodId, max_locals: u16, args: Vec<Value>, synchronized: bool) -> Frame {
        let mut locals = args;
        locals.resize(max_locals as usize, Value::Null);
        Frame {
            method,
            pc: 0,
            locals,
            stack: Vec::with_capacity(8),
            entered_monitor: !synchronized,
            vol_stack: Vec::new(),
        }
    }
}

/// An application thread: a stack of frames plus scheduling metadata.
#[derive(Debug)]
pub struct Thread {
    pub uid: ThreadUid,
    pub frames: Vec<Frame>,
    /// The `java.lang.Thread` heap object representing this thread, if any
    /// (the initial `main` thread gets one lazily on `currentThread()`).
    pub thread_obj: Option<ObjRef>,
    /// Java thread priority (1..=10); the queue-passing lock protocol grants
    /// to the highest-priority requester (paper §3.2).
    pub priority: i32,
    /// Inline access cache (models the IBM JIT's repeated-access
    /// optimization); key packs kind/object/slot. Cleared by `DsmCheck*`.
    pub last_access: u64,
}

/// Sentinel for "no cached access".
pub const NO_ACCESS: u64 = u64::MAX;

impl Thread {
    pub fn new(uid: ThreadUid, root: Frame) -> Thread {
        Thread { uid, frames: vec![root], thread_obj: None, priority: 5, last_access: NO_ACCESS }
    }
}

#[inline]
pub(crate) fn access_key(kind: AccessKind, obj: u32, slot: u32) -> u64 {
    let k = match kind {
        AccessKind::Field => 0u64,
        AccessKind::Static => 1,
        AccessKind::Array => 2,
    };
    (k << 61) | ((obj as u64) << 29) | slot as u64
}

/// Result of a [`VmEnv::check_read`]/`check_write` access check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Copy valid — fall through to the access (Figure 3 fast path).
    Proceed,
    /// Read/write miss: the environment has issued a fetch and will wake the
    /// thread; re-execute the check on resume.
    Miss,
}

/// Result of a (possibly blocking) monitor acquire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonOutcome {
    /// Acquired; `cost` is the acquire's virtual-time price.
    Entered { cost: u64 },
    /// Thread is now queued; the environment will wake it as owner.
    Blocked { cost: u64 },
}

/// How a `step` call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepState {
    /// Quantum exhausted (or yielded); thread is still runnable.
    Running,
    /// Thread blocked; the environment is responsible for waking it.
    Blocked,
    /// Root frame returned — thread finished.
    Done,
}

/// Outcome of a quantum.
#[derive(Debug, Clone, Copy)]
pub struct StepOutcome {
    pub state: StepState,
    /// Virtual time consumed, in picoseconds.
    pub cost: u64,
    /// Instructions retired.
    pub ops: u64,
}

/// The environment a thread executes against. The baseline VM implements
/// this with classic in-heap monitors; the distributed runtime implements it
/// with the MTS-HLRC protocol engine.
#[allow(unused_variables)]
pub trait VmEnv {
    // ---- DSM access checks (rewritten code only) ----
    /// `idx` is the element index for array accesses (`None` for fields,
    /// statics and `arraylength`) — region-granular coherency (the paper's
    /// §4.3 extension) needs it to locate the accessed chunk.
    fn check_read(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef, kind: AccessKind, idx: Option<i32>) -> CheckOutcome {
        CheckOutcome::Proceed
    }
    fn check_write(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef, kind: AccessKind, idx: Option<i32>) -> CheckOutcome {
        CheckOutcome::Proceed
    }

    // ---- synchronization ----
    /// Original `monitorenter` semantics (baseline VM).
    fn monitor_enter(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> MonOutcome;
    /// Original `monitorexit`; returns its cost.
    fn monitor_exit(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> Result<u64, VmError>;
    /// Substituted (JavaSplit) acquire handler (rewritten code).
    fn dsm_monitor_enter(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> MonOutcome {
        self.monitor_enter(heap, t, obj)
    }
    fn dsm_monitor_exit(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> Result<u64, VmError> {
        self.monitor_exit(heap, t, obj)
    }
    /// `Object.wait()` — always blocks (complete-style); caller must own the
    /// monitor of `obj`.
    fn obj_wait(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> Result<u64, VmError>;
    /// `Object.notify()` / `notifyAll()`.
    fn obj_notify(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef, all: bool) -> Result<u64, VmError>;
    /// Volatile-access pseudo-acquire (paper §3). Defaults to plain acquire.
    fn volatile_acquire(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> MonOutcome {
        self.dsm_monitor_enter(heap, t, obj)
    }
    fn volatile_release(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> Result<u64, VmError> {
        self.dsm_monitor_exit(heap, t, obj)
    }

    // ---- threads ----
    /// `Thread.start()` (baseline, `via_dsm = false`) or the rewriter's
    /// `DsmSpawn` handler (ships the thread to a chosen node, `via_dsm =
    /// true`). Non-blocking; returns its cost.
    fn spawn(&mut self, heap: &mut Heap, t: &mut Thread, thread_obj: ObjRef, via_dsm: bool) -> Result<u64, VmError>;
    /// `Thread.sleep(ms)` — blocks (complete-style).
    fn sleep(&mut self, t: &mut Thread, millis: i64) -> u64;
    /// `Thread.yield()` — end the quantum; returns its cost.
    fn yield_now(&mut self, t: &mut Thread) -> u64 {
        0
    }
    /// The `java.lang.Thread` object for the running thread (creating one
    /// lazily for the primordial main thread).
    fn current_thread_obj(&mut self, heap: &mut Heap, t: &mut Thread) -> ObjRef;

    // ---- I/O & time ----
    fn println(&mut self, t: &Thread, line: &str);
    fn now_millis(&self) -> i64;
    fn file_open(&mut self, name: &str) -> i32 {
        -1
    }
    fn file_write_line(&mut self, fd: i32, line: &str) {}
    fn file_read_line(&mut self, fd: i32) -> Option<String> {
        None
    }
    fn file_close(&mut self, fd: i32) {}
}

/// Everything a quantum needs besides the thread itself.
pub struct StepCtx<'a, E: VmEnv> {
    pub image: &'a Image,
    pub heap: &'a mut Heap,
    pub env: &'a mut E,
    pub cost: &'a CostModel,
}

macro_rules! pop {
    ($frame:expr, $m:expr) => {
        match $frame.stack.pop() {
            Some(v) => v,
            None => {
                return Err(VmError::StackUnderflow { method: $m.sig.to_string(), pc: $frame.pc })
            }
        }
    };
}

/// Run `thread` for up to `fuel` instructions.
pub fn step<E: VmEnv>(thread: &mut Thread, ctx: &mut StepCtx<'_, E>, fuel: u32) -> Result<StepOutcome, VmError> {
    step_inner(thread, ctx, fuel, None)
}

/// [`step`], additionally counting every retired opcode (and consecutive
/// pair) into `stats` — the `repro opstats` profiler. The pair chain
/// resets at each quantum so the table is independent of scheduling.
pub fn step_with_stats<E: VmEnv>(
    thread: &mut Thread,
    ctx: &mut StepCtx<'_, E>,
    fuel: u32,
    stats: &mut crate::opstats::OpStats,
) -> Result<StepOutcome, VmError> {
    stats.reset_chain();
    step_inner(thread, ctx, fuel, Some(stats))
}

fn step_inner<E: VmEnv>(
    thread: &mut Thread,
    ctx: &mut StepCtx<'_, E>,
    fuel: u32,
    mut stats: Option<&mut crate::opstats::OpStats>,
) -> Result<StepOutcome, VmError> {
    let mut cost: u64 = 0;
    let mut ops: u64 = 0;
    let model = ctx.cost;

    'quantum: while ops < fuel as u64 {
        // --- synchronized-method entry protocol ---
        {
            let frame = match thread.frames.last_mut() {
                Some(f) => f,
                None => return Ok(StepOutcome { state: StepState::Done, cost, ops }),
            };
            if !frame.entered_monitor {
                let recv = frame.locals[0].as_ref();
                let (fm, fpc) = (frame.method, frame.pc);
                debug_assert_eq!(fpc, 0, "sync entry must happen before first instruction");
                let _ = fm;
                match ctx.env.monitor_enter(ctx.heap, thread, recv) {
                    MonOutcome::Entered { cost: c } => {
                        cost += c;
                        thread.frames.last_mut().unwrap().entered_monitor = true;
                    }
                    MonOutcome::Blocked { cost: c } => {
                        cost += c;
                        return Ok(StepOutcome { state: StepState::Blocked, cost, ops });
                    }
                }
            }
        }

        let frame_idx = thread.frames.len() - 1;
        let method_id = thread.frames[frame_idx].method;
        let method = ctx.image.method(method_id);
        let pc = thread.frames[frame_idx].pc;

        let Some(ins) = method.code.get(pc) else {
            // Fell off the end of a void method: treat as implicit return.
            if pop_frame(thread, ctx, None, &mut cost)? {
                return Ok(StepOutcome { state: StepState::Done, cost, ops });
            }
            continue 'quantum;
        };

        ops += 1;
        cost += model.static_cost(ins);
        if let Some(stats) = stats.as_deref_mut() {
            stats.retire(ins.mnemonic());
        }

        // The inline access cache is copied out of the thread before `frame`
        // mutably borrows it, and written back after the dispatch — arms that
        // return early either clear it explicitly or end the thread.
        let mut last_access = thread.last_access;
        let frame = &mut thread.frames[frame_idx];

        macro_rules! binop_i32 {
            ($f:expr) => {{
                let b = pop!(frame, method).as_i32();
                let a = pop!(frame, method).as_i32();
                frame.stack.push(Value::I32($f(a, b)));
                frame.pc += 1;
            }};
        }
        macro_rules! binop_i64 {
            ($f:expr) => {{
                let b = pop!(frame, method).as_i64();
                let a = pop!(frame, method).as_i64();
                frame.stack.push(Value::I64($f(a, b)));
                frame.pc += 1;
            }};
        }
        macro_rules! binop_f64 {
            ($f:expr) => {{
                let b = pop!(frame, method).as_f64();
                let a = pop!(frame, method).as_f64();
                frame.stack.push(Value::F64($f(a, b)));
                frame.pc += 1;
            }};
        }

        match ins {
            Instr::Const(v) => {
                frame.stack.push(*v);
                frame.pc += 1;
            }
            Instr::LdcStr(s) => {
                cost += model.alloc;
                let r = ctx.heap.intern_str(ctx.image.string_class, s);
                frame.stack.push(Value::Ref(r));
                frame.pc += 1;
            }
            Instr::Dup => {
                let v = *frame.stack.last().ok_or_else(|| VmError::StackUnderflow {
                    method: method.sig.to_string(),
                    pc,
                })?;
                frame.stack.push(v);
                frame.pc += 1;
            }
            Instr::DupX1 => {
                let b = pop!(frame, method);
                let a = pop!(frame, method);
                frame.stack.push(b);
                frame.stack.push(a);
                frame.stack.push(b);
                frame.pc += 1;
            }
            Instr::Pop => {
                pop!(frame, method);
                frame.pc += 1;
            }
            Instr::Swap => {
                let b = pop!(frame, method);
                let a = pop!(frame, method);
                frame.stack.push(b);
                frame.stack.push(a);
                frame.pc += 1;
            }
            Instr::Load(n) => {
                frame.stack.push(frame.locals[*n as usize]);
                frame.pc += 1;
            }
            Instr::Store(n) => {
                let v = pop!(frame, method);
                frame.locals[*n as usize] = v;
                frame.pc += 1;
            }
            Instr::IInc(n, d) => {
                let v = frame.locals[*n as usize].as_i32();
                frame.locals[*n as usize] = Value::I32(v.wrapping_add(*d));
                frame.pc += 1;
            }

            Instr::IAdd => binop_i32!(i32::wrapping_add),
            Instr::ISub => binop_i32!(i32::wrapping_sub),
            Instr::IMul => binop_i32!(i32::wrapping_mul),
            Instr::IDiv => {
                let b = pop!(frame, method).as_i32();
                let a = pop!(frame, method).as_i32();
                if b == 0 {
                    return Err(VmError::DivByZero { method: method.sig.to_string(), pc });
                }
                frame.stack.push(Value::I32(a.wrapping_div(b)));
                frame.pc += 1;
            }
            Instr::IRem => {
                let b = pop!(frame, method).as_i32();
                let a = pop!(frame, method).as_i32();
                if b == 0 {
                    return Err(VmError::DivByZero { method: method.sig.to_string(), pc });
                }
                frame.stack.push(Value::I32(a.wrapping_rem(b)));
                frame.pc += 1;
            }
            Instr::INeg => {
                let a = pop!(frame, method).as_i32();
                frame.stack.push(Value::I32(a.wrapping_neg()));
                frame.pc += 1;
            }
            Instr::IShl => binop_i32!(|a: i32, b: i32| a.wrapping_shl(b as u32 & 31)),
            Instr::IShr => binop_i32!(|a: i32, b: i32| a.wrapping_shr(b as u32 & 31)),
            Instr::IUShr => binop_i32!(|a: i32, b: i32| ((a as u32).wrapping_shr(b as u32 & 31)) as i32),
            Instr::IAnd => binop_i32!(|a, b| a & b),
            Instr::IOr => binop_i32!(|a, b| a | b),
            Instr::IXor => binop_i32!(|a, b| a ^ b),

            Instr::LAdd => binop_i64!(i64::wrapping_add),
            Instr::LSub => binop_i64!(i64::wrapping_sub),
            Instr::LMul => binop_i64!(i64::wrapping_mul),
            Instr::LDiv => {
                let b = pop!(frame, method).as_i64();
                let a = pop!(frame, method).as_i64();
                if b == 0 {
                    return Err(VmError::DivByZero { method: method.sig.to_string(), pc });
                }
                frame.stack.push(Value::I64(a.wrapping_div(b)));
                frame.pc += 1;
            }
            Instr::LRem => {
                let b = pop!(frame, method).as_i64();
                let a = pop!(frame, method).as_i64();
                if b == 0 {
                    return Err(VmError::DivByZero { method: method.sig.to_string(), pc });
                }
                frame.stack.push(Value::I64(a.wrapping_rem(b)));
                frame.pc += 1;
            }
            Instr::LNeg => {
                let a = pop!(frame, method).as_i64();
                frame.stack.push(Value::I64(a.wrapping_neg()));
                frame.pc += 1;
            }

            Instr::DAdd => binop_f64!(|a: f64, b: f64| a + b),
            Instr::DSub => binop_f64!(|a: f64, b: f64| a - b),
            Instr::DMul => binop_f64!(|a: f64, b: f64| a * b),
            Instr::DDiv => binop_f64!(|a: f64, b: f64| a / b),
            Instr::DRem => binop_f64!(|a: f64, b: f64| a % b),
            Instr::DNeg => {
                let a = pop!(frame, method).as_f64();
                frame.stack.push(Value::F64(-a));
                frame.pc += 1;
            }

            Instr::I2L => {
                let a = pop!(frame, method).as_i32();
                frame.stack.push(Value::I64(a as i64));
                frame.pc += 1;
            }
            Instr::I2D => {
                let a = pop!(frame, method).as_i32();
                frame.stack.push(Value::F64(a as f64));
                frame.pc += 1;
            }
            Instr::L2I => {
                let a = pop!(frame, method).as_i64();
                frame.stack.push(Value::I32(a as i32));
                frame.pc += 1;
            }
            Instr::L2D => {
                let a = pop!(frame, method).as_i64();
                frame.stack.push(Value::F64(a as f64));
                frame.pc += 1;
            }
            Instr::D2I => {
                let a = pop!(frame, method).as_f64();
                frame.stack.push(Value::I32(a as i32));
                frame.pc += 1;
            }
            Instr::D2L => {
                let a = pop!(frame, method).as_f64();
                frame.stack.push(Value::I64(a as i64));
                frame.pc += 1;
            }
            Instr::LCmp => {
                let b = pop!(frame, method).as_i64();
                let a = pop!(frame, method).as_i64();
                frame.stack.push(Value::I32((a.cmp(&b)) as i32));
                frame.pc += 1;
            }
            Instr::DCmp => {
                let b = pop!(frame, method).as_f64();
                let a = pop!(frame, method).as_f64();
                let c = if a > b {
                    1
                } else if a < b {
                    -1
                } else {
                    0 // NaN compares as 0 here (dcmpg/dcmpl distinction dropped)
                };
                frame.stack.push(Value::I32(c));
                frame.pc += 1;
            }

            Instr::Goto(t) => frame.pc = *t,
            Instr::IfICmp(c, t) => {
                let b = pop!(frame, method).as_i32();
                let a = pop!(frame, method).as_i32();
                frame.pc = if c.eval_i32(a, b) { *t } else { pc + 1 };
            }
            Instr::IfI(c, t) => {
                let a = pop!(frame, method).as_i32();
                frame.pc = if c.eval_i32(a, 0) { *t } else { pc + 1 };
            }
            Instr::IfNull(t) => {
                let v = pop!(frame, method);
                frame.pc = if v.is_null() { *t } else { pc + 1 };
            }
            Instr::IfNonNull(t) => {
                let v = pop!(frame, method);
                frame.pc = if v.is_null() { pc + 1 } else { *t };
            }
            Instr::IfACmpEq(t) => {
                let b = pop!(frame, method);
                let a = pop!(frame, method);
                frame.pc = if a == b { *t } else { pc + 1 };
            }
            Instr::IfACmpNe(t) => {
                let b = pop!(frame, method);
                let a = pop!(frame, method);
                frame.pc = if a == b { pc + 1 } else { *t };
            }

            Instr::NewQ(cid) => {
                let rc = ctx.image.class(*cid);
                let zeros = rc.zeroed_fields();
                cost += model.alloc + model.alloc_per_byte * (zeros.len() as u64 * 8);
                let r = ctx.heap.alloc_object(*cid, zeros.len(), zeros);
                frame.stack.push(Value::Ref(r));
                frame.pc += 1;
            }
            Instr::NewArray(elem) => {
                let len = pop!(frame, method).as_i32();
                if len < 0 {
                    return Err(VmError::NegativeArraySize(len as i64));
                }
                let cls = ctx.image.array_class(*elem);
                cost += model.alloc + model.alloc_per_byte * (len as u64 * 8);
                let r = ctx.heap.alloc_array(cls, *elem, len as usize);
                frame.stack.push(Value::Ref(r));
                frame.pc += 1;
            }
            Instr::ArrayLen => {
                let r = pop!(frame, method)
                    .as_opt_ref()
                    .ok_or_else(|| VmError::NullDeref { method: method.sig.to_string(), pc })?;
                let len = ctx.heap.get(r).payload.array_len().ok_or_else(|| {
                    VmError::TypeMismatch("arraylength on non-array".into())
                })?;
                frame.stack.push(Value::I32(len as i32));
                frame.pc += 1;
            }

            Instr::GetFieldQ { slot, kind_cost } => {
                let r = pop!(frame, method)
                    .as_opt_ref()
                    .ok_or_else(|| VmError::NullDeref { method: method.sig.to_string(), pc })?;
                let key = access_key(*kind_cost, r.0, *slot as u32);
                cost += model.access(*kind_cost, Rw::Read, cache_hit(&mut last_access, key));
                let v = match &ctx.heap.get(r).payload {
                    ObjPayload::Fields(fs) => fs[*slot as usize],
                    _ => return Err(VmError::TypeMismatch("getfield on non-object".into())),
                };
                frame.stack.push(v);
                frame.pc += 1;
            }
            Instr::PutFieldQ { slot, kind_cost } => {
                let v = pop!(frame, method);
                let r = pop!(frame, method)
                    .as_opt_ref()
                    .ok_or_else(|| VmError::NullDeref { method: method.sig.to_string(), pc })?;
                let key = access_key(*kind_cost, r.0, *slot as u32);
                cost += model.access(*kind_cost, Rw::Write, cache_hit(&mut last_access, key));
                match &mut ctx.heap.get_mut(r).payload {
                    ObjPayload::Fields(fs) => fs[*slot as usize] = v,
                    _ => return Err(VmError::TypeMismatch("putfield on non-object".into())),
                }
                frame.pc += 1;
            }
            Instr::GetStaticQ { class, slot, free } => {
                if !*free {
                    let key = access_key(AccessKind::Static, class.0, *slot as u32);
                    cost +=
                        model.access(AccessKind::Static, Rw::Read, cache_hit(&mut last_access, key));
                }
                frame.stack.push(ctx.heap.get_static(*class, *slot));
                frame.pc += 1;
            }
            Instr::PutStaticQ { class, slot } => {
                let v = pop!(frame, method);
                let key = access_key(AccessKind::Static, class.0, *slot as u32);
                cost += model.access(AccessKind::Static, Rw::Write, cache_hit(&mut last_access, key));
                ctx.heap.set_static(*class, *slot, v);
                frame.pc += 1;
            }

            Instr::ALoad(elem) => {
                let idx = pop!(frame, method).as_i32();
                let r = pop!(frame, method)
                    .as_opt_ref()
                    .ok_or_else(|| VmError::NullDeref { method: method.sig.to_string(), pc })?;
                let key = access_key(AccessKind::Array, r.0, idx as u32);
                cost += model.access(AccessKind::Array, Rw::Read, cache_hit(&mut last_access, key));
                let v = array_load(ctx.heap, r, idx, *elem)?;
                frame.stack.push(v);
                frame.pc += 1;
            }
            Instr::AStore(elem) => {
                let v = pop!(frame, method);
                let idx = pop!(frame, method).as_i32();
                let r = pop!(frame, method)
                    .as_opt_ref()
                    .ok_or_else(|| VmError::NullDeref { method: method.sig.to_string(), pc })?;
                let key = access_key(AccessKind::Array, r.0, idx as u32);
                cost += model.access(AccessKind::Array, Rw::Write, cache_hit(&mut last_access, key));
                array_store(ctx.heap, r, idx, v, *elem)?;
                frame.pc += 1;
            }

            // ---- DSM pseudo-instructions ----
            Instr::DsmCheckRead { depth, kind } | Instr::DsmCheckWrite { depth, kind } => {
                let is_write = matches!(ins, Instr::DsmCheckWrite { .. });
                let slot = frame.stack.len().checked_sub(1 + *depth as usize).ok_or_else(
                    || VmError::StackUnderflow { method: method.sig.to_string(), pc },
                )?;
                let Some(obj) = frame.stack[slot].as_opt_ref() else {
                    return Err(VmError::NullDeref { method: method.sig.to_string(), pc });
                };
                let rw = if is_write { Rw::Write } else { Rw::Read };
                cost += model.access_cost(*kind, rw).check();
                // Element index (just above the array ref) for array
                // accesses — region-granular checks need it.
                let idx = if matches!(kind, AccessKind::Array) && *depth >= 1 {
                    match frame.stack[slot + 1] {
                        Value::I32(i) => Some(i),
                        _ => None,
                    }
                } else {
                    None
                };
                // The check defeats the repeated-access optimization.
                last_access = NO_ACCESS;
                thread.last_access = NO_ACCESS;
                let t = &mut *thread;
                let outcome = if is_write {
                    ctx.env.check_write(ctx.heap, t, obj, *kind, idx)
                } else {
                    ctx.env.check_read(ctx.heap, t, obj, *kind, idx)
                };
                match outcome {
                    CheckOutcome::Proceed => thread.frames[frame_idx].pc += 1,
                    CheckOutcome::Miss => {
                        return Ok(StepOutcome { state: StepState::Blocked, cost, ops })
                    }
                }
            }

            Instr::MonitorEnter | Instr::DsmMonitorEnter => {
                let dsm = matches!(ins, Instr::DsmMonitorEnter);
                let Some(&top) = frame.stack.last() else {
                    return Err(VmError::StackUnderflow { method: method.sig.to_string(), pc });
                };
                let obj = top
                    .as_opt_ref()
                    .ok_or_else(|| VmError::NullDeref { method: method.sig.to_string(), pc })?;
                let out = if dsm {
                    ctx.env.dsm_monitor_enter(ctx.heap, thread, obj)
                } else {
                    ctx.env.monitor_enter(ctx.heap, thread, obj)
                };
                match out {
                    MonOutcome::Entered { cost: c } => {
                        cost += c;
                        let f = &mut thread.frames[frame_idx];
                        f.stack.pop();
                        f.pc += 1;
                    }
                    MonOutcome::Blocked { cost: c } => {
                        cost += c;
                        return Ok(StepOutcome { state: StepState::Blocked, cost, ops });
                    }
                }
            }
            Instr::MonitorExit | Instr::DsmMonitorExit => {
                let dsm = matches!(ins, Instr::DsmMonitorExit);
                let obj = pop!(frame, method)
                    .as_opt_ref()
                    .ok_or_else(|| VmError::NullDeref { method: method.sig.to_string(), pc })?;
                let c = if dsm {
                    ctx.env.dsm_monitor_exit(ctx.heap, thread, obj)?
                } else {
                    ctx.env.monitor_exit(ctx.heap, thread, obj)?
                };
                cost += c;
                thread.frames[frame_idx].pc += 1;
            }
            Instr::DsmVolatileAcquire { depth } => {
                let slot = frame.stack.len().checked_sub(1 + *depth as usize).ok_or_else(
                    || VmError::StackUnderflow { method: method.sig.to_string(), pc },
                )?;
                let obj = frame.stack[slot]
                    .as_opt_ref()
                    .ok_or_else(|| VmError::NullDeref { method: method.sig.to_string(), pc })?;
                match ctx.env.volatile_acquire(ctx.heap, thread, obj) {
                    MonOutcome::Entered { cost: c } => {
                        cost += c;
                        let f = &mut thread.frames[frame_idx];
                        f.vol_stack.push(obj);
                        f.pc += 1;
                    }
                    MonOutcome::Blocked { cost: c } => {
                        cost += c;
                        return Ok(StepOutcome { state: StepState::Blocked, cost, ops });
                    }
                }
            }
            Instr::DsmVolatileRelease => {
                let obj = frame.vol_stack.pop().ok_or(VmError::VolatileStackEmpty)?;
                cost += ctx.env.volatile_release(ctx.heap, thread, obj)?;
                thread.frames[frame_idx].pc += 1;
            }
            Instr::DsmSpawn => {
                let tobj = pop!(frame, method)
                    .as_opt_ref()
                    .ok_or_else(|| VmError::NullDeref { method: method.sig.to_string(), pc })?;
                frame.pc += 1;
                cost += ctx.env.spawn(ctx.heap, thread, tobj, true)?;
            }

            // ---- invocation ----
            Instr::InvokeStaticQ(mid) | Instr::InvokeSpecialQ(mid) => {
                let callee = ctx.image.method(*mid);
                let nargs = callee.sig.nargs() + if callee.is_static { 0 } else { 1 };
                cost += model.invoke + model.invoke_per_arg * nargs as u64;
                if frame.stack.len() < nargs {
                    return Err(VmError::StackUnderflow { method: method.sig.to_string(), pc });
                }
                let args: Vec<Value> = frame.stack.split_off(frame.stack.len() - nargs);
                frame.pc += 1;
                if let Some(native) = callee.native {
                    match run_native(native, args, thread, ctx, frame_idx, &mut cost)? {
                        NativeFlow::Continue => {}
                        NativeFlow::Block => {
                            return Ok(StepOutcome { state: StepState::Blocked, cost, ops })
                        }
                        NativeFlow::EndQuantum => {
                            return Ok(StepOutcome { state: StepState::Running, cost, ops })
                        }
                    }
                } else {
                    if !callee.is_static && args[0].is_null() {
                        return Err(VmError::NullDeref { method: callee.sig.to_string(), pc });
                    }
                    let f = Frame::new(*mid, callee.max_locals, args, callee.is_synchronized);
                    thread.frames.push(f);
                }
            }
            Instr::InvokeVirtualQ { sig, nargs, ret: _, site } => {
                let total = *nargs as usize + 1;
                if frame.stack.len() < total {
                    return Err(VmError::StackUnderflow { method: method.sig.to_string(), pc });
                }
                let recv_slot = frame.stack.len() - total;
                let recv = frame.stack[recv_slot]
                    .as_opt_ref()
                    .ok_or_else(|| VmError::NullDeref { method: method.sig.to_string(), pc })?;
                let cls = ctx.heap.get(recv).class;
                let mid = ctx.image.dispatch_cached(*site, cls, *sig).ok_or_else(|| {
                    VmError::NoSuchMethod(format!(
                        "{}.{}",
                        ctx.image.class(cls).name,
                        ctx.image.sigs[sig.0 as usize]
                    ))
                })?;
                let callee = ctx.image.method(mid);
                cost += model.invoke + model.invoke_per_arg * total as u64;
                let args: Vec<Value> = frame.stack.split_off(recv_slot);
                frame.pc += 1;
                if let Some(native) = callee.native {
                    match run_native(native, args, thread, ctx, frame_idx, &mut cost)? {
                        NativeFlow::Continue => {}
                        NativeFlow::Block => {
                            return Ok(StepOutcome { state: StepState::Blocked, cost, ops })
                        }
                        NativeFlow::EndQuantum => {
                            return Ok(StepOutcome { state: StepState::Running, cost, ops })
                        }
                    }
                } else {
                    let f = Frame::new(mid, callee.max_locals, args, callee.is_synchronized);
                    thread.frames.push(f);
                }
            }

            Instr::Return => {
                if pop_frame(thread, ctx, None, &mut cost)? {
                    return Ok(StepOutcome { state: StepState::Done, cost, ops });
                }
            }
            Instr::ReturnVal => {
                let v = pop!(frame, method);
                if pop_frame(thread, ctx, Some(v), &mut cost)? {
                    return Ok(StepOutcome { state: StepState::Done, cost, ops });
                }
            }

            Instr::Nop => frame.pc += 1,

            // Symbolic instructions must have been quickened at load time.
            sym @ (Instr::New(_)
            | Instr::GetField(..)
            | Instr::PutField(..)
            | Instr::GetStatic(..)
            | Instr::PutStatic(..)
            | Instr::InvokeStatic(..)
            | Instr::InvokeVirtual(_)
            | Instr::InvokeSpecial(..)) => {
                return Err(VmError::Unquickened(format!("{sym:?}")));
            }
        }

        thread.last_access = last_access;
    }

    Ok(StepOutcome { state: StepState::Running, cost, ops })
}

/// Update the per-thread inline access cache and report whether the access
/// repeats the previous one (the IBM profile's cheap path).
#[inline]
pub(crate) fn cache_hit(last: &mut u64, key: u64) -> bool {
    let hit = *last == key;
    *last = key;
    hit
}

pub(crate) enum NativeFlow {
    Continue,
    Block,
    EndQuantum,
}

/// Execute a native method. Args include the receiver for instance natives.
pub(crate) fn run_native<E: VmEnv>(
    op: NativeOp,
    args: Vec<Value>,
    thread: &mut Thread,
    ctx: &mut StepCtx<'_, E>,
    caller_idx: usize,
    cost: &mut u64,
) -> Result<NativeFlow, VmError> {
    use NativeOp::*;
    let model = ctx.cost;
    match op {
        // ---- pure intrinsics ----
        MathSqrt | MathSin | MathCos | MathTan | MathAtan | MathPow | MathExp | MathLog
        | MathAbsD | MathAbsI | MathFloor | MathCeil | MathMinI | MathMaxI | HashCode | RefEq
        | ArrayCopy | StrLen | StrCharAt | StrConcat | StrFromI32 | StrFromI64 | StrFromF64
        | StrEquals => {
            let (ret, c) = intrinsics::exec_pure(op, &args, ctx.heap, ctx.image, model)?;
            *cost += c;
            if let Some(v) = ret {
                thread.frames[caller_idx].stack.push(v);
            }
            Ok(NativeFlow::Continue)
        }

        // ---- env-routed ----
        PrintlnStr => {
            *cost += model.println;
            let line = match args[0].as_opt_ref() {
                Some(r) => ctx.heap.str_of(r).to_string(),
                None => "null".to_string(),
            };
            ctx.env.println(thread, &line);
            Ok(NativeFlow::Continue)
        }
        PrintlnI32 => {
            *cost += model.println;
            ctx.env.println(thread, &args[0].as_i32().to_string());
            Ok(NativeFlow::Continue)
        }
        PrintlnI64 => {
            *cost += model.println;
            ctx.env.println(thread, &args[0].as_i64().to_string());
            Ok(NativeFlow::Continue)
        }
        PrintlnF64 => {
            *cost += model.println;
            ctx.env.println(thread, &format!("{:?}", args[0].as_f64()));
            Ok(NativeFlow::Continue)
        }
        CurrentTimeMillis => {
            *cost += model.math_op;
            let v = ctx.env.now_millis();
            thread.frames[caller_idx].stack.push(Value::I64(v));
            Ok(NativeFlow::Continue)
        }
        ThreadStart => {
            let tobj = args[0]
                .as_opt_ref()
                .ok_or_else(|| VmError::NullDeref { method: "Thread.start".into(), pc: 0 })?;
            *cost += ctx.env.spawn(ctx.heap, thread, tobj, false)?;
            Ok(NativeFlow::Continue)
        }
        ThreadSleep => {
            *cost += ctx.env.sleep(thread, args[0].as_i64());
            Ok(NativeFlow::Block)
        }
        ThreadCurrent => {
            let r = ctx.env.current_thread_obj(ctx.heap, thread);
            thread.frames[caller_idx].stack.push(Value::Ref(r));
            Ok(NativeFlow::Continue)
        }
        ThreadYield => {
            *cost += ctx.env.yield_now(thread);
            Ok(NativeFlow::EndQuantum)
        }
        ObjWait => {
            let obj = args[0]
                .as_opt_ref()
                .ok_or_else(|| VmError::NullDeref { method: "Object.wait".into(), pc: 0 })?;
            *cost += ctx.env.obj_wait(ctx.heap, thread, obj)?;
            Ok(NativeFlow::Block)
        }
        ObjNotify | ObjNotifyAll => {
            let obj = args[0]
                .as_opt_ref()
                .ok_or_else(|| VmError::NullDeref { method: "Object.notify".into(), pc: 0 })?;
            *cost += ctx.env.obj_notify(ctx.heap, thread, obj, matches!(op, ObjNotifyAll))?;
            Ok(NativeFlow::Continue)
        }
        FileOpen => {
            let name = ctx.heap.str_of(args[0].as_ref()).to_string();
            let fd = ctx.env.file_open(&name);
            thread.frames[caller_idx].stack.push(Value::I32(fd));
            Ok(NativeFlow::Continue)
        }
        FileWriteLine => {
            let fd = args[0].as_i32();
            let line = ctx.heap.str_of(args[1].as_ref()).to_string();
            *cost += model.println;
            ctx.env.file_write_line(fd, &line);
            Ok(NativeFlow::Continue)
        }
        FileReadLine => {
            let fd = args[0].as_i32();
            *cost += model.println;
            let v = match ctx.env.file_read_line(fd) {
                Some(s) => {
                    let r = ctx.heap.alloc_str(ctx.image.string_class, s.into());
                    Value::Ref(r)
                }
                None => Value::Null,
            };
            thread.frames[caller_idx].stack.push(v);
            Ok(NativeFlow::Continue)
        }
        FileClose => {
            ctx.env.file_close(args[0].as_i32());
            Ok(NativeFlow::Continue)
        }
    }
}

/// Pop the top frame: run the synchronized-method exit protocol, propagate
/// the return value, and report whether the thread is finished.
pub(crate) fn pop_frame<E: VmEnv>(
    thread: &mut Thread,
    ctx: &mut StepCtx<'_, E>,
    ret: Option<Value>,
    cost: &mut u64,
) -> Result<bool, VmError> {
    let frame = thread.frames.last().unwrap();
    let mid = frame.method;
    let entered = frame.entered_monitor;
    let method = ctx.image.method(mid);
    if method.is_synchronized && entered {
        let recv = thread.frames.last().unwrap().locals[0].as_ref();
        let c = ctx.env.monitor_exit(ctx.heap, thread, recv)?;
        *cost += c;
    }
    thread.frames.pop();
    match thread.frames.last_mut() {
        Some(caller) => {
            if let Some(v) = ret {
                caller.stack.push(v);
            }
            Ok(false)
        }
        None => Ok(true),
    }
}

pub(crate) fn array_load(heap: &Heap, r: ObjRef, idx: i32, elem: ElemTy) -> Result<Value, VmError> {
    let obj = heap.get(r);
    let len = obj.payload.array_len().ok_or_else(|| VmError::TypeMismatch("aload on non-array".into()))?;
    if idx < 0 || idx as usize >= len {
        return Err(VmError::IndexOutOfBounds { len, idx: idx as i64 });
    }
    let i = idx as usize;
    Ok(match (&obj.payload, elem) {
        (ObjPayload::ArrI32(v), ElemTy::I32) => Value::I32(v[i]),
        (ObjPayload::ArrI64(v), ElemTy::I64) => Value::I64(v[i]),
        (ObjPayload::ArrF64(v), ElemTy::F64) => Value::F64(v[i]),
        (ObjPayload::ArrRef(v), ElemTy::Ref) => v[i],
        _ => return Err(VmError::TypeMismatch("array element type".into())),
    })
}

pub(crate) fn array_store(heap: &mut Heap, r: ObjRef, idx: i32, v: Value, elem: ElemTy) -> Result<(), VmError> {
    let obj = heap.get_mut(r);
    let len = obj.payload.array_len().ok_or_else(|| VmError::TypeMismatch("astore on non-array".into()))?;
    if idx < 0 || idx as usize >= len {
        return Err(VmError::IndexOutOfBounds { len, idx: idx as i64 });
    }
    let i = idx as usize;
    match (&mut obj.payload, elem) {
        (ObjPayload::ArrI32(a), ElemTy::I32) => a[i] = v.as_i32(),
        (ObjPayload::ArrI64(a), ElemTy::I64) => a[i] = v.as_i64(),
        (ObjPayload::ArrF64(a), ElemTy::F64) => a[i] = v.as_f64(),
        (ObjPayload::ArrRef(a), ElemTy::Ref) => a[i] = v,
        _ => return Err(VmError::TypeMismatch("array element type".into())),
    }
    Ok(())
}
