//! Disassembler: renders classes and methods in a readable assembly format.
//!
//! Used by debugging sessions and by the rewriter's golden tests, which
//! snapshot the disassembly of instrumented classes to pin the transformation
//! (the analogue of the paper's Figure 2/Figure 3 listings).

use crate::class::{ClassFile, MethodDef, Program};
use crate::instr::Instr;
use std::fmt::Write;

/// Disassemble one instruction.
pub fn fmt_instr(ins: &Instr) -> String {
    use Instr::*;
    match ins {
        Const(v) => format!("const {v:?}"),
        LdcStr(s) => format!("ldc \"{s}\""),
        Dup => "dup".into(),
        DupX1 => "dup_x1".into(),
        Pop => "pop".into(),
        Swap => "swap".into(),
        Load(n) => format!("load {n}"),
        Store(n) => format!("store {n}"),
        IInc(n, d) => format!("iinc {n} {d:+}"),
        Goto(t) => format!("goto -> {t}"),
        IfICmp(c, t) => format!("if_icmp{c:?} -> {t}").to_lowercase(),
        IfI(c, t) => format!("if{c:?} -> {t}").to_lowercase(),
        IfNull(t) => format!("ifnull -> {t}"),
        IfNonNull(t) => format!("ifnonnull -> {t}"),
        IfACmpEq(t) => format!("if_acmpeq -> {t}"),
        IfACmpNe(t) => format!("if_acmpne -> {t}"),
        New(c) => format!("new {c}"),
        GetField(c, f) => format!("getfield {c}.{f}"),
        PutField(c, f) => format!("putfield {c}.{f}"),
        GetStatic(c, f) => format!("getstatic {c}.{f}"),
        PutStatic(c, f) => format!("putstatic {c}.{f}"),
        NewArray(e) => format!("newarray {e:?}").to_lowercase(),
        ALoad(e) => format!("aload {e:?}").to_lowercase(),
        AStore(e) => format!("astore {e:?}").to_lowercase(),
        ArrayLen => "arraylength".into(),
        InvokeStatic(c, s) => format!("invokestatic {c}.{s}"),
        InvokeVirtual(s) => format!("invokevirtual {s}"),
        InvokeSpecial(c, s) => format!("invokespecial {c}.{s}"),
        Return => "return".into(),
        ReturnVal => "returnval".into(),
        MonitorEnter => "monitorenter".into(),
        MonitorExit => "monitorexit".into(),
        Nop => "nop".into(),
        DsmCheckRead { depth, kind } => format!("dsm_check_read depth={depth} kind={kind:?}").to_lowercase(),
        DsmCheckWrite { depth, kind } => format!("dsm_check_write depth={depth} kind={kind:?}").to_lowercase(),
        DsmMonitorEnter => "dsm_monitorenter".into(),
        DsmMonitorExit => "dsm_monitorexit".into(),
        DsmSpawn => "dsm_spawn".into(),
        DsmVolatileAcquire { depth } => format!("dsm_vol_acquire depth={depth}"),
        DsmVolatileRelease => "dsm_vol_release".into(),
        GetFieldQ { slot, .. } => format!("getfield_q #{slot}"),
        PutFieldQ { slot, .. } => format!("putfield_q #{slot}"),
        GetStaticQ { class, slot, .. } => format!("getstatic_q {}#{slot}", class.0),
        PutStaticQ { class, slot } => format!("putstatic_q {}#{slot}", class.0),
        NewQ(c) => format!("new_q {}", c.0),
        InvokeStaticQ(m) => format!("invokestatic_q {}", m.0),
        InvokeSpecialQ(m) => format!("invokespecial_q {}", m.0),
        InvokeVirtualQ { sig, nargs, ret, site } => {
            format!("invokevirtual_q sig={} nargs={nargs} ret={ret} site={site}", sig.0)
        }
        // Arithmetic / conversion / comparison opcodes print as their
        // lower-cased variant names (iadd, lcmp, i2d, …).
        other => format!("{other:?}").to_lowercase(),
    }
}

/// Disassemble one method.
pub fn fmt_method(m: &MethodDef) -> String {
    let mut out = String::new();
    let mut flags = Vec::new();
    if m.is_static {
        flags.push("static");
    }
    if m.is_synchronized {
        flags.push("synchronized");
    }
    if m.is_native {
        flags.push("native");
    }
    let _ = writeln!(out, "  {} {} [locals={}]", flags.join(" "), m.sig, m.max_locals);
    for (pc, ins) in m.code.iter().enumerate() {
        let _ = writeln!(out, "    {pc:4}: {}", fmt_instr(ins));
    }
    out
}

/// Disassemble one class.
pub fn fmt_class(c: &ClassFile) -> String {
    let mut out = String::new();
    let sup = c.super_name.as_deref().unwrap_or("<root>");
    let boot = if c.is_bootstrap { " (bootstrap)" } else { "" };
    let _ = writeln!(out, "class {} extends {}{}", c.name, sup, boot);
    for f in &c.fields {
        let mut flags = Vec::new();
        if f.is_static {
            flags.push("static");
        }
        if f.is_volatile {
            flags.push("volatile");
        }
        let _ = writeln!(out, "  field {} {} : {:?}", flags.join(" "), f.name, f.ty);
    }
    for m in &c.methods {
        out.push_str(&fmt_method(m));
    }
    out
}

/// Disassemble a whole program (classes sorted by name for stable output).
pub fn fmt_program(p: &Program) -> String {
    let mut classes: Vec<&ClassFile> = p.classes.iter().collect();
    classes.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = String::new();
    for c in classes {
        out.push_str(&fmt_class(c));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::Ty;

    #[test]
    fn disassembly_is_stable_and_complete() {
        let mut pb = ProgramBuilder::new("M");
        pb.class("M", "java.lang.Object", |cb| {
            cb.field("x", Ty::I32);
            cb.static_method("main", &[], None, |m| {
                m.ldc_str("hi").println_str().ret();
            });
        });
        let p = pb.build();
        let text = fmt_program(&p);
        assert!(text.contains("class M extends java.lang.Object"));
        assert!(text.contains("ldc \"hi\""));
        assert!(text.contains("invokestatic java.lang.System.println(L)V"));
        assert_eq!(text, fmt_program(&p), "deterministic output");
    }

    #[test]
    fn every_instruction_formats() {
        // Smoke-format one of each tricky variant.
        use crate::instr::{AccessKind, Instr};
        for i in [
            Instr::DsmCheckRead { depth: 1, kind: AccessKind::Array },
            Instr::DsmSpawn,
            Instr::DsmVolatileRelease,
            Instr::GetFieldQ { slot: 3, kind_cost: AccessKind::Field },
        ] {
            assert!(!fmt_instr(&i).is_empty());
        }
    }
}
