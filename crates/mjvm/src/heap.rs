//! The object heap: objects, arrays, strings, monitors and the DSM header.
//!
//! Every heap object carries a [`DsmHeader`] — the in-object mirror of the
//! fields the JavaSplit rewriter injects at the top of each instrumented
//! class hierarchy (`__javasplit__state`, `__javasplit__version`,
//! `__javasplit__locking_status`, `__javasplit__global_id`; paper Figure 2).
//! Keeping the DSM state inside the object gives the same two properties the
//! paper claims for the field-injection approach: O(1) retrieval on the
//! access-check fast path, and state that dies with the object.
//!
//! Arrays are first-class heap objects here, so they natively carry a DSM
//! header. The paper needs wrapper classes for this (§4.3) because JVM arrays
//! cannot gain fields; our substrate gives the wrapper's effect directly —
//! the deviation is recorded in DESIGN.md.

use crate::instr::ElemTy;
use crate::loader::ClassId;
use crate::value::Value;
use std::collections::VecDeque;
use std::sync::Arc;

/// Node-local object reference (a heap index, like a compressed oop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjRef(pub u32);

/// Globally unique object id, assigned when an object becomes *shared*
/// (paper §2: "the object receives a globally unique id (64-bit long)").
/// Layout: home node id in the top 24 bits, per-node counter below.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gid(pub u64);

impl Gid {
    pub fn new(home: u16, counter: u64) -> Gid {
        debug_assert!(counter < (1 << 40));
        Gid(((home as u64) << 40) | counter)
    }

    /// The node that manages this object's master copy (paper §3: "each
    /// object has a node called its home").
    pub fn home(self) -> u16 {
        (self.0 >> 40) as u16
    }

    pub fn counter(self) -> u64 {
        self.0 & ((1 << 40) - 1)
    }
}

/// Globally unique application-thread id.
pub type ThreadUid = u32;

/// DSM coherency state of an object (the `__javasplit__state` byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DsmState {
    /// Not registered with the DSM: accessible by a single thread so far
    /// (paper §2: "a newly created object is always local").
    Local,
    /// Shared and the cached/master copy is valid for read and write.
    Valid,
    /// Shared but invalidated by a write notice; any access must fetch a
    /// fresh copy from home first.
    Invalid,
}

/// The injected DSM fields (paper Figure 2).
#[derive(Debug, Clone)]
pub struct DsmHeader {
    pub state: DsmState,
    /// Scalar version timestamp of this copy (§3.1: scalar timestamps).
    pub version: u32,
    /// Global id; `Some` iff the object is shared.
    pub gid: Option<Gid>,
    /// Local-lock fast path (§4.4): owner and re-entrance counter. Cheaper
    /// than a JVM `monitorenter` because no queueing machinery is touched.
    pub lock_owner: Option<ThreadUid>,
    pub lock_count: u32,
    /// Set once a twin has been made in the current interval (multiple-writer
    /// support; cleared when diffs are flushed at a release).
    pub twinned: bool,
}

impl Default for DsmHeader {
    fn default() -> Self {
        DsmHeader {
            state: DsmState::Local,
            version: 0,
            gid: None,
            lock_owner: None,
            lock_count: 0,
            twinned: false,
        }
    }
}

impl DsmHeader {
    /// `true` once the object is registered with the DSM.
    pub fn is_shared(&self) -> bool {
        self.gid.is_some()
    }
}

/// A classic JVM object monitor, used by the baseline (non-distributed) VM.
/// The distributed runtime never touches this; it substitutes its own
/// queue-passing lock protocol (paper §3.2).
#[derive(Debug, Default, Clone)]
pub struct Monitor {
    pub owner: Option<ThreadUid>,
    pub count: u32,
    /// Threads blocked on `monitorenter` or resuming from `wait()`. The
    /// second element is the re-entry count to restore: 0 marks a
    /// retry-style enterer (it re-executes `monitorenter` itself), >0 marks
    /// a `wait()` resumer granted ownership directly with its saved count.
    pub entry_q: VecDeque<(ThreadUid, u32)>,
    /// Threads parked in `wait()` with their saved re-entry counts.
    pub wait_q: VecDeque<(ThreadUid, u32)>,
}

/// Object contents.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjPayload {
    /// Instance fields, flattened: superclass fields first (loader layout).
    Fields(Vec<Value>),
    ArrI32(Vec<i32>),
    ArrI64(Vec<i64>),
    ArrF64(Vec<f64>),
    /// Reference array; elements are `Value::Ref` or `Value::Null`.
    ArrRef(Vec<Value>),
    /// Immutable string payload (`java.lang.String`).
    Str(Arc<str>),
}

impl ObjPayload {
    pub fn array_len(&self) -> Option<usize> {
        match self {
            ObjPayload::ArrI32(v) => Some(v.len()),
            ObjPayload::ArrI64(v) => Some(v.len()),
            ObjPayload::ArrF64(v) => Some(v.len()),
            ObjPayload::ArrRef(v) => Some(v.len()),
            _ => None,
        }
    }

    /// Approximate serialized size in bytes — drives simulated message sizes.
    pub fn byte_size(&self) -> usize {
        match self {
            ObjPayload::Fields(v) => v.len() * 8,
            ObjPayload::ArrI32(v) => v.len() * 4,
            ObjPayload::ArrI64(v) => v.len() * 8,
            ObjPayload::ArrF64(v) => v.len() * 8,
            ObjPayload::ArrRef(v) => v.len() * 8,
            ObjPayload::Str(s) => s.len(),
        }
    }
}

/// A heap object.
#[derive(Debug, Clone)]
pub struct Obj {
    pub class: ClassId,
    pub payload: ObjPayload,
    pub dsm: DsmHeader,
    /// Baseline-VM monitor, allocated lazily on first contention-relevant op.
    pub monitor: Option<Box<Monitor>>,
}

impl Obj {
    pub fn monitor_mut(&mut self) -> &mut Monitor {
        self.monitor.get_or_insert_with(Default::default)
    }
}

/// Allocation statistics, mirrored into run reports.
#[derive(Debug, Default, Clone, Copy)]
pub struct HeapStats {
    pub objects: u64,
    pub arrays: u64,
    pub strings: u64,
}

/// A node-local heap. No GC is implemented (objects live for the run): the
/// paper delegates collection to the unmodified local JVM, which has no
/// analogue here, and the benchmark working sets are bounded.
///
/// The heap also owns the node's static-field storage (one `Vec<Value>` per
/// class) and the string-literal intern table, since both are per-node
/// mutable state alongside the objects.
#[derive(Debug, Default)]
pub struct Heap {
    objs: Vec<Obj>,
    /// Static storage per class, indexed by `ClassId`. Initialised by
    /// [`Heap::init_statics`].
    statics: Vec<Vec<Value>>,
    interned: std::collections::HashMap<Arc<str>, ObjRef>,
    pub stats: HeapStats,
}

impl Heap {
    pub fn new() -> Self {
        Heap::default()
    }

    /// Allocate zeroed static areas for every class in the image.
    pub fn init_statics(&mut self, image: &crate::loader::Image) {
        self.statics = image.classes.iter().map(|c| c.zeroed_statics()).collect();
    }

    #[inline]
    pub fn get_static(&self, class: ClassId, slot: u16) -> Value {
        self.statics[class.0 as usize][slot as usize]
    }

    #[inline]
    pub fn set_static(&mut self, class: ClassId, slot: u16, v: Value) {
        self.statics[class.0 as usize][slot as usize] = v;
    }

    /// Intern a string literal (one object per distinct literal per node,
    /// like the JVM constant-pool string cache).
    pub fn intern_str(&mut self, class: ClassId, s: &Arc<str>) -> ObjRef {
        if let Some(&r) = self.interned.get(s) {
            return r;
        }
        let r = self.alloc_str(class, s.clone());
        self.interned.insert(s.clone(), r);
        r
    }

    pub fn len(&self) -> usize {
        self.objs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.objs.is_empty()
    }

    fn push(&mut self, obj: Obj) -> ObjRef {
        let r = ObjRef(self.objs.len() as u32);
        self.objs.push(obj);
        r
    }

    /// Allocate a plain object with zeroed fields.
    pub fn alloc_object(&mut self, class: ClassId, nfields: usize, zeros: Vec<Value>) -> ObjRef {
        debug_assert_eq!(nfields, zeros.len());
        self.stats.objects += 1;
        self.push(Obj {
            class,
            payload: ObjPayload::Fields(zeros),
            dsm: DsmHeader::default(),
            monitor: None,
        })
    }

    /// Allocate an array of `len` zeroed elements.
    pub fn alloc_array(&mut self, class: ClassId, elem: ElemTy, len: usize) -> ObjRef {
        self.stats.arrays += 1;
        let payload = match elem {
            ElemTy::I32 => ObjPayload::ArrI32(vec![0; len]),
            ElemTy::I64 => ObjPayload::ArrI64(vec![0; len]),
            ElemTy::F64 => ObjPayload::ArrF64(vec![0.0; len]),
            ElemTy::Ref => ObjPayload::ArrRef(vec![Value::Null; len]),
        };
        self.push(Obj { class, payload, dsm: DsmHeader::default(), monitor: None })
    }

    /// Allocate a string object.
    pub fn alloc_str(&mut self, class: ClassId, s: Arc<str>) -> ObjRef {
        self.stats.strings += 1;
        self.push(Obj {
            class,
            payload: ObjPayload::Str(s),
            dsm: DsmHeader::default(),
            monitor: None,
        })
    }

    #[inline]
    pub fn get(&self, r: ObjRef) -> &Obj {
        &self.objs[r.0 as usize]
    }

    #[inline]
    pub fn get_mut(&mut self, r: ObjRef) -> &mut Obj {
        &mut self.objs[r.0 as usize]
    }

    /// Read the string payload of a `java.lang.String` object.
    pub fn str_of(&self, r: ObjRef) -> &Arc<str> {
        match &self.get(r).payload {
            ObjPayload::Str(s) => s,
            other => panic!("expected string payload, found {other:?}"),
        }
    }

    /// Iterate over all objects (used by tests and DSM bookkeeping).
    pub fn iter(&self) -> impl Iterator<Item = (ObjRef, &Obj)> {
        self.objs.iter().enumerate().map(|(i, o)| (ObjRef(i as u32), o))
    }

    /// Clear the local-lock fast-path counter of every object still owned by
    /// `thread`. A thread that dies abnormally (a `VmError` trap) cannot
    /// unwind its `monitorexit`s, so the runtime drops its monitors here —
    /// otherwise a sibling blocked on one of them deadlocks.
    pub fn release_local_locks_of(&mut self, thread: ThreadUid) {
        for o in &mut self.objs {
            if o.dsm.lock_owner == Some(thread) {
                o.dsm.lock_owner = None;
                o.dsm.lock_count = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gid_packing() {
        let g = Gid::new(7, 123_456);
        assert_eq!(g.home(), 7);
        assert_eq!(g.counter(), 123_456);
        let g2 = Gid::new(0xFFFF, (1 << 40) - 1);
        assert_eq!(g2.home(), 0xFFFF);
        assert_eq!(g2.counter(), (1 << 40) - 1);
    }

    #[test]
    fn alloc_and_access() {
        let mut h = Heap::new();
        let o = h.alloc_object(ClassId(0), 2, vec![Value::I32(0), Value::Null]);
        let a = h.alloc_array(ClassId(1), ElemTy::F64, 4);
        let s = h.alloc_str(ClassId(2), "hi".into());
        assert_eq!(h.len(), 3);
        assert_eq!(h.get(o).payload, ObjPayload::Fields(vec![Value::I32(0), Value::Null]));
        assert_eq!(h.get(a).payload.array_len(), Some(4));
        assert_eq!(&**h.str_of(s), "hi");
        assert_eq!(h.stats.objects, 1);
        assert_eq!(h.stats.arrays, 1);
        assert_eq!(h.stats.strings, 1);
    }

    #[test]
    fn new_objects_are_local() {
        let mut h = Heap::new();
        let o = h.alloc_object(ClassId(0), 0, vec![]);
        let hdr = &h.get(o).dsm;
        assert_eq!(hdr.state, DsmState::Local);
        assert!(!hdr.is_shared());
        assert_eq!(hdr.version, 0);
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(ObjPayload::ArrI32(vec![0; 3]).byte_size(), 12);
        assert_eq!(ObjPayload::Fields(vec![Value::Null; 2]).byte_size(), 16);
        assert_eq!(ObjPayload::Str("abcd".into()).byte_size(), 4);
    }

    #[test]
    fn monitor_lazy_alloc() {
        let mut h = Heap::new();
        let o = h.alloc_object(ClassId(0), 0, vec![]);
        assert!(h.get(o).monitor.is_none());
        h.get_mut(o).monitor_mut().count = 1;
        assert_eq!(h.get(o).monitor.as_ref().unwrap().count, 1);
    }
}
