//! # MJVM — a miniature JVM-flavoured virtual machine
//!
//! This crate is the *substrate* of the JavaSplit reproduction: a from-scratch
//! stack-based virtual machine whose design deliberately mirrors the parts of
//! the Java Virtual Machine that the JavaSplit paper's bytecode rewriter
//! manipulates:
//!
//! * a class-file model with inheritance, instance/static/volatile fields,
//!   and virtual/static/special method dispatch ([`class`], [`loader`]);
//! * a JVM-flavoured instruction set including `getfield`/`putfield`,
//!   `getstatic`/`putstatic`, typed array accesses, `monitorenter`/
//!   `monitorexit` and synchronized methods ([`instr`]);
//! * an assembler/builder API used to author programs ([`builder`]),
//!   a structural verifier ([`verifier`]) and a disassembler ([`disasm`]);
//! * a resumable, instrumentation-aware interpreter ([`interp`]) that is
//!   parameterised over a [`interp::VmEnv`] so the very same interpreter runs
//!   both the "original JVM" baseline and the distributed JavaSplit runtime;
//! * a virtual-time cost model with two "JVM brand" profiles calibrated from
//!   the paper's Tables 1–3 ([`cost`]);
//! * a bootstrap library: intrinsic ("native") classes plus bootstrap classes
//!   written in MJVM bytecode ([`intrinsics`], [`stdlib`]);
//! * a deterministic single-node VM for correctness testing ([`localvm`]).
//!
//! The DSM pseudo-instructions (`DsmCheckRead`, `DsmMonitorEnter`, …) are part
//! of the instruction set but are only ever *emitted* by the `jsplit-rewriter`
//! crate, exactly as the paper's rewriter injects access checks and handler
//! calls into application bytecode (paper §4, Figure 3).

pub mod builder;
pub mod class;
pub mod classfile_io;
pub mod cost;
pub mod disasm;
pub mod heap;
pub mod instr;
pub mod interp;
pub mod intrinsics;
pub mod loader;
pub mod localvm;
pub mod opstats;
pub mod pcode;
pub mod stdlib;
pub mod value;
pub mod verifier;

pub use builder::{ClassBuilder, MethodBuilder, ProgramBuilder};
pub use class::{ClassFile, FieldDef, MethodDef, Program, Sig};
pub use cost::{CostModel, JvmProfile};
pub use heap::{Heap, Obj, ObjPayload, ObjRef};
pub use instr::{AccessKind, Cmp, ElemTy, Instr, Ty};
pub use interp::{CheckOutcome, MonOutcome, StepState, Thread, VmEnv};
pub use loader::{ClassId, Image, MethodId, SigId};
pub use localvm::{BaselineEnv, LocalVm};
pub use value::Value;
