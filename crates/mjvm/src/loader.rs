//! Class loading and resolution.
//!
//! [`Image::load`] takes a symbolic [`Program`] plus the bootstrap library and
//! produces a resolved image: dense class/method/signature ids, flattened
//! field layouts (superclass fields first), per-class vtables indexed by
//! signature id, and *quickened* method bodies in which every symbolic heap or
//! call instruction has been replaced by its `*Q` variant — the same job the
//! JVM's resolution + quick-opcode machinery performs on first execution.

use crate::class::{ClassFile, Program, Sig};
use crate::instr::{AccessKind, ElemTy, Instr, Ty};
use crate::intrinsics::NativeOp;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Dense class index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// Dense method index (global across classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MethodId(pub u32);

/// Dense virtual-dispatch signature index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SigId(pub u16);

/// Errors surfaced while resolving a program.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadError {
    DuplicateClass(String),
    UnknownClass(String),
    UnknownSuper { class: String, super_name: String },
    UnknownField { class: String, field: String },
    UnknownMethod { class: String, sig: String },
    UnknownNative { class: String, sig: String },
    NoMainMethod(String),
    StaticSynchronizedUnsupported { class: String, sig: String },
    CyclicInheritance(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::DuplicateClass(c) => write!(f, "duplicate class {c}"),
            LoadError::UnknownClass(c) => write!(f, "unknown class {c}"),
            LoadError::UnknownSuper { class, super_name } => {
                write!(f, "class {class}: unknown superclass {super_name}")
            }
            LoadError::UnknownField { class, field } => {
                write!(f, "unknown field {class}.{field}")
            }
            LoadError::UnknownMethod { class, sig } => {
                write!(f, "unknown method {class}.{sig}")
            }
            LoadError::UnknownNative { class, sig } => {
                write!(f, "no intrinsic registered for native {class}.{sig}")
            }
            LoadError::NoMainMethod(c) => write!(f, "class {c} has no static main()V"),
            LoadError::StaticSynchronizedUnsupported { class, sig } => {
                write!(f, "static synchronized methods are unsupported: {class}.{sig}")
            }
            LoadError::CyclicInheritance(c) => write!(f, "cyclic inheritance through {c}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// A resolved class.
#[derive(Debug)]
pub struct RClass {
    pub id: ClassId,
    pub name: Arc<str>,
    pub super_id: Option<ClassId>,
    /// Flattened instance-field layout: super fields first. Parallel arrays
    /// to keep the hot interpreter paths compact.
    pub field_names: Vec<Arc<str>>,
    pub field_tys: Vec<Ty>,
    pub field_volatile: Vec<bool>,
    /// Static fields declared by *this* class only (each class owns its
    /// static storage area, as in the JVM).
    pub static_names: Vec<Arc<str>>,
    pub static_tys: Vec<Ty>,
    /// Virtual method table indexed by [`SigId`].
    pub vtable: Vec<Option<MethodId>>,
    pub is_bootstrap: bool,
}

impl RClass {
    /// Zero-initialised instance field vector.
    pub fn zeroed_fields(&self) -> Vec<Value> {
        self.field_tys.iter().map(|t| Value::zero_of(*t)).collect()
    }

    /// Zero-initialised static storage.
    pub fn zeroed_statics(&self) -> Vec<Value> {
        self.static_tys.iter().map(|t| Value::zero_of(*t)).collect()
    }

    pub fn field_slot(&self, name: &str) -> Option<u16> {
        self.field_names.iter().position(|n| &**n == name).map(|i| i as u16)
    }
}

/// A resolved method.
#[derive(Debug)]
pub struct RMethod {
    pub id: MethodId,
    pub class: ClassId,
    pub sig: Sig,
    pub sig_id: SigId,
    pub is_static: bool,
    pub is_synchronized: bool,
    pub max_locals: u16,
    /// Quickened body; empty for natives.
    pub code: Vec<Instr>,
    /// Intrinsic implementation for native methods.
    pub native: Option<NativeOp>,
}

/// A fully resolved, executable program image. Immutable after load; the
/// per-node mutable state (heaps, statics) lives outside so several simulated
/// nodes can share one image, just as the paper distributes one set of
/// rewritten classes to every worker (§2).
#[derive(Debug)]
pub struct Image {
    pub classes: Vec<RClass>,
    pub methods: Vec<RMethod>,
    pub sigs: Vec<Sig>,
    name_to_class: HashMap<Arc<str>, ClassId>,
    /// Pseudo-classes used for array objects, one per element type.
    array_classes: [ClassId; 4],
    /// Pseudo-class for string objects.
    pub string_class: ClassId,
    pub main_method: MethodId,
    /// Per-call-site monomorphic inline caches for `InvokeVirtualQ`, indexed
    /// by the instruction's `site` id assigned during quickening. Each slot
    /// packs `(class + 1) << 32 | method` (0 = empty). Atomics because the
    /// image is shared (`Arc`) across simulated nodes; `Relaxed` suffices —
    /// a cache entry is pure memoization of the immutable vtable, so any
    /// stale or torn view only costs a refill, never a wrong target.
    vcall_cache: Vec<AtomicU64>,
}

impl Image {
    pub fn class_id(&self, name: &str) -> Option<ClassId> {
        self.name_to_class.get(name).copied()
    }

    /// Resolve a class by its original name *or* its rewritten
    /// `javasplit.`-prefixed name — runtime components that must find
    /// bootstrap classes (Thread, String, JSRuntime) work against both
    /// original and rewritten programs through this.
    pub fn class_id_any(&self, name: &str) -> Option<ClassId> {
        self.class_id(name)
            .or_else(|| self.class_id(&format!("javasplit.{name}")))
    }

    #[inline]
    pub fn class(&self, id: ClassId) -> &RClass {
        &self.classes[id.0 as usize]
    }

    #[inline]
    pub fn method(&self, id: MethodId) -> &RMethod {
        &self.methods[id.0 as usize]
    }

    #[inline]
    pub fn array_class(&self, elem: ElemTy) -> ClassId {
        self.array_classes[match elem {
            ElemTy::I32 => 0,
            ElemTy::I64 => 1,
            ElemTy::F64 => 2,
            ElemTy::Ref => 3,
        }]
    }

    /// Virtual dispatch: find the implementation of `sig` for runtime class
    /// `class`.
    #[inline]
    pub fn dispatch(&self, class: ClassId, sig: SigId) -> Option<MethodId> {
        self.classes[class.0 as usize].vtable.get(sig.0 as usize).copied().flatten()
    }

    /// Virtual dispatch through the call site's monomorphic inline cache.
    /// A hit (same receiver class as last time at this site) skips the
    /// vtable walk; a miss falls back to [`Image::dispatch`] and re-primes
    /// the cache. Deterministic: a hit returns exactly what `dispatch`
    /// would, since vtables are immutable after load.
    #[inline]
    pub fn dispatch_cached(&self, site: u32, class: ClassId, sig: SigId) -> Option<MethodId> {
        let slot = &self.vcall_cache[site as usize];
        let e = slot.load(Ordering::Relaxed);
        if (e >> 32) == class.0 as u64 + 1 {
            return Some(MethodId(e as u32));
        }
        let mid = self.dispatch(class, sig)?;
        slot.store(((class.0 as u64 + 1) << 32) | mid.0 as u64, Ordering::Relaxed);
        Some(mid)
    }

    /// Resolve `class.method(sig)` walking up the hierarchy (for
    /// `invokespecial` / `invokestatic`).
    pub fn resolve_method(&self, class: ClassId, sig: &Sig) -> Option<MethodId> {
        let mut cur = Some(class);
        while let Some(cid) = cur {
            let c = self.class(cid);
            if let Some(mid) = self
                .methods
                .iter()
                .find(|m| m.class == cid && &m.sig == sig)
                .map(|m| m.id)
            {
                return Some(mid);
            }
            cur = c.super_id;
        }
        None
    }

    /// `true` if `sub` equals or inherits from `sup`.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.class(c).super_id;
        }
        false
    }

    /// Load and resolve a program. `program` should already include the
    /// bootstrap classes (see [`crate::builder::ProgramBuilder::build_with_stdlib`]).
    pub fn load(program: &Program) -> Result<Image, LoadError> {
        let mut name_to_class: HashMap<Arc<str>, ClassId> = HashMap::new();

        // Synthesize pseudo-classes for arrays and strings first so they get
        // stable ids and participate in vtable sizing (they have no methods).
        let mut all: Vec<ClassFile> = Vec::with_capacity(program.classes.len() + 5);
        for n in ["[I", "[J", "[D", "[Ljava.lang.Object;"] {
            let mut c = ClassFile::new(n, None);
            c.is_bootstrap = true;
            all.push(c);
        }
        all.extend(program.classes.iter().cloned());

        for (i, c) in all.iter().enumerate() {
            if name_to_class.insert(c.name.clone(), ClassId(i as u32)).is_some() {
                return Err(LoadError::DuplicateClass(c.name.to_string()));
            }
        }

        let string_class = name_to_class
            .get("java.lang.String")
            .or_else(|| name_to_class.get("javasplit.java.lang.String"))
            .copied()
            .ok_or_else(|| LoadError::UnknownClass("java.lang.String".into()))?;

        // Intern all virtual-dispatch signatures.
        let mut sigs: Vec<Sig> = Vec::new();
        let mut sig_ids: HashMap<Sig, SigId> = HashMap::new();
        let mut intern_sig = |sig: &Sig, sigs: &mut Vec<Sig>| -> SigId {
            if let Some(&id) = sig_ids.get(sig) {
                return id;
            }
            let id = SigId(sigs.len() as u16);
            sigs.push(sig.clone());
            sig_ids.insert(sig.clone(), id);
            id
        };

        // Resolve field layouts in topological (super-first) order.
        let mut classes: Vec<Option<RClass>> = (0..all.len()).map(|_| None).collect();
        let mut methods: Vec<RMethod> = Vec::new();

        fn layout(
            idx: usize,
            all: &[ClassFile],
            name_to_class: &HashMap<Arc<str>, ClassId>,
            classes: &mut Vec<Option<RClass>>,
            depth: usize,
        ) -> Result<(), LoadError> {
            if classes[idx].is_some() {
                return Ok(());
            }
            if depth > all.len() {
                return Err(LoadError::CyclicInheritance(all[idx].name.to_string()));
            }
            let cf = &all[idx];
            let (super_id, mut fnames, mut ftys, mut fvol) = match &cf.super_name {
                Some(sname) => {
                    let sid = *name_to_class.get(sname).ok_or_else(|| LoadError::UnknownSuper {
                        class: cf.name.to_string(),
                        super_name: sname.to_string(),
                    })?;
                    layout(sid.0 as usize, all, name_to_class, classes, depth + 1)?;
                    let sup = classes[sid.0 as usize].as_ref().unwrap();
                    (
                        Some(sid),
                        sup.field_names.clone(),
                        sup.field_tys.clone(),
                        sup.field_volatile.clone(),
                    )
                }
                None => (None, vec![], vec![], vec![]),
            };
            let mut static_names = Vec::new();
            let mut static_tys = Vec::new();
            for f in &cf.fields {
                if f.is_static {
                    static_names.push(f.name.clone());
                    static_tys.push(f.ty);
                } else {
                    fnames.push(f.name.clone());
                    ftys.push(f.ty);
                    fvol.push(f.is_volatile);
                }
            }
            classes[idx] = Some(RClass {
                id: ClassId(idx as u32),
                name: cf.name.clone(),
                super_id,
                field_names: fnames,
                field_tys: ftys,
                field_volatile: fvol,
                static_names,
                static_tys,
                vtable: vec![],
                is_bootstrap: cf.is_bootstrap,
            });
            Ok(())
        }

        for i in 0..all.len() {
            layout(i, &all, &name_to_class, &mut classes, 0)?;
        }
        let mut classes: Vec<RClass> = classes.into_iter().map(Option::unwrap).collect();

        // Register methods (bodies quickened in a second pass).
        let mut method_of: HashMap<(ClassId, Sig), MethodId> = HashMap::new();
        for (i, cf) in all.iter().enumerate() {
            let cid = ClassId(i as u32);
            for m in &cf.methods {
                if m.is_static && m.is_synchronized {
                    return Err(LoadError::StaticSynchronizedUnsupported {
                        class: cf.name.to_string(),
                        sig: m.sig.to_string(),
                    });
                }
                let native = if m.is_native {
                    Some(NativeOp::resolve(&cf.name, &m.sig).ok_or_else(|| {
                        LoadError::UnknownNative {
                            class: cf.name.to_string(),
                            sig: m.sig.to_string(),
                        }
                    })?)
                } else {
                    None
                };
                let id = MethodId(methods.len() as u32);
                let sig_id = intern_sig(&m.sig, &mut sigs);
                methods.push(RMethod {
                    id,
                    class: cid,
                    sig: m.sig.clone(),
                    sig_id,
                    is_static: m.is_static,
                    is_synchronized: m.is_synchronized,
                    max_locals: m.max_locals.max(m.param_slots()),
                    code: Vec::new(),
                    native,
                });
                method_of.insert((cid, m.sig.clone()), id);
            }
        }

        // Build vtables in inheritance order (supers first — class ids do
        // not follow the hierarchy because bootstrap classes are appended
        // after user classes): inherit from super, then override.
        let nsigs = sigs.len();
        let mut order: Vec<usize> = (0..classes.len()).collect();
        let depth_of = |mut i: usize, classes: &[RClass]| {
            let mut d = 0usize;
            while let Some(s) = classes[i].super_id {
                d += 1;
                i = s.0 as usize;
            }
            d
        };
        order.sort_by_key(|&i| depth_of(i, &classes));
        for i in order {
            let mut vt = match classes[i].super_id {
                Some(sid) => {
                    let mut v = classes[sid.0 as usize].vtable.clone();
                    v.resize(nsigs, None);
                    v
                }
                None => vec![None; nsigs],
            };
            for m in methods.iter().filter(|m| m.class.0 as usize == i && !m.is_static) {
                vt[m.sig_id.0 as usize] = Some(m.id);
            }
            classes[i].vtable = vt;
        }

        // Quicken method bodies.
        let find_field_slot = |class: &str, field: &str| -> Result<u16, LoadError> {
            let cid = name_to_class
                .get(class)
                .ok_or_else(|| LoadError::UnknownClass(class.to_string()))?;
            classes[cid.0 as usize].field_slot(field).ok_or_else(|| LoadError::UnknownField {
                class: class.to_string(),
                field: field.to_string(),
            })
        };
        let find_static = |class: &str, field: &str| -> Result<(ClassId, u16), LoadError> {
            // Statics are *not* inherited lookups in MJVM: accesses name the
            // declaring class directly (the builder guarantees this).
            let mut cur = Some(
                *name_to_class
                    .get(class)
                    .ok_or_else(|| LoadError::UnknownClass(class.to_string()))?,
            );
            while let Some(cid) = cur {
                let c = &classes[cid.0 as usize];
                if let Some(pos) = c.static_names.iter().position(|n| &**n == field) {
                    return Ok((cid, pos as u16));
                }
                cur = c.super_id;
            }
            Err(LoadError::UnknownField { class: class.to_string(), field: field.to_string() })
        };
        let resolve_static_call =
            |class: &str, sig: &Sig, method_of: &HashMap<(ClassId, Sig), MethodId>| -> Result<MethodId, LoadError> {
                let mut cur = Some(
                    *name_to_class
                        .get(class)
                        .ok_or_else(|| LoadError::UnknownClass(class.to_string()))?,
                );
                while let Some(cid) = cur {
                    if let Some(&mid) = method_of.get(&(cid, sig.clone())) {
                        return Ok(mid);
                    }
                    cur = classes[cid.0 as usize].super_id;
                }
                Err(LoadError::UnknownMethod { class: class.to_string(), sig: sig.to_string() })
            };

        let mut quickened: Vec<Vec<Instr>> = Vec::with_capacity(methods.len());
        let mut vcall_sites: u32 = 0;
        for (i, cf) in all.iter().enumerate() {
            let _cid = ClassId(i as u32);
            for m in &cf.methods {
                let mut code = Vec::with_capacity(m.code.len());
                for ins in &m.code {
                    code.push(match ins {
                        Instr::New(cn) => {
                            let cid = *name_to_class
                                .get(cn)
                                .ok_or_else(|| LoadError::UnknownClass(cn.to_string()))?;
                            Instr::NewQ(cid)
                        }
                        Instr::GetField(cn, fnm) => Instr::GetFieldQ {
                            slot: find_field_slot(cn, fnm)?,
                            kind_cost: access_kind_for(cn),
                        },
                        Instr::PutField(cn, fnm) => Instr::PutFieldQ {
                            slot: find_field_slot(cn, fnm)?,
                            kind_cost: access_kind_for(cn),
                        },
                        Instr::GetStatic(cn, fnm) => {
                            let (cid, slot) = find_static(cn, fnm)?;
                            Instr::GetStaticQ { class: cid, slot, free: fnm.starts_with("__javasplit") }
                        }
                        Instr::PutStatic(cn, fnm) => {
                            let (cid, slot) = find_static(cn, fnm)?;
                            Instr::PutStaticQ { class: cid, slot }
                        }
                        Instr::InvokeStatic(cn, sig) => {
                            Instr::InvokeStaticQ(resolve_static_call(cn, sig, &method_of)?)
                        }
                        Instr::InvokeSpecial(cn, sig) => {
                            let cid = *name_to_class
                                .get(cn)
                                .ok_or_else(|| LoadError::UnknownClass(cn.to_string()))?;
                            // Walk up for super calls.
                            let mut cur = Some(cid);
                            let mut found = None;
                            while let Some(c) = cur {
                                if let Some(&mid) = method_of.get(&(c, sig.clone())) {
                                    found = Some(mid);
                                    break;
                                }
                                cur = classes[c.0 as usize].super_id;
                            }
                            Instr::InvokeSpecialQ(found.ok_or_else(|| LoadError::UnknownMethod {
                                class: cn.to_string(),
                                sig: sig.to_string(),
                            })?)
                        }
                        Instr::InvokeVirtual(sig) => {
                            let sid = intern_sig(sig, &mut sigs);
                            let site = vcall_sites;
                            vcall_sites += 1;
                            Instr::InvokeVirtualQ {
                                sig: sid,
                                nargs: sig.nargs() as u8,
                                ret: sig.ret.is_some(),
                                site,
                            }
                        }
                        other => other.clone(),
                    });
                }
                quickened.push(code);
            }
        }
        // InvokeVirtual interning may have grown `sigs`; extend vtables.
        let nsigs = sigs.len();
        for c in &mut classes {
            c.vtable.resize(nsigs, None);
        }
        for (m, code) in methods.iter_mut().zip(quickened) {
            m.code = code;
        }

        let main_sig = Sig::new("main", &[], None);
        let main_cid = *name_to_class
            .get(&*program.main_class)
            .ok_or_else(|| LoadError::UnknownClass(program.main_class.to_string()))?;
        let main_method = *method_of
            .get(&(main_cid, main_sig))
            .ok_or_else(|| LoadError::NoMainMethod(program.main_class.to_string()))?;

        Ok(Image {
            array_classes: [
                name_to_class["[I"],
                name_to_class["[J"],
                name_to_class["[D"],
                name_to_class["[Ljava.lang.Object;"],
            ],
            string_class,
            classes,
            methods,
            sigs,
            name_to_class,
            main_method,
            vcall_cache: (0..vcall_sites).map(|_| AtomicU64::new(0)).collect(),
        })
    }
}

/// Classify the access-cost kind from the accessed class's name: the statics
/// transformation (paper §4.2) turns static accesses into instance accesses
/// on `C_static` companions; the cost model still charges them as statics so
/// Table 1's static rows stay meaningful.
fn access_kind_for(class_name: &str) -> AccessKind {
    if class_name.ends_with("_static") {
        AccessKind::Static
    } else {
        AccessKind::Field
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn tiny_program() -> Program {
        let mut pb = ProgramBuilder::new("Main");
        pb.class("Main", "java.lang.Object", |cb| {
            cb.static_method("main", &[], None, |m| {
                m.const_i32(1).pop_().ret();
            });
        });
        pb.build_with_stdlib()
    }

    #[test]
    fn load_tiny() {
        let img = Image::load(&tiny_program()).expect("load");
        let main = img.method(img.main_method);
        assert_eq!(&*main.sig.name, "main");
        assert!(main.is_static);
        assert!(img.class_id("Main").is_some());
        assert!(img.class_id("java.lang.Object").is_some());
        assert!(img.class_id("Nope").is_none());
    }

    #[test]
    fn field_layout_includes_super() {
        let mut pb = ProgramBuilder::new("Main");
        pb.class("A", "java.lang.Object", |cb| {
            cb.field("x", Ty::I32);
        });
        pb.class("B", "A", |cb| {
            cb.field("y", Ty::F64);
        });
        pb.class("Main", "java.lang.Object", |cb| {
            cb.static_method("main", &[], None, |m| {
                m.ret();
            });
        });
        let img = Image::load(&pb.build_with_stdlib()).unwrap();
        let b = img.class(img.class_id("B").unwrap());
        assert_eq!(b.field_slot("x"), Some(0));
        assert_eq!(b.field_slot("y"), Some(1));
        let a = img.class(img.class_id("A").unwrap());
        assert_eq!(a.field_slot("x"), Some(0));
        assert_eq!(a.field_slot("y"), None);
    }

    #[test]
    fn subclass_relation() {
        let mut pb = ProgramBuilder::new("Main");
        pb.class("A", "java.lang.Object", |_| {});
        pb.class("B", "A", |_| {});
        pb.class("Main", "java.lang.Object", |cb| {
            cb.static_method("main", &[], None, |m| {
                m.ret();
            });
        });
        let img = Image::load(&pb.build_with_stdlib()).unwrap();
        let a = img.class_id("A").unwrap();
        let b = img.class_id("B").unwrap();
        let obj = img.class_id("java.lang.Object").unwrap();
        assert!(img.is_subclass(b, a));
        assert!(img.is_subclass(b, obj));
        assert!(!img.is_subclass(a, b));
    }

    #[test]
    fn missing_main_rejected() {
        let mut pb = ProgramBuilder::new("Main");
        pb.class("Main", "java.lang.Object", |_| {});
        let err = Image::load(&pb.build_with_stdlib()).unwrap_err();
        assert!(matches!(err, LoadError::NoMainMethod(_)));
    }

    #[test]
    fn unknown_super_rejected() {
        let mut pb = ProgramBuilder::new("Main");
        pb.class("Main", "Ghost", |cb| {
            cb.static_method("main", &[], None, |m| {
                m.ret();
            });
        });
        let err = Image::load(&pb.build_with_stdlib()).unwrap_err();
        assert!(matches!(err, LoadError::UnknownSuper { .. }));
    }
}
