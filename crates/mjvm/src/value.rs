//! Runtime values held on the operand stack, in locals and in object fields.
//!
//! Like the JVM, small integer types (boolean/byte/char/short) are widened to
//! `I32` on the stack; unlike the JVM we drop `float` and keep only `double`
//! (`F64`) to halve the floating-point opcode surface — none of the paper's
//! benchmarks use `float`.

use crate::heap::ObjRef;

/// A single stack/local/field slot value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 32-bit signed integer (also boolean/char as in the JVM).
    I32(i32),
    /// 64-bit signed integer (`long`).
    I64(i64),
    /// 64-bit IEEE float (`double`).
    F64(f64),
    /// Reference to a heap object (object, array or string).
    Ref(ObjRef),
    /// The `null` reference.
    Null,
}

impl Value {
    /// Unwrap an `I32`, panicking with a diagnostic otherwise.
    #[inline]
    pub fn as_i32(self) -> i32 {
        match self {
            Value::I32(v) => v,
            other => panic!("expected I32, found {other:?}"),
        }
    }

    /// Unwrap an `I64`.
    #[inline]
    pub fn as_i64(self) -> i64 {
        match self {
            Value::I64(v) => v,
            other => panic!("expected I64, found {other:?}"),
        }
    }

    /// Unwrap an `F64`.
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Value::F64(v) => v,
            other => panic!("expected F64, found {other:?}"),
        }
    }

    /// Unwrap a non-null reference.
    #[inline]
    pub fn as_ref(self) -> ObjRef {
        match self {
            Value::Ref(r) => r,
            other => panic!("expected Ref, found {other:?}"),
        }
    }

    /// Reference or `None` for `Null`. Panics on non-reference values.
    #[inline]
    pub fn as_opt_ref(self) -> Option<ObjRef> {
        match self {
            Value::Ref(r) => Some(r),
            Value::Null => None,
            other => panic!("expected Ref/Null, found {other:?}"),
        }
    }

    /// `true` if this is the null reference.
    #[inline]
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null)
    }

    /// Default (zero) value for a declared type, as the JVM zero-initialises
    /// fields and array elements.
    #[inline]
    pub fn zero_of(ty: crate::instr::Ty) -> Value {
        match ty {
            crate::instr::Ty::I32 => Value::I32(0),
            crate::instr::Ty::I64 => Value::I64(0),
            crate::instr::Ty::F64 => Value::F64(0.0),
            crate::instr::Ty::Ref => Value::Null,
        }
    }

    /// The declared type this value inhabits.
    #[inline]
    pub fn ty(self) -> crate::instr::Ty {
        match self {
            Value::I32(_) => crate::instr::Ty::I32,
            Value::I64(_) => crate::instr::Ty::I64,
            Value::F64(_) => crate::instr::Ty::F64,
            Value::Ref(_) | Value::Null => crate::instr::Ty::Ref,
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::I32(v as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Ty;

    #[test]
    fn zero_values() {
        assert_eq!(Value::zero_of(Ty::I32), Value::I32(0));
        assert_eq!(Value::zero_of(Ty::I64), Value::I64(0));
        assert_eq!(Value::zero_of(Ty::F64), Value::F64(0.0));
        assert_eq!(Value::zero_of(Ty::Ref), Value::Null);
    }

    #[test]
    fn accessors_round_trip() {
        assert_eq!(Value::from(7).as_i32(), 7);
        assert_eq!(Value::from(7i64).as_i64(), 7);
        assert_eq!(Value::from(1.5).as_f64(), 1.5);
        assert_eq!(Value::from(true).as_i32(), 1);
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.as_opt_ref(), None);
    }

    #[test]
    fn ty_of_values() {
        assert_eq!(Value::I32(3).ty(), Ty::I32);
        assert_eq!(Value::Null.ty(), Ty::Ref);
    }

    #[test]
    #[should_panic(expected = "expected I32")]
    fn wrong_accessor_panics() {
        Value::F64(1.0).as_i32();
    }
}
