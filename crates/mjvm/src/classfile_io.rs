//! Binary class-file serialization.
//!
//! The paper's runtime physically ships the rewritten classes to worker
//! nodes ("the resulting rewritten classes are sent to one of the worker
//! nodes", §2; applet workers download them over HTTP). This module gives
//! MJVM programs the same property: a compact, self-contained binary format
//! for whole [`Program`]s, so the distributed runtime can account for class
//! distribution as real network traffic and tooling can persist rewritten
//! programs to disk.
//!
//! Format: little-endian, length-prefixed strings, one opcode byte per
//! instruction with operands following — the moral equivalent of a `.class`
//! file for the MJVM instruction set.

use crate::class::{ClassFile, FieldDef, MethodDef, Program, Sig};
use crate::instr::{AccessKind, Cmp, ElemTy, Instr, Ty};
use crate::loader::{ClassId, MethodId, SigId};
use crate::value::Value;
use std::sync::Arc;

/// Decoding errors (a malformed class file).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassFileError(pub String);

impl std::fmt::Display for ClassFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "class file error: {}", self.0)
    }
}

impl std::error::Error for ClassFileError {}

const MAGIC: &[u8; 4] = b"MJVM";
const VERSION: u16 = 1;

struct W {
    buf: Vec<u8>,
}

impl W {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn usz(&mut self, v: usize) {
        self.u32(v as u32);
    }
}

/// Cursor over encoded bytes (public so `decode_class` is callable).
pub struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ClassFileError> {
        if self.pos + n > self.buf.len() {
            return Err(ClassFileError("truncated".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, ClassFileError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ClassFileError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, ClassFileError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn i32(&mut self) -> Result<i32, ClassFileError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, ClassFileError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, ClassFileError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<Arc<str>, ClassFileError> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        std::str::from_utf8(b)
            .map(Arc::from)
            .map_err(|_| ClassFileError("bad utf-8".into()))
    }
    fn usz(&mut self) -> Result<usize, ClassFileError> {
        Ok(self.u32()? as usize)
    }
}

fn ty_tag(t: Ty) -> u8 {
    match t {
        Ty::I32 => 0,
        Ty::I64 => 1,
        Ty::F64 => 2,
        Ty::Ref => 3,
    }
}

fn ty_from(tag: u8) -> Result<Ty, ClassFileError> {
    Ok(match tag {
        0 => Ty::I32,
        1 => Ty::I64,
        2 => Ty::F64,
        3 => Ty::Ref,
        _ => return Err(ClassFileError(format!("bad type tag {tag}"))),
    })
}

fn elem_tag(t: ElemTy) -> u8 {
    match t {
        ElemTy::I32 => 0,
        ElemTy::I64 => 1,
        ElemTy::F64 => 2,
        ElemTy::Ref => 3,
    }
}

fn elem_from(tag: u8) -> Result<ElemTy, ClassFileError> {
    Ok(match tag {
        0 => ElemTy::I32,
        1 => ElemTy::I64,
        2 => ElemTy::F64,
        3 => ElemTy::Ref,
        _ => return Err(ClassFileError(format!("bad elem tag {tag}"))),
    })
}

fn cmp_tag(c: Cmp) -> u8 {
    match c {
        Cmp::Eq => 0,
        Cmp::Ne => 1,
        Cmp::Lt => 2,
        Cmp::Le => 3,
        Cmp::Gt => 4,
        Cmp::Ge => 5,
    }
}

fn cmp_from(tag: u8) -> Result<Cmp, ClassFileError> {
    Ok(match tag {
        0 => Cmp::Eq,
        1 => Cmp::Ne,
        2 => Cmp::Lt,
        3 => Cmp::Le,
        4 => Cmp::Gt,
        5 => Cmp::Ge,
        _ => return Err(ClassFileError(format!("bad cmp tag {tag}"))),
    })
}

fn kind_tag(k: AccessKind) -> u8 {
    match k {
        AccessKind::Field => 0,
        AccessKind::Static => 1,
        AccessKind::Array => 2,
    }
}

fn kind_from(tag: u8) -> Result<AccessKind, ClassFileError> {
    Ok(match tag {
        0 => AccessKind::Field,
        1 => AccessKind::Static,
        2 => AccessKind::Array,
        _ => return Err(ClassFileError(format!("bad kind tag {tag}"))),
    })
}

fn write_sig(w: &mut W, s: &Sig) {
    w.str(&s.name);
    w.u8(s.params.len() as u8);
    for p in &s.params {
        w.u8(ty_tag(*p));
    }
    match s.ret {
        Some(t) => w.u8(1 + ty_tag(t)),
        None => w.u8(0),
    }
}

fn read_sig(r: &mut R) -> Result<Sig, ClassFileError> {
    let name = r.str()?;
    let np = r.u8()? as usize;
    let mut params = Vec::with_capacity(np);
    for _ in 0..np {
        params.push(ty_from(r.u8()?)?);
    }
    let ret = match r.u8()? {
        0 => None,
        t => Some(ty_from(t - 1)?),
    };
    Ok(Sig { name, params, ret })
}

#[rustfmt::skip]
fn write_instr(w: &mut W, ins: &Instr) -> Result<(), ClassFileError> {
    use Instr::*;
    match ins {
        Const(Value::I32(v)) => { w.u8(0); w.i32(*v); }
        Const(Value::I64(v)) => { w.u8(1); w.i64(*v); }
        Const(Value::F64(v)) => { w.u8(2); w.f64(*v); }
        Const(Value::Null) => w.u8(3),
        Const(Value::Ref(_)) => return Err(ClassFileError("object constant in code".into())),
        LdcStr(s) => { w.u8(4); w.str(s); }
        Dup => w.u8(5),
        DupX1 => w.u8(6),
        Pop => w.u8(7),
        Swap => w.u8(8),
        Load(n) => { w.u8(9); w.u16(*n); }
        Store(n) => { w.u8(10); w.u16(*n); }
        IInc(n, d) => { w.u8(11); w.u16(*n); w.i32(*d); }
        IAdd => w.u8(12), ISub => w.u8(13), IMul => w.u8(14), IDiv => w.u8(15),
        IRem => w.u8(16), INeg => w.u8(17), IShl => w.u8(18), IShr => w.u8(19),
        IUShr => w.u8(20), IAnd => w.u8(21), IOr => w.u8(22), IXor => w.u8(23),
        LAdd => w.u8(24), LSub => w.u8(25), LMul => w.u8(26), LDiv => w.u8(27),
        LRem => w.u8(28), LNeg => w.u8(29),
        DAdd => w.u8(30), DSub => w.u8(31), DMul => w.u8(32), DDiv => w.u8(33),
        DRem => w.u8(34), DNeg => w.u8(35),
        I2L => w.u8(36), I2D => w.u8(37), L2I => w.u8(38), L2D => w.u8(39),
        D2I => w.u8(40), D2L => w.u8(41), LCmp => w.u8(42), DCmp => w.u8(43),
        Goto(t) => { w.u8(44); w.usz(*t); }
        IfICmp(c, t) => { w.u8(45); w.u8(cmp_tag(*c)); w.usz(*t); }
        IfI(c, t) => { w.u8(46); w.u8(cmp_tag(*c)); w.usz(*t); }
        IfNull(t) => { w.u8(47); w.usz(*t); }
        IfNonNull(t) => { w.u8(48); w.usz(*t); }
        IfACmpEq(t) => { w.u8(49); w.usz(*t); }
        IfACmpNe(t) => { w.u8(50); w.usz(*t); }
        New(c) => { w.u8(51); w.str(c); }
        GetField(c, f) => { w.u8(52); w.str(c); w.str(f); }
        PutField(c, f) => { w.u8(53); w.str(c); w.str(f); }
        GetStatic(c, f) => { w.u8(54); w.str(c); w.str(f); }
        PutStatic(c, f) => { w.u8(55); w.str(c); w.str(f); }
        NewArray(e) => { w.u8(56); w.u8(elem_tag(*e)); }
        ALoad(e) => { w.u8(57); w.u8(elem_tag(*e)); }
        AStore(e) => { w.u8(58); w.u8(elem_tag(*e)); }
        ArrayLen => w.u8(59),
        InvokeStatic(c, s) => { w.u8(60); w.str(c); write_sig(w, s); }
        InvokeVirtual(s) => { w.u8(61); write_sig(w, s); }
        InvokeSpecial(c, s) => { w.u8(62); w.str(c); write_sig(w, s); }
        Return => w.u8(63),
        ReturnVal => w.u8(64),
        MonitorEnter => w.u8(65),
        MonitorExit => w.u8(66),
        Nop => w.u8(67),
        DsmCheckRead { depth, kind } => { w.u8(68); w.u8(*depth); w.u8(kind_tag(*kind)); }
        DsmCheckWrite { depth, kind } => { w.u8(69); w.u8(*depth); w.u8(kind_tag(*kind)); }
        DsmMonitorEnter => w.u8(70),
        DsmMonitorExit => w.u8(71),
        DsmSpawn => w.u8(72),
        DsmVolatileAcquire { depth } => { w.u8(73); w.u8(*depth); }
        DsmVolatileRelease => w.u8(74),
        // Quickened opcodes are a load-time artifact — never serialized
        // (class files travel in symbolic form, like real .class files).
        GetFieldQ { .. } | PutFieldQ { .. } | GetStaticQ { .. } | PutStaticQ { .. }
        | NewQ(_) | InvokeStaticQ(_) | InvokeSpecialQ(_) | InvokeVirtualQ { .. } => {
            return Err(ClassFileError("quickened instruction in class file".into()))
        }
    }
    Ok(())
}

fn read_instr(r: &mut R) -> Result<Instr, ClassFileError> {
    use Instr::*;
    Ok(match r.u8()? {
        0 => Const(Value::I32(r.i32()?)),
        1 => Const(Value::I64(r.i64()?)),
        2 => Const(Value::F64(r.f64()?)),
        3 => Const(Value::Null),
        4 => LdcStr(r.str()?),
        5 => Dup,
        6 => DupX1,
        7 => Pop,
        8 => Swap,
        9 => Load(r.u16()?),
        10 => Store(r.u16()?),
        11 => IInc(r.u16()?, r.i32()?),
        12 => IAdd,
        13 => ISub,
        14 => IMul,
        15 => IDiv,
        16 => IRem,
        17 => INeg,
        18 => IShl,
        19 => IShr,
        20 => IUShr,
        21 => IAnd,
        22 => IOr,
        23 => IXor,
        24 => LAdd,
        25 => LSub,
        26 => LMul,
        27 => LDiv,
        28 => LRem,
        29 => LNeg,
        30 => DAdd,
        31 => DSub,
        32 => DMul,
        33 => DDiv,
        34 => DRem,
        35 => DNeg,
        36 => I2L,
        37 => I2D,
        38 => L2I,
        39 => L2D,
        40 => D2I,
        41 => D2L,
        42 => LCmp,
        43 => DCmp,
        44 => Goto(r.usz()?),
        45 => IfICmp(cmp_from(r.u8()?)?, r.usz()?),
        46 => IfI(cmp_from(r.u8()?)?, r.usz()?),
        47 => IfNull(r.usz()?),
        48 => IfNonNull(r.usz()?),
        49 => IfACmpEq(r.usz()?),
        50 => IfACmpNe(r.usz()?),
        51 => New(r.str()?),
        52 => GetField(r.str()?, r.str()?),
        53 => PutField(r.str()?, r.str()?),
        54 => GetStatic(r.str()?, r.str()?),
        55 => PutStatic(r.str()?, r.str()?),
        56 => NewArray(elem_from(r.u8()?)?),
        57 => ALoad(elem_from(r.u8()?)?),
        58 => AStore(elem_from(r.u8()?)?),
        59 => ArrayLen,
        60 => InvokeStatic(r.str()?, read_sig(r)?),
        61 => InvokeVirtual(read_sig(r)?),
        62 => InvokeSpecial(r.str()?, read_sig(r)?),
        63 => Return,
        64 => ReturnVal,
        65 => MonitorEnter,
        66 => MonitorExit,
        67 => Nop,
        68 => DsmCheckRead { depth: r.u8()?, kind: kind_from(r.u8()?)? },
        69 => DsmCheckWrite { depth: r.u8()?, kind: kind_from(r.u8()?)? },
        70 => DsmMonitorEnter,
        71 => DsmMonitorExit,
        72 => DsmSpawn,
        73 => DsmVolatileAcquire { depth: r.u8()? },
        74 => DsmVolatileRelease,
        op => return Err(ClassFileError(format!("bad opcode {op}"))),
    })
}

/// Serialize a single class.
pub fn encode_class(cf: &ClassFile) -> Vec<u8> {
    let mut w = W { buf: Vec::with_capacity(256) };
    w.str(&cf.name);
    match &cf.super_name {
        Some(s) => {
            w.u8(1);
            w.str(s);
        }
        None => w.u8(0),
    }
    w.u8(cf.is_bootstrap as u8);
    w.usz(cf.fields.len());
    for f in &cf.fields {
        w.str(&f.name);
        w.u8(ty_tag(f.ty));
        w.u8((f.is_static as u8) | ((f.is_volatile as u8) << 1));
    }
    w.usz(cf.methods.len());
    for m in &cf.methods {
        write_sig(&mut w, &m.sig);
        w.u8((m.is_static as u8) | ((m.is_synchronized as u8) << 1) | ((m.is_native as u8) << 2));
        w.u16(m.max_locals);
        w.usz(m.code.len());
        for ins in &m.code {
            write_instr(&mut w, ins).expect("symbolic code only");
        }
    }
    w.buf
}

/// Deserialize a single class.
pub fn decode_class(r: &mut R) -> Result<ClassFile, ClassFileError> {
    let name = r.str()?;
    let super_name = match r.u8()? {
        0 => None,
        _ => Some(r.str()?),
    };
    let is_bootstrap = r.u8()? != 0;
    let nf = r.usz()?;
    let mut fields = Vec::with_capacity(nf);
    for _ in 0..nf {
        let name = r.str()?;
        let ty = ty_from(r.u8()?)?;
        let flags = r.u8()?;
        fields.push(FieldDef { name, ty, is_static: flags & 1 != 0, is_volatile: flags & 2 != 0 });
    }
    let nm = r.usz()?;
    let mut methods = Vec::with_capacity(nm);
    for _ in 0..nm {
        let sig = read_sig(r)?;
        let flags = r.u8()?;
        let max_locals = r.u16()?;
        let nc = r.usz()?;
        let mut code = Vec::with_capacity(nc);
        for _ in 0..nc {
            code.push(read_instr(r)?);
        }
        methods.push(MethodDef {
            sig,
            is_static: flags & 1 != 0,
            is_synchronized: flags & 2 != 0,
            is_native: flags & 4 != 0,
            max_locals,
            code,
        });
    }
    Ok(ClassFile { name, super_name, fields, methods, is_bootstrap })
}

/// Serialize a whole program (what the runtime ships to each worker).
pub fn encode_program(p: &Program) -> Vec<u8> {
    let mut w = W { buf: Vec::with_capacity(4096) };
    w.buf.extend_from_slice(MAGIC);
    w.u16(VERSION);
    w.str(&p.main_class);
    w.usz(p.classes.len());
    for c in &p.classes {
        let bytes = encode_class(c);
        w.usz(bytes.len());
        w.buf.extend_from_slice(&bytes);
    }
    w.buf
}

/// Serialize a whole program in bounded chunks, streaming every filled
/// `chunk`-byte piece to `sink` (the final piece may be shorter). The
/// concatenated pieces are byte-for-byte identical to [`encode_program`],
/// but peak memory is one chunk plus one class instead of the whole
/// program. Returns the total encoded size.
pub fn encode_program_chunked(p: &Program, chunk: usize, sink: &mut dyn FnMut(&[u8])) -> usize {
    assert!(chunk > 0, "chunk size must be positive");
    let mut total = 0usize;
    let mut w = W { buf: Vec::with_capacity(chunk.min(4096)) };
    w.buf.extend_from_slice(MAGIC);
    w.u16(VERSION);
    w.str(&p.main_class);
    w.usz(p.classes.len());
    for c in &p.classes {
        let bytes = encode_class(c);
        w.usz(bytes.len());
        w.buf.extend_from_slice(&bytes);
        while w.buf.len() >= chunk {
            sink(&w.buf[..chunk]);
            total += chunk;
            w.buf.drain(..chunk);
        }
    }
    if !w.buf.is_empty() {
        total += w.buf.len();
        sink(&w.buf);
    }
    total
}

/// Deserialize a whole program.
pub fn decode_program(bytes: &[u8]) -> Result<Program, ClassFileError> {
    let mut r = R { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(ClassFileError("bad magic".into()));
    }
    let v = r.u16()?;
    if v != VERSION {
        return Err(ClassFileError(format!("unsupported version {v}")));
    }
    let main_class = r.str()?;
    let nc = r.usz()?;
    let mut classes = Vec::with_capacity(nc);
    for _ in 0..nc {
        let len = r.usz()?;
        let mut cr = R { buf: r.take(len)?, pos: 0 };
        classes.push(decode_class(&mut cr)?);
    }
    Ok(Program { classes, main_class })
}

// Silence unused-import warnings for id types referenced in doc text.
#[allow(unused)]
fn _ids(_: ClassId, _: MethodId, _: SigId) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::stdlib;

    #[test]
    fn stdlib_round_trips() {
        let p = Program { classes: stdlib::stdlib_classes(), main_class: "x".into() };
        let bytes = encode_program(&p);
        let back = decode_program(&bytes).expect("decode");
        assert_eq!(p.classes, back.classes);
        assert_eq!(p.main_class, back.main_class);
    }

    #[test]
    fn rewritten_program_round_trips() {
        // The actual payload the runtime would ship: a rewritten app with
        // DSM pseudo-instructions, companions and renamed classes.
        let mut pb = ProgramBuilder::new("M");
        pb.class("A", "java.lang.Object", |cb| {
            cb.field("x", crate::instr::Ty::I32);
            cb.static_field("s", crate::instr::Ty::I64);
            cb.volatile_field("v", crate::instr::Ty::I32);
            cb.synchronized_method("m", &[], None, |m| {
                m.load(0).getfield("A", "x").pop_().ret();
            });
        });
        pb.class("M", "java.lang.Object", |cb| {
            cb.static_method("main", &[], None, |m| {
                m.ldc_str("hé\u{1F600}").println_str().ret();
            });
        });
        // Simulate rewriter output shape with pseudo-ops present.
        let mut p = pb.build_with_stdlib();
        p.classes[0].methods[0].code.insert(0, Instr::DsmCheckRead {
            depth: 0,
            kind: AccessKind::Field,
        });
        let back = decode_program(&encode_program(&p)).unwrap();
        assert_eq!(p.classes, back.classes);
    }

    #[test]
    fn chunked_encoding_matches_whole_buffer() {
        let p = Program { classes: stdlib::stdlib_classes(), main_class: "x".into() };
        let whole = encode_program(&p);
        for chunk in [1usize, 7, 64, 4096, whole.len(), whole.len() * 2] {
            let mut pieces: Vec<Vec<u8>> = Vec::new();
            let total = encode_program_chunked(&p, chunk, &mut |c| pieces.push(c.to_vec()));
            assert_eq!(total, whole.len());
            for (i, piece) in pieces.iter().enumerate() {
                assert!(piece.len() <= chunk, "piece {i} overflows chunk {chunk}");
                // Only the last piece may be short.
                if i + 1 < pieces.len() {
                    assert_eq!(piece.len(), chunk);
                }
            }
            let cat: Vec<u8> = pieces.concat();
            assert_eq!(cat, whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn size_is_reasonable() {
        let p = Program { classes: stdlib::stdlib_classes(), main_class: "x".into() };
        let bytes = encode_program(&p);
        let instrs = p.code_size();
        // A few bytes per instruction plus names — sanity band.
        assert!(bytes.len() > instrs, "{} bytes for {instrs} instrs", bytes.len());
        assert!(bytes.len() < instrs * 60, "{} bytes for {instrs} instrs", bytes.len());
    }

    #[test]
    fn corrupt_input_is_rejected_not_panicking() {
        let p = Program { classes: stdlib::stdlib_classes(), main_class: "x".into() };
        let mut bytes = encode_program(&p);
        assert!(decode_program(&bytes[..10]).is_err());
        bytes[0] = b'X';
        assert!(decode_program(&bytes).is_err());
        assert!(decode_program(&[]).is_err());
    }

    #[test]
    fn decoded_program_loads_and_runs() {
        let mut pb = ProgramBuilder::new("M");
        pb.class("M", "java.lang.Object", |cb| {
            cb.static_method("main", &[], None, |m| {
                m.const_i32(6).const_i32(7).imul().println_i32().ret();
            });
        });
        let p = pb.build_with_stdlib();
        let back = decode_program(&encode_program(&p)).unwrap();
        let r = crate::localvm::run_program(&back);
        assert!(r.errors.is_empty());
        assert_eq!(r.output, vec!["42"]);
    }
}
