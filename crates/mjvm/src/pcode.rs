//! Predecoded (direct-threaded) method bodies.
//!
//! [`Image::load`] already quickens symbolic operands to dense indices, but
//! the classic interpreter still pattern-matches the ~115-variant [`Instr`]
//! enum — re-decoding operands, re-fetching the frame and re-charging the
//! cost model on every retired instruction. [`predecode`] lowers each
//! verified body once, at load time, into a flat array of fixed-size
//! [`MicroOp`]s: operands resolved to raw indices, every statically-known
//! virtual-time cost folded into the op, and the dominant dynamic pairs
//! fused into superinstructions. [`step`] is the direct-threaded executor
//! over that array; it must be observationally identical to
//! [`interp::step`] — same output, same virtual time, same ops count, same
//! quantum boundaries, same traps — which the differential suites assert.
//!
//! ## Micro-op format
//!
//! One micro-op is 16 bytes: `{ op, t, x, c, a, b }` — an opcode byte, a
//! tiny operand `t` (access kind / element type / comparison / depth), a
//! u16 operand `x` (local slot, field slot, signature id, arg count), a
//! precomputed static cost `c` in picoseconds, and two u32 operands
//! `a`/`b` (branch target, class/method id, constant bits — i64/f64
//! constants split lo/hi across `a`/`b`). Strings (literals and trap
//! messages) live in a side pool.
//!
//! Because `c` bakes in per-model costs (`generic_op`, invoke and alloc
//! totals, check costs), a `PImage` is specific to one [`CostModel`]; each
//! node predecodes the shared [`Image`] against its own brand profile.
//! Costs that depend on runtime state — first-vs-repeated heap access, the
//! dynamic array-allocation size — are charged from the model at execution
//! time through the same code path as the classic interpreter, so they are
//! bit-identical.
//!
//! ## Superinstruction fusion
//!
//! `predecode` fuses the dominant dynamic pairs measured by `repro
//! opstats`: the plain pairs (load+getfield, load+arraylen, load+aload,
//! load+load, lcmp/dcmp+branch, iinc+goto) and — the dominant chains
//! under the JavaSplit rewrite, where every heap access is preceded by a
//! Figure-3 DSM check — the check-fused set (check+getfield,
//! check+aload, check+putfield, check+astore, load+check, and the full
//! load+check+getfield triple). Fusion is *position-preserving*: a fused
//! op sits at the index of its first component and the following slots
//! retain the plain remaining components, so every branch target stays
//! valid and a quantum boundary between components resumes exactly like
//! the classic interpreter: the executor retires the components one at a
//! time against the fuel counter, and if fuel runs out in between it
//! materializes the intermediate stack state and parks `pc` on the
//! retained next op. A DSM-check *miss* likewise parks `pc` on the
//! check's own slot (materializing any earlier component), so the retry
//! after the page arrives retires exactly the ops the classic
//! interpreter would.

use crate::cost::{CostModel, Rw};
use crate::heap::ObjPayload;
use crate::instr::{AccessKind, Cmp, ElemTy, Instr};
use crate::interp::{
    access_key, array_load, array_store, cache_hit, pop_frame, run_native, CheckOutcome, Frame,
    MonOutcome, NativeFlow, StepCtx, StepOutcome, StepState, Thread, VmEnv, VmError, NO_ACCESS,
};
use crate::loader::{ClassId, Image, MethodId, SigId};
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Micro-opcode. Grouped by operand decoding, not by theme; the `Fused*`
/// block holds the superinstructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MOp {
    // ---- constants & stack ----
    ConstI32,
    ConstI64,
    ConstF64,
    ConstNull,
    /// Constant from the value side pool (`a` = pool index) — only for the
    /// rare [`Value`] shapes with no inline encoding.
    ConstV,
    LdcStr,
    Dup,
    DupX1,
    PopV,
    SwapV,
    // ---- locals ----
    Load,
    Store,
    IInc,
    // ---- i32 arithmetic ----
    IAdd,
    ISub,
    IMul,
    IDiv,
    IRem,
    INeg,
    IShl,
    IShr,
    IUShr,
    IAnd,
    IOr,
    IXor,
    // ---- i64 arithmetic ----
    LAdd,
    LSub,
    LMul,
    LDiv,
    LRem,
    LNeg,
    // ---- f64 arithmetic ----
    DAdd,
    DSub,
    DMul,
    DDiv,
    DRem,
    DNeg,
    // ---- conversions & compares ----
    I2L,
    I2D,
    L2I,
    L2D,
    D2I,
    D2L,
    LCmp,
    DCmp,
    // ---- control flow ----
    Goto,
    IfICmp,
    IfI,
    IfNull,
    IfNonNull,
    IfACmpEq,
    IfACmpNe,
    // ---- heap ----
    NewObj,
    NewArr,
    ArrLen,
    GetField,
    PutField,
    GetStatic,
    PutStatic,
    ALoad,
    AStore,
    Nop,
    /// Symbolic instruction that survived quickening: traps at execution,
    /// exactly like the classic interpreter (`a` = message pool index).
    Unquick,
    // ---- slow ops: need the environment or whole-thread access ----
    CheckRead,
    CheckWrite,
    MonEnter,
    MonExit,
    DsmMonEnter,
    DsmMonExit,
    VolAcquire,
    VolRelease,
    SpawnDsm,
    CallStatic,
    CallSpecial,
    CallVirtual,
    Ret,
    RetVal,
    // ---- superinstructions (fused pairs) ----
    /// `Load x; GetFieldQ{slot: a, kind: t}`.
    LoadGetField,
    /// `Load x; ArrayLen`.
    LoadArrLen,
    /// `Load x; ALoad(t)` — the local holds the element index.
    LoadALoad,
    /// `LCmp; IfI(t, a)`.
    LCmpIfI,
    /// `DCmp; IfI(t, a)`.
    DCmpIfI,
    /// `IInc(x, a as i32); Goto(b)`.
    IIncGoto,
    /// `Load x; Load a` — two pushes, one dispatch.
    LoadLoad,
    /// `Load x; DsmCheckRead{depth: t, kind: a}` — `b` carries the
    /// precomputed check cost (`c` is the load's generic cost).
    LoadCheckRead,
    /// `DsmCheckRead{depth: 0, kind: a}; GetFieldQ{slot: x, kind: t}` —
    /// `c` is the check cost; the field access is always cache-cold
    /// because the check clears the repeated-access cache.
    CheckGetField,
    /// `Load x; DsmCheckRead{depth: 0, kind: t>>4}; GetFieldQ{slot: b,
    /// kind: t&0xf}` — the Figure-3 hot path as one op. `c` is the load's
    /// generic cost, `a` the check cost.
    LoadCheckGetField,
    /// `DsmCheckRead{depth: 1, kind: Array}; ALoad(t)` — `c` is the check
    /// cost.
    CheckALoad,
    /// `DsmCheckWrite{depth: 1, kind: a}; PutFieldQ{slot: x, kind: t}` —
    /// `c` is the check cost.
    CheckWPutField,
    /// `DsmCheckWrite{depth: 2, kind: Array}; AStore(t)` — `c` is the
    /// check cost.
    CheckWAStore,
}

/// One predecoded instruction; see the module docs for the field layout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroOp {
    pub op: MOp,
    /// Tiny operand: access kind, element type, comparison, check depth or
    /// flag, depending on `op`.
    pub t: u8,
    /// Short operand: local slot, field slot, signature id or arg count.
    pub x: u16,
    /// Precomputed static virtual-time cost in picoseconds.
    pub c: u32,
    /// Wide operand: branch target, class/method id, constant bits (lo).
    pub a: u32,
    /// Second wide operand: constant bits (hi), fused-goto target.
    pub b: u32,
}

impl MicroOp {
    fn new(op: MOp) -> MicroOp {
        MicroOp { op, t: 0, x: 0, c: 0, a: 0, b: 0 }
    }
}

/// A predecoded method body (empty for natives).
#[derive(Debug, Clone, Default)]
pub struct PMethod {
    pub ops: Vec<MicroOp>,
}

/// All method bodies of an [`Image`], predecoded against one [`CostModel`].
#[derive(Debug)]
pub struct PImage {
    pub methods: Vec<PMethod>,
    /// String side pool: literals for `LdcStr`, messages for `Unquick`.
    pub strings: Vec<Arc<str>>,
    /// Value side pool for `ConstV`.
    pub values: Vec<Value>,
    /// Superinstructions formed across the image (observability/tests).
    pub fused: u64,
}

// ---- tiny-operand encodings ----

fn kind_code(k: AccessKind) -> u8 {
    match k {
        AccessKind::Field => 0,
        AccessKind::Static => 1,
        AccessKind::Array => 2,
    }
}

fn kind_from(t: u8) -> AccessKind {
    match t {
        0 => AccessKind::Field,
        1 => AccessKind::Static,
        _ => AccessKind::Array,
    }
}

fn elem_code(e: ElemTy) -> u8 {
    match e {
        ElemTy::I32 => 0,
        ElemTy::I64 => 1,
        ElemTy::F64 => 2,
        ElemTy::Ref => 3,
    }
}

fn elem_from(t: u8) -> ElemTy {
    match t {
        0 => ElemTy::I32,
        1 => ElemTy::I64,
        2 => ElemTy::F64,
        _ => ElemTy::Ref,
    }
}

fn cmp_code(c: Cmp) -> u8 {
    match c {
        Cmp::Eq => 0,
        Cmp::Ne => 1,
        Cmp::Lt => 2,
        Cmp::Le => 3,
        Cmp::Gt => 4,
        Cmp::Ge => 5,
    }
}

fn cmp_from(t: u8) -> Cmp {
    match t {
        0 => Cmp::Eq,
        1 => Cmp::Ne,
        2 => Cmp::Lt,
        3 => Cmp::Le,
        4 => Cmp::Gt,
        _ => Cmp::Ge,
    }
}

fn split_u64(v: u64) -> (u32, u32) {
    (v as u32, (v >> 32) as u32)
}

fn join_u64(a: u32, b: u32) -> u64 {
    a as u64 | ((b as u64) << 32)
}

// ---- predecode ----

struct Pools {
    strings: Vec<Arc<str>>,
    values: Vec<Value>,
    seen: HashMap<Arc<str>, u32>,
}

impl Pools {
    fn intern(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&i) = self.seen.get(s) {
            return i;
        }
        let i = self.strings.len() as u32;
        self.strings.push(s.clone());
        self.seen.insert(s.clone(), i);
        i
    }

    fn intern_owned(&mut self, s: String) -> u32 {
        self.intern(&Arc::from(s.as_str()))
    }
}

/// Lower one quickened instruction into its micro-op. Total: every `Instr`
/// has a lowering, with symbolic leftovers mapping to [`MOp::Unquick`].
fn lower(ins: &Instr, image: &Image, model: &CostModel, pools: &mut Pools) -> MicroOp {
    let mut m;
    match ins {
        Instr::Const(v) => match v {
            Value::I32(i) => {
                m = MicroOp::new(MOp::ConstI32);
                m.a = *i as u32;
            }
            Value::I64(i) => {
                m = MicroOp::new(MOp::ConstI64);
                (m.a, m.b) = split_u64(*i as u64);
            }
            Value::F64(f) => {
                m = MicroOp::new(MOp::ConstF64);
                (m.a, m.b) = split_u64(f.to_bits());
            }
            Value::Null => m = MicroOp::new(MOp::ConstNull),
            Value::Ref(_) => {
                // Builders cannot embed heap references, but the lowering
                // stays total: park the value in the side pool.
                m = MicroOp::new(MOp::ConstV);
                m.a = pools.values.len() as u32;
                pools.values.push(*v);
            }
        },
        Instr::LdcStr(s) => {
            m = MicroOp::new(MOp::LdcStr);
            m.a = pools.intern(s);
            m.c = model.alloc as u32;
        }
        Instr::Dup => m = MicroOp::new(MOp::Dup),
        Instr::DupX1 => m = MicroOp::new(MOp::DupX1),
        Instr::Pop => m = MicroOp::new(MOp::PopV),
        Instr::Swap => m = MicroOp::new(MOp::SwapV),
        Instr::Load(n) => {
            m = MicroOp::new(MOp::Load);
            m.x = *n;
        }
        Instr::Store(n) => {
            m = MicroOp::new(MOp::Store);
            m.x = *n;
        }
        Instr::IInc(n, d) => {
            m = MicroOp::new(MOp::IInc);
            m.x = *n;
            m.a = *d as u32;
        }
        Instr::IAdd => m = MicroOp::new(MOp::IAdd),
        Instr::ISub => m = MicroOp::new(MOp::ISub),
        Instr::IMul => m = MicroOp::new(MOp::IMul),
        Instr::IDiv => m = MicroOp::new(MOp::IDiv),
        Instr::IRem => m = MicroOp::new(MOp::IRem),
        Instr::INeg => m = MicroOp::new(MOp::INeg),
        Instr::IShl => m = MicroOp::new(MOp::IShl),
        Instr::IShr => m = MicroOp::new(MOp::IShr),
        Instr::IUShr => m = MicroOp::new(MOp::IUShr),
        Instr::IAnd => m = MicroOp::new(MOp::IAnd),
        Instr::IOr => m = MicroOp::new(MOp::IOr),
        Instr::IXor => m = MicroOp::new(MOp::IXor),
        Instr::LAdd => m = MicroOp::new(MOp::LAdd),
        Instr::LSub => m = MicroOp::new(MOp::LSub),
        Instr::LMul => m = MicroOp::new(MOp::LMul),
        Instr::LDiv => m = MicroOp::new(MOp::LDiv),
        Instr::LRem => m = MicroOp::new(MOp::LRem),
        Instr::LNeg => m = MicroOp::new(MOp::LNeg),
        Instr::DAdd => m = MicroOp::new(MOp::DAdd),
        Instr::DSub => m = MicroOp::new(MOp::DSub),
        Instr::DMul => m = MicroOp::new(MOp::DMul),
        Instr::DDiv => m = MicroOp::new(MOp::DDiv),
        Instr::DRem => m = MicroOp::new(MOp::DRem),
        Instr::DNeg => m = MicroOp::new(MOp::DNeg),
        Instr::I2L => m = MicroOp::new(MOp::I2L),
        Instr::I2D => m = MicroOp::new(MOp::I2D),
        Instr::L2I => m = MicroOp::new(MOp::L2I),
        Instr::L2D => m = MicroOp::new(MOp::L2D),
        Instr::D2I => m = MicroOp::new(MOp::D2I),
        Instr::D2L => m = MicroOp::new(MOp::D2L),
        Instr::LCmp => m = MicroOp::new(MOp::LCmp),
        Instr::DCmp => m = MicroOp::new(MOp::DCmp),
        Instr::Goto(t) => {
            m = MicroOp::new(MOp::Goto);
            m.a = *t as u32;
        }
        Instr::IfICmp(c, t) => {
            m = MicroOp::new(MOp::IfICmp);
            m.t = cmp_code(*c);
            m.a = *t as u32;
        }
        Instr::IfI(c, t) => {
            m = MicroOp::new(MOp::IfI);
            m.t = cmp_code(*c);
            m.a = *t as u32;
        }
        Instr::IfNull(t) => {
            m = MicroOp::new(MOp::IfNull);
            m.a = *t as u32;
        }
        Instr::IfNonNull(t) => {
            m = MicroOp::new(MOp::IfNonNull);
            m.a = *t as u32;
        }
        Instr::IfACmpEq(t) => {
            m = MicroOp::new(MOp::IfACmpEq);
            m.a = *t as u32;
        }
        Instr::IfACmpNe(t) => {
            m = MicroOp::new(MOp::IfACmpNe);
            m.a = *t as u32;
        }
        Instr::NewQ(cid) => {
            m = MicroOp::new(MOp::NewObj);
            m.a = cid.0;
            let nfields = image.class(*cid).field_tys.len() as u64;
            m.c = (model.alloc + model.alloc_per_byte * (nfields * 8)) as u32;
        }
        Instr::NewArray(e) => {
            m = MicroOp::new(MOp::NewArr);
            m.t = elem_code(*e);
        }
        Instr::ArrayLen => m = MicroOp::new(MOp::ArrLen),
        Instr::GetFieldQ { slot, kind_cost } => {
            m = MicroOp::new(MOp::GetField);
            m.x = *slot;
            m.t = kind_code(*kind_cost);
        }
        Instr::PutFieldQ { slot, kind_cost } => {
            m = MicroOp::new(MOp::PutField);
            m.x = *slot;
            m.t = kind_code(*kind_cost);
        }
        Instr::GetStaticQ { class, slot, free } => {
            m = MicroOp::new(MOp::GetStatic);
            m.a = class.0;
            m.x = *slot;
            m.t = *free as u8;
        }
        Instr::PutStaticQ { class, slot } => {
            m = MicroOp::new(MOp::PutStatic);
            m.a = class.0;
            m.x = *slot;
        }
        Instr::ALoad(e) => {
            m = MicroOp::new(MOp::ALoad);
            m.t = elem_code(*e);
        }
        Instr::AStore(e) => {
            m = MicroOp::new(MOp::AStore);
            m.t = elem_code(*e);
        }
        Instr::DsmCheckRead { depth, kind } => {
            m = MicroOp::new(MOp::CheckRead);
            m.t = *depth;
            m.x = kind_code(*kind) as u16;
            m.c = model.access_cost(*kind, Rw::Read).check() as u32;
        }
        Instr::DsmCheckWrite { depth, kind } => {
            m = MicroOp::new(MOp::CheckWrite);
            m.t = *depth;
            m.x = kind_code(*kind) as u16;
            m.c = model.access_cost(*kind, Rw::Write).check() as u32;
        }
        Instr::MonitorEnter => m = MicroOp::new(MOp::MonEnter),
        Instr::MonitorExit => m = MicroOp::new(MOp::MonExit),
        Instr::DsmMonitorEnter => m = MicroOp::new(MOp::DsmMonEnter),
        Instr::DsmMonitorExit => m = MicroOp::new(MOp::DsmMonExit),
        Instr::DsmVolatileAcquire { depth } => {
            m = MicroOp::new(MOp::VolAcquire);
            m.t = *depth;
        }
        Instr::DsmVolatileRelease => m = MicroOp::new(MOp::VolRelease),
        Instr::DsmSpawn => m = MicroOp::new(MOp::SpawnDsm),
        Instr::InvokeStaticQ(mid) | Instr::InvokeSpecialQ(mid) => {
            m = MicroOp::new(if matches!(ins, Instr::InvokeStaticQ(_)) {
                MOp::CallStatic
            } else {
                MOp::CallSpecial
            });
            m.a = mid.0;
            let callee = image.method(*mid);
            let nargs = callee.sig.nargs() + if callee.is_static { 0 } else { 1 };
            m.x = nargs as u16;
            m.c = (model.invoke + model.invoke_per_arg * nargs as u64) as u32;
        }
        Instr::InvokeVirtualQ { sig, nargs, ret: _, site } => {
            m = MicroOp::new(MOp::CallVirtual);
            m.x = sig.0;
            m.t = *nargs;
            m.a = *site;
            m.c = (model.invoke + model.invoke_per_arg * (*nargs as u64 + 1)) as u32;
        }
        Instr::Return => m = MicroOp::new(MOp::Ret),
        Instr::ReturnVal => m = MicroOp::new(MOp::RetVal),
        Instr::Nop => m = MicroOp::new(MOp::Nop),
        sym @ (Instr::New(_)
        | Instr::GetField(..)
        | Instr::PutField(..)
        | Instr::GetStatic(..)
        | Instr::PutStatic(..)
        | Instr::InvokeStatic(..)
        | Instr::InvokeVirtual(_)
        | Instr::InvokeSpecial(..)) => {
            m = MicroOp::new(MOp::Unquick);
            m.a = pools.intern_owned(format!("{sym:?}"));
        }
    }
    // Every cost not set explicitly above is the instruction's static cost
    // (generic_op, generic_op/2 for Nop, 0 for dynamic-cost ops).
    if m.c == 0 {
        m.c = model.static_cost(ins) as u32;
    }
    m
}

/// Try to fuse the pair starting at `i`; the fused op carries both
/// components' operands and replaces slot `i` only (slot `i+1` keeps the
/// plain second component as the quantum-boundary landing pad).
///
/// The DSM-check pairs mirror the rewriter's four insertion shapes
/// (`checks.rs`): read depth 0 before getfield, read depth 1 before
/// aload, write depth 1 before putfield, write depth 2 before astore.
/// Under the JavaSplit configuration those chains dominate the dynamic
/// pair profile (`repro opstats`), and the check's clearing of the
/// repeated-access cache makes the fused access deterministically
/// cache-cold — so its dynamic cost is the same as the classic two-step
/// sequence.
fn fuse(a: &Instr, b: &Instr, model: &CostModel) -> Option<MicroOp> {
    let mut m;
    match (a, b) {
        (Instr::Load(n), Instr::GetFieldQ { slot, kind_cost }) => {
            m = MicroOp::new(MOp::LoadGetField);
            m.x = *n;
            m.a = *slot as u32;
            m.t = kind_code(*kind_cost);
        }
        (Instr::Load(n), Instr::ArrayLen) => {
            m = MicroOp::new(MOp::LoadArrLen);
            m.x = *n;
        }
        (Instr::Load(n), Instr::ALoad(e)) => {
            m = MicroOp::new(MOp::LoadALoad);
            m.x = *n;
            m.t = elem_code(*e);
        }
        (Instr::LCmp, Instr::IfI(c, t)) => {
            m = MicroOp::new(MOp::LCmpIfI);
            m.t = cmp_code(*c);
            m.a = *t as u32;
        }
        (Instr::DCmp, Instr::IfI(c, t)) => {
            m = MicroOp::new(MOp::DCmpIfI);
            m.t = cmp_code(*c);
            m.a = *t as u32;
        }
        (Instr::IInc(n, d), Instr::Goto(t)) => {
            m = MicroOp::new(MOp::IIncGoto);
            m.x = *n;
            m.a = *d as u32;
            m.b = *t as u32;
        }
        (Instr::Load(n1), Instr::Load(n2)) => {
            m = MicroOp::new(MOp::LoadLoad);
            m.x = *n1;
            m.a = *n2 as u32;
        }
        (Instr::Load(n), Instr::DsmCheckRead { depth, kind }) => {
            m = MicroOp::new(MOp::LoadCheckRead);
            m.x = *n;
            m.t = *depth;
            m.a = kind_code(*kind) as u32;
            m.b = model.access_cost(*kind, Rw::Read).check() as u32;
        }
        (Instr::DsmCheckRead { depth: 0, kind }, Instr::GetFieldQ { slot, kind_cost }) => {
            m = MicroOp::new(MOp::CheckGetField);
            m.x = *slot;
            m.t = kind_code(*kind_cost);
            m.a = kind_code(*kind) as u32;
            m.c = model.access_cost(*kind, Rw::Read).check() as u32;
        }
        (Instr::DsmCheckRead { depth: 1, kind: AccessKind::Array }, Instr::ALoad(e)) => {
            m = MicroOp::new(MOp::CheckALoad);
            m.t = elem_code(*e);
            m.c = model.access_cost(AccessKind::Array, Rw::Read).check() as u32;
        }
        (Instr::DsmCheckWrite { depth: 1, kind }, Instr::PutFieldQ { slot, kind_cost }) => {
            m = MicroOp::new(MOp::CheckWPutField);
            m.x = *slot;
            m.t = kind_code(*kind_cost);
            m.a = kind_code(*kind) as u32;
            m.c = model.access_cost(*kind, Rw::Write).check() as u32;
        }
        (Instr::DsmCheckWrite { depth: 2, kind: AccessKind::Array }, Instr::AStore(e)) => {
            m = MicroOp::new(MOp::CheckWAStore);
            m.t = elem_code(*e);
            m.c = model.access_cost(AccessKind::Array, Rw::Write).check() as u32;
        }
        _ => return None,
    }
    // Arms that didn't pin a cost above are pairs of generic-cost ops: one
    // `c` serves both retirements (check costs are always nonzero).
    if m.c == 0 {
        m.c = model.generic_op as u32;
    }
    Some(m)
}

/// Try to fuse the *triple* starting at `i` — the rewriter's complete
/// Figure-3 read path `load obj; check_read; getfield`. Tried before the
/// pair fuser; slots `i+1`/`i+2` keep the plain check and getfield as
/// landing pads (and `i+1` usually re-fuses into [`MOp::CheckGetField`]).
fn fuse3(a: &Instr, b: &Instr, c: &Instr, model: &CostModel) -> Option<MicroOp> {
    match (a, b, c) {
        (
            Instr::Load(n),
            Instr::DsmCheckRead { depth: 0, kind },
            Instr::GetFieldQ { slot, kind_cost },
        ) => {
            let mut m = MicroOp::new(MOp::LoadCheckGetField);
            m.x = *n;
            m.t = kind_code(*kind_cost) | (kind_code(*kind) << 4);
            m.a = model.access_cost(*kind, Rw::Read).check() as u32;
            m.b = *slot as u32;
            m.c = model.generic_op as u32;
            Some(m)
        }
        _ => None,
    }
}

/// Predecode every method body of `image` against `model`.
pub fn predecode(image: &Image, model: &CostModel) -> PImage {
    let mut pools = Pools { strings: Vec::new(), values: Vec::new(), seen: HashMap::new() };
    let mut fused = 0u64;
    let methods = image
        .methods
        .iter()
        .map(|rm| {
            let mut ops: Vec<MicroOp> =
                rm.code.iter().map(|ins| lower(ins, image, model, &mut pools)).collect();
            // Indexes both `rm.code` (windows of 2–3) and `ops` (write at i),
            // which the iterator form can't express.
            #[allow(clippy::needless_range_loop)]
            for i in 0..rm.code.len().saturating_sub(1) {
                if i + 2 < rm.code.len() {
                    if let Some(f) = fuse3(&rm.code[i], &rm.code[i + 1], &rm.code[i + 2], model) {
                        ops[i] = f;
                        fused += 1;
                        continue;
                    }
                }
                if let Some(f) = fuse(&rm.code[i], &rm.code[i + 1], model) {
                    ops[i] = f;
                    fused += 1;
                }
            }
            PMethod { ops }
        })
        .collect();
    PImage { methods, strings: pools.strings, values: pools.values, fused }
}

// ---- the direct-threaded executor ----

/// Run `thread` for up to `fuel` instructions over the predecoded image.
///
/// Observationally identical to [`crate::interp::step`], but decode-free:
/// one dispatch loop over 16-byte micro-ops, with the current frame
/// re-borrowed per iteration. The per-iteration borrow is what keeps
/// *every* op — including the environment ops that need whole-thread
/// access (DSM checks, monitors, invokes) — inside the same loop: an arm
/// simply stops using `frame` before it touches `thread`, so the hot
/// Figure-3 path (check hits, cached accesses) never pays a loop-exit or
/// re-entry. Only arms that change the frame stack (calls, returns) jump
/// back to `'quantum` to re-pin the method and code slice.
pub fn step<E: VmEnv>(
    thread: &mut Thread,
    ctx: &mut StepCtx<'_, E>,
    pim: &PImage,
    fuel: u32,
) -> Result<StepOutcome, VmError> {
    let fuel = fuel as u64;
    let mut cost: u64 = 0;
    let mut ops: u64 = 0;
    let model = ctx.cost;
    let image = ctx.image;

    'quantum: loop {
        if ops >= fuel {
            return Ok(StepOutcome { state: StepState::Running, cost, ops });
        }

        // --- synchronized-method entry protocol ---
        {
            let frame = match thread.frames.last_mut() {
                Some(f) => f,
                None => return Ok(StepOutcome { state: StepState::Done, cost, ops }),
            };
            if !frame.entered_monitor {
                let recv = frame.locals[0].as_ref();
                match ctx.env.monitor_enter(ctx.heap, thread, recv) {
                    MonOutcome::Entered { cost: c } => {
                        cost += c;
                        thread.frames.last_mut().unwrap().entered_monitor = true;
                    }
                    MonOutcome::Blocked { cost: c } => {
                        cost += c;
                        return Ok(StepOutcome { state: StepState::Blocked, cost, ops });
                    }
                }
            }
        }

        let frame_idx = thread.frames.len() - 1;
        let method_id = thread.frames[frame_idx].method;
        let method = image.method(method_id);
        let code: &[MicroOp] = &pim.methods[method_id.0 as usize].ops;

        // The inline access cache lives in a local while this frame runs
        // and is written back to the thread wherever control can leave
        // this function or reach the environment.
        let mut last_access = thread.last_access;

        {
            loop {
                if ops >= fuel {
                    thread.last_access = last_access;
                    return Ok(StepOutcome { state: StepState::Running, cost, ops });
                }
                let frame: &mut Frame = &mut thread.frames[frame_idx];
                let pc = frame.pc;
                let Some(&op) = code.get(pc) else {
                    // Fell off the end of a void method: implicit return,
                    // no op retired.
                    thread.last_access = last_access;
                    if pop_frame(thread, ctx, None, &mut cost)? {
                        return Ok(StepOutcome { state: StepState::Done, cost, ops });
                    }
                    continue 'quantum;
                };
                macro_rules! fpop {
                    () => {
                        match frame.stack.pop() {
                            Some(v) => v,
                            None => {
                                return Err(VmError::StackUnderflow {
                                    method: method.sig.to_string(),
                                    pc: frame.pc,
                                })
                            }
                        }
                    };
                }
                macro_rules! binop_i32 {
                    ($f:expr) => {{
                        let b = fpop!().as_i32();
                        let a = fpop!().as_i32();
                        frame.stack.push(Value::I32($f(a, b)));
                        frame.pc += 1;
                    }};
                }
                macro_rules! binop_i64 {
                    ($f:expr) => {{
                        let b = fpop!().as_i64();
                        let a = fpop!().as_i64();
                        frame.stack.push(Value::I64($f(a, b)));
                        frame.pc += 1;
                    }};
                }
                macro_rules! binop_f64 {
                    ($f:expr) => {{
                        let b = fpop!().as_f64();
                        let a = fpop!().as_f64();
                        frame.stack.push(Value::F64($f(a, b)));
                        frame.pc += 1;
                    }};
                }
                // Like `fpop!` but against an explicit frame borrow (the
                // check-fused arms re-borrow the frame after the env call)
                // and an explicit component pc for the error report.
                macro_rules! vpop {
                    ($f:expr, $pc:expr) => {
                        match $f.stack.pop() {
                            Some(v) => v,
                            None => {
                                return Err(VmError::StackUnderflow {
                                    method: method.sig.to_string(),
                                    pc: $pc,
                                })
                            }
                        }
                    };
                }
                macro_rules! nonnull {
                    ($v:expr, $pc:expr) => {
                        match $v.as_opt_ref() {
                            Some(r) => r,
                            None => {
                                return Err(VmError::NullDeref {
                                    method: method.sig.to_string(),
                                    pc: $pc,
                                })
                            }
                        }
                    };
                }

                // Retire the op: count it and charge its precomputed static
                // cost (dynamic components are added per-arm below), exactly
                // like the classic `ops += 1; cost += static_cost(ins)`.
                macro_rules! charge {
                    () => {
                        ops += 1;
                        cost += op.c as u64;
                    };
                }
                match op.op {
                    // ---- environment ops: the arm reads what it needs
                    // from `frame`, lets that borrow lapse, and hands the
                    // whole thread to the environment — no loop exit. ----
                    MOp::CheckRead | MOp::CheckWrite => {
                        charge!();
                        let is_write = matches!(op.op, MOp::CheckWrite);
                        let slot = match frame.stack.len().checked_sub(1 + op.t as usize) {
                            Some(s) => s,
                            None => {
                                return Err(VmError::StackUnderflow {
                                    method: method.sig.to_string(),
                                    pc,
                                })
                            }
                        };
                        let obj = nonnull!(frame.stack[slot], pc);
                        let kind = kind_from(op.x as u8);
                        // Element index (just above the array ref) for
                        // array accesses — region-granular checks need it.
                        let idx = if matches!(kind, AccessKind::Array) && op.t >= 1 {
                            match frame.stack[slot + 1] {
                                Value::I32(i) => Some(i),
                                _ => None,
                            }
                        } else {
                            None
                        };
                        // The check defeats the repeated-access optimization.
                        last_access = NO_ACCESS;
                        thread.last_access = NO_ACCESS;
                        let outcome = if is_write {
                            ctx.env.check_write(ctx.heap, thread, obj, kind, idx)
                        } else {
                            ctx.env.check_read(ctx.heap, thread, obj, kind, idx)
                        };
                        match outcome {
                            CheckOutcome::Proceed => thread.frames[frame_idx].pc = pc + 1,
                            CheckOutcome::Miss => {
                                return Ok(StepOutcome { state: StepState::Blocked, cost, ops })
                            }
                        }
                    }

                    MOp::MonEnter | MOp::DsmMonEnter => {
                        charge!();
                        let dsm = matches!(op.op, MOp::DsmMonEnter);
                        let top = match frame.stack.last() {
                            Some(&v) => v,
                            None => {
                                return Err(VmError::StackUnderflow {
                                    method: method.sig.to_string(),
                                    pc,
                                })
                            }
                        };
                        let obj = nonnull!(top, pc);
                        thread.last_access = last_access;
                        let out = if dsm {
                            ctx.env.dsm_monitor_enter(ctx.heap, thread, obj)
                        } else {
                            ctx.env.monitor_enter(ctx.heap, thread, obj)
                        };
                        match out {
                            MonOutcome::Entered { cost: c } => {
                                cost += c;
                                let f = &mut thread.frames[frame_idx];
                                f.stack.pop();
                                f.pc = pc + 1;
                            }
                            MonOutcome::Blocked { cost: c } => {
                                cost += c;
                                return Ok(StepOutcome { state: StepState::Blocked, cost, ops });
                            }
                        }
                    }
                    MOp::MonExit | MOp::DsmMonExit => {
                        charge!();
                        let dsm = matches!(op.op, MOp::DsmMonExit);
                        let obj = nonnull!(fpop!(), pc);
                        thread.last_access = last_access;
                        let c = if dsm {
                            ctx.env.dsm_monitor_exit(ctx.heap, thread, obj)?
                        } else {
                            ctx.env.monitor_exit(ctx.heap, thread, obj)?
                        };
                        cost += c;
                        thread.frames[frame_idx].pc = pc + 1;
                    }
                    MOp::VolAcquire => {
                        charge!();
                        let slot = match frame.stack.len().checked_sub(1 + op.t as usize) {
                            Some(s) => s,
                            None => {
                                return Err(VmError::StackUnderflow {
                                    method: method.sig.to_string(),
                                    pc,
                                })
                            }
                        };
                        let obj = nonnull!(frame.stack[slot], pc);
                        thread.last_access = last_access;
                        match ctx.env.volatile_acquire(ctx.heap, thread, obj) {
                            MonOutcome::Entered { cost: c } => {
                                cost += c;
                                let f = &mut thread.frames[frame_idx];
                                f.vol_stack.push(obj);
                                f.pc = pc + 1;
                            }
                            MonOutcome::Blocked { cost: c } => {
                                cost += c;
                                return Ok(StepOutcome { state: StepState::Blocked, cost, ops });
                            }
                        }
                    }
                    MOp::VolRelease => {
                        charge!();
                        let obj = match frame.vol_stack.pop() {
                            Some(o) => o,
                            None => return Err(VmError::VolatileStackEmpty),
                        };
                        thread.last_access = last_access;
                        cost += ctx.env.volatile_release(ctx.heap, thread, obj)?;
                        thread.frames[frame_idx].pc = pc + 1;
                    }
                    MOp::SpawnDsm => {
                        charge!();
                        let tobj = nonnull!(fpop!(), pc);
                        frame.pc = pc + 1;
                        thread.last_access = last_access;
                        cost += ctx.env.spawn(ctx.heap, thread, tobj, true)?;
                    }

                    // ---- frame-stack ops: handled here, then back to
                    // `'quantum` to re-pin method and code. ----
                    MOp::CallStatic | MOp::CallSpecial => {
                        charge!();
                        let mid = MethodId(op.a);
                        let callee = image.method(mid);
                        let nargs = op.x as usize;
                        if frame.stack.len() < nargs {
                            return Err(VmError::StackUnderflow {
                                method: method.sig.to_string(),
                                pc,
                            });
                        }
                        let args: Vec<Value> = frame.stack.split_off(frame.stack.len() - nargs);
                        frame.pc = pc + 1;
                        thread.last_access = last_access;
                        if let Some(native) = callee.native {
                            match run_native(native, args, thread, ctx, frame_idx, &mut cost)? {
                                NativeFlow::Continue => {}
                                NativeFlow::Block => {
                                    return Ok(StepOutcome {
                                        state: StepState::Blocked,
                                        cost,
                                        ops,
                                    })
                                }
                                NativeFlow::EndQuantum => {
                                    return Ok(StepOutcome {
                                        state: StepState::Running,
                                        cost,
                                        ops,
                                    })
                                }
                            }
                        } else {
                            if !callee.is_static && args[0].is_null() {
                                return Err(VmError::NullDeref {
                                    method: callee.sig.to_string(),
                                    pc,
                                });
                            }
                            let f = Frame::new(mid, callee.max_locals, args, callee.is_synchronized);
                            thread.frames.push(f);
                        }
                        continue 'quantum;
                    }
                    MOp::CallVirtual => {
                        charge!();
                        let total = op.t as usize + 1;
                        if frame.stack.len() < total {
                            return Err(VmError::StackUnderflow {
                                method: method.sig.to_string(),
                                pc,
                            });
                        }
                        let recv_slot = frame.stack.len() - total;
                        let recv = nonnull!(frame.stack[recv_slot], pc);
                        let args: Vec<Value> = frame.stack.split_off(recv_slot);
                        frame.pc = pc + 1;
                        let cls = ctx.heap.get(recv).class;
                        let mid = match image.dispatch_cached(op.a, cls, SigId(op.x)) {
                            Some(m) => m,
                            None => {
                                return Err(VmError::NoSuchMethod(format!(
                                    "{}.{}",
                                    image.class(cls).name,
                                    image.sigs[op.x as usize]
                                )))
                            }
                        };
                        let callee = image.method(mid);
                        thread.last_access = last_access;
                        if let Some(native) = callee.native {
                            match run_native(native, args, thread, ctx, frame_idx, &mut cost)? {
                                NativeFlow::Continue => {}
                                NativeFlow::Block => {
                                    return Ok(StepOutcome {
                                        state: StepState::Blocked,
                                        cost,
                                        ops,
                                    })
                                }
                                NativeFlow::EndQuantum => {
                                    return Ok(StepOutcome {
                                        state: StepState::Running,
                                        cost,
                                        ops,
                                    })
                                }
                            }
                        } else {
                            let f = Frame::new(mid, callee.max_locals, args, callee.is_synchronized);
                            thread.frames.push(f);
                        }
                        continue 'quantum;
                    }

                    MOp::Ret => {
                        charge!();
                        thread.last_access = last_access;
                        if pop_frame(thread, ctx, None, &mut cost)? {
                            return Ok(StepOutcome { state: StepState::Done, cost, ops });
                        }
                        continue 'quantum;
                    }
                    MOp::RetVal => {
                        charge!();
                        let v = fpop!();
                        thread.last_access = last_access;
                        if pop_frame(thread, ctx, Some(v), &mut cost)? {
                            return Ok(StepOutcome { state: StepState::Done, cost, ops });
                        }
                        continue 'quantum;
                    }

                    MOp::ConstI32 => {
                        charge!();
                        frame.stack.push(Value::I32(op.a as i32));
                        frame.pc = pc + 1;
                    }
                    MOp::ConstI64 => {
                        charge!();
                        frame.stack.push(Value::I64(join_u64(op.a, op.b) as i64));
                        frame.pc = pc + 1;
                    }
                    MOp::ConstF64 => {
                        charge!();
                        frame.stack.push(Value::F64(f64::from_bits(join_u64(op.a, op.b))));
                        frame.pc = pc + 1;
                    }
                    MOp::ConstNull => {
                        charge!();
                        frame.stack.push(Value::Null);
                        frame.pc = pc + 1;
                    }
                    MOp::ConstV => {
                        charge!();
                        frame.stack.push(pim.values[op.a as usize]);
                        frame.pc = pc + 1;
                    }
                    MOp::LdcStr => {
                        charge!();
                        let r = ctx.heap.intern_str(image.string_class, &pim.strings[op.a as usize]);
                        frame.stack.push(Value::Ref(r));
                        frame.pc = pc + 1;
                    }
                    MOp::Dup => {
                        charge!();
                        let v = match frame.stack.last() {
                            Some(v) => *v,
                            None => {
                                return Err(VmError::StackUnderflow {
                                    method: method.sig.to_string(),
                                    pc,
                                })
                            }
                        };
                        frame.stack.push(v);
                        frame.pc = pc + 1;
                    }
                    MOp::DupX1 => {
                        charge!();
                        let b = fpop!();
                        let a = fpop!();
                        frame.stack.push(b);
                        frame.stack.push(a);
                        frame.stack.push(b);
                        frame.pc = pc + 1;
                    }
                    MOp::PopV => {
                        charge!();
                        fpop!();
                        frame.pc = pc + 1;
                    }
                    MOp::SwapV => {
                        charge!();
                        let b = fpop!();
                        let a = fpop!();
                        frame.stack.push(b);
                        frame.stack.push(a);
                        frame.pc = pc + 1;
                    }
                    MOp::Load => {
                        charge!();
                        frame.stack.push(frame.locals[op.x as usize]);
                        frame.pc = pc + 1;
                    }
                    MOp::Store => {
                        charge!();
                        let v = fpop!();
                        frame.locals[op.x as usize] = v;
                        frame.pc = pc + 1;
                    }
                    MOp::IInc => {
                        charge!();
                        let v = frame.locals[op.x as usize].as_i32();
                        frame.locals[op.x as usize] = Value::I32(v.wrapping_add(op.a as i32));
                        frame.pc = pc + 1;
                    }

                    MOp::IAdd => {
                        charge!();
                        binop_i32!(i32::wrapping_add)
                    }
                    MOp::ISub => {
                        charge!();
                        binop_i32!(i32::wrapping_sub)
                    }
                    MOp::IMul => {
                        charge!();
                        binop_i32!(i32::wrapping_mul)
                    }
                    MOp::IDiv => {
                        charge!();
                        let b = fpop!().as_i32();
                        let a = fpop!().as_i32();
                        if b == 0 {
                            return Err(VmError::DivByZero { method: method.sig.to_string(), pc });
                        }
                        frame.stack.push(Value::I32(a.wrapping_div(b)));
                        frame.pc = pc + 1;
                    }
                    MOp::IRem => {
                        charge!();
                        let b = fpop!().as_i32();
                        let a = fpop!().as_i32();
                        if b == 0 {
                            return Err(VmError::DivByZero { method: method.sig.to_string(), pc });
                        }
                        frame.stack.push(Value::I32(a.wrapping_rem(b)));
                        frame.pc = pc + 1;
                    }
                    MOp::INeg => {
                        charge!();
                        let a = fpop!().as_i32();
                        frame.stack.push(Value::I32(a.wrapping_neg()));
                        frame.pc = pc + 1;
                    }
                    MOp::IShl => {
                        charge!();
                        binop_i32!(|a: i32, b: i32| a.wrapping_shl(b as u32 & 31))
                    }
                    MOp::IShr => {
                        charge!();
                        binop_i32!(|a: i32, b: i32| a.wrapping_shr(b as u32 & 31))
                    }
                    MOp::IUShr => {
                        charge!();
                        binop_i32!(|a: i32, b: i32| ((a as u32).wrapping_shr(b as u32 & 31))
                            as i32)
                    }
                    MOp::IAnd => {
                        charge!();
                        binop_i32!(|a, b| a & b)
                    }
                    MOp::IOr => {
                        charge!();
                        binop_i32!(|a, b| a | b)
                    }
                    MOp::IXor => {
                        charge!();
                        binop_i32!(|a, b| a ^ b)
                    }

                    MOp::LAdd => {
                        charge!();
                        binop_i64!(i64::wrapping_add)
                    }
                    MOp::LSub => {
                        charge!();
                        binop_i64!(i64::wrapping_sub)
                    }
                    MOp::LMul => {
                        charge!();
                        binop_i64!(i64::wrapping_mul)
                    }
                    MOp::LDiv => {
                        charge!();
                        let b = fpop!().as_i64();
                        let a = fpop!().as_i64();
                        if b == 0 {
                            return Err(VmError::DivByZero { method: method.sig.to_string(), pc });
                        }
                        frame.stack.push(Value::I64(a.wrapping_div(b)));
                        frame.pc = pc + 1;
                    }
                    MOp::LRem => {
                        charge!();
                        let b = fpop!().as_i64();
                        let a = fpop!().as_i64();
                        if b == 0 {
                            return Err(VmError::DivByZero { method: method.sig.to_string(), pc });
                        }
                        frame.stack.push(Value::I64(a.wrapping_rem(b)));
                        frame.pc = pc + 1;
                    }
                    MOp::LNeg => {
                        charge!();
                        let a = fpop!().as_i64();
                        frame.stack.push(Value::I64(a.wrapping_neg()));
                        frame.pc = pc + 1;
                    }

                    MOp::DAdd => {
                        charge!();
                        binop_f64!(|a: f64, b: f64| a + b)
                    }
                    MOp::DSub => {
                        charge!();
                        binop_f64!(|a: f64, b: f64| a - b)
                    }
                    MOp::DMul => {
                        charge!();
                        binop_f64!(|a: f64, b: f64| a * b)
                    }
                    MOp::DDiv => {
                        charge!();
                        binop_f64!(|a: f64, b: f64| a / b)
                    }
                    MOp::DRem => {
                        charge!();
                        binop_f64!(|a: f64, b: f64| a % b)
                    }
                    MOp::DNeg => {
                        charge!();
                        let a = fpop!().as_f64();
                        frame.stack.push(Value::F64(-a));
                        frame.pc = pc + 1;
                    }

                    MOp::I2L => {
                        charge!();
                        let a = fpop!().as_i32();
                        frame.stack.push(Value::I64(a as i64));
                        frame.pc = pc + 1;
                    }
                    MOp::I2D => {
                        charge!();
                        let a = fpop!().as_i32();
                        frame.stack.push(Value::F64(a as f64));
                        frame.pc = pc + 1;
                    }
                    MOp::L2I => {
                        charge!();
                        let a = fpop!().as_i64();
                        frame.stack.push(Value::I32(a as i32));
                        frame.pc = pc + 1;
                    }
                    MOp::L2D => {
                        charge!();
                        let a = fpop!().as_i64();
                        frame.stack.push(Value::F64(a as f64));
                        frame.pc = pc + 1;
                    }
                    MOp::D2I => {
                        charge!();
                        let a = fpop!().as_f64();
                        frame.stack.push(Value::I32(a as i32));
                        frame.pc = pc + 1;
                    }
                    MOp::D2L => {
                        charge!();
                        let a = fpop!().as_f64();
                        frame.stack.push(Value::I64(a as i64));
                        frame.pc = pc + 1;
                    }
                    MOp::LCmp => {
                        charge!();
                        let b = fpop!().as_i64();
                        let a = fpop!().as_i64();
                        frame.stack.push(Value::I32((a.cmp(&b)) as i32));
                        frame.pc = pc + 1;
                    }
                    MOp::DCmp => {
                        charge!();
                        let b = fpop!().as_f64();
                        let a = fpop!().as_f64();
                        frame.stack.push(Value::I32(dcmp(a, b)));
                        frame.pc = pc + 1;
                    }

                    MOp::Goto => {
                        charge!();
                        frame.pc = op.a as usize;
                    }
                    MOp::IfICmp => {
                        charge!();
                        let b = fpop!().as_i32();
                        let a = fpop!().as_i32();
                        frame.pc =
                            if cmp_from(op.t).eval_i32(a, b) { op.a as usize } else { pc + 1 };
                    }
                    MOp::IfI => {
                        charge!();
                        let a = fpop!().as_i32();
                        frame.pc =
                            if cmp_from(op.t).eval_i32(a, 0) { op.a as usize } else { pc + 1 };
                    }
                    MOp::IfNull => {
                        charge!();
                        let v = fpop!();
                        frame.pc = if v.is_null() { op.a as usize } else { pc + 1 };
                    }
                    MOp::IfNonNull => {
                        charge!();
                        let v = fpop!();
                        frame.pc = if v.is_null() { pc + 1 } else { op.a as usize };
                    }
                    MOp::IfACmpEq => {
                        charge!();
                        let b = fpop!();
                        let a = fpop!();
                        frame.pc = if a == b { op.a as usize } else { pc + 1 };
                    }
                    MOp::IfACmpNe => {
                        charge!();
                        let b = fpop!();
                        let a = fpop!();
                        frame.pc = if a == b { pc + 1 } else { op.a as usize };
                    }

                    MOp::NewObj => {
                        charge!();
                        let cid = ClassId(op.a);
                        let zeros = image.class(cid).zeroed_fields();
                        let r = ctx.heap.alloc_object(cid, zeros.len(), zeros);
                        frame.stack.push(Value::Ref(r));
                        frame.pc = pc + 1;
                    }
                    MOp::NewArr => {
                        charge!();
                        let len = fpop!().as_i32();
                        if len < 0 {
                            return Err(VmError::NegativeArraySize(len as i64));
                        }
                        let elem = elem_from(op.t);
                        let cls = image.array_class(elem);
                        cost += model.alloc + model.alloc_per_byte * (len as u64 * 8);
                        let r = ctx.heap.alloc_array(cls, elem, len as usize);
                        frame.stack.push(Value::Ref(r));
                        frame.pc = pc + 1;
                    }
                    MOp::ArrLen => {
                        charge!();
                        let r = nonnull!(fpop!(), pc);
                        let len = match ctx.heap.get(r).payload.array_len() {
                            Some(l) => l,
                            None => {
                                return Err(VmError::TypeMismatch(
                                    "arraylength on non-array".into(),
                                ))
                            }
                        };
                        frame.stack.push(Value::I32(len as i32));
                        frame.pc = pc + 1;
                    }

                    MOp::GetField => {
                        charge!();
                        let r = nonnull!(fpop!(), pc);
                        let kind = kind_from(op.t);
                        let key = access_key(kind, r.0, op.x as u32);
                        cost += model.access(kind, Rw::Read, cache_hit(&mut last_access, key));
                        let v = match &ctx.heap.get(r).payload {
                            ObjPayload::Fields(fs) => fs[op.x as usize],
                            _ => {
                                return Err(VmError::TypeMismatch("getfield on non-object".into()))
                            }
                        };
                        frame.stack.push(v);
                        frame.pc = pc + 1;
                    }
                    MOp::PutField => {
                        charge!();
                        let v = fpop!();
                        let r = nonnull!(fpop!(), pc);
                        let kind = kind_from(op.t);
                        let key = access_key(kind, r.0, op.x as u32);
                        cost += model.access(kind, Rw::Write, cache_hit(&mut last_access, key));
                        match &mut ctx.heap.get_mut(r).payload {
                            ObjPayload::Fields(fs) => fs[op.x as usize] = v,
                            _ => {
                                return Err(VmError::TypeMismatch("putfield on non-object".into()))
                            }
                        }
                        frame.pc = pc + 1;
                    }
                    MOp::GetStatic => {
                        charge!();
                        let class = ClassId(op.a);
                        if op.t == 0 {
                            let key = access_key(AccessKind::Static, op.a, op.x as u32);
                            cost += model.access(
                                AccessKind::Static,
                                Rw::Read,
                                cache_hit(&mut last_access, key),
                            );
                        }
                        frame.stack.push(ctx.heap.get_static(class, op.x));
                        frame.pc = pc + 1;
                    }
                    MOp::PutStatic => {
                        charge!();
                        let v = fpop!();
                        let key = access_key(AccessKind::Static, op.a, op.x as u32);
                        cost += model.access(
                            AccessKind::Static,
                            Rw::Write,
                            cache_hit(&mut last_access, key),
                        );
                        ctx.heap.set_static(ClassId(op.a), op.x, v);
                        frame.pc = pc + 1;
                    }
                    MOp::ALoad => {
                        charge!();
                        let idx = fpop!().as_i32();
                        let r = nonnull!(fpop!(), pc);
                        let key = access_key(AccessKind::Array, r.0, idx as u32);
                        cost +=
                            model.access(AccessKind::Array, Rw::Read, cache_hit(&mut last_access, key));
                        let v = array_load(ctx.heap, r, idx, elem_from(op.t))?;
                        frame.stack.push(v);
                        frame.pc = pc + 1;
                    }
                    MOp::AStore => {
                        charge!();
                        let v = fpop!();
                        let idx = fpop!().as_i32();
                        let r = nonnull!(fpop!(), pc);
                        let key = access_key(AccessKind::Array, r.0, idx as u32);
                        cost += model.access(
                            AccessKind::Array,
                            Rw::Write,
                            cache_hit(&mut last_access, key),
                        );
                        array_store(ctx.heap, r, idx, v, elem_from(op.t))?;
                        frame.pc = pc + 1;
                    }

                    MOp::Nop => {
                        charge!();
                        frame.pc = pc + 1;
                    }
                    MOp::Unquick => {
                        // Trap; the caller discards cost/ops on Err, so no
                        // charge is observable.
                        return Err(VmError::Unquickened(pim.strings[op.a as usize].to_string()));
                    }

                    // ---- superinstructions: components retire one at a
                    // time against the fuel counter, so quantum boundaries
                    // land exactly where the classic interpreter puts them
                    // (on the retained plain op at `pc + 1`). ----
                    MOp::LoadGetField => {
                        charge!(); // component 1: Load
                        if ops >= fuel {
                            frame.stack.push(frame.locals[op.x as usize]);
                            frame.pc = pc + 1;
                            continue;
                        }
                        ops += 1; // component 2: GetField (static cost 0)
                        let r = nonnull!(frame.locals[op.x as usize], pc + 1);
                        let kind = kind_from(op.t);
                        let key = access_key(kind, r.0, op.a);
                        cost += model.access(kind, Rw::Read, cache_hit(&mut last_access, key));
                        let v = match &ctx.heap.get(r).payload {
                            ObjPayload::Fields(fs) => fs[op.a as usize],
                            _ => {
                                return Err(VmError::TypeMismatch("getfield on non-object".into()))
                            }
                        };
                        frame.stack.push(v);
                        frame.pc = pc + 2;
                    }
                    MOp::LoadArrLen => {
                        charge!(); // component 1: Load
                        if ops >= fuel {
                            frame.stack.push(frame.locals[op.x as usize]);
                            frame.pc = pc + 1;
                            continue;
                        }
                        ops += 1; // component 2: ArrayLen (same generic cost)
                        cost += op.c as u64;
                        let r = nonnull!(frame.locals[op.x as usize], pc + 1);
                        let len = match ctx.heap.get(r).payload.array_len() {
                            Some(l) => l,
                            None => {
                                return Err(VmError::TypeMismatch(
                                    "arraylength on non-array".into(),
                                ))
                            }
                        };
                        frame.stack.push(Value::I32(len as i32));
                        frame.pc = pc + 2;
                    }
                    MOp::LoadALoad => {
                        charge!(); // component 1: Load (pushes the index)
                        if ops >= fuel {
                            frame.stack.push(frame.locals[op.x as usize]);
                            frame.pc = pc + 1;
                            continue;
                        }
                        ops += 1; // component 2: ALoad (static cost 0)
                        let idx = frame.locals[op.x as usize].as_i32();
                        let r = match frame.stack.pop() {
                            Some(v) => nonnull!(v, pc + 1),
                            None => {
                                return Err(VmError::StackUnderflow {
                                    method: method.sig.to_string(),
                                    pc: pc + 1,
                                })
                            }
                        };
                        let key = access_key(AccessKind::Array, r.0, idx as u32);
                        cost +=
                            model.access(AccessKind::Array, Rw::Read, cache_hit(&mut last_access, key));
                        let v = array_load(ctx.heap, r, idx, elem_from(op.t))?;
                        frame.stack.push(v);
                        frame.pc = pc + 2;
                    }
                    MOp::LCmpIfI => {
                        charge!(); // component 1: LCmp
                        let b = fpop!().as_i64();
                        let a = fpop!().as_i64();
                        let cv = (a.cmp(&b)) as i32;
                        if ops >= fuel {
                            frame.stack.push(Value::I32(cv));
                            frame.pc = pc + 1;
                            continue;
                        }
                        ops += 1; // component 2: IfI (same generic cost)
                        cost += op.c as u64;
                        frame.pc =
                            if cmp_from(op.t).eval_i32(cv, 0) { op.a as usize } else { pc + 2 };
                    }
                    MOp::DCmpIfI => {
                        charge!(); // component 1: DCmp
                        let b = fpop!().as_f64();
                        let a = fpop!().as_f64();
                        let cv = dcmp(a, b);
                        if ops >= fuel {
                            frame.stack.push(Value::I32(cv));
                            frame.pc = pc + 1;
                            continue;
                        }
                        ops += 1; // component 2: IfI (same generic cost)
                        cost += op.c as u64;
                        frame.pc =
                            if cmp_from(op.t).eval_i32(cv, 0) { op.a as usize } else { pc + 2 };
                    }
                    MOp::IIncGoto => {
                        charge!(); // component 1: IInc
                        let v = frame.locals[op.x as usize].as_i32();
                        frame.locals[op.x as usize] = Value::I32(v.wrapping_add(op.a as i32));
                        if ops >= fuel {
                            frame.pc = pc + 1;
                            continue;
                        }
                        ops += 1; // component 2: Goto (same generic cost)
                        cost += op.c as u64;
                        frame.pc = op.b as usize;
                    }

                    // ---- check-fused superinstructions: component 1 is a
                    // DSM access check (or a load feeding one). A Miss
                    // parks `pc` exactly where the classic interpreter
                    // would retry — the check's own slot — and the access
                    // component is always cache-cold because the check
                    // clears the repeated-access cache, so the dynamic
                    // cost matches the two-step sequence bit for bit. ----
                    MOp::LoadLoad => {
                        charge!(); // component 1: Load x
                        frame.stack.push(frame.locals[op.x as usize]);
                        if ops >= fuel {
                            frame.pc = pc + 1;
                            continue;
                        }
                        ops += 1; // component 2: Load a (same generic cost)
                        cost += op.c as u64;
                        frame.stack.push(frame.locals[op.a as usize]);
                        frame.pc = pc + 2;
                    }
                    MOp::LoadCheckRead => {
                        charge!(); // component 1: Load (generic cost)
                        frame.stack.push(frame.locals[op.x as usize]);
                        if ops >= fuel {
                            frame.pc = pc + 1;
                            continue;
                        }
                        ops += 1; // component 2: CheckRead (check cost in b)
                        cost += op.b as u64;
                        let slot = match frame.stack.len().checked_sub(1 + op.t as usize) {
                            Some(s) => s,
                            None => {
                                return Err(VmError::StackUnderflow {
                                    method: method.sig.to_string(),
                                    pc: pc + 1,
                                })
                            }
                        };
                        let obj = nonnull!(frame.stack[slot], pc + 1);
                        let kind = kind_from(op.a as u8);
                        let idx = if matches!(kind, AccessKind::Array) && op.t >= 1 {
                            match frame.stack[slot + 1] {
                                Value::I32(i) => Some(i),
                                _ => None,
                            }
                        } else {
                            None
                        };
                        last_access = NO_ACCESS;
                        thread.last_access = NO_ACCESS;
                        match ctx.env.check_read(ctx.heap, thread, obj, kind, idx) {
                            CheckOutcome::Proceed => thread.frames[frame_idx].pc = pc + 2,
                            CheckOutcome::Miss => {
                                thread.frames[frame_idx].pc = pc + 1;
                                return Ok(StepOutcome { state: StepState::Blocked, cost, ops });
                            }
                        }
                    }
                    MOp::CheckGetField => {
                        charge!(); // component 1: CheckRead depth 0 (check cost)
                        let obj = match frame.stack.last() {
                            Some(&v) => nonnull!(v, pc),
                            None => {
                                return Err(VmError::StackUnderflow {
                                    method: method.sig.to_string(),
                                    pc,
                                })
                            }
                        };
                        last_access = NO_ACCESS;
                        thread.last_access = NO_ACCESS;
                        match ctx.env.check_read(ctx.heap, thread, obj, kind_from(op.a as u8), None)
                        {
                            CheckOutcome::Proceed => {}
                            CheckOutcome::Miss => {
                                return Ok(StepOutcome { state: StepState::Blocked, cost, ops })
                            }
                        }
                        let f = &mut thread.frames[frame_idx];
                        if ops >= fuel {
                            f.pc = pc + 1;
                            continue;
                        }
                        ops += 1; // component 2: GetField (static cost 0, cache-cold)
                        let r = nonnull!(vpop!(f, pc + 1), pc + 1);
                        let kind = kind_from(op.t);
                        let key = access_key(kind, r.0, op.x as u32);
                        cost += model.access(kind, Rw::Read, cache_hit(&mut last_access, key));
                        let v = match &ctx.heap.get(r).payload {
                            ObjPayload::Fields(fs) => fs[op.x as usize],
                            _ => {
                                return Err(VmError::TypeMismatch("getfield on non-object".into()))
                            }
                        };
                        f.stack.push(v);
                        f.pc = pc + 2;
                    }
                    MOp::LoadCheckGetField => {
                        charge!(); // component 1: Load (generic cost)
                        if ops >= fuel {
                            frame.stack.push(frame.locals[op.x as usize]);
                            frame.pc = pc + 1;
                            continue;
                        }
                        ops += 1; // component 2: CheckRead depth 0 (check cost in a)
                        cost += op.a as u64;
                        let obj = nonnull!(frame.locals[op.x as usize], pc + 1);
                        last_access = NO_ACCESS;
                        thread.last_access = NO_ACCESS;
                        match ctx.env.check_read(ctx.heap, thread, obj, kind_from(op.t >> 4), None)
                        {
                            CheckOutcome::Proceed => {}
                            CheckOutcome::Miss => {
                                let f = &mut thread.frames[frame_idx];
                                f.stack.push(f.locals[op.x as usize]);
                                f.pc = pc + 1;
                                return Ok(StepOutcome { state: StepState::Blocked, cost, ops });
                            }
                        }
                        let f = &mut thread.frames[frame_idx];
                        if ops >= fuel {
                            f.stack.push(f.locals[op.x as usize]);
                            f.pc = pc + 2;
                            continue;
                        }
                        ops += 1; // component 3: GetField (static cost 0, cache-cold)
                        let r = nonnull!(f.locals[op.x as usize], pc + 2);
                        let kind = kind_from(op.t & 0xf);
                        let key = access_key(kind, r.0, op.b);
                        cost += model.access(kind, Rw::Read, cache_hit(&mut last_access, key));
                        let v = match &ctx.heap.get(r).payload {
                            ObjPayload::Fields(fs) => fs[op.b as usize],
                            _ => {
                                return Err(VmError::TypeMismatch("getfield on non-object".into()))
                            }
                        };
                        f.stack.push(v);
                        f.pc = pc + 3;
                    }
                    MOp::CheckALoad => {
                        charge!(); // component 1: CheckRead depth 1 Array (check cost)
                        let slot = match frame.stack.len().checked_sub(2) {
                            Some(s) => s,
                            None => {
                                return Err(VmError::StackUnderflow {
                                    method: method.sig.to_string(),
                                    pc,
                                })
                            }
                        };
                        let obj = nonnull!(frame.stack[slot], pc);
                        let cidx = match frame.stack[slot + 1] {
                            Value::I32(i) => Some(i),
                            _ => None,
                        };
                        last_access = NO_ACCESS;
                        thread.last_access = NO_ACCESS;
                        match ctx.env.check_read(ctx.heap, thread, obj, AccessKind::Array, cidx) {
                            CheckOutcome::Proceed => {}
                            CheckOutcome::Miss => {
                                return Ok(StepOutcome { state: StepState::Blocked, cost, ops })
                            }
                        }
                        let f = &mut thread.frames[frame_idx];
                        if ops >= fuel {
                            f.pc = pc + 1;
                            continue;
                        }
                        ops += 1; // component 2: ALoad (static cost 0, cache-cold)
                        let idx = vpop!(f, pc + 1).as_i32();
                        let r = nonnull!(vpop!(f, pc + 1), pc + 1);
                        let key = access_key(AccessKind::Array, r.0, idx as u32);
                        cost += model.access(
                            AccessKind::Array,
                            Rw::Read,
                            cache_hit(&mut last_access, key),
                        );
                        let v = array_load(ctx.heap, r, idx, elem_from(op.t))?;
                        f.stack.push(v);
                        f.pc = pc + 2;
                    }
                    MOp::CheckWPutField => {
                        charge!(); // component 1: CheckWrite depth 1 (check cost)
                        let slot = match frame.stack.len().checked_sub(2) {
                            Some(s) => s,
                            None => {
                                return Err(VmError::StackUnderflow {
                                    method: method.sig.to_string(),
                                    pc,
                                })
                            }
                        };
                        let obj = nonnull!(frame.stack[slot], pc);
                        let ckind = kind_from(op.a as u8);
                        let cidx = if matches!(ckind, AccessKind::Array) {
                            match frame.stack[slot + 1] {
                                Value::I32(i) => Some(i),
                                _ => None,
                            }
                        } else {
                            None
                        };
                        last_access = NO_ACCESS;
                        thread.last_access = NO_ACCESS;
                        match ctx.env.check_write(ctx.heap, thread, obj, ckind, cidx) {
                            CheckOutcome::Proceed => {}
                            CheckOutcome::Miss => {
                                return Ok(StepOutcome { state: StepState::Blocked, cost, ops })
                            }
                        }
                        let f = &mut thread.frames[frame_idx];
                        if ops >= fuel {
                            f.pc = pc + 1;
                            continue;
                        }
                        ops += 1; // component 2: PutField (static cost 0, cache-cold)
                        let v = vpop!(f, pc + 1);
                        let r = nonnull!(vpop!(f, pc + 1), pc + 1);
                        let kind = kind_from(op.t);
                        let key = access_key(kind, r.0, op.x as u32);
                        cost += model.access(kind, Rw::Write, cache_hit(&mut last_access, key));
                        match &mut ctx.heap.get_mut(r).payload {
                            ObjPayload::Fields(fs) => fs[op.x as usize] = v,
                            _ => {
                                return Err(VmError::TypeMismatch("putfield on non-object".into()))
                            }
                        }
                        f.pc = pc + 2;
                    }
                    MOp::CheckWAStore => {
                        charge!(); // component 1: CheckWrite depth 2 Array (check cost)
                        let slot = match frame.stack.len().checked_sub(3) {
                            Some(s) => s,
                            None => {
                                return Err(VmError::StackUnderflow {
                                    method: method.sig.to_string(),
                                    pc,
                                })
                            }
                        };
                        let obj = nonnull!(frame.stack[slot], pc);
                        let cidx = match frame.stack[slot + 1] {
                            Value::I32(i) => Some(i),
                            _ => None,
                        };
                        last_access = NO_ACCESS;
                        thread.last_access = NO_ACCESS;
                        match ctx.env.check_write(ctx.heap, thread, obj, AccessKind::Array, cidx) {
                            CheckOutcome::Proceed => {}
                            CheckOutcome::Miss => {
                                return Ok(StepOutcome { state: StepState::Blocked, cost, ops })
                            }
                        }
                        let f = &mut thread.frames[frame_idx];
                        if ops >= fuel {
                            f.pc = pc + 1;
                            continue;
                        }
                        ops += 1; // component 2: AStore (static cost 0, cache-cold)
                        let v = vpop!(f, pc + 1);
                        let idx = vpop!(f, pc + 1).as_i32();
                        let r = nonnull!(vpop!(f, pc + 1), pc + 1);
                        let key = access_key(AccessKind::Array, r.0, idx as u32);
                        cost += model.access(
                            AccessKind::Array,
                            Rw::Write,
                            cache_hit(&mut last_access, key),
                        );
                        array_store(ctx.heap, r, idx, v, elem_from(op.t))?;
                        f.pc = pc + 2;
                    }
                }
            }
        }
    }
}

/// JVM `dcmpg`/`dcmpl` collapsed: NaN compares as 0 (matches interp.rs).
#[inline]
fn dcmp(a: f64, b: f64) -> i32 {
    if a > b {
        1
    } else if a < b {
        -1
    } else {
        0
    }
}

// ---- verification: predecode preserves stack shapes & control flow ----

/// Net stack effect (pops, pushes) of one micro-op; fused ops report the
/// *composition* of their two components. `None` for `Unquick` (the
/// verifier never passes symbolic leftovers to execution).
pub fn mop_stack_effect(image: &Image, m: &MicroOp) -> Option<(usize, usize)> {
    use MOp::*;
    Some(match m.op {
        ConstI32 | ConstI64 | ConstF64 | ConstNull | ConstV | LdcStr | Load => (0, 1),
        Dup => (1, 2),
        DupX1 => (2, 3),
        PopV | Store | IfI | IfNull | IfNonNull => (1, 0),
        SwapV => (2, 2),
        IInc | Goto | Nop | Ret => (0, 0),
        IAdd | ISub | IMul | IDiv | IRem | IShl | IShr | IUShr | IAnd | IOr | IXor | LAdd
        | LSub | LMul | LDiv | LRem | DAdd | DSub | DMul | DDiv | DRem | LCmp | DCmp => (2, 1),
        INeg | LNeg | DNeg | I2L | I2D | L2I | L2D | D2I | D2L => (1, 1),
        IfICmp | IfACmpEq | IfACmpNe => (2, 0),
        NewObj => (0, 1),
        NewArr | ArrLen | GetField => (1, 1),
        PutField => (2, 0),
        GetStatic => (0, 1),
        PutStatic => (1, 0),
        ALoad => (2, 1),
        AStore => (3, 0),
        CheckRead | CheckWrite | VolAcquire | VolRelease => (0, 0),
        MonEnter | MonExit | DsmMonEnter | DsmMonExit | SpawnDsm | RetVal => (1, 0),
        CallStatic | CallSpecial => {
            let callee = image.method(MethodId(m.a));
            (m.x as usize, callee.sig.ret.is_some() as usize)
        }
        CallVirtual => {
            let sig = &image.sigs[m.x as usize];
            (m.t as usize + 1, sig.ret.is_some() as usize)
        }
        Unquick => return None,
        // Fused = composition of the component effects.
        LoadGetField => (0, 1),      // (0,1) ∘ (1,1)
        LoadArrLen => (0, 1),        // (0,1) ∘ (1,1)
        LoadALoad => (1, 1),         // (0,1) ∘ (2,1)
        LCmpIfI => (2, 0),           // (2,1) ∘ (1,0)
        DCmpIfI => (2, 0),           // (2,1) ∘ (1,0)
        IIncGoto => (0, 0),          // (0,0) ∘ (0,0)
        LoadLoad => (0, 2),          // (0,1) ∘ (0,1)
        LoadCheckRead => (0, 1),     // (0,1) ∘ (0,0)
        CheckGetField => (1, 1),     // (0,0) ∘ (1,1)
        LoadCheckGetField => (0, 1), // (0,1) ∘ (0,0) ∘ (1,1)
        CheckALoad => (2, 1),        // (0,0) ∘ (2,1)
        CheckWPutField => (2, 0),    // (0,0) ∘ (2,0)
        CheckWAStore => (3, 0),      // (0,0) ∘ (3,0)
    })
}

/// Branch targets a micro-op can jump to (not counting fall-through).
fn mop_branch_target(m: &MicroOp) -> Option<usize> {
    use MOp::*;
    match m.op {
        Goto | IfICmp | IfI | IfNull | IfNonNull | IfACmpEq | IfACmpNe | LCmpIfI | DCmpIfI => {
            Some(m.a as usize)
        }
        IIncGoto => Some(m.b as usize),
        _ => None,
    }
}

/// Check that `pim` is a faithful lowering of `image`: every slot's net
/// stack effect matches the verifier's judgment for the instruction (or
/// instruction pair) it lowers, and every branch target is preserved.
/// Returns a description of the first mismatch.
pub fn verify_against(pim: &PImage, image: &Image) -> Result<(), String> {
    // The verifier's `stack_effect` table defers call instructions to its
    // dataflow pass (signature-dependent); replicate that judgment here so
    // the comparison covers every slot.
    let src_effect = |ins: &Instr| -> (usize, usize) {
        match ins {
            Instr::InvokeStaticQ(mid) | Instr::InvokeSpecialQ(mid) => {
                let callee = image.method(*mid);
                let nargs = callee.sig.nargs() + if callee.is_static { 0 } else { 1 };
                (nargs, callee.sig.ret.is_some() as usize)
            }
            Instr::InvokeVirtualQ { sig, nargs, .. } => {
                (*nargs as usize + 1, image.sigs[sig.0 as usize].ret.is_some() as usize)
            }
            _ => crate::verifier::stack_effect(ins),
        }
    };
    if pim.methods.len() != image.methods.len() {
        return Err(format!(
            "method count mismatch: {} predecoded vs {} loaded",
            pim.methods.len(),
            image.methods.len()
        ));
    }
    for (rm, pm) in image.methods.iter().zip(&pim.methods) {
        if rm.code.len() != pm.ops.len() {
            return Err(format!("{}: body length changed by predecode", rm.sig));
        }
        for (i, (ins, m)) in rm.code.iter().zip(&pm.ops).enumerate() {
            let fused = fmt_fused(m).is_some();
            // Composition of the verifier's judgments for the components.
            let compose = |(p1, s1): (usize, usize), (p2, s2): (usize, usize)| {
                (p1 + p2.saturating_sub(s1), s2 + s1.saturating_sub(p2))
            };
            let expect = if matches!(m.op, MOp::LoadCheckGetField) {
                compose(
                    compose(src_effect(ins), src_effect(&rm.code[i + 1])),
                    src_effect(&rm.code[i + 2]),
                )
            } else if fused {
                compose(src_effect(ins), src_effect(&rm.code[i + 1]))
            } else {
                src_effect(ins)
            };
            match mop_stack_effect(image, m) {
                Some(got) if got == expect => {}
                Some(got) => {
                    return Err(format!(
                        "{}@{i}: stack effect {got:?} != verifier {expect:?} ({ins:?})",
                        rm.sig
                    ))
                }
                None => {
                    // Unquick: acceptable only where the source was symbolic.
                    if !matches!(
                        ins,
                        Instr::New(_)
                            | Instr::GetField(..)
                            | Instr::PutField(..)
                            | Instr::GetStatic(..)
                            | Instr::PutStatic(..)
                            | Instr::InvokeStatic(..)
                            | Instr::InvokeVirtual(_)
                            | Instr::InvokeSpecial(..)
                    ) {
                        return Err(format!("{}@{i}: quickened op lowered to Unquick", rm.sig));
                    }
                }
            }
            let src_target = if fused && matches!(m.op, MOp::LCmpIfI | MOp::DCmpIfI | MOp::IIncGoto)
            {
                rm.code[i + 1].branch_target()
            } else {
                ins.branch_target()
            };
            if mop_branch_target(m) != src_target {
                return Err(format!(
                    "{}@{i}: branch target {:?} != source {:?}",
                    rm.sig,
                    mop_branch_target(m),
                    src_target
                ));
            }
        }
    }
    Ok(())
}

// ---- disassembly of fused ops (round-trippable) ----

/// Render a fused micro-op in the disassembler's style; `None` for plain
/// (unfused) ops, which disassemble through their source [`Instr`].
pub fn fmt_fused(m: &MicroOp) -> Option<String> {
    Some(match m.op {
        MOp::LoadGetField => {
            format!("load_getfield {} slot={} kind={}", m.x, m.a, m.t)
        }
        MOp::LoadArrLen => format!("load_arraylen {}", m.x),
        MOp::LoadALoad => format!("load_aload {} elem={}", m.x, m.t),
        MOp::LCmpIfI => format!("lcmp_if cmp={} -> {}", m.t, m.a),
        MOp::DCmpIfI => format!("dcmp_if cmp={} -> {}", m.t, m.a),
        MOp::IIncGoto => format!("iinc_goto {} by {} -> {}", m.x, m.a as i32, m.b),
        MOp::LoadLoad => format!("load_load {} {}", m.x, m.a),
        MOp::LoadCheckRead => {
            format!("load_checkread {} depth={} kind={} check={}", m.x, m.t, m.a, m.b)
        }
        MOp::CheckGetField => format!("checkread_getfield slot={} kind={} ck={}", m.x, m.t, m.a),
        MOp::LoadCheckGetField => format!(
            "load_checkread_getfield {} slot={} kind={} ck={} check={}",
            m.x,
            m.b,
            m.t & 0xf,
            m.t >> 4,
            m.a
        ),
        MOp::CheckALoad => format!("checkread_aload elem={}", m.t),
        MOp::CheckWPutField => format!("checkwrite_putfield slot={} kind={} ck={}", m.x, m.t, m.a),
        MOp::CheckWAStore => format!("checkwrite_astore elem={}", m.t),
        _ => return None,
    })
}

/// Parse the output of [`fmt_fused`] back into a micro-op (the primary
/// cost field `c` is zeroed — the textual form carries operands, which
/// for the check-fused ops includes a secondary check cost in `a`/`b`).
/// Total inverse of `fmt_fused` over the fused set; the round-trip test
/// asserts it.
pub fn parse_fused(s: &str) -> Option<MicroOp> {
    let mut toks = s.split_whitespace();
    let head = toks.next()?;
    let field = |t: &str, key: &str| -> Option<u32> {
        t.strip_prefix(key).and_then(|v| v.parse().ok())
    };
    let mut m;
    match head {
        "load_getfield" => {
            m = MicroOp::new(MOp::LoadGetField);
            m.x = toks.next()?.parse().ok()?;
            m.a = field(toks.next()?, "slot=")?;
            m.t = field(toks.next()?, "kind=")? as u8;
        }
        "load_arraylen" => {
            m = MicroOp::new(MOp::LoadArrLen);
            m.x = toks.next()?.parse().ok()?;
        }
        "load_aload" => {
            m = MicroOp::new(MOp::LoadALoad);
            m.x = toks.next()?.parse().ok()?;
            m.t = field(toks.next()?, "elem=")? as u8;
        }
        "lcmp_if" | "dcmp_if" => {
            m = MicroOp::new(if head == "lcmp_if" { MOp::LCmpIfI } else { MOp::DCmpIfI });
            m.t = field(toks.next()?, "cmp=")? as u8;
            if toks.next()? != "->" {
                return None;
            }
            m.a = toks.next()?.parse().ok()?;
        }
        "iinc_goto" => {
            m = MicroOp::new(MOp::IIncGoto);
            m.x = toks.next()?.parse().ok()?;
            if toks.next()? != "by" {
                return None;
            }
            m.a = toks.next()?.parse::<i32>().ok()? as u32;
            if toks.next()? != "->" {
                return None;
            }
            m.b = toks.next()?.parse().ok()?;
        }
        "load_load" => {
            m = MicroOp::new(MOp::LoadLoad);
            m.x = toks.next()?.parse().ok()?;
            m.a = toks.next()?.parse().ok()?;
        }
        "load_checkread" => {
            m = MicroOp::new(MOp::LoadCheckRead);
            m.x = toks.next()?.parse().ok()?;
            m.t = field(toks.next()?, "depth=")? as u8;
            m.a = field(toks.next()?, "kind=")?;
            m.b = field(toks.next()?, "check=")?;
        }
        "checkread_getfield" | "checkwrite_putfield" => {
            m = MicroOp::new(if head == "checkread_getfield" {
                MOp::CheckGetField
            } else {
                MOp::CheckWPutField
            });
            m.x = field(toks.next()?, "slot=")? as u16;
            m.t = field(toks.next()?, "kind=")? as u8;
            m.a = field(toks.next()?, "ck=")?;
        }
        "load_checkread_getfield" => {
            m = MicroOp::new(MOp::LoadCheckGetField);
            m.x = toks.next()?.parse().ok()?;
            m.b = field(toks.next()?, "slot=")?;
            m.t = field(toks.next()?, "kind=")? as u8;
            m.t |= (field(toks.next()?, "ck=")? as u8) << 4;
            m.a = field(toks.next()?, "check=")?;
        }
        "checkread_aload" | "checkwrite_astore" => {
            m = MicroOp::new(if head == "checkread_aload" {
                MOp::CheckALoad
            } else {
                MOp::CheckWAStore
            });
            m.t = field(toks.next()?, "elem=")? as u8;
        }
        _ => return None,
    }
    Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microop_is_16_bytes() {
        assert_eq!(std::mem::size_of::<MicroOp>(), 16);
    }

    #[test]
    fn const_encoding_round_trips() {
        for v in [i64::MIN, -1, 0, 1, i64::MAX, 0x1234_5678_9abc_def0] {
            let (a, b) = split_u64(v as u64);
            assert_eq!(join_u64(a, b) as i64, v);
        }
        for f in [0.0, -0.0, 1.5, f64::MAX, f64::MIN_POSITIVE, f64::NEG_INFINITY] {
            let (a, b) = split_u64(f.to_bits());
            assert_eq!(f64::from_bits(join_u64(a, b)).to_bits(), f.to_bits());
        }
    }

    #[test]
    fn tiny_codes_round_trip() {
        for k in [AccessKind::Field, AccessKind::Static, AccessKind::Array] {
            assert_eq!(kind_from(kind_code(k)), k);
        }
        for e in [ElemTy::I32, ElemTy::I64, ElemTy::F64, ElemTy::Ref] {
            assert_eq!(elem_from(elem_code(e)), e);
        }
        for c in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge] {
            assert_eq!(cmp_from(cmp_code(c)), c);
        }
    }

    #[test]
    fn fused_disasm_round_trips_every_op() {
        let samples = [
            MicroOp { op: MOp::LoadGetField, t: 2, x: 7, c: 0, a: 13, b: 0 },
            MicroOp { op: MOp::LoadArrLen, t: 0, x: 3, c: 0, a: 0, b: 0 },
            MicroOp { op: MOp::LoadALoad, t: 3, x: 9, c: 0, a: 0, b: 0 },
            MicroOp { op: MOp::LCmpIfI, t: 4, x: 0, c: 0, a: 21, b: 0 },
            MicroOp { op: MOp::DCmpIfI, t: 1, x: 0, c: 0, a: 8, b: 0 },
            MicroOp { op: MOp::IIncGoto, t: 0, x: 2, c: 0, a: (-3i32) as u32, b: 5 },
            MicroOp { op: MOp::LoadLoad, t: 0, x: 1, c: 0, a: 4, b: 0 },
            MicroOp { op: MOp::LoadCheckRead, t: 1, x: 6, c: 0, a: 2, b: 730 },
            MicroOp { op: MOp::CheckGetField, t: 0, x: 11, c: 0, a: 1, b: 0 },
            MicroOp { op: MOp::LoadCheckGetField, t: 0x10, x: 3, c: 0, a: 730, b: 7 },
            MicroOp { op: MOp::CheckALoad, t: 2, x: 0, c: 0, a: 0, b: 0 },
            MicroOp { op: MOp::CheckWPutField, t: 1, x: 5, c: 0, a: 0, b: 0 },
            MicroOp { op: MOp::CheckWAStore, t: 3, x: 0, c: 0, a: 0, b: 0 },
        ];
        for m in samples {
            let text = fmt_fused(&m).expect("fused op formats");
            let back = parse_fused(&text).unwrap_or_else(|| panic!("parse back: {text}"));
            assert_eq!(back, m, "round trip through {text:?}");
        }
        // Plain ops have no fused rendering.
        assert_eq!(fmt_fused(&MicroOp::new(MOp::IAdd)), None);
        assert_eq!(parse_fused("iadd"), None);
    }
}
