//! Structural bytecode verification.
//!
//! Runs on the *symbolic* class files (before quickening) — both on original
//! programs (builder output) and on rewriter output, where it doubles as the
//! rewriter's regression net: instrumentation must never unbalance the stack
//! or break a branch target.

use crate::class::{ClassFile, MethodDef, Program};
use crate::instr::Instr;

/// A verification failure.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    pub class: String,
    pub method: String,
    pub pc: usize,
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{} @{}: {}", self.class, self.method, self.pc, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verification policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyOptions {
    /// Allow the `Dsm*` pseudo-instructions (rewriter output) — original
    /// application bytecode must not contain them.
    pub allow_dsm: bool,
}

impl VerifyOptions {
    pub const ORIGINAL: VerifyOptions = VerifyOptions { allow_dsm: false };
    pub const REWRITTEN: VerifyOptions = VerifyOptions { allow_dsm: true };
}

/// Verify every method of every class in a program.
pub fn verify_program(p: &Program, opts: VerifyOptions) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    for c in &p.classes {
        for m in &c.methods {
            if let Err(mut e) = verify_method(c, m, opts) {
                errors.append(&mut e);
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Stack effect: (pops, pushes), or None if it depends on the instruction's
/// signature (handled inline).
pub(crate) fn stack_effect(ins: &Instr) -> (usize, usize) {
    use Instr::*;
    match ins {
        Const(_) | LdcStr(_) | Load(_) => (0, 1),
        Dup => (1, 2),
        DupX1 => (2, 3),
        Pop | Store(_) => (1, 0),
        Swap => (2, 2),
        IInc(..) | Nop | Goto(_) => (0, 0),
        IAdd | ISub | IMul | IDiv | IRem | IShl | IShr | IUShr | IAnd | IOr | IXor | LAdd
        | LSub | LMul | LDiv | LRem | DAdd | DSub | DMul | DDiv | DRem | LCmp | DCmp => (2, 1),
        INeg | LNeg | DNeg | I2L | I2D | L2I | L2D | D2I | D2L => (1, 1),
        IfICmp(..) | IfACmpEq(_) | IfACmpNe(_) => (2, 0),
        IfI(..) | IfNull(_) | IfNonNull(_) => (1, 0),
        New(_) | NewQ(_) => (0, 1),
        GetField(..) | GetFieldQ { .. } => (1, 1),
        PutField(..) | PutFieldQ { .. } => (2, 0),
        GetStatic(..) | GetStaticQ { .. } => (0, 1),
        PutStatic(..) | PutStaticQ { .. } => (1, 0),
        NewArray(_) => (1, 1),
        ALoad(_) => (2, 1),
        AStore(_) => (3, 0),
        ArrayLen => (1, 1),
        Return => (0, 0),
        ReturnVal => (1, 0),
        MonitorEnter | MonitorExit | DsmMonitorEnter | DsmMonitorExit | DsmSpawn => (1, 0),
        DsmCheckRead { .. } | DsmCheckWrite { .. } | DsmVolatileAcquire { .. } | DsmVolatileRelease => (0, 0),
        // Call effects are signature-dependent; handled by the caller.
        InvokeStatic(..) | InvokeVirtual(_) | InvokeSpecial(..) | InvokeStaticQ(_)
        | InvokeSpecialQ(_) | InvokeVirtualQ { .. } => (0, 0),
    }
}

/// Verify one method: branch targets, stack-depth consistency (abstract
/// interpretation over depths), local-slot bounds, DSM-op policy, and
/// terminator sanity.
pub fn verify_method(c: &ClassFile, m: &MethodDef, opts: VerifyOptions) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    let err = |pc: usize, msg: String| VerifyError {
        class: c.name.to_string(),
        method: m.sig.to_string(),
        pc,
        message: msg,
    };

    if m.is_native {
        return Ok(());
    }
    let n = m.code.len();
    if n == 0 {
        // Empty body is an implicit void return; only valid for void methods.
        if m.sig.ret.is_some() {
            return Err(vec![err(0, "empty body in value-returning method".into())]);
        }
        return Ok(());
    }

    // Pass 1: per-instruction checks.
    for (pc, ins) in m.code.iter().enumerate() {
        if let Some(t) = ins.branch_target() {
            if t >= n {
                errors.push(err(pc, format!("branch target {t} out of bounds (len {n})")));
            }
        }
        if ins.is_dsm() && !opts.allow_dsm {
            errors.push(err(pc, format!("DSM pseudo-instruction in original code: {ins:?}")));
        }
        match ins {
            Instr::Load(i) | Instr::Store(i) | Instr::IInc(i, _)
                if *i >= m.max_locals.max(m.param_slots()) =>
            {
                errors.push(err(pc, format!("local {i} out of bounds (max_locals {})", m.max_locals)));
            }
            Instr::DsmCheckRead { depth, .. }
            | Instr::DsmCheckWrite { depth, .. }
            | Instr::DsmVolatileAcquire { depth }
                if *depth > 3 =>
            {
                errors.push(err(pc, format!("implausible check depth {depth}")));
            }
            _ => {}
        }
    }
    if !errors.is_empty() {
        return Err(errors);
    }

    // Pass 2: stack-depth dataflow.
    let mut depth_at: Vec<Option<isize>> = vec![None; n];
    let mut work = vec![(0usize, 0isize)];
    while let Some((pc, depth)) = work.pop() {
        if pc >= n {
            continue;
        }
        match depth_at[pc] {
            Some(d) if d == depth => continue,
            Some(d) => {
                errors.push(err(pc, format!("inconsistent stack depth: {d} vs {depth}")));
                continue;
            }
            None => depth_at[pc] = Some(depth),
        }
        let ins = &m.code[pc];
        let (pops, pushes) = match ins {
            Instr::InvokeStatic(_, sig) => (sig.nargs(), sig.ret.is_some() as usize),
            Instr::InvokeSpecial(_, sig) => (sig.nargs() + 1, sig.ret.is_some() as usize),
            Instr::InvokeVirtual(sig) => (sig.nargs() + 1, sig.ret.is_some() as usize),
            Instr::InvokeStaticQ(_) | Instr::InvokeSpecialQ(_) | Instr::InvokeVirtualQ { .. } => {
                errors.push(err(pc, "quickened call in pre-load verification".into()));
                continue;
            }
            other => stack_effect(other),
        };
        if depth < pops as isize {
            errors.push(err(pc, format!("stack underflow: depth {depth}, needs {pops}")));
            continue;
        }
        // Peeking checks need enough depth below the top.
        if let Instr::DsmCheckRead { depth: d, .. }
        | Instr::DsmCheckWrite { depth: d, .. }
        | Instr::DsmVolatileAcquire { depth: d } = ins
        {
            if depth < *d as isize + 1 {
                errors.push(err(pc, format!("check depth {d} exceeds stack depth {depth}")));
                continue;
            }
        }
        let next = depth - pops as isize + pushes as isize;
        match ins {
            Instr::Return => {
                if next != 0 {
                    // Non-empty stack at return is legal in the JVM; we allow
                    // it too (the frame is discarded) — no error.
                }
            }
            Instr::ReturnVal => {
                if m.sig.ret.is_none() {
                    errors.push(err(pc, "value return from void method".into()));
                }
            }
            Instr::Goto(t) => work.push((*t, next)),
            _ => {
                if let Some(t) = ins.branch_target() {
                    work.push((t, next));
                }
                work.push((pc + 1, next));
            }
        }
    }

    // `ReturnVal` in a void method is caught above; conversely a
    // value-returning method must contain at least one ReturnVal.
    if m.sig.ret.is_some() && !m.code.iter().any(|i| matches!(i, Instr::ReturnVal)) {
        errors.push(err(n - 1, "value-returning method never returns a value".into()));
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::{AccessKind, Cmp, Ty};

    fn prog(f: impl FnOnce(&mut crate::builder::MethodBuilder)) -> Program {
        let mut pb = ProgramBuilder::new("M");
        pb.class("M", "java.lang.Object", |cb| {
            cb.static_method("main", &[], None, f);
        });
        pb.build()
    }

    #[test]
    fn accepts_simple_loop() {
        let p = prog(|m| {
            let top = m.new_label();
            let out = m.new_label();
            m.const_i32(0).store(0);
            m.bind(top);
            m.load(0).const_i32(5).if_icmp(Cmp::Ge, out);
            m.iinc(0, 1).goto(top);
            m.bind(out).ret();
        });
        verify_program(&p, VerifyOptions::ORIGINAL).unwrap();
    }

    #[test]
    fn rejects_stack_underflow() {
        let p = prog(|m| {
            m.pop_().ret();
        });
        let errs = verify_program(&p, VerifyOptions::ORIGINAL).unwrap_err();
        assert!(errs[0].message.contains("underflow"), "{}", errs[0]);
    }

    #[test]
    fn rejects_inconsistent_depth() {
        let p = prog(|m| {
            let l = m.new_label();
            let join = m.new_label();
            m.const_i32(1).if_i(Cmp::Eq, l);
            m.const_i32(7).goto(join); // depth 1 at join
            m.bind(l); // depth 0 at join via this path
            m.bind(join);
            m.ret();
        });
        let errs = verify_program(&p, VerifyOptions::ORIGINAL).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("inconsistent")), "{errs:?}");
    }

    #[test]
    fn rejects_dsm_ops_in_original_code() {
        let mut p = prog(|m| {
            m.ret();
        });
        p.classes[0].methods[0]
            .code
            .insert(0, Instr::DsmCheckRead { depth: 0, kind: AccessKind::Field });
        let errs = verify_program(&p, VerifyOptions::ORIGINAL).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("DSM pseudo-instruction")));
        // ... but the same code passes under the rewritten policy (depth
        // issues aside — give it an object to check).
        p.classes[0].methods[0].code.insert(0, Instr::Const(crate::value::Value::Null));
        p.classes[0].methods[0].code.insert(2, Instr::Pop);
        verify_program(&p, VerifyOptions::REWRITTEN).unwrap();
    }

    #[test]
    fn rejects_out_of_bounds_branch() {
        let mut p = prog(|m| {
            m.ret();
        });
        p.classes[0].methods[0].code.insert(0, Instr::Goto(99));
        let errs = verify_program(&p, VerifyOptions::ORIGINAL).unwrap_err();
        assert!(errs[0].message.contains("out of bounds"));
    }

    #[test]
    fn rejects_missing_value_return() {
        let mut pb = ProgramBuilder::new("M");
        pb.class("M", "java.lang.Object", |cb| {
            cb.static_method("f", &[], Some(Ty::I32), |m| {
                m.ret();
            });
        });
        let errs = verify_program(&pb.build(), VerifyOptions::ORIGINAL).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("never returns a value")));
    }

    #[test]
    fn stdlib_verifies_clean() {
        let p = Program {
            classes: crate::stdlib::stdlib_classes(),
            main_class: "x".into(),
        };
        verify_program(&p, VerifyOptions::ORIGINAL).unwrap();
    }
}
