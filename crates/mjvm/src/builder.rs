//! Fluent assembler for MJVM programs.
//!
//! Programs (including the paper's benchmark applications — TSP, Series, the
//! 3D ray tracer) are authored through [`ProgramBuilder`] /
//! [`ClassBuilder`] / [`MethodBuilder`]. Labels are declared with
//! [`MethodBuilder::new_label`], bound with [`MethodBuilder::bind`], and
//! resolved to program-counter indices when the method is finished.

use crate::class::{ClassFile, FieldDef, MethodDef, Program, Sig};
use crate::instr::{Cmp, ElemTy, Instr, Ty};
use crate::value::Value;

/// Builds a whole [`Program`].
pub struct ProgramBuilder {
    classes: Vec<ClassFile>,
    main_class: String,
}

impl ProgramBuilder {
    /// `main_class` must end up containing a `static main()V` method.
    pub fn new(main_class: &str) -> Self {
        ProgramBuilder { classes: Vec::new(), main_class: main_class.to_string() }
    }

    /// Define a class through a closure and attach it to the program.
    pub fn class(&mut self, name: &str, super_name: &str, f: impl FnOnce(&mut ClassBuilder)) -> &mut Self {
        let mut cb = ClassBuilder { cf: ClassFile::new(name, Some(super_name)) };
        f(&mut cb);
        self.classes.push(cb.cf);
        self
    }

    /// Attach an externally built class (used by the rewriter's synthesized
    /// `C_static` companions).
    pub fn push_class(&mut self, cf: ClassFile) -> &mut Self {
        self.classes.push(cf);
        self
    }

    /// Finish with only the user classes (no bootstrap library).
    pub fn build(self) -> Program {
        Program { classes: self.classes, main_class: self.main_class.into() }
    }

    /// Finish and append the MJVM bootstrap library ([`crate::stdlib`]) —
    /// the normal way to produce a loadable program.
    pub fn build_with_stdlib(self) -> Program {
        let mut p = self.build();
        p.classes.extend(crate::stdlib::stdlib_classes());
        p
    }
}

/// Builds one class.
pub struct ClassBuilder {
    cf: ClassFile,
}

impl ClassBuilder {
    /// Declare an instance field.
    pub fn field(&mut self, name: &str, ty: Ty) -> &mut Self {
        self.cf.fields.push(FieldDef { name: name.into(), ty, is_static: false, is_volatile: false });
        self
    }

    /// Declare a `volatile` instance field.
    pub fn volatile_field(&mut self, name: &str, ty: Ty) -> &mut Self {
        self.cf.fields.push(FieldDef { name: name.into(), ty, is_static: false, is_volatile: true });
        self
    }

    /// Declare a static field.
    pub fn static_field(&mut self, name: &str, ty: Ty) -> &mut Self {
        self.cf.fields.push(FieldDef { name: name.into(), ty, is_static: true, is_volatile: false });
        self
    }

    /// Mark this class as part of the bootstrap library (paper §4.1).
    pub fn bootstrap(&mut self) -> &mut Self {
        self.cf.is_bootstrap = true;
        self
    }

    fn add_method(
        &mut self,
        name: &str,
        params: &[Ty],
        ret: Option<Ty>,
        is_static: bool,
        is_synchronized: bool,
        f: impl FnOnce(&mut MethodBuilder),
    ) {
        let sig = Sig::new(name, params, ret);
        let mut mb = MethodBuilder::new(sig.clone(), is_static);
        f(&mut mb);
        self.cf.methods.push(mb.finish(is_synchronized));
    }

    /// Define an instance method (`this` is local 0, parameters follow).
    pub fn method(&mut self, name: &str, params: &[Ty], ret: Option<Ty>, f: impl FnOnce(&mut MethodBuilder)) -> &mut Self {
        self.add_method(name, params, ret, false, false, f);
        self
    }

    /// Define a `synchronized` instance method.
    pub fn synchronized_method(
        &mut self,
        name: &str,
        params: &[Ty],
        ret: Option<Ty>,
        f: impl FnOnce(&mut MethodBuilder),
    ) -> &mut Self {
        self.add_method(name, params, ret, false, true, f);
        self
    }

    /// Define a static method (parameters start at local 0).
    pub fn static_method(&mut self, name: &str, params: &[Ty], ret: Option<Ty>, f: impl FnOnce(&mut MethodBuilder)) -> &mut Self {
        self.add_method(name, params, ret, true, false, f);
        self
    }

    /// Declare a native method (body supplied by an intrinsic).
    pub fn native_method(&mut self, name: &str, params: &[Ty], ret: Option<Ty>, is_static: bool) -> &mut Self {
        self.cf.methods.push(MethodDef {
            sig: Sig::new(name, params, ret),
            is_static,
            is_synchronized: false,
            is_native: true,
            max_locals: 0,
            code: vec![],
        });
        self
    }

    /// Define a trivial constructor that only calls `super.<init>()`.
    pub fn default_ctor(&mut self, super_name: &str) -> &mut Self {
        let sup = super_name.to_string();
        self.method("<init>", &[], None, |m| {
            m.load(0).invokespecial(&sup, "<init>", &[], None).ret();
        });
        self
    }
}

/// A forward-referenceable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Builds one method body.
pub struct MethodBuilder {
    sig: Sig,
    is_static: bool,
    code: Vec<Instr>,
    /// label id -> bound pc
    labels: Vec<Option<usize>>,
    max_local: u16,
}

impl MethodBuilder {
    fn new(sig: Sig, is_static: bool) -> Self {
        let params = sig.params.len() as u16 + if is_static { 0 } else { 1 };
        MethodBuilder { sig, is_static, code: Vec::new(), labels: Vec::new(), max_local: params }
    }

    fn finish(mut self, is_synchronized: bool) -> MethodDef {
        // Resolve label placeholders stored as label ids into pc indices.
        for ins in &mut self.code {
            if let Some(t) = ins.branch_target() {
                let pc = self.labels[t].unwrap_or_else(|| panic!("unbound label L{t} in {}", self.sig));
                ins.set_branch_target(pc);
            }
        }
        MethodDef {
            sig: self.sig,
            is_static: self.is_static,
            is_synchronized,
            is_native: false,
            max_locals: self.max_local,
            code: self.code,
        }
    }

    fn emit(&mut self, i: Instr) -> &mut Self {
        self.code.push(i);
        self
    }

    /// Current code offset (used by tests and the rewriter).
    pub fn pc(&self) -> usize {
        self.code.len()
    }

    /// Declare a new, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind a label to the current position.
    pub fn bind(&mut self, l: Label) -> &mut Self {
        assert!(self.labels[l.0].is_none(), "label L{} bound twice", l.0);
        self.labels[l.0] = Some(self.code.len());
        self
    }

    // ---- constants & stack ----
    pub fn const_i32(&mut self, v: i32) -> &mut Self {
        self.emit(Instr::Const(Value::I32(v)))
    }
    pub fn const_i64(&mut self, v: i64) -> &mut Self {
        self.emit(Instr::Const(Value::I64(v)))
    }
    pub fn const_f64(&mut self, v: f64) -> &mut Self {
        self.emit(Instr::Const(Value::F64(v)))
    }
    pub fn const_null(&mut self) -> &mut Self {
        self.emit(Instr::Const(Value::Null))
    }
    pub fn ldc_str(&mut self, s: &str) -> &mut Self {
        self.emit(Instr::LdcStr(s.into()))
    }
    pub fn dup(&mut self) -> &mut Self {
        self.emit(Instr::Dup)
    }
    pub fn dup_x1(&mut self) -> &mut Self {
        self.emit(Instr::DupX1)
    }
    pub fn pop_(&mut self) -> &mut Self {
        self.emit(Instr::Pop)
    }
    pub fn swap(&mut self) -> &mut Self {
        self.emit(Instr::Swap)
    }

    // ---- locals ----
    pub fn load(&mut self, n: u16) -> &mut Self {
        self.max_local = self.max_local.max(n + 1);
        self.emit(Instr::Load(n))
    }
    pub fn store(&mut self, n: u16) -> &mut Self {
        self.max_local = self.max_local.max(n + 1);
        self.emit(Instr::Store(n))
    }
    pub fn iinc(&mut self, n: u16, delta: i32) -> &mut Self {
        self.max_local = self.max_local.max(n + 1);
        self.emit(Instr::IInc(n, delta))
    }

    // ---- arithmetic ----
    pub fn iadd(&mut self) -> &mut Self {
        self.emit(Instr::IAdd)
    }
    pub fn isub(&mut self) -> &mut Self {
        self.emit(Instr::ISub)
    }
    pub fn imul(&mut self) -> &mut Self {
        self.emit(Instr::IMul)
    }
    pub fn idiv(&mut self) -> &mut Self {
        self.emit(Instr::IDiv)
    }
    pub fn irem(&mut self) -> &mut Self {
        self.emit(Instr::IRem)
    }
    pub fn ineg(&mut self) -> &mut Self {
        self.emit(Instr::INeg)
    }
    pub fn ishl(&mut self) -> &mut Self {
        self.emit(Instr::IShl)
    }
    pub fn ishr(&mut self) -> &mut Self {
        self.emit(Instr::IShr)
    }
    pub fn iushr(&mut self) -> &mut Self {
        self.emit(Instr::IUShr)
    }
    pub fn iand(&mut self) -> &mut Self {
        self.emit(Instr::IAnd)
    }
    pub fn ior(&mut self) -> &mut Self {
        self.emit(Instr::IOr)
    }
    pub fn ixor(&mut self) -> &mut Self {
        self.emit(Instr::IXor)
    }
    pub fn ladd(&mut self) -> &mut Self {
        self.emit(Instr::LAdd)
    }
    pub fn lsub(&mut self) -> &mut Self {
        self.emit(Instr::LSub)
    }
    pub fn lmul(&mut self) -> &mut Self {
        self.emit(Instr::LMul)
    }
    pub fn ldiv(&mut self) -> &mut Self {
        self.emit(Instr::LDiv)
    }
    pub fn lrem(&mut self) -> &mut Self {
        self.emit(Instr::LRem)
    }
    pub fn lneg(&mut self) -> &mut Self {
        self.emit(Instr::LNeg)
    }
    pub fn dadd(&mut self) -> &mut Self {
        self.emit(Instr::DAdd)
    }
    pub fn dsub(&mut self) -> &mut Self {
        self.emit(Instr::DSub)
    }
    pub fn dmul(&mut self) -> &mut Self {
        self.emit(Instr::DMul)
    }
    pub fn ddiv(&mut self) -> &mut Self {
        self.emit(Instr::DDiv)
    }
    pub fn drem(&mut self) -> &mut Self {
        self.emit(Instr::DRem)
    }
    pub fn dneg(&mut self) -> &mut Self {
        self.emit(Instr::DNeg)
    }

    // ---- conversions & comparisons ----
    pub fn i2l(&mut self) -> &mut Self {
        self.emit(Instr::I2L)
    }
    pub fn i2d(&mut self) -> &mut Self {
        self.emit(Instr::I2D)
    }
    pub fn l2i(&mut self) -> &mut Self {
        self.emit(Instr::L2I)
    }
    pub fn l2d(&mut self) -> &mut Self {
        self.emit(Instr::L2D)
    }
    pub fn d2i(&mut self) -> &mut Self {
        self.emit(Instr::D2I)
    }
    pub fn d2l(&mut self) -> &mut Self {
        self.emit(Instr::D2L)
    }
    pub fn lcmp(&mut self) -> &mut Self {
        self.emit(Instr::LCmp)
    }
    pub fn dcmp(&mut self) -> &mut Self {
        self.emit(Instr::DCmp)
    }

    // ---- control flow ----
    pub fn goto(&mut self, l: Label) -> &mut Self {
        self.emit(Instr::Goto(l.0))
    }
    pub fn if_icmp(&mut self, c: Cmp, l: Label) -> &mut Self {
        self.emit(Instr::IfICmp(c, l.0))
    }
    pub fn if_i(&mut self, c: Cmp, l: Label) -> &mut Self {
        self.emit(Instr::IfI(c, l.0))
    }
    pub fn if_null(&mut self, l: Label) -> &mut Self {
        self.emit(Instr::IfNull(l.0))
    }
    pub fn if_nonnull(&mut self, l: Label) -> &mut Self {
        self.emit(Instr::IfNonNull(l.0))
    }
    pub fn if_acmp_eq(&mut self, l: Label) -> &mut Self {
        self.emit(Instr::IfACmpEq(l.0))
    }
    pub fn if_acmp_ne(&mut self, l: Label) -> &mut Self {
        self.emit(Instr::IfACmpNe(l.0))
    }

    // ---- heap ----
    pub fn new_(&mut self, class: &str) -> &mut Self {
        self.emit(Instr::New(class.into()))
    }
    pub fn getfield(&mut self, class: &str, field: &str) -> &mut Self {
        self.emit(Instr::GetField(class.into(), field.into()))
    }
    pub fn putfield(&mut self, class: &str, field: &str) -> &mut Self {
        self.emit(Instr::PutField(class.into(), field.into()))
    }
    pub fn getstatic(&mut self, class: &str, field: &str) -> &mut Self {
        self.emit(Instr::GetStatic(class.into(), field.into()))
    }
    pub fn putstatic(&mut self, class: &str, field: &str) -> &mut Self {
        self.emit(Instr::PutStatic(class.into(), field.into()))
    }
    pub fn newarray(&mut self, elem: ElemTy) -> &mut Self {
        self.emit(Instr::NewArray(elem))
    }
    pub fn aload(&mut self, elem: ElemTy) -> &mut Self {
        self.emit(Instr::ALoad(elem))
    }
    pub fn astore(&mut self, elem: ElemTy) -> &mut Self {
        self.emit(Instr::AStore(elem))
    }
    pub fn arraylen(&mut self) -> &mut Self {
        self.emit(Instr::ArrayLen)
    }

    // ---- invocation ----
    pub fn invokestatic(&mut self, class: &str, name: &str, params: &[Ty], ret: Option<Ty>) -> &mut Self {
        self.emit(Instr::InvokeStatic(class.into(), Sig::new(name, params, ret)))
    }
    pub fn invokevirtual(&mut self, name: &str, params: &[Ty], ret: Option<Ty>) -> &mut Self {
        self.emit(Instr::InvokeVirtual(Sig::new(name, params, ret)))
    }
    pub fn invokespecial(&mut self, class: &str, name: &str, params: &[Ty], ret: Option<Ty>) -> &mut Self {
        self.emit(Instr::InvokeSpecial(class.into(), Sig::new(name, params, ret)))
    }
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Instr::Return)
    }
    pub fn ret_val(&mut self) -> &mut Self {
        self.emit(Instr::ReturnVal)
    }

    // ---- synchronization ----
    pub fn monitor_enter(&mut self) -> &mut Self {
        self.emit(Instr::MonitorEnter)
    }
    pub fn monitor_exit(&mut self) -> &mut Self {
        self.emit(Instr::MonitorExit)
    }
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::Nop)
    }

    // ---- composite conveniences ----

    /// `new C; dup; <push args via f>; invokespecial C.<init>` — leaves the
    /// constructed object on the stack.
    pub fn construct(&mut self, class: &str, params: &[Ty], push_args: impl FnOnce(&mut Self)) -> &mut Self {
        self.new_(class).dup();
        push_args(self);
        self.invokespecial(class, "<init>", params, None)
    }

    /// `System.println(String)` on the string on top of the stack.
    pub fn println_str(&mut self) -> &mut Self {
        self.invokestatic("java.lang.System", "println", &[Ty::Ref], None)
    }

    /// `System.println(int)` on the i32 on top of the stack.
    pub fn println_i32(&mut self) -> &mut Self {
        self.invokestatic("java.lang.System", "printlnI", &[Ty::I32], None)
    }

    /// `System.println(double)` on the f64 on top of the stack.
    pub fn println_f64(&mut self) -> &mut Self {
        self.invokestatic("java.lang.System", "printlnD", &[Ty::F64], None)
    }

    /// `System.println(long)` on the i64 on top of the stack.
    pub fn println_i64(&mut self) -> &mut Self {
        self.invokestatic("java.lang.System", "printlnJ", &[Ty::I64], None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut pb = ProgramBuilder::new("M");
        pb.class("M", "java.lang.Object", |cb| {
            cb.static_method("main", &[], None, |m| {
                let top = m.new_label();
                let done = m.new_label();
                m.const_i32(0).store(0);
                m.bind(top);
                m.load(0).const_i32(10).if_icmp(Cmp::Ge, done);
                m.iinc(0, 1).goto(top);
                m.bind(done).ret();
            });
        });
        let p = pb.build();
        let code = &p.class("M").unwrap().method("main").unwrap().code;
        // `done` must point at the final Return, `top` back at pc 2.
        let if_target = code.iter().find_map(|i| match i {
            Instr::IfICmp(_, t) => Some(*t),
            _ => None,
        });
        assert_eq!(if_target, Some(code.len() - 1));
        let goto_target = code.iter().find_map(|i| match i {
            Instr::Goto(t) => Some(*t),
            _ => None,
        });
        assert_eq!(goto_target, Some(2));
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut pb = ProgramBuilder::new("M");
        pb.class("M", "java.lang.Object", |cb| {
            cb.static_method("main", &[], None, |m| {
                let l = m.new_label();
                m.goto(l).ret();
            });
        });
    }

    #[test]
    fn max_locals_tracks_stores_and_params() {
        let mut pb = ProgramBuilder::new("M");
        pb.class("M", "java.lang.Object", |cb| {
            cb.method("f", &[Ty::I32, Ty::I32], None, |m| {
                m.const_i32(1).store(7).ret();
            });
        });
        let p = pb.build();
        assert_eq!(p.class("M").unwrap().method("f").unwrap().max_locals, 8);
    }

    #[test]
    fn fields_and_flags() {
        let mut pb = ProgramBuilder::new("M");
        pb.class("M", "java.lang.Object", |cb| {
            cb.field("a", Ty::I32)
                .volatile_field("v", Ty::I64)
                .static_field("s", Ty::Ref);
            cb.synchronized_method("m", &[], None, |m| {
                m.ret();
            });
            cb.native_method("n", &[], Some(Ty::I32), true);
        });
        let p = pb.build();
        let c = p.class("M").unwrap();
        assert!(!c.field("a").unwrap().is_volatile);
        assert!(c.field("v").unwrap().is_volatile);
        assert!(c.field("s").unwrap().is_static);
        assert!(c.method("m").unwrap().is_synchronized);
        assert!(c.method("n").unwrap().is_native);
    }
}
