//! The symbolic class-file model: what the builder produces, what the
//! JavaSplit rewriter transforms, and what the loader resolves.

use crate::instr::{Instr, Ty};
use std::fmt;
use std::sync::Arc;

/// A method signature: name, parameter types and return type. Plays the role
/// of the JVM's `NameAndType` constant — overload resolution uses the full
/// parameter list, as in real class files.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Sig {
    pub name: Arc<str>,
    pub params: Vec<Ty>,
    pub ret: Option<Ty>,
}

impl Sig {
    pub fn new(name: &str, params: &[Ty], ret: Option<Ty>) -> Self {
        Sig { name: name.into(), params: params.to_vec(), ret }
    }

    /// Number of argument slots *excluding* the receiver.
    pub fn nargs(&self) -> usize {
        self.params.len()
    }
}

impl fmt::Display for Sig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for p in &self.params {
            write!(f, "{}", p.descriptor())?;
        }
        write!(f, "){}", self.ret.map(|t| t.descriptor()).unwrap_or('V'))
    }
}

/// A field declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDef {
    pub name: Arc<str>,
    pub ty: Ty,
    pub is_static: bool,
    /// Volatile fields get acquire/release bracketing from the rewriter
    /// (paper §3: natural mapping of volatiles onto LRC release-acquire).
    pub is_volatile: bool,
}

/// A method definition with its body.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDef {
    pub sig: Sig,
    pub is_static: bool,
    /// `synchronized` methods are desugared by the rewriter into an explicit
    /// monitor-wrapped body before handler substitution (paper §4 change 2).
    pub is_synchronized: bool,
    /// Native methods have no bytecode body; they resolve to intrinsics.
    /// User-defined native methods are rejected by the rewriter (paper §4).
    pub is_native: bool,
    /// Number of local-variable slots (including parameters & receiver).
    pub max_locals: u16,
    pub code: Vec<Instr>,
}

impl MethodDef {
    /// Locals occupied by the parameters (receiver included for instance
    /// methods).
    pub fn param_slots(&self) -> u16 {
        self.sig.params.len() as u16 + if self.is_static { 0 } else { 1 }
    }
}

/// A class: the unit the JavaSplit rewriter transforms one at a time
/// (paper §4: "the bytecode rewriter individually transforms each class").
#[derive(Debug, Clone, PartialEq)]
pub struct ClassFile {
    pub name: Arc<str>,
    /// Superclass name; `None` only for the root `java.lang.Object`.
    pub super_name: Option<Arc<str>>,
    pub fields: Vec<FieldDef>,
    pub methods: Vec<MethodDef>,
    /// Marks classes belonging to the bootstrap library (rewritten via the
    /// dedicated bootstrap path, paper §4.1).
    pub is_bootstrap: bool,
}

impl ClassFile {
    pub fn new(name: &str, super_name: Option<&str>) -> Self {
        ClassFile {
            name: name.into(),
            super_name: super_name.map(Into::into),
            fields: Vec::new(),
            methods: Vec::new(),
            is_bootstrap: false,
        }
    }

    pub fn field(&self, name: &str) -> Option<&FieldDef> {
        self.fields.iter().find(|f| &*f.name == name)
    }

    pub fn method(&self, name: &str) -> Option<&MethodDef> {
        self.methods.iter().find(|m| &*m.sig.name == name)
    }

    pub fn method_by_sig(&self, sig: &Sig) -> Option<&MethodDef> {
        self.methods.iter().find(|m| &m.sig == sig)
    }

    /// `true` if any declared field is static (such classes get a `C_static`
    /// companion from the rewriter, paper §4.2).
    pub fn has_statics(&self) -> bool {
        self.fields.iter().any(|f| f.is_static)
    }
}

/// A whole program: a set of classes plus the entry point, the unit submitted
/// for distributed execution (paper Figure 1).
#[derive(Debug, Clone, Default)]
pub struct Program {
    pub classes: Vec<ClassFile>,
    /// Class whose `main()V` static method starts the application.
    pub main_class: Arc<str>,
}

impl Program {
    pub fn class(&self, name: &str) -> Option<&ClassFile> {
        self.classes.iter().find(|c| &*c.name == name)
    }

    pub fn class_mut(&mut self, name: &str) -> Option<&mut ClassFile> {
        self.classes.iter_mut().find(|c| &*c.name == name)
    }

    /// Total instruction count over all method bodies (used by rewriter
    /// statistics and tests).
    pub fn code_size(&self) -> usize {
        self.classes
            .iter()
            .flat_map(|c| &c.methods)
            .map(|m| m.code.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sig_display() {
        let s = Sig::new("foo", &[Ty::I32, Ty::Ref], Some(Ty::F64));
        assert_eq!(s.to_string(), "foo(IL)D");
        let v = Sig::new("run", &[], None);
        assert_eq!(v.to_string(), "run()V");
    }

    #[test]
    fn param_slots_counts_receiver() {
        let m = MethodDef {
            sig: Sig::new("m", &[Ty::I32], None),
            is_static: false,
            is_synchronized: false,
            is_native: false,
            max_locals: 2,
            code: vec![],
        };
        assert_eq!(m.param_slots(), 2);
        let s = MethodDef { is_static: true, ..m };
        assert_eq!(s.param_slots(), 1);
    }

    #[test]
    fn class_lookup() {
        let mut c = ClassFile::new("A", Some("java.lang.Object"));
        c.fields.push(FieldDef { name: "x".into(), ty: Ty::I32, is_static: false, is_volatile: false });
        c.fields.push(FieldDef { name: "S".into(), ty: Ty::I32, is_static: true, is_volatile: false });
        assert!(c.field("x").is_some());
        assert!(c.field("y").is_none());
        assert!(c.has_statics());
    }
}
