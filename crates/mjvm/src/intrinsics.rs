//! Intrinsic ("native") methods.
//!
//! The paper's bootstrap classes with native methods cannot be rewritten
//! automatically; JavaSplit ships manually written `javasplit` wrappers for
//! the common ones (§4.1). MJVM mirrors the split: bootstrap classes declare
//! `native` methods whose bodies resolve to a [`NativeOp`] here. *Pure*
//! intrinsics (math, string ops, `arraycopy`) execute locally on any node;
//! *environment-routed* ones (I/O, time, thread ops, wait/notify) are
//! delegated to the [`crate::interp::VmEnv`], which in the distributed
//! runtime forwards them per the paper's I/O-interception design.
//!
//! The rewriter keeps native methods native and renames their classes; the
//! resolver therefore accepts both `java.lang.Math` and
//! `javasplit.java.lang.Math` — the in-Rust analogue of the hand-written
//! wrapper classes.

use crate::class::Sig;
use crate::cost::CostModel;
use crate::heap::{Heap, ObjPayload, ObjRef};
use crate::interp::VmError;
use crate::loader::Image;
use crate::value::Value;

/// Every intrinsic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeOp {
    // pure math
    MathSqrt,
    MathSin,
    MathCos,
    MathTan,
    MathAtan,
    MathPow,
    MathExp,
    MathLog,
    MathAbsD,
    MathAbsI,
    MathFloor,
    MathCeil,
    MathMinI,
    MathMaxI,
    // pure object/array
    HashCode,
    RefEq,
    ArrayCopy,
    // pure strings
    StrLen,
    StrCharAt,
    StrConcat,
    StrFromI32,
    StrFromI64,
    StrFromF64,
    StrEquals,
    // env-routed console
    PrintlnStr,
    PrintlnI32,
    PrintlnI64,
    PrintlnF64,
    CurrentTimeMillis,
    // env-routed threads
    ThreadStart,
    ThreadSleep,
    ThreadCurrent,
    ThreadYield,
    // env-routed monitors
    ObjWait,
    ObjNotify,
    ObjNotifyAll,
    // env-routed virtual file service
    FileOpen,
    FileWriteLine,
    FileReadLine,
    FileClose,
}

impl NativeOp {
    /// Resolve a native method declaration to its intrinsic. Accepts the
    /// original bootstrap class name or its `javasplit.`-renamed wrapper.
    pub fn resolve(class: &str, sig: &Sig) -> Option<NativeOp> {
        let class = class.strip_prefix("javasplit.").unwrap_or(class);
        use NativeOp::*;
        Some(match (class, &*sig.name) {
            ("java.lang.Math", "sqrt") => MathSqrt,
            ("java.lang.Math", "sin") => MathSin,
            ("java.lang.Math", "cos") => MathCos,
            ("java.lang.Math", "tan") => MathTan,
            ("java.lang.Math", "atan") => MathAtan,
            ("java.lang.Math", "pow") => MathPow,
            ("java.lang.Math", "exp") => MathExp,
            ("java.lang.Math", "log") => MathLog,
            ("java.lang.Math", "abs") => MathAbsD,
            ("java.lang.Math", "absI") => MathAbsI,
            ("java.lang.Math", "floor") => MathFloor,
            ("java.lang.Math", "ceil") => MathCeil,
            ("java.lang.Math", "minI") => MathMinI,
            ("java.lang.Math", "maxI") => MathMaxI,
            ("java.lang.Object", "hashCode") => HashCode,
            ("java.lang.Object", "equals") => RefEq,
            ("java.lang.Object", "wait") => ObjWait,
            ("java.lang.Object", "notify") => ObjNotify,
            ("java.lang.Object", "notifyAll") => ObjNotifyAll,
            ("java.lang.System", "arraycopy") => ArrayCopy,
            ("java.lang.System", "currentTimeMillis") => CurrentTimeMillis,
            ("java.lang.System", "println") => PrintlnStr,
            ("java.lang.System", "printlnI") => PrintlnI32,
            ("java.lang.System", "printlnJ") => PrintlnI64,
            ("java.lang.System", "printlnD") => PrintlnF64,
            ("java.lang.String", "length") => StrLen,
            ("java.lang.String", "charAt") => StrCharAt,
            ("java.lang.String", "concat") => StrConcat,
            ("java.lang.String", "valueOfI") => StrFromI32,
            ("java.lang.String", "valueOfJ") => StrFromI64,
            ("java.lang.String", "valueOfD") => StrFromF64,
            ("java.lang.String", "equals") => StrEquals,
            ("java.lang.Thread", "start0") => ThreadStart,
            ("java.lang.Thread", "sleep") => ThreadSleep,
            ("java.lang.Thread", "currentThread") => ThreadCurrent,
            ("java.lang.Thread", "yield") => ThreadYield,
            ("java.io.VFile", "open") => FileOpen,
            ("java.io.VFile", "writeLine") => FileWriteLine,
            ("java.io.VFile", "readLine") => FileReadLine,
            ("java.io.VFile", "close") => FileClose,
            _ => return None,
        })
    }
}

/// Execute a pure intrinsic. Returns `(return value, virtual-time cost)`.
/// `args[0]` is the receiver for instance natives.
pub fn exec_pure(
    op: NativeOp,
    args: &[Value],
    heap: &mut Heap,
    image: &Image,
    model: &CostModel,
) -> Result<(Option<Value>, u64), VmError> {
    use NativeOp::*;
    let m = model.math_op;
    let mut cost = m;
    let ret = match op {
        MathSqrt => Some(Value::F64(args[0].as_f64().sqrt())),
        MathSin => Some(Value::F64(args[0].as_f64().sin())),
        MathCos => Some(Value::F64(args[0].as_f64().cos())),
        MathTan => Some(Value::F64(args[0].as_f64().tan())),
        MathAtan => Some(Value::F64(args[0].as_f64().atan())),
        MathPow => Some(Value::F64(args[0].as_f64().powf(args[1].as_f64()))),
        MathExp => Some(Value::F64(args[0].as_f64().exp())),
        MathLog => Some(Value::F64(args[0].as_f64().ln())),
        MathAbsD => Some(Value::F64(args[0].as_f64().abs())),
        MathAbsI => Some(Value::I32(args[0].as_i32().wrapping_abs())),
        MathFloor => Some(Value::F64(args[0].as_f64().floor())),
        MathCeil => Some(Value::F64(args[0].as_f64().ceil())),
        MathMinI => Some(Value::I32(args[0].as_i32().min(args[1].as_i32()))),
        MathMaxI => Some(Value::I32(args[0].as_i32().max(args[1].as_i32()))),

        HashCode => {
            cost = model.generic_op * 4;
            let r = args[0].as_opt_ref().ok_or_else(|| VmError::NullDeref {
                method: "Object.hashCode".into(),
                pc: 0,
            })?;
            // Identity hash: stable per object within a node, like the JVM's
            // default identity hash code.
            Some(Value::I32((r.0 as i32).wrapping_mul(0x9E37_79B9u32 as i32)))
        }
        RefEq => {
            cost = model.generic_op * 2;
            Some(Value::from(args[0] == args[1]))
        }
        ArrayCopy => {
            let src = args[0].as_opt_ref().ok_or_else(|| VmError::NullDeref {
                method: "System.arraycopy".into(),
                pc: 0,
            })?;
            let src_pos = args[1].as_i32();
            let dst = args[2].as_opt_ref().ok_or_else(|| VmError::NullDeref {
                method: "System.arraycopy".into(),
                pc: 0,
            })?;
            let dst_pos = args[3].as_i32();
            let len = args[4].as_i32();
            cost = model.generic_op * 2 + model.alloc_per_byte * (len.max(0) as u64 * 8);
            array_copy(heap, src, src_pos, dst, dst_pos, len)?;
            None
        }

        StrLen => {
            cost = model.generic_op * 2;
            let s = heap.str_of(args[0].as_ref());
            Some(Value::I32(s.chars().count() as i32))
        }
        StrCharAt => {
            cost = model.generic_op * 3;
            let s = heap.str_of(args[0].as_ref()).clone();
            let i = args[1].as_i32();
            let c = s
                .chars()
                .nth(i.max(0) as usize)
                .ok_or_else(|| VmError::IndexOutOfBounds { len: s.chars().count(), idx: i as i64 })?;
            Some(Value::I32(c as i32))
        }
        StrConcat => {
            let a = heap.str_of(args[0].as_ref()).clone();
            let b = heap.str_of(args[1].as_ref()).clone();
            cost = model.alloc + model.alloc_per_byte * (a.len() + b.len()) as u64;
            let joined: std::sync::Arc<str> = format!("{a}{b}").into();
            let r = heap.alloc_str(image.string_class, joined);
            Some(Value::Ref(r))
        }
        StrFromI32 => {
            cost = model.alloc;
            let r = heap.alloc_str(image.string_class, args[0].as_i32().to_string().into());
            Some(Value::Ref(r))
        }
        StrFromI64 => {
            cost = model.alloc;
            let r = heap.alloc_str(image.string_class, args[0].as_i64().to_string().into());
            Some(Value::Ref(r))
        }
        StrFromF64 => {
            cost = model.alloc;
            let r = heap.alloc_str(image.string_class, format!("{:?}", args[0].as_f64()).into());
            Some(Value::Ref(r))
        }
        StrEquals => {
            cost = model.generic_op * 4;
            let a = heap.str_of(args[0].as_ref());
            let eq = match args[1].as_opt_ref() {
                Some(b) => match &heap.get(b).payload {
                    ObjPayload::Str(bs) => a == bs,
                    _ => false,
                },
                None => false,
            };
            Some(Value::from(eq))
        }

        other => panic!("exec_pure called with env-routed op {other:?}"),
    };
    Ok((ret, cost))
}

fn array_copy(heap: &mut Heap, src: ObjRef, src_pos: i32, dst: ObjRef, dst_pos: i32, len: i32) -> Result<(), VmError> {
    if len < 0 || src_pos < 0 || dst_pos < 0 {
        return Err(VmError::IndexOutOfBounds { len: 0, idx: len.min(src_pos).min(dst_pos) as i64 });
    }
    let (sp, dp, n) = (src_pos as usize, dst_pos as usize, len as usize);
    let check = |l: usize, p: usize| {
        if p + n > l {
            Err(VmError::IndexOutOfBounds { len: l, idx: (p + n) as i64 })
        } else {
            Ok(())
        }
    };
    // Clone the source slice first (src and dst may be the same object).
    let slice = match &heap.get(src).payload {
        ObjPayload::ArrI32(v) => {
            check(v.len(), sp)?;
            ObjPayload::ArrI32(v[sp..sp + n].to_vec())
        }
        ObjPayload::ArrI64(v) => {
            check(v.len(), sp)?;
            ObjPayload::ArrI64(v[sp..sp + n].to_vec())
        }
        ObjPayload::ArrF64(v) => {
            check(v.len(), sp)?;
            ObjPayload::ArrF64(v[sp..sp + n].to_vec())
        }
        ObjPayload::ArrRef(v) => {
            check(v.len(), sp)?;
            ObjPayload::ArrRef(v[sp..sp + n].to_vec())
        }
        _ => return Err(VmError::TypeMismatch("arraycopy on non-array".into())),
    };
    match (&mut heap.get_mut(dst).payload, slice) {
        (ObjPayload::ArrI32(d), ObjPayload::ArrI32(s)) => {
            check(d.len(), dp)?;
            d[dp..dp + n].copy_from_slice(&s);
        }
        (ObjPayload::ArrI64(d), ObjPayload::ArrI64(s)) => {
            check(d.len(), dp)?;
            d[dp..dp + n].copy_from_slice(&s);
        }
        (ObjPayload::ArrF64(d), ObjPayload::ArrF64(s)) => {
            check(d.len(), dp)?;
            d[dp..dp + n].copy_from_slice(&s);
        }
        (ObjPayload::ArrRef(d), ObjPayload::ArrRef(s)) => {
            check(d.len(), dp)?;
            d[dp..dp + n].clone_from_slice(&s);
        }
        _ => return Err(VmError::TypeMismatch("arraycopy element type mismatch".into())),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Ty;

    #[test]
    fn resolve_accepts_javasplit_prefix() {
        let sig = Sig::new("sqrt", &[Ty::F64], Some(Ty::F64));
        assert_eq!(NativeOp::resolve("java.lang.Math", &sig), Some(NativeOp::MathSqrt));
        assert_eq!(NativeOp::resolve("javasplit.java.lang.Math", &sig), Some(NativeOp::MathSqrt));
        assert_eq!(NativeOp::resolve("user.Class", &sig), None);
    }

    #[test]
    fn string_equals_distinguishes_payloads() {
        let sig = Sig::new("equals", &[Ty::Ref], Some(Ty::I32));
        assert_eq!(NativeOp::resolve("java.lang.String", &sig), Some(NativeOp::StrEquals));
        // Object.equals stays reference equality.
        assert_eq!(NativeOp::resolve("java.lang.Object", &sig), Some(NativeOp::RefEq));
    }
}
