//! Virtual-time cost model.
//!
//! The discrete-event runtime charges every executed instruction a cost in
//! **picoseconds** of virtual time. Two "JVM brand" profiles are provided,
//! calibrated directly from the paper's micro-benchmarks (Tables 1–3, taken
//! on 2×1.7 GHz Xeon nodes, Sun JDK 1.4.0 vs IBM JDK 1.3.0):
//!
//! * [`JvmProfile::SunSim`] — flat heap-access latency; an access check makes
//!   an access ~2.2–5.6× slower (Table 1, Sun columns). High socket overhead
//!   for small messages (Table 3, Sun column).
//! * [`JvmProfile::IbmSim`] — *repeated* accesses to the same datum are an
//!   order of magnitude cheaper than first accesses, modelling IBM's JIT
//!   optimization of repeated data access. The injected access check defeats
//!   this optimization (the paper: "the access checks stand in the way of
//!   optimizations employed in the IBM's JVM"), modelled here by having a
//!   `DsmCheck*` clear the interpreter's inline access cache — so rewritten
//!   code pays first-access cost every time, yielding the 12–55× slowdowns
//!   of Table 1's IBM columns. Low socket overhead (Table 3, IBM column).
//!
//! All constants below are in picoseconds unless suffixed otherwise; Table
//! values in µs convert at 1 µs = 1 000 000 ps.

use crate::instr::{AccessKind, Instr};

/// Which JVM brand a simulated node runs (paper §6 mixes both in one run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JvmProfile {
    /// Modeled on Sun JDK 1.4.0.
    SunSim,
    /// Modeled on IBM JDK 1.3.0.
    IbmSim,
}

impl JvmProfile {
    pub fn name(self) -> &'static str {
        match self {
            JvmProfile::SunSim => "SunSim",
            JvmProfile::IbmSim => "IbmSim",
        }
    }

    pub fn cost_model(self) -> &'static CostModel {
        match self {
            JvmProfile::SunSim => &SUN,
            JvmProfile::IbmSim => &IBM,
        }
    }
}

/// Read/write discriminator for access costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rw {
    Read,
    Write,
}

/// Per-access-kind cost triple (all picoseconds).
#[derive(Debug, Clone, Copy)]
pub struct AccessCost {
    /// First (cache-cold) access in original code.
    pub first: u64,
    /// Repeated access to the same datum in original code.
    pub repeat: u64,
    /// Total cost of an instrumented access (check fast path + access) —
    /// Table 1 "Rewritten" column.
    pub rewritten: u64,
}

impl AccessCost {
    /// Cost charged to the `DsmCheck*` instruction itself: rewritten total
    /// minus the (first) access it guards.
    pub fn check(&self) -> u64 {
        self.rewritten.saturating_sub(self.first)
    }
}

/// The complete virtual-time cost model of one JVM brand.
#[derive(Debug, Clone)]
pub struct CostModel {
    pub profile: JvmProfile,
    /// `[kind][rw]` access costs; kinds indexed Field=0, Static=1, Array=2.
    pub access: [[AccessCost; 2]; 3],
    /// Cost of a generic ALU/stack/branch instruction.
    pub generic_op: u64,
    /// Original JVM `monitorenter` (Table 2 "Original").
    pub monitor_enter: u64,
    /// Original `monitorexit`.
    pub monitor_exit: u64,
    /// JavaSplit lock-counter acquire on a *local* object (Table 2 "Local
    /// Object" — note: cheaper than the original monitorenter, §4.4).
    pub dsm_local_acquire: u64,
    /// JavaSplit acquire of a *shared* object when no communication results
    /// (Table 2 "Shared Object").
    pub dsm_shared_acquire: u64,
    /// Release counterparts (the paper only reports acquires; releases are
    /// taken as 60% of the acquire cost).
    pub dsm_local_release: u64,
    pub dsm_shared_release: u64,
    /// Method invocation overhead (frame push/pop) and per-argument cost.
    pub invoke: u64,
    pub invoke_per_arg: u64,
    /// Object allocation; array allocation adds `alloc_per_byte`·size.
    pub alloc: u64,
    pub alloc_per_byte: u64,
    /// Native math routine (sqrt, sin, …).
    pub math_op: u64,
    /// Console println.
    pub println: u64,
    /// CPU cost of handling one DSM protocol message (deserialize+dispatch).
    pub handler_fixed_ns: u64,
    /// CPU cost per byte serialized/deserialized by the custom codec.
    pub serialize_per_byte: u64,
    /// Diff computation per field compared (twin vs current).
    pub diff_per_field: u64,
    /// Network: per-message base latency in nanoseconds (Table 3 fit).
    pub net_base_ns: u64,
    /// Network: per-byte latency in nanoseconds (≈ 100 Mbit/s wire).
    pub net_per_byte_ns: u64,
}

impl CostModel {
    #[inline]
    pub fn access_cost(&self, kind: AccessKind, rw: Rw) -> &AccessCost {
        &self.access[kind_idx(kind)][rw as usize]
    }

    /// Baseline (uninstrumented) access cost.
    #[inline]
    pub fn access(&self, kind: AccessKind, rw: Rw, repeated: bool) -> u64 {
        let c = self.access_cost(kind, rw);
        if repeated {
            c.repeat
        } else {
            c.first
        }
    }

    /// Static cost of an instruction that needs no dynamic context. Heap
    /// accesses, checks, monitors and invokes are charged by the interpreter
    /// with dynamic context instead; this returns their non-access component
    /// (0 for pure-dynamic ops).
    #[inline]
    pub fn static_cost(&self, ins: &Instr) -> u64 {
        match ins {
            Instr::GetFieldQ { .. }
            | Instr::PutFieldQ { .. }
            | Instr::GetStaticQ { .. }
            | Instr::PutStaticQ { .. }
            | Instr::ALoad(_)
            | Instr::AStore(_)
            | Instr::DsmCheckRead { .. }
            | Instr::DsmCheckWrite { .. }
            | Instr::MonitorEnter
            | Instr::MonitorExit
            | Instr::DsmMonitorEnter
            | Instr::DsmMonitorExit
            | Instr::DsmVolatileAcquire { .. }
            | Instr::DsmVolatileRelease
            | Instr::InvokeStaticQ(_)
            | Instr::InvokeSpecialQ(_)
            | Instr::InvokeVirtualQ { .. }
            | Instr::NewQ(_)
            | Instr::NewArray(_)
            | Instr::LdcStr(_)
            | Instr::DsmSpawn => 0,
            Instr::Nop => self.generic_op / 2,
            _ => self.generic_op,
        }
    }
}

#[inline]
fn kind_idx(kind: AccessKind) -> usize {
    match kind {
        AccessKind::Field => 0,
        AccessKind::Static => 1,
        AccessKind::Array => 2,
    }
}

const fn ac(first: u64, repeat: u64, rewritten: u64) -> AccessCost {
    AccessCost { first, repeat, rewritten }
}

/// Sun JDK 1.4.0 profile — Table 1/2/3 Sun columns.
/// Sun shows no repeated-access optimization: repeat == first.
pub static SUN: CostModel = CostModel {
    profile: JvmProfile::SunSim,
    access: [
        // Field: read 8.37e-4 µs → 1.82e-3 µs; write 9.69e-4 → 2.48e-3.
        [ac(837, 837, 1_820), ac(969, 969, 2_480)],
        // Static: read slowdown 3.1, write slowdown 2.2 (Table 1 partially
        // illegible in the source; reconstructed around ~0.9e-3 µs
        // originals). The write constant excludes the Swap the statics
        // transformation inserts (one generic op), so the *end-to-end*
        // instrumented static write lands on the paper's total.
        [ac(850, 850, 2_640), ac(980, 980, 1_360)],
        // Array: read →5.45e-3 (×5.57); write →5.05e-3 (×4.1).
        [ac(978, 978, 5_450), ac(1_232, 1_232, 5_050)],
    ],
    generic_op: 800,
    monitor_enter: 90_600,     // Table 2: 9.06e-2 µs
    monitor_exit: 54_400,
    dsm_local_acquire: 19_600, // Table 2: 1.96e-2 µs — cheaper than original!
    dsm_shared_acquire: 281_000, // Table 2: 2.81e-1 µs
    dsm_local_release: 11_800,
    dsm_shared_release: 168_600,
    invoke: 2_500,
    invoke_per_arg: 200,
    alloc: 60_000,
    alloc_per_byte: 60,
    math_op: 2_000,
    println: 2_000_000,
    handler_fixed_ns: 5_000,
    serialize_per_byte: 250,
    diff_per_field: 600,
    // Table 3 linear fit: 0.6421 ms @65 B … 6.3694 ms @65 kB.
    net_base_ns: 636_400,
    net_per_byte_ns: 88,
};

/// IBM JDK 1.3.0 profile — Table 1/2/3 IBM columns.
/// Repeated accesses are ~an order of magnitude cheaper than first accesses;
/// the instrumentation defeats that optimization. The generic-op cost is
/// also markedly below Sun's: the paper observes "the much lower execution
/// time of Series on a single IBM's JVM in comparison to the execution on a
/// single Sun's JVM", i.e. IBM's JIT ran plain compute faster across the
/// board — which is exactly what makes the *rewritten* code's relative
/// slowdown (and hence the speedup denominator gap) larger on IBM.
pub static IBM: CostModel = CostModel {
    profile: JvmProfile::IbmSim,
    access: [
        // Field: read 6.53e-5 µs repeat → 1.63e-3 rewritten (×24.9);
        //        write 6.03e-5 → 7.36e-4 (×12.2).
        [ac(300, 65, 1_630), ac(300, 60, 736)],
        // Static: read 6.14e-5 → 7.32e-4 (×11.9); write 5.98e-5 → 1.61e-3
        // (×26.9; constant excludes the transformation's Swap — see SUN).
        [ac(300, 61, 732), ac(300, 60, 1_160)],
        // Array: read 9.05e-5 → 4.99e-3 (×55.1); write 1.94e-4 → 4.98e-3 (×25.7).
        [ac(350, 90, 4_990), ac(400, 194, 4_980)],
    ],
    generic_op: 450,
    monitor_enter: 93_400,     // Table 2: 9.34e-2 µs
    monitor_exit: 56_000,
    dsm_local_acquire: 54_700, // Table 2: 5.47e-2 µs
    dsm_shared_acquire: 327_000, // Table 2: 3.27e-1 µs
    dsm_local_release: 32_800,
    dsm_shared_release: 196_200,
    invoke: 2_200,
    invoke_per_arg: 180,
    alloc: 55_000,
    alloc_per_byte: 55,
    math_op: 1_800,
    println: 1_800_000,
    handler_fixed_ns: 4_500,
    serialize_per_byte: 220,
    diff_per_field: 550,
    // Table 3 fit: 0.0917 ms @65 B … 5.9984 ms @65 kB.
    net_base_ns: 85_800,
    net_per_byte_ns: 91,
};

/// Picoseconds per second, for report formatting.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_slowdowns_sun() {
        // Rewritten/original ratios must reproduce Table 1's Sun column.
        let m = JvmProfile::SunSim.cost_model();
        let fr = m.access_cost(AccessKind::Field, Rw::Read);
        let ratio = fr.rewritten as f64 / fr.repeat as f64;
        assert!((ratio - 2.17).abs() < 0.05, "field read slowdown {ratio}");
        let aw = m.access_cost(AccessKind::Array, Rw::Write);
        let ratio = aw.rewritten as f64 / aw.repeat as f64;
        assert!((ratio - 4.1).abs() < 0.1, "array write slowdown {ratio}");
    }

    #[test]
    fn table1_slowdowns_ibm() {
        let m = JvmProfile::IbmSim.cost_model();
        let fr = m.access_cost(AccessKind::Field, Rw::Read);
        let ratio = fr.rewritten as f64 / fr.repeat as f64;
        assert!((ratio - 24.9).abs() < 0.5, "field read slowdown {ratio}");
        let ar = m.access_cost(AccessKind::Array, Rw::Read);
        let ratio = ar.rewritten as f64 / ar.repeat as f64;
        assert!((ratio - 55.1).abs() < 1.0, "array read slowdown {ratio}");
    }

    #[test]
    fn table2_local_acquire_cheaper_than_original() {
        // §4.4: lock-counter acquire beats the original Java monitorenter.
        for p in [JvmProfile::SunSim, JvmProfile::IbmSim] {
            let m = p.cost_model();
            assert!(m.dsm_local_acquire < m.monitor_enter, "{p:?}");
            assert!(m.dsm_shared_acquire > m.monitor_enter, "{p:?}");
        }
    }

    #[test]
    fn table3_latency_fit() {
        // base + 65000·per_byte must land near the measured 65 kB latency.
        let sun = JvmProfile::SunSim.cost_model();
        let ms = (sun.net_base_ns + 65_000 * sun.net_per_byte_ns) as f64 / 1e6;
        assert!((ms - 6.3694).abs() < 0.15, "sun 65k latency {ms} ms");
        let ibm = JvmProfile::IbmSim.cost_model();
        let ms = (ibm.net_base_ns + 65_000 * ibm.net_per_byte_ns) as f64 / 1e6;
        assert!((ms - 5.9984).abs() < 0.15, "ibm 65k latency {ms} ms");
    }

    #[test]
    fn check_cost_nonnegative() {
        for p in [JvmProfile::SunSim, JvmProfile::IbmSim] {
            let m = p.cost_model();
            for kind in [AccessKind::Field, AccessKind::Static, AccessKind::Array] {
                for rw in [Rw::Read, Rw::Write] {
                    let c = m.access_cost(kind, rw);
                    assert!(c.rewritten > c.first, "{p:?} {kind:?} {rw:?}");
                    assert!(c.first >= c.repeat, "{p:?} {kind:?} {rw:?}");
                }
            }
        }
    }
}
