//! Distributed-semantics tests for the runtime features beyond the main
//! benchmarks: thread priorities in the grant order (§3.2), volatile
//! visibility (§3), virtual time, sleeping, the intercepted file service,
//! trap propagation, and the runaway guard.

use jsplit_mjvm::builder::ProgramBuilder;
use jsplit_mjvm::class::Program;
use jsplit_mjvm::cost::JvmProfile;
use jsplit_mjvm::instr::{Cmp, Ty};
use jsplit_runtime::exec::run_cluster;
use jsplit_runtime::ClusterConfig;

fn js(nodes: usize, p: &Program) -> jsplit_runtime::RunReport {
    run_cluster(ClusterConfig::javasplit(JvmProfile::SunSim, nodes), p).expect("cluster")
}

#[test]
fn volatile_flag_publishes_across_nodes() {
    // Writer sets data then a volatile flag; reader spins on the flag and
    // then reads data — the classic safe-publication idiom. The volatile
    // bracket (acquire/release, paper §3) must make it work without any
    // explicit synchronization in the program.
    let mut pb = ProgramBuilder::new("M");
    pb.class("Box", "java.lang.Object", |cb| {
        cb.default_ctor("java.lang.Object");
        cb.field("data", Ty::I32).volatile_field("ready", Ty::I32);
    });
    pb.class("Writer", "java.lang.Thread", |cb| {
        cb.field("b", Ty::Ref);
        cb.method("<init>", &[Ty::Ref], None, |m| {
            m.load(0).invokespecial("java.lang.Thread", "<init>", &[], None);
            m.load(0).load(1).putfield("Writer", "b").ret();
        });
        cb.method("run", &[], None, |m| {
            m.load(0).getfield("Writer", "b").const_i32(99).putfield("Box", "data");
            m.load(0).getfield("Writer", "b").const_i32(1).putfield("Box", "ready");
            m.ret();
        });
    });
    pb.class("M", "java.lang.Object", |cb| {
        cb.static_method("main", &[], None, |m| {
            m.construct("Box", &[], |_| {}).store(0);
            m.construct("Writer", &[Ty::Ref], |m| {
                m.load(0);
            })
            .invokevirtual("start", &[], None);
            // spin on the volatile flag
            let top = m.new_label();
            m.bind(top);
            m.load(0).getfield("Box", "ready").if_i(Cmp::Eq, top);
            m.load(0).getfield("Box", "data").println_i32();
            m.ret();
        });
    });
    let p = pb.build_with_stdlib();
    for nodes in [1usize, 2] {
        let r = js(nodes, &p);
        r.expect_clean();
        assert_eq!(r.output, vec!["99"], "{nodes} nodes");
    }
}

#[test]
fn priorities_order_the_grant_queue() {
    // Main holds the lock while three workers of priorities 2, 9, 5 queue
    // on it; the grant order must be 9, 5, 2 (paper §3.2: "the current
    // owner needs always to pass ownership to the requester with the
    // highest priority"). Each worker appends its priority to the log
    // vector inside its critical section.
    let mut pb = ProgramBuilder::new("M");
    pb.class("W", "java.lang.Thread", |cb| {
        cb.field("lockObj", Ty::Ref).field("log", Ty::Ref).field("tag", Ty::Ref);
        cb.method("<init>", &[Ty::Ref, Ty::Ref, Ty::Ref, Ty::I32], None, |m| {
            m.load(0).invokespecial("java.lang.Thread", "<init>", &[], None);
            m.load(0).load(1).putfield("W", "lockObj");
            m.load(0).load(2).putfield("W", "log");
            m.load(0).load(3).putfield("W", "tag");
            m.load(0).load(4).invokevirtual("setPriority", &[Ty::I32], None);
            m.ret();
        });
        cb.method("run", &[], None, |m| {
            m.load(0).getfield("W", "lockObj").monitor_enter();
            m.load(0)
                .getfield("W", "log")
                .load(0)
                .getfield("W", "tag")
                .invokevirtual("addElement", &[Ty::Ref], None);
            m.load(0).getfield("W", "lockObj").monitor_exit();
            m.ret();
        });
    });
    pb.class("M", "java.lang.Object", |cb| {
        cb.static_method("main", &[], None, |m| {
            m.construct("java.lang.Object", &[], |_| {}).store(0); // the lock
            m.construct("java.util.Vector", &[Ty::I32], |m| {
                m.const_i32(4);
            })
            .store(1); // the log
            // Hold the lock while starting the contenders, then sleep so
            // all three requests are queued before the release.
            m.load(0).monitor_enter();
            m.const_i32(3).jsplit_newarray_ref(); // workers array -> local 2
            m.store(2);
            for (i, (tag, prio)) in [("p2", 2), ("p9", 9), ("p5", 5)].iter().enumerate() {
                m.load(2).const_i32(i as i32);
                m.construct("W", &[Ty::Ref, Ty::Ref, Ty::Ref, Ty::I32], |m| {
                    m.load(0).load(1).ldc_str(tag).const_i32(*prio);
                });
                m.jsplit_astore_ref();
                m.load(2).const_i32(i as i32).jsplit_aload_ref().invokevirtual("start", &[], None);
            }
            m.const_i64(50).invokestatic("java.lang.Thread", "sleep", &[Ty::I64], None);
            m.load(0).monitor_exit();
            // join all, then print the log order
            for i in 0..3 {
                m.load(2).const_i32(i).jsplit_aload_ref().invokevirtual("join", &[], None);
            }
            for i in 0..3 {
                m.load(1).const_i32(i).invokevirtual("elementAt", &[Ty::I32], Some(Ty::Ref)).println_str();
            }
            m.ret();
        });
    });
    let p = pb.build_with_stdlib();
    let r = js(2, &p);
    r.expect_clean();
    assert_eq!(r.output, vec!["p9", "p5", "p2"]);
}

// Small sugar for Ref arrays in this test file.
trait RefArr {
    fn jsplit_newarray_ref(&mut self) -> &mut Self;
    fn jsplit_astore_ref(&mut self) -> &mut Self;
    fn jsplit_aload_ref(&mut self) -> &mut Self;
}
impl RefArr for jsplit_mjvm::builder::MethodBuilder {
    fn jsplit_newarray_ref(&mut self) -> &mut Self {
        self.newarray(jsplit_mjvm::instr::ElemTy::Ref)
    }
    fn jsplit_astore_ref(&mut self) -> &mut Self {
        self.astore(jsplit_mjvm::instr::ElemTy::Ref)
    }
    fn jsplit_aload_ref(&mut self) -> &mut Self {
        self.aload(jsplit_mjvm::instr::ElemTy::Ref)
    }
}

#[test]
fn sleep_advances_virtual_time() {
    let mut pb = ProgramBuilder::new("M");
    pb.class("M", "java.lang.Object", |cb| {
        cb.static_method("main", &[], None, |m| {
            m.invokestatic("java.lang.System", "currentTimeMillis", &[], Some(Ty::I64)).store(0);
            m.const_i64(25).invokestatic("java.lang.Thread", "sleep", &[Ty::I64], None);
            m.invokestatic("java.lang.System", "currentTimeMillis", &[], Some(Ty::I64));
            m.load(0).lsub().println_i64();
            m.ret();
        });
    });
    let r = js(1, &pb.build_with_stdlib());
    r.expect_clean();
    let elapsed: i64 = r.output[0].parse().unwrap();
    assert!((25..100).contains(&elapsed), "elapsed {elapsed} ms");
    assert!(r.exec_time_ps >= 25 * 1_000_000_000);
}

#[test]
fn vfile_round_trips_lines() {
    let mut pb = ProgramBuilder::new("M");
    pb.class("M", "java.lang.Object", |cb| {
        cb.static_method("main", &[], None, |m| {
            m.ldc_str("out.txt").invokestatic("java.io.VFile", "open", &[Ty::Ref], Some(Ty::I32)).store(0);
            m.load(0).ldc_str("alpha").invokestatic("java.io.VFile", "writeLine", &[Ty::I32, Ty::Ref], None);
            m.load(0).ldc_str("beta").invokestatic("java.io.VFile", "writeLine", &[Ty::I32, Ty::Ref], None);
            m.load(0).invokestatic("java.io.VFile", "readLine", &[Ty::I32], Some(Ty::Ref)).println_str();
            m.load(0).invokestatic("java.io.VFile", "readLine", &[Ty::I32], Some(Ty::Ref)).println_str();
            // EOF -> null
            let eof = m.new_label();
            let done = m.new_label();
            m.load(0).invokestatic("java.io.VFile", "readLine", &[Ty::I32], Some(Ty::Ref)).if_null(eof);
            m.ldc_str("more").println_str().goto(done);
            m.bind(eof).ldc_str("eof").println_str();
            m.bind(done);
            m.load(0).invokestatic("java.io.VFile", "close", &[Ty::I32], None);
            m.ret();
        });
    });
    let r = js(1, &pb.build_with_stdlib());
    r.expect_clean();
    assert_eq!(r.output, vec!["alpha", "beta", "eof"]);
}

#[test]
fn traps_kill_the_thread_and_surface_in_the_report() {
    let mut pb = ProgramBuilder::new("M");
    pb.class("W", "java.lang.Thread", |cb| {
        cb.default_ctor("java.lang.Thread");
        cb.method("run", &[], None, |m| {
            m.const_i32(1).const_i32(0).idiv().println_i32().ret();
        });
    });
    pb.class("M", "java.lang.Object", |cb| {
        cb.static_method("main", &[], None, |m| {
            m.construct("W", &[], |_| {}).store(0);
            m.load(0).invokevirtual("start", &[], None);
            // Don't join (the worker dies); just print.
            m.ldc_str("main done").println_str();
            m.ret();
        });
    });
    let r = js(2, &pb.build_with_stdlib());
    assert_eq!(r.output, vec!["main done"]);
    assert_eq!(r.errors.len(), 1);
    assert!(matches!(r.errors[0].1, jsplit_mjvm::interp::VmError::DivByZero { .. }));
    assert!(!r.deadlocked);
}

#[test]
fn max_ops_guard_aborts_runaway_programs() {
    let mut pb = ProgramBuilder::new("M");
    pb.class("M", "java.lang.Object", |cb| {
        cb.static_method("main", &[], None, |m| {
            let top = m.new_label();
            m.bind(top);
            m.goto(top); // infinite loop
        });
    });
    let cfg = ClusterConfig::javasplit(JvmProfile::SunSim, 1).with_max_ops(100_000);
    let r = run_cluster(cfg, &pb.build_with_stdlib()).expect("cluster");
    assert!(r.aborted);
    assert!(r.ops >= 100_000);
}

#[test]
fn remote_deadlock_is_detected() {
    // Two threads, two locks, opposite order — with a sleep to force the
    // interleaving that deadlocks. The runtime must report it rather than
    // hang.
    let mut pb = ProgramBuilder::new("M");
    pb.class("W", "java.lang.Thread", |cb| {
        cb.field("a", Ty::Ref).field("b", Ty::Ref);
        cb.method("<init>", &[Ty::Ref, Ty::Ref], None, |m| {
            m.load(0).invokespecial("java.lang.Thread", "<init>", &[], None);
            m.load(0).load(1).putfield("W", "a");
            m.load(0).load(2).putfield("W", "b").ret();
        });
        cb.method("run", &[], None, |m| {
            m.load(0).getfield("W", "a").monitor_enter();
            m.const_i64(30).invokestatic("java.lang.Thread", "sleep", &[Ty::I64], None);
            m.load(0).getfield("W", "b").monitor_enter();
            m.load(0).getfield("W", "b").monitor_exit();
            m.load(0).getfield("W", "a").monitor_exit();
            m.ret();
        });
    });
    pb.class("M", "java.lang.Object", |cb| {
        cb.static_method("main", &[], None, |m| {
            m.construct("java.lang.Object", &[], |_| {}).store(0);
            m.construct("java.lang.Object", &[], |_| {}).store(1);
            m.construct("W", &[Ty::Ref, Ty::Ref], |m| {
                m.load(0).load(1);
            })
            .store(2);
            m.construct("W", &[Ty::Ref, Ty::Ref], |m| {
                m.load(1).load(0);
            })
            .store(3);
            m.load(2).invokevirtual("start", &[], None);
            m.load(3).invokevirtual("start", &[], None);
            m.load(2).invokevirtual("join", &[], None);
            m.load(3).invokevirtual("join", &[], None);
            m.ret();
        });
    });
    let r = js(2, &pb.build_with_stdlib());
    assert!(r.deadlocked, "classic lock-order deadlock must be detected");
}
