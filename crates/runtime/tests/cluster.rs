//! End-to-end tests of the distributed runtime: original multithreaded MJVM
//! programs are rewritten and executed on simulated clusters, and their
//! observable behaviour is compared against the single-node baseline — the
//! transparency claim of the paper (§1: "allowing the programmer to be
//! unaware of the distributed nature of the underlying environment").

use jsplit_mjvm::builder::ProgramBuilder;
use jsplit_mjvm::class::Program;
use jsplit_mjvm::cost::JvmProfile;
use jsplit_mjvm::instr::{Cmp, ElemTy, Ty};
use jsplit_runtime::exec::run_cluster;
use jsplit_runtime::{Balancer, ClusterConfig, NodeSpec};

/// A worker-thread program: N workers each add their id into a shared
/// accumulator under a lock, main joins all and prints the total.
fn counter_program(nthreads: i32) -> Program {
    let mut pb = ProgramBuilder::new("M");
    pb.class("Acc", "java.lang.Object", |cb| {
        cb.default_ctor("java.lang.Object");
        cb.field("total", Ty::I32);
        cb.synchronized_method("add", &[Ty::I32], None, |m| {
            m.load(0).load(0).getfield("Acc", "total").load(1).iadd().putfield("Acc", "total").ret();
        });
        cb.synchronized_method("get", &[], Some(Ty::I32), |m| {
            m.load(0).getfield("Acc", "total").ret_val();
        });
    });
    pb.class("W", "java.lang.Thread", |cb| {
        cb.field("acc", Ty::Ref).field("id", Ty::I32);
        cb.method("<init>", &[Ty::Ref, Ty::I32], None, |m| {
            m.load(0).invokespecial("java.lang.Thread", "<init>", &[], None);
            m.load(0).load(1).putfield("W", "acc");
            m.load(0).load(2).putfield("W", "id").ret();
        });
        cb.method("run", &[], None, |m| {
            m.load(0)
                .getfield("W", "acc")
                .load(0)
                .getfield("W", "id")
                .invokevirtual("add", &[Ty::I32], None)
                .ret();
        });
    });
    pb.class("M", "java.lang.Object", |cb| {
        cb.static_method("main", &[], None, move |m| {
            m.construct("Acc", &[], |_| {}).store(0);
            // workers array
            m.const_i32(nthreads).newarray(ElemTy::Ref).store(1);
            let mk_top = m.new_label();
            let mk_end = m.new_label();
            m.const_i32(0).store(2);
            m.bind(mk_top);
            m.load(2).const_i32(nthreads).if_icmp(Cmp::Ge, mk_end);
            m.load(1).load(2);
            m.construct("W", &[Ty::Ref, Ty::I32], |m| {
                m.load(0).load(2).const_i32(1).iadd();
            });
            m.astore(ElemTy::Ref);
            m.load(1).load(2).aload(ElemTy::Ref).invokevirtual("start", &[], None);
            m.iinc(2, 1).goto(mk_top);
            m.bind(mk_end);
            // join all
            let j_top = m.new_label();
            let j_end = m.new_label();
            m.const_i32(0).store(2);
            m.bind(j_top);
            m.load(2).const_i32(nthreads).if_icmp(Cmp::Ge, j_end);
            m.load(1).load(2).aload(ElemTy::Ref).invokevirtual("join", &[], None);
            m.iinc(2, 1).goto(j_top);
            m.bind(j_end);
            m.load(0).invokevirtual("get", &[], Some(Ty::I32)).println_i32();
            m.ret();
        });
    });
    pb.build_with_stdlib()
}

/// Producer/consumer across a shared box with wait/notify.
fn pingpong_program(rounds: i32) -> Program {
    let mut pb = ProgramBuilder::new("M");
    pb.class("Chan", "java.lang.Object", |cb| {
        cb.default_ctor("java.lang.Object");
        cb.field("value", Ty::I32).field("full", Ty::I32);
        cb.synchronized_method("put", &[Ty::I32], None, |m| {
            let top = m.new_label();
            let go = m.new_label();
            m.bind(top);
            m.load(0).getfield("Chan", "full").if_i(Cmp::Eq, go);
            m.load(0).invokevirtual("wait", &[], None);
            m.goto(top);
            m.bind(go);
            m.load(0).load(1).putfield("Chan", "value");
            m.load(0).const_i32(1).putfield("Chan", "full");
            m.load(0).invokevirtual("notifyAll", &[], None);
            m.ret();
        });
        cb.synchronized_method("take", &[], Some(Ty::I32), |m| {
            let top = m.new_label();
            let go = m.new_label();
            m.bind(top);
            m.load(0).getfield("Chan", "full").if_i(Cmp::Ne, go);
            m.load(0).invokevirtual("wait", &[], None);
            m.goto(top);
            m.bind(go);
            m.load(0).const_i32(0).putfield("Chan", "full");
            m.load(0).invokevirtual("notifyAll", &[], None);
            m.load(0).getfield("Chan", "value").ret_val();
        });
    });
    pb.class("Producer", "java.lang.Thread", |cb| {
        cb.field("chan", Ty::Ref).field("n", Ty::I32);
        cb.method("<init>", &[Ty::Ref, Ty::I32], None, |m| {
            m.load(0).invokespecial("java.lang.Thread", "<init>", &[], None);
            m.load(0).load(1).putfield("Producer", "chan");
            m.load(0).load(2).putfield("Producer", "n").ret();
        });
        cb.method("run", &[], None, |m| {
            let top = m.new_label();
            let end = m.new_label();
            m.const_i32(0).store(1);
            m.bind(top);
            m.load(1).load(0).getfield("Producer", "n").if_icmp(Cmp::Ge, end);
            m.load(0).getfield("Producer", "chan").load(1).invokevirtual("put", &[Ty::I32], None);
            m.iinc(1, 1).goto(top);
            m.bind(end).ret();
        });
    });
    pb.class("M", "java.lang.Object", |cb| {
        cb.static_method("main", &[], None, move |m| {
            m.construct("Chan", &[], |_| {}).store(0);
            m.construct("Producer", &[Ty::Ref, Ty::I32], |m| {
                m.load(0).const_i32(rounds);
            })
            .invokevirtual("start", &[], None);
            // consume `rounds` values, summing them
            let top = m.new_label();
            let end = m.new_label();
            m.const_i32(0).store(1).const_i32(0).store(2);
            m.bind(top);
            m.load(2).const_i32(rounds).if_icmp(Cmp::Ge, end);
            m.load(1).load(0).invokevirtual("take", &[], Some(Ty::I32)).iadd().store(1);
            m.iinc(2, 1).goto(top);
            m.bind(end).load(1).println_i32();
            m.ret();
        });
    });
    pb.build_with_stdlib()
}

/// Program exercising static fields through the C_static transformation.
fn statics_program() -> Program {
    let mut pb = ProgramBuilder::new("M");
    pb.class("G", "java.lang.Object", |cb| {
        cb.static_field("counter", Ty::I32).static_field("label", Ty::Ref);
    });
    pb.class("W", "java.lang.Thread", |cb| {
        cb.default_ctor("java.lang.Thread");
        cb.method("run", &[], None, |m| {
            // counter += 10 (synchronized on the thread object to create the
            // release edge back to main's join)
            m.getstatic("G", "counter").const_i32(10).iadd().putstatic("G", "counter");
            m.ret();
        });
    });
    pb.class("M", "java.lang.Object", |cb| {
        cb.static_method("main", &[], None, |m| {
            m.const_i32(32).putstatic("G", "counter");
            m.ldc_str("done").putstatic("G", "label");
            m.construct("W", &[], |_| {}).store(0);
            m.load(0).invokevirtual("start", &[], None);
            m.load(0).invokevirtual("join", &[], None);
            m.getstatic("G", "counter").println_i32();
            m.getstatic("G", "label").println_str();
            m.ret();
        });
    });
    pb.build_with_stdlib()
}

fn baseline_output(p: &Program) -> Vec<String> {
    let r = run_cluster(ClusterConfig::baseline(JvmProfile::SunSim, 2), p).expect("baseline");
    r.expect_clean();
    r.output.clone()
}

#[test]
fn counter_distributed_matches_baseline() {
    let p = counter_program(6);
    let expected = baseline_output(&p);
    assert_eq!(expected, vec!["21"]); // 1+2+..+6
    for nodes in [1, 2, 4] {
        let r = run_cluster(ClusterConfig::javasplit(JvmProfile::SunSim, nodes), &p)
            .expect("cluster");
        r.expect_clean();
        assert_eq!(r.output, expected, "{nodes} nodes");
        assert_eq!(r.threads, 7);
    }
}

#[test]
fn counter_on_ibm_profile() {
    let p = counter_program(4);
    let r = run_cluster(ClusterConfig::javasplit(JvmProfile::IbmSim, 2), &p).expect("cluster");
    r.expect_clean();
    assert_eq!(r.output, vec!["10"]);
}

#[test]
fn pingpong_across_nodes() {
    let p = pingpong_program(8);
    let expected = baseline_output(&p);
    assert_eq!(expected, vec!["28"]); // 0+1+..+7
    let r = run_cluster(ClusterConfig::javasplit(JvmProfile::SunSim, 2), &p).expect("cluster");
    r.expect_clean();
    assert_eq!(r.output, expected);
    // wait/notify must not have generated any extra traffic beyond lock
    // transfers: the DSM counters record them as local operations.
    let d = r.dsm_total();
    assert!(d.waits > 0, "the channel actually blocked");
    assert!(d.notifies > 0);
}

#[test]
fn statics_work_through_companions() {
    let p = statics_program();
    let expected = baseline_output(&p);
    assert_eq!(expected, vec!["42", "done"]);
    for nodes in [1, 3] {
        let r = run_cluster(ClusterConfig::javasplit(JvmProfile::SunSim, nodes), &p).expect("cluster");
        r.expect_clean();
        assert_eq!(r.output, expected, "{nodes} nodes");
    }
}

#[test]
fn heterogeneous_cluster_mixes_jvm_brands() {
    // Paper §6: "we have successfully employed nodes with different types of
    // JVMs in the same executions".
    let p = counter_program(8);
    let cfg = ClusterConfig::heterogeneous(vec![
        NodeSpec::sun(),
        NodeSpec::ibm(),
        NodeSpec::sun(),
        NodeSpec::ibm(),
    ]);
    let r = run_cluster(cfg, &p).expect("cluster");
    r.expect_clean();
    assert_eq!(r.output, vec!["36"]);
}

#[test]
fn threads_actually_distribute() {
    let p = counter_program(8);
    let r = run_cluster(ClusterConfig::javasplit(JvmProfile::SunSim, 4), &p).expect("cluster");
    r.expect_clean();
    // Spawn messages must have crossed the network (least-loaded spreads 8
    // workers over 4 nodes; at least 6 leave node 0).
    let spawns: u64 = r
        .net_per_node
        .iter()
        .map(|s| s.sent_of(jsplit_net::MsgKind::Spawn))
        .sum();
    assert!(spawns >= 6, "spawn messages: {spawns}");
    // And real DSM traffic happened: fetches + diffs + grants.
    let d = r.dsm_total();
    assert!(d.fetches > 0);
    assert!(d.diffs_sent > 0);
    assert!(d.grants_sent > 0);
}

#[test]
fn worker_joining_mid_run_receives_threads() {
    let p = counter_program(10);
    // One initial node; a second joins almost immediately. Small quanta so
    // the join interleaves with main's spawn loop (placement decisions are
    // made between slices).
    let mut cfg = ClusterConfig::javasplit(JvmProfile::SunSim, 1)
        .with_joins(vec![(1, NodeSpec::sun())]);
    cfg.fuel = 64;
    let r = run_cluster(cfg, &p).expect("cluster");
    r.expect_clean();
    assert_eq!(r.output, vec!["55"]);
    assert_eq!(r.net_per_node.len(), 2, "joined node registered");
    assert!(r.net_per_node[1].msgs_recv > 0, "joined node participated");
}

#[test]
fn round_robin_balancer_spreads_threads() {
    let p = counter_program(6);
    let cfg = ClusterConfig::javasplit(JvmProfile::SunSim, 3).with_balancer(Balancer::RoundRobin);
    let r = run_cluster(cfg, &p).expect("cluster");
    r.expect_clean();
    assert_eq!(r.output, vec!["21"]);
}

#[test]
fn pinned_balancer_keeps_everything_local() {
    let p = counter_program(4);
    let cfg = ClusterConfig::javasplit(JvmProfile::SunSim, 4).with_balancer(Balancer::Pinned);
    let r = run_cluster(cfg, &p).expect("cluster");
    r.expect_clean();
    assert_eq!(r.output, vec!["10"]);
    // Everything stays on node 0: no lock grants cross the wire.
    for s in &r.net_per_node[1..] {
        assert_eq!(s.sent_of(jsplit_net::MsgKind::LockGrant), 0);
    }
}

#[test]
fn classic_hlrc_mode_is_equivalent_but_chattier_in_memory() {
    let p = counter_program(6);
    let mts = run_cluster(ClusterConfig::javasplit(JvmProfile::SunSim, 3), &p).expect("mts");
    let classic = run_cluster(
        ClusterConfig::javasplit(JvmProfile::SunSim, 3)
            .with_protocol(jsplit_dsm::ProtocolMode::ClassicHlrc),
        &p,
    )
    .expect("classic");
    mts.expect_clean();
    classic.expect_clean();
    assert_eq!(mts.output, classic.output);
    // §3.1: MTS bounds notice storage; classic history can only be >=.
    assert!(
        classic.dsm_total().notices_stored_max >= mts.dsm_total().notices_stored_max,
        "classic {} vs mts {}",
        classic.dsm_total().notices_stored_max,
        mts.dsm_total().notices_stored_max
    );
    // §3.1: only scalar mode delays releases behind acks.
    assert_eq!(classic.dsm_total().releases_awaiting_acks, 0);
}

#[test]
fn class_distribution_is_accounted_as_setup() {
    let p = counter_program(3);
    let r = run_cluster(ClusterConfig::javasplit(JvmProfile::SunSim, 3), &p).expect("cluster");
    r.expect_clean();
    assert!(r.class_bytes > 3_000, "stdlib+app class files: {} B", r.class_bytes);
    assert!(r.setup_ps > 0, "distribution to 2 remote workers takes time");
    // Baseline mode ships nothing.
    let b = run_cluster(ClusterConfig::baseline(JvmProfile::SunSim, 2), &p).expect("baseline");
    assert_eq!(b.setup_ps, 0);
    assert_eq!(b.class_bytes, 0);
}

#[test]
fn runs_are_deterministic() {
    let p = counter_program(5);
    let cfg = ClusterConfig::javasplit(JvmProfile::SunSim, 3);
    let a = run_cluster(cfg.clone(), &p).expect("a");
    let b = run_cluster(cfg, &p).expect("b");
    assert_eq!(a.exec_time_ps, b.exec_time_ps);
    assert_eq!(a.ops, b.ops);
    assert_eq!(a.output, b.output);
    // Bit-identical per-node protocol behaviour, not just totals: any
    // scheduler or DSM change that leaks host nondeterminism (e.g. HashMap
    // iteration order into message order) shows up here.
    assert_eq!(a.net_per_node, b.net_per_node);
    assert_eq!(a.dsm_per_node, b.dsm_per_node);
    assert_eq!(a.setup_ps, b.setup_ps);
    assert_eq!(a.event_slab_high_water, b.event_slab_high_water);
}

/// A worker trapping *while holding a shared object's lock* must not take
/// the lock to its grave: the error path flushes the DSM interval and
/// releases held locks just like normal termination, so surviving threads
/// can continue.
#[test]
fn trap_while_holding_shared_lock_releases_it() {
    let p = {
        let mut pb = ProgramBuilder::new("M");
        pb.class("Acc", "java.lang.Object", |cb| {
            cb.default_ctor("java.lang.Object");
            cb.field("total", Ty::I32);
            cb.synchronized_method("add", &[Ty::I32], None, |m| {
                m.load(0).load(0).getfield("Acc", "total").load(1).iadd().putfield("Acc", "total").ret();
            });
            cb.synchronized_method("get", &[], Some(Ty::I32), |m| {
                m.load(0).getfield("Acc", "total").ret_val();
            });
            // Burn enough cycles under the lock to outlive a scheduling
            // quantum, then divide by zero.
            cb.synchronized_method("boom", &[], None, |m| {
                let top = m.new_label();
                let end = m.new_label();
                m.load(0).const_i32(1).putfield("Acc", "total");
                m.const_i32(0).store(1);
                m.bind(top);
                m.load(1).const_i32(50_000).if_icmp(Cmp::Ge, end);
                m.iinc(1, 1).goto(top);
                m.bind(end);
                m.const_i32(1).const_i32(0).idiv().store(1);
                m.ret();
            });
        });
        pb.class("A", "java.lang.Thread", |cb| {
            cb.field("acc", Ty::Ref);
            cb.method("<init>", &[Ty::Ref], None, |m| {
                m.load(0).invokespecial("java.lang.Thread", "<init>", &[], None);
                m.load(0).load(1).putfield("A", "acc").ret();
            });
            cb.method("run", &[], None, |m| {
                m.load(0).getfield("A", "acc").invokevirtual("boom", &[], None).ret();
            });
        });
        pb.class("B", "java.lang.Thread", |cb| {
            cb.field("acc", Ty::Ref);
            cb.method("<init>", &[Ty::Ref], None, |m| {
                m.load(0).invokespecial("java.lang.Thread", "<init>", &[], None);
                m.load(0).load(1).putfield("B", "acc").ret();
            });
            cb.method("run", &[], None, |m| {
                // Delay off-lock so A wins the first acquire, then add.
                let top = m.new_label();
                let end = m.new_label();
                m.const_i32(0).store(1);
                m.bind(top);
                m.load(1).const_i32(20_000).if_icmp(Cmp::Ge, end);
                m.iinc(1, 1).goto(top);
                m.bind(end);
                m.load(0).getfield("B", "acc").const_i32(5).invokevirtual("add", &[Ty::I32], None);
                m.ret();
            });
        });
        pb.class("M", "java.lang.Object", |cb| {
            cb.static_method("main", &[], None, |m| {
                m.construct("Acc", &[], |_| {}).store(0);
                m.construct("A", &[Ty::Ref], |m| {
                    m.load(0);
                })
                .store(1);
                m.construct("B", &[Ty::Ref], |m| {
                    m.load(0);
                })
                .store(2);
                m.load(1).invokevirtual("start", &[], None);
                m.load(2).invokevirtual("start", &[], None);
                m.load(2).invokevirtual("join", &[], None);
                m.load(0).invokevirtual("get", &[], Some(Ty::I32)).println_i32();
                m.ret();
            });
        });
        pb.build_with_stdlib()
    };
    let r = run_cluster(ClusterConfig::javasplit(JvmProfile::SunSim, 3), &p).expect("cluster");
    assert_eq!(r.errors.len(), 1, "exactly the boom thread trapped: {:?}", r.errors);
    assert!(!r.deadlocked, "B must acquire the lock the trapped thread held");
    assert!(!r.aborted);
    // boom set total=1 under the lock before trapping; its interval is
    // flushed on the error path, so B reads 1 and prints 6.
    assert_eq!(r.output, vec!["6"]);
}

/// Event storage must be bounded by *live* events, not by events processed:
/// a long run with tiny quanta churns through >100k slice events while the
/// payload slab (recycled through a free list) stays a few entries long.
#[test]
fn event_slab_stays_bounded() {
    // Two compute-heavy workers: ~2.4M interpreted ops.
    let p = {
        let mut pb = ProgramBuilder::new("M");
        pb.class("W", "java.lang.Thread", |cb| {
            cb.default_ctor("java.lang.Thread");
            cb.method("run", &[], None, |m| {
                let top = m.new_label();
                let end = m.new_label();
                m.const_i32(0).store(1);
                m.bind(top);
                m.load(1).const_i32(400_000).if_icmp(Cmp::Ge, end);
                m.iinc(1, 1).goto(top);
                m.bind(end).ret();
            });
        });
        pb.class("M", "java.lang.Object", |cb| {
            cb.static_method("main", &[], None, |m| {
                m.construct("W", &[], |_| {}).store(0);
                m.construct("W", &[], |_| {}).store(1);
                m.load(0).invokevirtual("start", &[], None);
                m.load(1).invokevirtual("start", &[], None);
                m.load(0).invokevirtual("join", &[], None);
                m.load(1).invokevirtual("join", &[], None);
                m.const_i32(7).println_i32();
                m.ret();
            });
        });
        pb.build_with_stdlib()
    };
    let mut cfg = ClusterConfig::javasplit(JvmProfile::SunSim, 2);
    cfg.fuel = 16; // tiny quantum: one slice event per 16 interpreted ops
    let r = run_cluster(cfg, &p).expect("cluster");
    r.expect_clean();
    assert_eq!(r.output, vec!["7"]);
    assert!(
        r.ops >= 16 * 100_000,
        "want >=100k slice events to make the bound meaningful, got {} ops",
        r.ops
    );
    assert!(
        r.event_slab_high_water < 128,
        "event slab grew with total events, not live events: {}",
        r.event_slab_high_water
    );
}

#[test]
fn distribution_costs_time_but_produces_parallelism() {
    // A compute-heavy, low-sharing program must get *faster* with nodes.
    let p = {
        let mut pb = ProgramBuilder::new("M");
        pb.class("W", "java.lang.Thread", |cb| {
            cb.field("out", Ty::Ref).field("idx", Ty::I32);
            cb.method("<init>", &[Ty::Ref, Ty::I32], None, |m| {
                m.load(0).invokespecial("java.lang.Thread", "<init>", &[], None);
                m.load(0).load(1).putfield("W", "out");
                m.load(0).load(2).putfield("W", "idx").ret();
            });
            cb.method("run", &[], None, |m| {
                // Busy loop: sum of squares into a local, then one write.
                let top = m.new_label();
                let end = m.new_label();
                m.const_f64(0.0).store(1).const_i32(0).store(3);
                m.bind(top);
                m.load(3).const_i32(300_000).if_icmp(Cmp::Ge, end);
                m.load(1).load(3).i2d().load(3).i2d().dmul().dadd().store(1);
                m.iinc(3, 1).goto(top);
                m.bind(end);
                m.load(0).getfield("W", "out").load(0).getfield("W", "idx").load(1).astore(ElemTy::F64);
                m.ret();
            });
        });
        pb.class("M", "java.lang.Object", |cb| {
            cb.static_method("main", &[], None, |m| {
                let n = 8;
                m.const_i32(n).newarray(ElemTy::F64).store(0);
                m.const_i32(n).newarray(ElemTy::Ref).store(1);
                let top = m.new_label();
                let end = m.new_label();
                m.const_i32(0).store(2);
                m.bind(top);
                m.load(2).const_i32(n).if_icmp(Cmp::Ge, end);
                m.load(1).load(2);
                m.construct("W", &[Ty::Ref, Ty::I32], |m| {
                    m.load(0).load(2);
                });
                m.astore(ElemTy::Ref);
                m.load(1).load(2).aload(ElemTy::Ref).invokevirtual("start", &[], None);
                m.iinc(2, 1).goto(top);
                m.bind(end);
                let jt = m.new_label();
                let je = m.new_label();
                m.const_i32(0).store(2);
                m.bind(jt);
                m.load(2).const_i32(n).if_icmp(Cmp::Ge, je);
                m.load(1).load(2).aload(ElemTy::Ref).invokevirtual("join", &[], None);
                m.iinc(2, 1).goto(jt);
                m.bind(je);
                // print sum of results
                let st = m.new_label();
                let se = m.new_label();
                m.const_f64(0.0).store(3).const_i32(0).store(2);
                m.bind(st);
                m.load(2).const_i32(n).if_icmp(Cmp::Ge, se);
                m.load(3).load(0).load(2).aload(ElemTy::F64).dadd().store(3);
                m.iinc(2, 1).goto(st);
                m.bind(se).load(3).println_f64();
                m.ret();
            });
        });
        pb.build_with_stdlib()
    };
    let expected = {
        let r = run_cluster(ClusterConfig::baseline(JvmProfile::IbmSim, 2), &p).expect("baseline");
        r.expect_clean();
        r.output.clone()
    };
    let r1 = run_cluster(ClusterConfig::javasplit(JvmProfile::IbmSim, 1), &p).expect("1");
    let r4 = run_cluster(ClusterConfig::javasplit(JvmProfile::IbmSim, 4), &p).expect("4");
    r1.expect_clean();
    r4.expect_clean();
    assert_eq!(r1.output, expected);
    assert_eq!(r4.output, expected);
    assert!(
        r4.exec_time_ps < r1.exec_time_ps,
        "4 nodes ({}) must beat 1 node ({})",
        r4.exec_time_ps,
        r1.exec_time_ps
    );
}

#[test]
#[ignore]
fn probe_overheads() {
    let p = counter_program(8);
    for nodes in [1usize, 4] {
        let r = run_cluster(ClusterConfig::javasplit(JvmProfile::IbmSim, nodes), &p).expect("run");
        let d = r.dsm_total();
        let n = r.net_total();
        println!(
            "nodes={nodes} time={:.3}ms ops={} msgs={} bytes={} fetches={} diffs={} grants={} acqR={} acqL={} inval={} waits={}",
            r.exec_time_ps as f64 / 1e9,
            r.ops, n.msgs_sent, n.bytes_sent, d.fetches, d.diffs_sent, d.grants_sent,
            d.shared_acquires_remote, d.shared_acquires_local, d.invalidations, d.waits
        );
        for (i, s) in r.net_per_node.iter().enumerate() {
            println!("  node{i}: sent={} recv={} kinds={:?}", s.msgs_sent, s.msgs_recv, s.sent_by_kind);
        }
    }
}
