//! Sockets-backend differential tests: a real multi-process run over
//! localhost TCP must be observationally equivalent to the reference
//! virtual-time simulator.
//!
//! The sockets backend forks one OS process per node (the `jsplit worker`
//! subcommand), relays every frame through a star coordinator, and drives
//! the same conservative `SyncEngine` as the threads backend — so program
//! stdout, virtual execution time, instruction counts, per-node DSM
//! protocol counters, and per-node network message/byte totals must all
//! match the sim exactly, on all three paper applications, in both
//! protocol modes, under both sync protocols (epoch barriers and the
//! barrier-free async promises). Only wall-clock, frame and sync counters
//! — *how* the run was orchestrated — may differ.
//!
//! The handshake tests exercise the failure paths end to end: a
//! mismatched dial-in gets an `Envelope::Reject` with a human-readable
//! reason (not a hang, not a panic), and a worker that never appears
//! turns into a `ClusterError::Config` naming the missing node ids.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use jsplit_dsm::ProtocolMode;
use jsplit_mjvm::class::Program;
use jsplit_mjvm::cost::JvmProfile;
use jsplit_net::tcp::{self, Envelope};
use jsplit_runtime::config::SocketsConfig;
use jsplit_runtime::exec::run_cluster;
use jsplit_runtime::{Backend, ClusterConfig, ClusterError, Lookahead, RunReport, SyncMode};

fn apps() -> Vec<(&'static str, Program)> {
    use jsplit_apps::{raytracer, series, tsp};
    vec![
        ("tsp", tsp::program(tsp::TspParams { n: 8, seed: 42, depth: 2, threads: 8 })),
        ("series", series::program(series::SeriesParams { n: 16, intervals: 40, threads: 8 })),
        ("raytracer", raytracer::program(raytracer::RayParams { size: 16, grid: 2, threads: 8 })),
    ]
}

/// The spawned worker binary: the test harness's `current_exe` is the
/// test runner, so point the coordinator at the real `jsplit` binary
/// Cargo built for this test run.
fn sockets_config() -> SocketsConfig {
    SocketsConfig {
        worker_bin: Some(std::path::PathBuf::from(env!("CARGO_BIN_EXE_jsplit"))),
        ..SocketsConfig::default()
    }
}

fn run_sim(proto: ProtocolMode, nodes: usize, p: &Program) -> RunReport {
    let cfg = ClusterConfig::javasplit(JvmProfile::SunSim, nodes).with_protocol(proto);
    let r = run_cluster(cfg, p).expect("cluster setup");
    r.expect_clean();
    r
}

fn run_sockets(proto: ProtocolMode, nodes: usize, sync: SyncMode, p: &Program) -> RunReport {
    let cfg = ClusterConfig::javasplit(JvmProfile::SunSim, nodes)
        .with_protocol(proto)
        .with_backend(Backend::Sockets)
        .with_sync(sync)
        .with_sockets(sockets_config());
    let r = run_cluster(cfg, p).expect("cluster setup");
    r.expect_clean();
    r
}

fn assert_reports_match(ctx: &str, sim: &RunReport, skt: &RunReport) {
    assert_eq!(sim.output, skt.output, "{ctx}: stdout diverged");
    assert_eq!(sim.exec_time_ps, skt.exec_time_ps, "{ctx}: virtual time diverged");
    assert_eq!(sim.setup_ps, skt.setup_ps, "{ctx}: setup time diverged");
    assert_eq!(sim.ops, skt.ops, "{ctx}: total ops diverged");
    assert_eq!(sim.ops_per_node, skt.ops_per_node, "{ctx}: per-node ops diverged");
    assert_eq!(sim.threads, skt.threads, "{ctx}: thread count diverged");
    assert_eq!(sim.class_bytes, skt.class_bytes, "{ctx}: shipped class bytes diverged");
    assert_eq!(sim.dsm_per_node, skt.dsm_per_node, "{ctx}: per-node DSM stats diverged");
    assert_eq!(sim.net_per_node, skt.net_per_node, "{ctx}: per-node net stats diverged");
}

/// The acceptance matrix: every paper app, both DSM protocols, both sync
/// protocols, 4 worker processes over localhost TCP — bit-identical to
/// the sim.
#[test]
fn sockets_backend_matches_sim_on_all_apps_both_protocols_both_sync_modes() {
    for (app, p) in &apps() {
        for proto in [ProtocolMode::MtsHlrc, ProtocolMode::ClassicHlrc] {
            let sim = run_sim(proto, 4, p);
            for sync in [SyncMode::Epoch, SyncMode::Async] {
                let skt = run_sockets(proto, 4, sync, p);
                assert_reports_match(&format!("{app} ({proto:?}, {sync:?})"), &sim, &skt);
            }
        }
    }
}

/// Cluster sizes below and above the app's thread count; global lookahead
/// rides along on the larger cluster.
#[test]
fn sockets_backend_matches_sim_across_node_counts() {
    let (_, p) = &apps()[0];
    for nodes in [2usize, 8] {
        let sim = run_sim(ProtocolMode::MtsHlrc, nodes, p);
        let skt = run_sockets(ProtocolMode::MtsHlrc, nodes, SyncMode::Epoch, p);
        assert_reports_match(&format!("tsp @ {nodes} nodes"), &sim, &skt);
    }
    let sim = run_sim(ProtocolMode::MtsHlrc, 8, p);
    let cfg = ClusterConfig::javasplit(JvmProfile::SunSim, 8)
        .with_backend(Backend::Sockets)
        .with_lookahead(Lookahead::Global)
        .with_sockets(sockets_config());
    let skt = run_cluster(cfg, p).expect("cluster setup");
    skt.expect_clean();
    assert_reports_match("tsp @ 8 nodes, global lookahead", &sim, &skt);
}

/// Grab a port the OS considers free, then release it for the
/// coordinator to re-bind. (A tiny re-bind race is possible but the test
/// container has no competing listeners.)
fn free_addr() -> SocketAddr {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = l.local_addr().expect("local_addr");
    drop(l);
    addr
}

/// A mismatched dial-in (wrong magic, stale config hash) is answered with
/// `Envelope::Reject` and a clear reason; the coordinator then times out
/// naming every node id that never completed the handshake, with the
/// rejections attached — a `ClusterError::Config`, not a hang or panic.
#[test]
fn coordinator_rejects_mismatched_peers_and_names_missing_workers() {
    let addr = free_addr();
    let (_, p) = &apps()[1];
    let cfg = ClusterConfig::javasplit(JvmProfile::SunSim, 2)
        .with_backend(Backend::Sockets)
        .with_sockets(SocketsConfig {
            listen: Some(addr),
            spawn_workers: false,
            accept_timeout: Duration::from_secs(2),
            ..SocketsConfig::default()
        });
    let prog = p.clone();
    let coord = std::thread::spawn(move || run_cluster(cfg, &prog));

    // Dial in with a wrong magic — must get a Reject, not silence.
    let mut bad_magic = connect_retry(addr);
    tcp::write_envelope(
        &mut bad_magic,
        &Envelope::Hello { magic: 0xDEAD_BEEF, version: tcp::VERSION, node_id: 0, config_hash: 0 },
    )
    .expect("send bad hello");
    bad_magic.flush().expect("flush");
    match tcp::read_envelope(&mut bad_magic).expect("reject envelope") {
        Envelope::Reject { reason } => {
            assert!(reason.contains("magic"), "reason should name the magic mismatch: {reason}")
        }
        other => panic!("expected Reject, got {other:?}"),
    }

    // Dial in with a config hash from some other run — also rejected.
    let mut bad_hash = connect_retry(addr);
    tcp::write_envelope(
        &mut bad_hash,
        &Envelope::Hello { magic: tcp::MAGIC, version: tcp::VERSION, node_id: 0, config_hash: 12345 },
    )
    .expect("send stale hello");
    bad_hash.flush().expect("flush");
    match tcp::read_envelope(&mut bad_hash).expect("reject envelope") {
        Envelope::Reject { reason } => {
            assert!(reason.contains("config"), "reason should name the config mismatch: {reason}")
        }
        other => panic!("expected Reject, got {other:?}"),
    }

    // No real worker ever dials in: the coordinator must give up at its
    // accept deadline with an error naming node ids 0 and 1.
    let err = coord.join().expect("coordinator thread").expect_err("run must fail");
    let ClusterError::Config(msg) = err else { panic!("expected Config error") };
    assert!(msg.contains("never completed the handshake"), "unexpected error: {msg}");
    assert!(msg.contains("0, 1"), "error should name the missing node ids: {msg}");
    assert!(msg.contains("rejected dial-ins"), "error should carry the rejections: {msg}");
}

fn connect_retry(addr: SocketAddr) -> TcpStream {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(e) if std::time::Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("coordinator never listened on {addr}: {e}"),
        }
    }
}

/// A worker keeps re-dialing with backoff until the coordinator appears
/// (here: a listener bound only after the worker starts), and surfaces a
/// coordinator-side `Reject` as a clear `ClusterError::Config`.
#[test]
fn worker_retries_dial_until_coordinator_appears() {
    let addr = free_addr();
    let worker = std::thread::spawn(move || {
        jsplit_runtime::sockets::run_worker(&addr.to_string(), Some(0), 0, Duration::from_secs(10))
    });
    // Let the first dial attempts fail before anything listens.
    std::thread::sleep(Duration::from_millis(200));
    let listener = TcpListener::bind(addr).expect("bind late");
    let (mut s, _) = listener.accept().expect("worker should still be retrying");
    match tcp::read_envelope(&mut s).expect("hello") {
        Envelope::Hello { magic, version, node_id, .. } => {
            assert_eq!(magic, tcp::MAGIC);
            assert_eq!(version, tcp::VERSION);
            assert_eq!(node_id, 0);
        }
        other => panic!("expected Hello, got {other:?}"),
    }
    tcp::write_envelope(&mut s, &Envelope::Reject { reason: "cluster is full".into() })
        .expect("send reject");
    s.flush().expect("flush");
    let err = worker.join().expect("worker thread").expect_err("worker must fail");
    let ClusterError::Config(msg) = err else { panic!("expected Config error") };
    assert!(msg.contains("cluster is full"), "worker should surface the Reject reason: {msg}");
}

/// A worker whose coordinator never exists gives up within its bounded
/// connect timeout instead of retrying forever.
#[test]
fn worker_dial_gives_up_after_connect_timeout() {
    let addr = free_addr();
    let t0 = std::time::Instant::now();
    let err = jsplit_runtime::sockets::run_worker(
        &addr.to_string(),
        Some(0),
        0,
        Duration::from_millis(300),
    )
    .expect_err("nothing listens there");
    assert!(t0.elapsed() < Duration::from_secs(5), "retry loop must be bounded");
    let ClusterError::Config(msg) = err else { panic!("expected Config error") };
    assert!(msg.contains("cannot reach coordinator"), "unexpected error: {msg}");
}

/// Config surface the sockets driver does not support must be rejected
/// up front with a clear error, not silently ignored.
#[test]
fn sockets_backend_rejects_unsupported_config() {
    let (_, p) = &apps()[1];
    let cfg = ClusterConfig::javasplit(JvmProfile::SunSim, 2)
        .with_backend(Backend::Sockets)
        .with_joins(vec![(1_000_000, jsplit_runtime::NodeSpec::sun())])
        .with_sockets(sockets_config());
    match run_cluster(cfg, p) {
        Err(ClusterError::Config(msg)) => {
            assert!(msg.contains("join"), "error should mention joins: {msg}")
        }
        other => panic!("expected Config error for joins, got {other:?}"),
    }
}
