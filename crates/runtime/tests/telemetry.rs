//! Live-telemetry integration tests: the sampler is side-band (a metrics
//! run is observationally identical to a bare one), the JSONL stream is
//! well-formed and monotone, and the horizon-stall watchdog fires on an
//! injected stalled peer — blaming exactly that peer — while staying
//! silent on a healthy cluster.

use jsplit_mjvm::class::Program;
use jsplit_mjvm::cost::JvmProfile;
use jsplit_runtime::exec::run_cluster;
use jsplit_runtime::{Backend, ClusterConfig, MetricsConfig, RunReport, SyncMode};
use std::path::PathBuf;
use std::time::Duration;

fn tsp() -> Program {
    jsplit_apps::tsp::program(jsplit_apps::tsp::TspParams { n: 8, seed: 42, depth: 2, threads: 8 })
}

fn cfg(backend: Backend, sync: SyncMode, nodes: usize) -> ClusterConfig {
    ClusterConfig::javasplit(JvmProfile::SunSim, nodes).with_backend(backend).with_sync(sync)
}

fn run(cfg: ClusterConfig, p: &Program) -> RunReport {
    let r = run_cluster(cfg, p).expect("cluster setup");
    r.expect_clean();
    r
}

/// A unique scratch path for JSONL output (cleaned up by each test).
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("jsplit-telemetry-{}-{name}.jsonl", std::process::id()))
}

/// Sampling must not perturb the run: program output, virtual time, and
/// every deterministic protocol counter are identical with metrics on and
/// off, on both backends and both sync modes.
#[test]
fn metrics_do_not_change_results() {
    let p = tsp();
    for (backend, sync) in [
        (Backend::Sim, SyncMode::Epoch),
        (Backend::Threads, SyncMode::Epoch),
        (Backend::Threads, SyncMode::Async),
    ] {
        let bare = run(cfg(backend, sync, 4), &p);
        let metered = run(
            cfg(backend, sync, 4).with_metrics(MetricsConfig {
                interval: Duration::from_millis(5),
                ..MetricsConfig::default()
            }),
            &p,
        );
        let ctx = format!("{backend:?}/{sync:?}");
        assert_eq!(bare.output, metered.output, "{ctx}: stdout diverged");
        assert_eq!(bare.exec_time_ps, metered.exec_time_ps, "{ctx}: virtual time diverged");
        assert_eq!(bare.ops, metered.ops, "{ctx}: ops diverged");
        assert_eq!(bare.ops_per_node, metered.ops_per_node, "{ctx}: per-node ops diverged");
        assert_eq!(bare.dsm_per_node, metered.dsm_per_node, "{ctx}: DSM stats diverged");
        assert_eq!(bare.net_per_node, metered.net_per_node, "{ctx}: net stats diverged");
        let t = metered.telemetry.expect("metered run carries a telemetry summary");
        assert!(t.samples >= 1, "{ctx}: sampler took no samples");
        assert!(bare.telemetry.is_none(), "{ctx}: bare run must not carry telemetry");
    }
}

/// The `--metrics` JSONL stream: one object per line, sequential `seq`,
/// monotone non-decreasing `t_ms`, per-node rows for every node, and a
/// final sample whose cumulative cluster ops equal the report's.
#[test]
fn metrics_jsonl_is_wellformed_and_monotone() {
    let p = tsp();
    let out = scratch("jsonl");
    let r = run(
        cfg(Backend::Threads, SyncMode::Async, 4).with_metrics(MetricsConfig {
            out: Some(out.clone()),
            interval: Duration::from_millis(5),
            ..MetricsConfig::default()
        }),
        &p,
    );
    let text = std::fs::read_to_string(&out).expect("metrics file written");
    let _ = std::fs::remove_file(&out);
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "no samples written");
    let mut prev_t = -1.0f64;
    for (i, line) in lines.iter().enumerate() {
        assert!(line.starts_with(&format!("{{\"seq\":{i},")), "seq not sequential: {line}");
        assert!(line.ends_with("]}"), "truncated line: {line}");
        assert_eq!(line.matches('{').count(), line.matches('}').count(), "unbalanced: {line}");
        assert!(line.contains("\"cluster\":{") && line.contains("\"nodes\":["), "{line}");
        for node in 0..4 {
            assert!(line.contains(&format!("{{\"node\":{node},")), "missing node {node}: {line}");
        }
        let t_ms: f64 = line
            .split("\"t_ms\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.parse().ok())
            .expect("t_ms field");
        assert!(t_ms >= prev_t, "t_ms went backwards at line {i}");
        prev_t = t_ms;
    }
    // The shutdown path publishes final counters and the sampler takes one
    // closing sample, so the stream's last line carries the whole run.
    let last = lines.last().unwrap();
    assert!(
        last.contains(&format!("\"cluster\":{{\"ops\":{},", r.ops)),
        "final sample ops != report ops {}: {last}",
        r.ops
    );
}

/// An injected stalled peer (node 1 sleeps before its first async
/// iteration, promise pinned at 0) is detected within the watchdog budget
/// and blamed — by name — by the nodes it pins; the run itself still
/// completes with bit-identical virtual-time results.
#[test]
fn watchdog_detects_and_blames_injected_stalled_peer() {
    let p = tsp();
    let reference = run(cfg(Backend::Threads, SyncMode::Async, 3), &p);
    let r = run(
        cfg(Backend::Threads, SyncMode::Async, 3).with_metrics(MetricsConfig {
            interval: Duration::from_millis(10),
            watchdog_budget: Some(Duration::from_millis(150)),
            stall_inject: Some((1, 700)),
            ..MetricsConfig::default()
        }),
        &p,
    );
    // Virtual-time results are untouched by the (host-side) injected sleep.
    assert_eq!(reference.output, r.output, "stall injection changed stdout");
    assert_eq!(reference.exec_time_ps, r.exec_time_ps, "stall injection changed virtual time");
    assert_eq!(reference.ops, r.ops, "stall injection changed ops");
    let t = r.telemetry.expect("telemetry summary");
    assert!(
        !t.stalls.is_empty(),
        "watchdog did not fire within a 700 ms stall at a 150 ms budget"
    );
    for s in &t.stalls {
        assert_eq!(s.blamed, 1, "blamed wrong peer: {s:?}");
        assert_ne!(s.node, 1, "the sleeping node itself cannot be horizon-stalled: {s:?}");
        assert!(s.stalled_ms >= 150, "fired before the budget: {s:?}");
        assert_eq!(s.chain.first(), Some(&s.node), "chain must start at the stalled node");
        assert_eq!(s.chain.get(1), Some(&1), "chain must lead to the blamed peer");
    }
}

/// No false positives: a healthy 8-node async TSP run with a tight-ish
/// budget reports zero stalls.
#[test]
fn watchdog_stays_silent_on_healthy_cluster() {
    let p = tsp();
    let r = run(
        cfg(Backend::Threads, SyncMode::Async, 8).with_metrics(MetricsConfig {
            interval: Duration::from_millis(10),
            watchdog_budget: Some(Duration::from_millis(400)),
            ..MetricsConfig::default()
        }),
        &p,
    );
    let t = r.telemetry.expect("telemetry summary");
    assert!(t.stalls.is_empty(), "false-positive stall reports: {:?}", t.stalls);
}
