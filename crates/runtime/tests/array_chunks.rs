//! End-to-end tests of the §4.3 chunked-array extension: "in the future we
//! plan to divide big arrays into several coherency units. The wrapper
//! approach allows this extension by allocating several instances of the
//! javasplit fields, one for each region."
//!
//! Workload: workers on different nodes each read and write a *disjoint
//! block* of one large shared array. With the array as a single CU every
//! node fetches (and flushes notices for) the whole thing; with region CUs
//! each node only moves its own blocks across the wire.

use jsplit_mjvm::builder::ProgramBuilder;
use jsplit_mjvm::class::Program;
use jsplit_mjvm::cost::JvmProfile;
use jsplit_mjvm::instr::{Cmp, ElemTy, Ty};
use jsplit_runtime::exec::run_cluster;
use jsplit_runtime::ClusterConfig;

/// `workers` threads each fill block `i` of a shared `len`-element array
/// with `base + offset`, then main sums the array.
fn block_writers(len: i32, workers: i32) -> Program {
    let block = len / workers;
    assert_eq!(len % workers, 0);
    let mut pb = ProgramBuilder::new("M");
    pb.class("W", "java.lang.Thread", |cb| {
        cb.field("arr", Ty::Ref).field("id", Ty::I32);
        cb.method("<init>", &[Ty::Ref, Ty::I32], None, |m| {
            m.load(0).invokespecial("java.lang.Thread", "<init>", &[], None);
            m.load(0).load(1).putfield("W", "arr");
            m.load(0).load(2).putfield("W", "id").ret();
        });
        cb.method("run", &[], None, move |m| {
            // for k in 0..block: arr[id*block + k] = id*1000 + k
            let top = m.new_label();
            let end = m.new_label();
            m.const_i32(0).store(1);
            m.bind(top);
            m.load(1).const_i32(block).if_icmp(Cmp::Ge, end);
            m.load(0).getfield("W", "arr");
            m.load(0).getfield("W", "id").const_i32(block).imul().load(1).iadd();
            m.load(0).getfield("W", "id").const_i32(1000).imul().load(1).iadd();
            m.astore(ElemTy::I32);
            m.iinc(1, 1).goto(top);
            m.bind(end).ret();
        });
    });
    pb.class("M", "java.lang.Object", |cb| {
        cb.static_method("main", &[], None, move |m| {
            m.const_i32(len).newarray(ElemTy::I32).store(0);
            m.const_i32(workers).newarray(ElemTy::Ref).store(1);
            jsplit_apps::common::spawn_join_all(m, workers, 1, 2, |m| {
                m.construct("W", &[Ty::Ref, Ty::I32], |m| {
                    m.load(0).load(2);
                });
            });
            // checksum
            let top = m.new_label();
            let end = m.new_label();
            m.const_i64(0).store(3).const_i32(0).store(2);
            m.bind(top);
            m.load(2).const_i32(len).if_icmp(Cmp::Ge, end);
            m.load(3).load(0).load(2).aload(ElemTy::I32).i2l().ladd().store(3);
            m.iinc(2, 1).goto(top);
            m.bind(end).load(3).println_i64();
            m.ret();
        });
    });
    pb.build_with_stdlib()
}

fn expected(len: i32, workers: i32) -> String {
    let block = len / workers;
    let mut sum = 0i64;
    for id in 0..workers {
        for k in 0..block {
            sum += (id * 1000 + k) as i64;
        }
    }
    sum.to_string()
}

#[test]
fn chunked_arrays_produce_identical_results() {
    let p = block_writers(1024, 4);
    let want = vec![expected(1024, 4)];
    let whole = run_cluster(ClusterConfig::javasplit(JvmProfile::IbmSim, 4), &p).unwrap();
    whole.expect_clean();
    assert_eq!(whole.output, want);
    for chunk in [64u32, 256, 4096 /* larger than the array: no chunking */] {
        let cfg = ClusterConfig::javasplit(JvmProfile::IbmSim, 4).with_array_chunk(chunk);
        let r = run_cluster(cfg, &p).unwrap();
        r.expect_clean();
        assert_eq!(r.output, want, "chunk={chunk}");
    }
}

#[test]
fn chunking_moves_fewer_bytes_for_disjoint_blocks() {
    let p = block_writers(4096, 4);
    let whole = run_cluster(ClusterConfig::javasplit(JvmProfile::IbmSim, 4), &p).unwrap();
    let chunked = run_cluster(
        ClusterConfig::javasplit(JvmProfile::IbmSim, 4).with_array_chunk(1024),
        &p,
    )
    .unwrap();
    whole.expect_clean();
    chunked.expect_clean();
    assert_eq!(whole.output, chunked.output);
    // Compare protocol traffic only (class distribution — Control kind —
    // is identical in both configurations).
    let proto_bytes = |r: &jsplit_runtime::RunReport| {
        let t = r.net_total();
        t.bytes_sent - t.bytes_by_kind[7] // 7 = MsgKind::Control
    };
    let (bw, bc) = (proto_bytes(&whole), proto_bytes(&chunked));
    assert!(
        bc * 2 < bw,
        "region CUs must cut wire bytes substantially: whole={bw} chunked={bc}"
    );
}

#[test]
fn chunking_works_under_both_protocols() {
    let p = block_writers(512, 4);
    let want = vec![expected(512, 4)];
    for mode in [jsplit_dsm::ProtocolMode::MtsHlrc, jsplit_dsm::ProtocolMode::ClassicHlrc] {
        let cfg = ClusterConfig::javasplit(JvmProfile::SunSim, 2)
            .with_protocol(mode)
            .with_array_chunk(128);
        let r = run_cluster(cfg, &p).unwrap();
        r.expect_clean();
        assert_eq!(r.output, want, "{mode:?}");
    }
}

#[test]
fn chunking_is_deterministic() {
    let p = block_writers(512, 4);
    let cfg = || ClusterConfig::javasplit(JvmProfile::IbmSim, 3).with_array_chunk(64);
    let a = run_cluster(cfg(), &p).unwrap();
    let b = run_cluster(cfg(), &p).unwrap();
    assert_eq!(a.exec_time_ps, b.exec_time_ps);
    assert_eq!(a.net_total().msgs_sent, b.net_total().msgs_sent);
}
