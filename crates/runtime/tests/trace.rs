//! Trace-layer integration tests: determinism of the structured event
//! stream, the exact per-node time-breakdown identity, the §3.2
//! lock-locality invariant derived from the trace, and the Chrome export.

use jsplit_dsm::ProtocolMode;
use jsplit_mjvm::builder::ProgramBuilder;
use jsplit_mjvm::class::Program;
use jsplit_mjvm::cost::JvmProfile;
use jsplit_mjvm::instr::{Cmp, Ty};
use jsplit_runtime::exec::run_cluster;
use jsplit_runtime::{ClusterConfig, RunReport};
use jsplit_trace::{chrome_trace, count_exported, validate_json, TraceEvent, TraceMode};

fn traced(cfg: ClusterConfig, p: &Program) -> RunReport {
    let r = run_cluster(cfg.with_trace(TraceMode::Full), p).expect("cluster setup");
    r.expect_clean();
    assert!(r.trace.is_some(), "tracing was enabled");
    r
}

fn tsp_small() -> Program {
    jsplit_apps::tsp::program(jsplit_apps::tsp::TspParams { n: 8, seed: 42, depth: 2, threads: 8 })
}

/// Producer/consumer over wait/notifyAll (same shape as the cluster tests).
fn pingpong_program(rounds: i32) -> Program {
    let mut pb = ProgramBuilder::new("M");
    pb.class("Chan", "java.lang.Object", |cb| {
        cb.default_ctor("java.lang.Object");
        cb.field("value", Ty::I32).field("full", Ty::I32);
        cb.synchronized_method("put", &[Ty::I32], None, |m| {
            let top = m.new_label();
            let go = m.new_label();
            m.bind(top);
            m.load(0).getfield("Chan", "full").if_i(Cmp::Eq, go);
            m.load(0).invokevirtual("wait", &[], None);
            m.goto(top);
            m.bind(go);
            m.load(0).load(1).putfield("Chan", "value");
            m.load(0).const_i32(1).putfield("Chan", "full");
            m.load(0).invokevirtual("notifyAll", &[], None);
            m.ret();
        });
        cb.synchronized_method("take", &[], Some(Ty::I32), |m| {
            let top = m.new_label();
            let go = m.new_label();
            m.bind(top);
            m.load(0).getfield("Chan", "full").if_i(Cmp::Ne, go);
            m.load(0).invokevirtual("wait", &[], None);
            m.goto(top);
            m.bind(go);
            m.load(0).const_i32(0).putfield("Chan", "full");
            m.load(0).invokevirtual("notifyAll", &[], None);
            m.load(0).getfield("Chan", "value").ret_val();
        });
    });
    pb.class("Producer", "java.lang.Thread", |cb| {
        cb.field("chan", Ty::Ref).field("n", Ty::I32);
        cb.method("<init>", &[Ty::Ref, Ty::I32], None, |m| {
            m.load(0).invokespecial("java.lang.Thread", "<init>", &[], None);
            m.load(0).load(1).putfield("Producer", "chan");
            m.load(0).load(2).putfield("Producer", "n").ret();
        });
        cb.method("run", &[], None, |m| {
            let top = m.new_label();
            let end = m.new_label();
            m.const_i32(0).store(1);
            m.bind(top);
            m.load(1).load(0).getfield("Producer", "n").if_icmp(Cmp::Ge, end);
            m.load(0).getfield("Producer", "chan").load(1).invokevirtual("put", &[Ty::I32], None);
            m.iinc(1, 1).goto(top);
            m.bind(end).ret();
        });
    });
    pb.class("M", "java.lang.Object", |cb| {
        cb.static_method("main", &[], None, move |m| {
            m.construct("Chan", &[], |_| {}).store(0);
            m.construct("Producer", &[Ty::Ref, Ty::I32], |m| {
                m.load(0).const_i32(rounds);
            })
            .invokevirtual("start", &[], None);
            let top = m.new_label();
            let end = m.new_label();
            m.const_i32(0).store(1).const_i32(0).store(2);
            m.bind(top);
            m.load(2).const_i32(rounds).if_icmp(Cmp::Ge, end);
            m.load(1).load(0).invokevirtual("take", &[], Some(Ty::I32)).iadd().store(1);
            m.iinc(2, 1).goto(top);
            m.bind(end).load(1).println_i32();
            m.ret();
        });
    });
    pb.build_with_stdlib()
}

/// Same config + same seed ⇒ byte-identical event stream (and therefore a
/// byte-identical Chrome export).
#[test]
fn same_seed_traces_are_identical() {
    let p = tsp_small();
    let cfg = || ClusterConfig::javasplit(JvmProfile::SunSim, 8);
    let a = traced(cfg(), &p);
    let b = traced(cfg(), &p);
    let (ea, eb) = (a.trace.as_ref().unwrap(), b.trace.as_ref().unwrap());
    assert!(!ea.is_empty());
    assert_eq!(ea.len(), eb.len());
    assert_eq!(ea, eb, "same seed must produce an identical trace");
    assert_eq!(chrome_trace(ea), chrome_trace(eb));
    assert_eq!(a.breakdown.len(), b.breakdown.len());
    for (x, y) in a.breakdown.iter().zip(&b.breakdown) {
        assert_eq!(x.compute_ps, y.compute_ps);
        assert_eq!(x.idle_ps, y.idle_ps);
    }
}

/// Enabling the trace must not change the simulated execution at all.
#[test]
fn tracing_does_not_perturb_virtual_time() {
    let p = tsp_small();
    let plain = run_cluster(ClusterConfig::javasplit(JvmProfile::SunSim, 4), &p).unwrap();
    let tr = traced(ClusterConfig::javasplit(JvmProfile::SunSim, 4), &p);
    assert_eq!(plain.exec_time_ps, tr.exec_time_ps);
    assert_eq!(plain.ops, tr.ops);
    assert_eq!(plain.output, tr.output);
    assert_eq!(plain.net_total(), tr.net_total());
    assert!(plain.trace.is_none());
    assert!(plain.breakdown.is_empty());
}

/// Per-node compute + lock-wait + fetch-stall + ack-wait + idle sums
/// *exactly* to `exec_time_ps × cpus` — on every app, in both protocol
/// modes, and in baseline mode.
#[test]
fn breakdown_identity_holds_everywhere() {
    let apps: Vec<(&str, Program)> = vec![
        ("tsp", tsp_small()),
        (
            "series",
            jsplit_apps::series::program(jsplit_apps::series::SeriesParams {
                n: 16,
                intervals: 40,
                threads: 8,
            }),
        ),
        (
            "raytracer",
            jsplit_apps::raytracer::program(jsplit_apps::raytracer::RayParams {
                size: 16,
                grid: 2,
                threads: 8,
            }),
        ),
    ];
    for (name, p) in &apps {
        for proto in [ProtocolMode::MtsHlrc, ProtocolMode::ClassicHlrc] {
            let cfg = ClusterConfig::javasplit(JvmProfile::SunSim, 4).with_protocol(proto);
            let r = traced(cfg, p);
            assert_eq!(r.breakdown.len(), 4);
            for b in &r.breakdown {
                assert!(
                    b.checks_out(r.exec_time_ps),
                    "{name}/{proto:?} node {}: {:?} must sum to {} x {}",
                    b.node,
                    b,
                    r.exec_time_ps,
                    b.cpus
                );
            }
        }
    }
    // Baseline mode: no DSM, but slices/stalls still partition cpu-time.
    let r = traced(ClusterConfig::baseline(JvmProfile::SunSim, 2), &apps[0].1);
    for b in &r.breakdown {
        assert!(b.checks_out(r.exec_time_ps), "baseline node {}: {:?}", b.node, b);
    }
}

/// §3.2: wait/notify is completely local. On a single-node cluster every
/// park is woken by a notify on the same node with zero DSM-protocol
/// messages (lock, diff, fetch traffic) in between; on a multi-node
/// cluster the wait queue travels with the lock, so every parked thread is
/// eventually re-granted the lock (a LockAcquire by the same thread)
/// without any dedicated wake-up message kind.
#[test]
fn lock_locality_invariant_from_trace() {
    use jsplit_trace::NetKind;
    let p = pingpong_program(6);
    let protocol_send = |ev: &TraceEvent| {
        matches!(
            ev,
            TraceEvent::NetSend { kind, .. } if !matches!(kind, NetKind::Spawn | NetKind::Control)
        )
    };

    // Single node: wait → local notify with no protocol traffic between.
    let r = traced(ClusterConfig::javasplit(JvmProfile::SunSim, 1), &p);
    let evs = r.trace.as_ref().unwrap();
    let mut parks = 0;
    for (i, e) in evs.iter().enumerate() {
        let TraceEvent::WaitPark { node, gid, .. } = e.ev else {
            continue;
        };
        parks += 1;
        let wake = evs[i + 1..]
            .iter()
            .position(|x| matches!(x.ev, TraceEvent::Notify { node: n, gid: g, .. } if n == node && g == gid))
            .map(|j| i + 1 + j)
            .unwrap_or_else(|| panic!("WaitPark at index {i} never notified"));
        let net_between = evs[i + 1..wake].iter().filter(|x| protocol_send(&x.ev)).count();
        assert_eq!(net_between, 0, "protocol messages inside a wait->local-notify window (park {i}, wake {wake})");
    }
    assert!(parks > 0, "pingpong must actually park");
    assert!(r.dsm_total().waits > 0);

    // Multi node: every parked thread re-acquires the lock eventually.
    let r = traced(ClusterConfig::javasplit(JvmProfile::SunSim, 4), &p);
    let evs = r.trace.as_ref().unwrap();
    let mut parks = 0;
    for (i, e) in evs.iter().enumerate() {
        let TraceEvent::WaitPark { node, gid, thread } = e.ev else {
            continue;
        };
        parks += 1;
        assert!(
            evs[i + 1..].iter().any(|x| matches!(
                x.ev,
                TraceEvent::LockAcquire { node: n, gid: g, thread: t } if n == node && g == gid && t == thread
            )),
            "parked thread {thread} (node {node}, gid {gid}) never re-acquired its lock"
        );
    }
    assert!(parks > 0);
}

/// The Chrome export is valid JSON and its lock-grant flow events agree
/// with the protocol's own transfer counter.
#[test]
fn chrome_export_is_valid_and_matches_stats() {
    let r = traced(ClusterConfig::javasplit(JvmProfile::SunSim, 8), &tsp_small());
    let evs = r.trace.as_ref().unwrap();
    let json = chrome_trace(evs);
    validate_json(&json).expect("chrome trace must be valid JSON");
    let flows = count_exported(&json, 's', "lock-grant") as u64;
    assert_eq!(flows, r.dsm_total().grants_sent, "one flow start per lock transfer");
    // Process/thread metadata exists for every node.
    assert!(count_exported(&json, 'M', "process_name") >= 8);
    // Every virtual CPU slice became a duration event (exported as "run").
    let slices = evs.iter().filter(|e| matches!(e.ev, TraceEvent::Slice { .. })).count();
    assert_eq!(count_exported(&json, 'X', "run"), slices);
}

/// Ring mode keeps only the tail of the stream.
#[test]
fn ring_mode_bounds_the_stream() {
    let p = tsp_small();
    let full = run_cluster(
        ClusterConfig::javasplit(JvmProfile::SunSim, 4).with_trace(TraceMode::Full),
        &p,
    )
    .unwrap();
    let ring = run_cluster(
        ClusterConfig::javasplit(JvmProfile::SunSim, 4).with_trace(TraceMode::Ring(64)),
        &p,
    )
    .unwrap();
    let (f, g) = (full.trace.as_ref().unwrap(), ring.trace.as_ref().unwrap());
    assert!(f.len() > 64);
    assert_eq!(g.len(), 64);
    // The ring holds the *last* 64 events. Canonicalization renames thread
    // uids densely by first appearance *within the surviving stream*, so a
    // truncated ring starts its numbering over — compare the tails modulo
    // that renaming (erase every uid) and as multisets (the final sort may
    // order equal-time events differently in a shorter stream).
    let key = |e: &jsplit_trace::Event| {
        let mut ev = e.ev;
        if let Some(u) = ev.thread_uid_mut() {
            *u = 0;
        }
        (e.t, format!("{ev:?}"))
    };
    let mut tail: Vec<_> = f[f.len() - 64..].iter().map(key).collect();
    let mut got: Vec<_> = g.iter().map(key).collect();
    tail.sort();
    got.sort();
    assert_eq!(tail, got);
}
