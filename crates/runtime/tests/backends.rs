//! Cross-backend differential tests: the multi-threaded driver must be
//! observationally equivalent to the reference virtual-time simulator.
//!
//! The threads backend runs each node on its own OS thread and moves every
//! protocol message as *encoded bytes* across a channel, synchronized by
//! conservative virtual-time windows. If its windowing, message merge
//! order, uid allocation, or load-balance placement diverged from the sim
//! driver in any observable way, these tests catch it: program stdout,
//! virtual execution time, instruction counts, per-node DSM protocol
//! counters, and per-node network message/byte totals must all match
//! exactly, on all three paper applications, in both protocol modes.
//! (Host wall-clock is the one field allowed to differ — that is the
//! point of the backend.)

use jsplit_dsm::ProtocolMode;
use jsplit_mjvm::class::Program;
use jsplit_mjvm::cost::JvmProfile;
use jsplit_runtime::exec::run_cluster;
use jsplit_runtime::{Backend, ClusterConfig, RunReport};

fn apps() -> Vec<(&'static str, Program)> {
    use jsplit_apps::{raytracer, series, tsp};
    vec![
        ("tsp", tsp::program(tsp::TspParams { n: 8, seed: 42, depth: 2, threads: 8 })),
        ("series", series::program(series::SeriesParams { n: 16, intervals: 40, threads: 8 })),
        ("raytracer", raytracer::program(raytracer::RayParams { size: 16, grid: 2, threads: 8 })),
    ]
}

fn run(backend: Backend, proto: ProtocolMode, nodes: usize, p: &Program) -> RunReport {
    let cfg = ClusterConfig::javasplit(JvmProfile::SunSim, nodes)
        .with_protocol(proto)
        .with_backend(backend);
    let r = run_cluster(cfg, p).expect("cluster setup");
    r.expect_clean();
    r
}

/// Everything observable about a run except host wall-clock (and the
/// event-slab high-water mark, which measures driver internals — the two
/// drivers legitimately have different queue shapes).
fn assert_reports_match(app: &str, proto: ProtocolMode, sim: &RunReport, thr: &RunReport) {
    let ctx = format!("{app} ({proto:?})");
    assert_eq!(sim.output, thr.output, "{ctx}: stdout diverged");
    assert_eq!(sim.exec_time_ps, thr.exec_time_ps, "{ctx}: virtual time diverged");
    assert_eq!(sim.setup_ps, thr.setup_ps, "{ctx}: setup time diverged");
    assert_eq!(sim.ops, thr.ops, "{ctx}: total ops diverged");
    assert_eq!(sim.ops_per_node, thr.ops_per_node, "{ctx}: per-node ops diverged");
    assert_eq!(sim.threads, thr.threads, "{ctx}: thread count diverged");
    assert_eq!(sim.class_bytes, thr.class_bytes, "{ctx}: shipped class bytes diverged");
    assert_eq!(sim.dsm_per_node, thr.dsm_per_node, "{ctx}: per-node DSM stats diverged");
    assert_eq!(sim.net_per_node, thr.net_per_node, "{ctx}: per-node net stats diverged");
}

#[test]
fn threads_backend_matches_sim_on_all_apps_both_protocols() {
    for (app, p) in &apps() {
        for proto in [ProtocolMode::MtsHlrc, ProtocolMode::ClassicHlrc] {
            let sim = run(Backend::Sim, proto, 4, p);
            let thr = run(Backend::Threads, proto, 4, p);
            assert_reports_match(app, proto, &sim, &thr);
        }
    }
}

/// The conservative-window merge must make the threads backend
/// deterministic on its own terms: two runs of the same program produce
/// identical reports, regardless of OS scheduling.
#[test]
fn threads_backend_is_deterministic() {
    let (_, p) = apps().swap_remove(0); // tsp: the most placement-sensitive app
    let a = run(Backend::Threads, ProtocolMode::MtsHlrc, 8, &p);
    let b = run(Backend::Threads, ProtocolMode::MtsHlrc, 8, &p);
    assert_eq!(a.output, b.output);
    assert_eq!(a.exec_time_ps, b.exec_time_ps);
    assert_eq!(a.ops_per_node, b.ops_per_node);
    assert_eq!(a.net_per_node, b.net_per_node);
    assert_eq!(a.dsm_per_node, b.dsm_per_node);
}

/// Single-node threads runs take the horizon=∞ fast path (no windowing);
/// they must still match the sim driver exactly.
#[test]
fn threads_backend_matches_sim_single_node() {
    let (_, p) = apps().swap_remove(0);
    let sim = run(Backend::Sim, ProtocolMode::MtsHlrc, 1, &p);
    let thr = run(Backend::Threads, ProtocolMode::MtsHlrc, 1, &p);
    assert_reports_match("tsp-1node", ProtocolMode::MtsHlrc, &sim, &thr);
}

/// The threads driver cannot honour mid-run joins or event tracing; both
/// must be rejected up front as configuration errors, not silently ignored.
#[test]
fn threads_backend_rejects_unsupported_config() {
    use jsplit_runtime::NodeSpec;
    let (_, p) = apps().swap_remove(0);

    let joins = ClusterConfig::javasplit(JvmProfile::SunSim, 2)
        .with_backend(Backend::Threads)
        .with_joins(vec![(1_000_000, NodeSpec::sun())]);
    assert!(run_cluster(joins, &p).is_err(), "mid-run joins must be rejected");

    let traced = ClusterConfig::javasplit(JvmProfile::SunSim, 2)
        .with_backend(Backend::Threads)
        .with_trace(jsplit_trace::TraceMode::Full);
    assert!(run_cluster(traced, &p).is_err(), "tracing must be rejected");
}
