//! Cross-backend differential tests: the multi-threaded driver must be
//! observationally equivalent to the reference virtual-time simulator.
//!
//! The threads backend runs each node on its own OS thread and moves every
//! protocol message as *encoded bytes* across a channel, synchronized by
//! conservative virtual-time windows (single-barrier epoch rounds, global
//! or per-pair lookahead, optional wire batching). If its windowing,
//! framing, message merge order, uid allocation, or load-balance placement
//! diverged from the sim driver in any observable way, these tests catch
//! it: program stdout, virtual execution time, instruction counts,
//! per-node DSM protocol counters, and per-node network message/byte
//! totals must all match exactly — on all three paper applications plus a
//! write-heavy microbenchmark, across cluster sizes, in both protocol
//! modes, under either lookahead strategy, batched or not. (Host
//! wall-clock and the sync counters are the fields allowed to differ —
//! they describe *how* the parallel run was orchestrated, which is the
//! point of the backend.)

use jsplit_dsm::ProtocolMode;
use jsplit_mjvm::class::Program;
use jsplit_mjvm::cost::JvmProfile;
use jsplit_runtime::exec::run_cluster;
use jsplit_runtime::{Backend, ClusterConfig, Lookahead, RunReport, SyncMode};

fn apps() -> Vec<(&'static str, Program)> {
    use jsplit_apps::{raytracer, series, tsp};
    vec![
        ("tsp", tsp::program(tsp::TspParams { n: 8, seed: 42, depth: 2, threads: 8 })),
        ("series", series::program(series::SeriesParams { n: 16, intervals: 40, threads: 8 })),
        ("raytracer", raytracer::program(raytracer::RayParams { size: 16, grid: 2, threads: 8 })),
    ]
}

fn run_with(
    backend: Backend,
    proto: ProtocolMode,
    nodes: usize,
    lookahead: Lookahead,
    wire_batch: bool,
    p: &Program,
) -> RunReport {
    let cfg = ClusterConfig::javasplit(JvmProfile::SunSim, nodes)
        .with_protocol(proto)
        .with_backend(backend)
        .with_lookahead(lookahead)
        .with_wire_batch(wire_batch);
    let r = run_cluster(cfg, p).expect("cluster setup");
    r.expect_clean();
    r
}

/// A threads run under the asynchronous (barrier-free) sync protocol.
fn run_async(proto: ProtocolMode, nodes: usize, lookahead: Lookahead, p: &Program) -> RunReport {
    let cfg = ClusterConfig::javasplit(JvmProfile::SunSim, nodes)
        .with_protocol(proto)
        .with_backend(Backend::Threads)
        .with_lookahead(lookahead)
        .with_sync(SyncMode::Async);
    let r = run_cluster(cfg, p).expect("cluster setup");
    r.expect_clean();
    r
}

fn run(backend: Backend, proto: ProtocolMode, nodes: usize, p: &Program) -> RunReport {
    run_with(backend, proto, nodes, Lookahead::default(), true, p)
}

/// Everything observable about a run except host wall-clock, the
/// event-slab high-water mark, and the sync counters — those measure
/// driver internals, and the two drivers legitimately differ there.
fn assert_reports_match(ctx: &str, sim: &RunReport, thr: &RunReport) {
    assert_eq!(sim.output, thr.output, "{ctx}: stdout diverged");
    assert_eq!(sim.exec_time_ps, thr.exec_time_ps, "{ctx}: virtual time diverged");
    assert_eq!(sim.setup_ps, thr.setup_ps, "{ctx}: setup time diverged");
    assert_eq!(sim.ops, thr.ops, "{ctx}: total ops diverged");
    assert_eq!(sim.ops_per_node, thr.ops_per_node, "{ctx}: per-node ops diverged");
    assert_eq!(sim.threads, thr.threads, "{ctx}: thread count diverged");
    assert_eq!(sim.class_bytes, thr.class_bytes, "{ctx}: shipped class bytes diverged");
    assert_eq!(sim.dsm_per_node, thr.dsm_per_node, "{ctx}: per-node DSM stats diverged");
    assert_eq!(sim.net_per_node, thr.net_per_node, "{ctx}: per-node net stats diverged");
}

#[test]
fn threads_backend_matches_sim_on_all_apps_both_protocols() {
    for (app, p) in &apps() {
        for proto in [ProtocolMode::MtsHlrc, ProtocolMode::ClassicHlrc] {
            let sim = run(Backend::Sim, proto, 4, p);
            let thr = run(Backend::Threads, proto, 4, p);
            assert_reports_match(&format!("{app} ({proto:?})"), &sim, &thr);
        }
    }
}

/// Cluster sizes below and above the app's thread count (16 nodes for 8
/// app threads leaves some nodes nearly idle — the regime per-pair
/// lookahead exists for).
#[test]
fn threads_backend_matches_sim_across_node_counts() {
    for (app, p) in &apps() {
        for nodes in [2usize, 16] {
            let sim = run(Backend::Sim, ProtocolMode::MtsHlrc, nodes, p);
            let thr = run(Backend::Threads, ProtocolMode::MtsHlrc, nodes, p);
            assert_reports_match(&format!("{app} @ {nodes} nodes"), &sim, &thr);
        }
    }
}

/// A write-heavy array microbenchmark (block-striped writers) — a very
/// different protocol mix from the paper apps: dominated by diffs and
/// array-region traffic.
#[test]
fn threads_backend_matches_sim_on_micro_kernel() {
    let p = jsplit_apps::micro::block_array_kernel(64, 8);
    for nodes in [4usize, 16] {
        let sim = run(Backend::Sim, ProtocolMode::MtsHlrc, nodes, &p);
        let thr = run(Backend::Threads, ProtocolMode::MtsHlrc, nodes, &p);
        assert_reports_match(&format!("micro @ {nodes} nodes"), &sim, &thr);
    }
}

/// Both lookahead strategies and both batching settings must produce the
/// same observable run — windowing and framing are execution details, not
/// semantics.
#[test]
fn threads_backend_matches_sim_under_all_sync_knobs() {
    let (_, p) = apps().swap_remove(0); // tsp: the most placement-sensitive app
    let sim = run(Backend::Sim, ProtocolMode::MtsHlrc, 4, &p);
    for lookahead in [Lookahead::Global, Lookahead::PerPair] {
        for batch in [true, false] {
            let thr = run_with(Backend::Threads, ProtocolMode::MtsHlrc, 4, lookahead, batch, &p);
            assert_reports_match(&format!("tsp ({lookahead:?}, batch={batch})"), &sim, &thr);
        }
    }
}

/// The conservative-window merge must make the threads backend
/// deterministic on its own terms: five runs of the same program produce
/// identical stdout and protocol counters, regardless of OS scheduling —
/// under the aggressive configuration (per-pair lookahead + batching).
#[test]
fn threads_backend_is_deterministic_repeated() {
    let (_, p) = apps().swap_remove(0);
    let first = run_with(Backend::Threads, ProtocolMode::MtsHlrc, 8, Lookahead::PerPair, true, &p);
    for i in 1..5 {
        let r = run_with(Backend::Threads, ProtocolMode::MtsHlrc, 8, Lookahead::PerPair, true, &p);
        assert_eq!(first.output, r.output, "run {i}: stdout diverged");
        assert_eq!(first.exec_time_ps, r.exec_time_ps, "run {i}: virtual time diverged");
        assert_eq!(first.ops_per_node, r.ops_per_node, "run {i}: per-node ops diverged");
        assert_eq!(first.net_per_node, r.net_per_node, "run {i}: net stats diverged");
        assert_eq!(first.dsm_per_node, r.dsm_per_node, "run {i}: DSM stats diverged");
    }
}

/// Degenerate topology: a cluster with far more nodes than application
/// threads leaves some nodes permanently silent (they publish `next = ∞`
/// every round). Silent nodes must not stall the cluster — the run
/// completes and still matches the sim — and per-pair lookahead must not
/// let them *unboundedly widen* anyone's window either (the self-echo
/// term; a violation shows up here as diverged counters or a deadlock).
#[test]
fn silent_nodes_neither_stall_nor_corrupt_the_cluster() {
    use jsplit_apps::tsp;
    let p = tsp::program(tsp::TspParams { n: 7, seed: 42, depth: 2, threads: 2 });
    for lookahead in [Lookahead::Global, Lookahead::PerPair] {
        let sim = run(Backend::Sim, ProtocolMode::MtsHlrc, 8, &p);
        let thr = run_with(Backend::Threads, ProtocolMode::MtsHlrc, 8, lookahead, true, &p);
        assert_reports_match(&format!("tsp-silent ({lookahead:?})"), &sim, &thr);
        // The premise holds: some node really did stay silent (no DSM or
        // spawn traffic beyond the class shipment it was sent).
        let quiet = thr.net_per_node.iter().skip(1).any(|n| n.msgs_sent == 0);
        assert!(quiet, "expected at least one silent worker in an 8-node run of 2 threads");
    }
}

/// Single-node threads runs take the horizon=∞ fast path (no windowing);
/// they must still match the sim driver exactly.
#[test]
fn threads_backend_matches_sim_single_node() {
    let (_, p) = apps().swap_remove(0);
    let sim = run(Backend::Sim, ProtocolMode::MtsHlrc, 1, &p);
    let thr = run(Backend::Threads, ProtocolMode::MtsHlrc, 1, &p);
    assert_reports_match("tsp-1node", &sim, &thr);
}

/// The threads backend reports its orchestration counters: windows ran,
/// one barrier wait per node per window, and (with batching on) fewer
/// frames than messages.
#[test]
fn sync_counters_are_populated() {
    let (_, p) = apps().swap_remove(0);
    let nodes = 4u64;
    let batched = run_with(Backend::Threads, ProtocolMode::MtsHlrc, nodes as usize, Lookahead::PerPair, true, &p);
    let s = batched.sync;
    assert!(s.windows > 0, "no windows counted");
    // One Barrier::wait per node per round; rounds = windows + the final
    // decision round(s) that break without processing a window.
    assert!(s.barrier_waits >= nodes * s.windows, "barrier_waits {} < n*windows {}", s.barrier_waits, nodes * s.windows);
    assert!(s.msgs_framed > 0, "no messages framed");
    assert!(s.frames_sent <= s.msgs_framed, "more frames than messages");
    assert!(s.msgs_batched() > 0, "batching saved no channel crossings on tsp");
    assert!(s.bytes_per_frame_avg() > 0.0);
    // Sim runs report zeroed sync counters.
    let sim = run(Backend::Sim, ProtocolMode::MtsHlrc, 4, &p);
    assert_eq!(sim.sync, jsplit_runtime::SyncStats::default());
    // Unbatched: one frame per message, by construction.
    let unbatched = run_with(Backend::Threads, ProtocolMode::MtsHlrc, 4, Lookahead::PerPair, false, &p);
    assert_eq!(unbatched.sync.msgs_batched(), 0, "unbatched mode must ship one record per frame");
    assert_eq!(unbatched.sync.frames_sent, unbatched.sync.msgs_framed);
}

/// Tracing on the threads backend: each node records into a private sink
/// and the driver canonicalizes the merged stream — the result must be
/// *byte-identical* to the sim backend's canonical trace of the same
/// program, on all three paper apps, down to the Chrome export text. The
/// derived analyses (stall breakdown, lock contention) then agree for free.
#[test]
fn threads_trace_is_byte_identical_to_sim_on_all_apps() {
    for (app, p) in &apps() {
        let cfg = |b| {
            ClusterConfig::javasplit(JvmProfile::SunSim, 4)
                .with_backend(b)
                .with_trace(jsplit_trace::TraceMode::Full)
        };
        let sim = run_cluster(cfg(Backend::Sim), p).expect("sim setup");
        let thr = run_cluster(cfg(Backend::Threads), p).expect("threads setup");
        sim.expect_clean();
        thr.expect_clean();
        let se = sim.trace.as_ref().expect("sim trace");
        let te = thr.trace.as_ref().expect("threads trace");
        if se != te {
            let i = se
                .iter()
                .zip(te.iter())
                .position(|(a, b)| a != b)
                .unwrap_or(se.len().min(te.len()));
            panic!(
                "{app}: traces diverge at event {i} of {}/{}: sim {:?} vs threads {:?}",
                se.len(),
                te.len(),
                se.get(i),
                te.get(i)
            );
        }
        assert_eq!(
            jsplit_trace::chrome_trace(se),
            jsplit_trace::chrome_trace(te),
            "{app}: chrome export text diverged"
        );
        assert_eq!(sim.breakdown, thr.breakdown, "{app}: derived breakdown diverged");
        assert_eq!(sim.lock_stats, thr.lock_stats, "{app}: derived lock stats diverged");
        // Tracing implies profiling on the threads backend, with raw spans
        // kept for the Chrome real-time lanes; the sim has no wall profile.
        assert!(sim.wall.is_none(), "{app}: sim must not report a wall profile");
        let wall = thr.wall.as_ref().expect("traced threads run must carry a wall profile");
        assert!(wall.nodes.iter().any(|n| !n.spans.is_empty()), "{app}: no raw spans kept");
    }
}

/// A traced threads run must still be observationally identical to an
/// untraced one — tracing is pure observation.
#[test]
fn threads_tracing_does_not_perturb_the_run() {
    let (_, p) = apps().swap_remove(0);
    let plain = run(Backend::Threads, ProtocolMode::MtsHlrc, 4, &p);
    let cfg = ClusterConfig::javasplit(JvmProfile::SunSim, 4)
        .with_backend(Backend::Threads)
        .with_trace(jsplit_trace::TraceMode::Full);
    let traced = run_cluster(cfg, &p).expect("cluster setup");
    traced.expect_clean();
    assert_reports_match("tsp traced-vs-plain", &plain, &traced);
    assert_eq!(plain.sync, traced.sync, "sync counters perturbed by tracing");
}

/// The wall profile's seven categories are boundary-chained, so per node
/// they must tile the thread's independently measured wall time: the sum
/// can only fall short (by the head/tail outside the epoch loop) and by no
/// more than 1% plus a small absolute allowance for very short runs.
#[test]
fn wall_profile_categories_tile_thread_wall_time() {
    use jsplit_trace::SpanKind;
    let (_, p) = apps().swap_remove(0);
    let cfg = ClusterConfig::javasplit(JvmProfile::SunSim, 4)
        .with_backend(Backend::Threads)
        .with_profile(true);
    let r = run_cluster(cfg, &p).expect("cluster setup");
    r.expect_clean();
    let wall = r.wall.as_ref().expect("profile requested");
    assert_eq!(wall.nodes.len(), 4, "one profile per node");
    for n in &wall.nodes {
        let acc = n.accounted_ns();
        assert!(acc <= n.wall_ns, "node {}: accounted {acc} ns exceeds wall {} ns", n.node, n.wall_ns);
        let gap = n.wall_ns - acc;
        assert!(
            gap <= n.wall_ns / 100 + 500_000,
            "node {}: unaccounted gap {gap} ns of wall {} ns (> 1% + 0.5 ms)",
            n.node,
            n.wall_ns
        );
        // Every round crosses the barrier and decides; the per-kind stats
        // and the virtual window histogram must be populated.
        assert!(n.stats_of(SpanKind::BarrierWait).count > 0, "node {}: no barrier spans", n.node);
        assert!(n.stats_of(SpanKind::Decide).count > 0, "node {}: no decide spans", n.node);
        assert!(n.window_ps.count() > 0, "node {}: empty window histogram", n.node);
        // Profiling without a trace keeps aggregates only, never raw spans.
        assert!(n.spans.is_empty(), "node {}: raw spans kept without a trace", n.node);
        assert_eq!(n.spans_dropped, 0);
    }
    assert!(
        wall.nodes.iter().any(|n| n.frame_bytes.count() > 0),
        "no node recorded shipped frame sizes"
    );
    assert!(wall.dominant_stall().is_some(), "a 4-node run must have some stall time");
    // The profile is observational: the run still matches the sim.
    let sim = run(Backend::Sim, ProtocolMode::MtsHlrc, 4, &p);
    assert_reports_match("tsp profiled-vs-sim", &sim, &r);
    // The sim backend ignores the profile flag (its wall time is the
    // simulator's, not the guest's).
    assert!(sim.wall.is_none());
}

/// `--sync async` replaces the epoch barrier with Chandy–Misra–Bryant null
/// promises; every observable result must still be identical to the sim
/// *and* to the epoch protocol — on all three paper apps, in both protocol
/// modes.
#[test]
fn async_sync_matches_sim_and_epoch_on_all_apps_both_protocols() {
    for (app, p) in &apps() {
        for proto in [ProtocolMode::MtsHlrc, ProtocolMode::ClassicHlrc] {
            let sim = run(Backend::Sim, proto, 4, p);
            let epoch = run(Backend::Threads, proto, 4, p);
            let asy = run_async(proto, 4, Lookahead::default(), p);
            assert_reports_match(&format!("{app} ({proto:?}) async-vs-sim"), &sim, &asy);
            assert_reports_match(&format!("{app} ({proto:?}) async-vs-epoch"), &epoch, &asy);
        }
    }
}

/// The full async matrix: every app, cluster sizes below and above the
/// thread count, both lookahead strategies — always counter-identical to
/// the sim and to the epoch driver under the same lookahead.
#[test]
fn async_sync_matches_sim_and_epoch_across_node_counts_and_lookaheads() {
    for (app, p) in &apps() {
        for nodes in [2usize, 4, 8, 16] {
            let sim = run(Backend::Sim, ProtocolMode::MtsHlrc, nodes, p);
            for lookahead in [Lookahead::Global, Lookahead::PerPair] {
                let epoch = run_with(Backend::Threads, ProtocolMode::MtsHlrc, nodes, lookahead, true, p);
                let asy = run_async(ProtocolMode::MtsHlrc, nodes, lookahead, p);
                let ctx = format!("{app} @ {nodes} nodes ({lookahead:?})");
                assert_reports_match(&format!("{ctx} async-vs-sim"), &sim, &asy);
                assert_reports_match(&format!("{ctx} async-vs-epoch"), &epoch, &asy);
            }
        }
    }
}

/// Async runs must be deterministic on their own terms too: the drain
/// schedule (which arrivals land in which burst) is wall-clock noise, but
/// the merge key and the purely local horizon rule make the virtual-time
/// execution identical across repeats.
#[test]
fn async_sync_is_deterministic_repeated() {
    let (_, p) = apps().swap_remove(0);
    let first = run_async(ProtocolMode::MtsHlrc, 8, Lookahead::PerPair, &p);
    for i in 1..5 {
        let r = run_async(ProtocolMode::MtsHlrc, 8, Lookahead::PerPair, &p);
        assert_eq!(first.output, r.output, "run {i}: stdout diverged");
        assert_eq!(first.exec_time_ps, r.exec_time_ps, "run {i}: virtual time diverged");
        assert_eq!(first.ops_per_node, r.ops_per_node, "run {i}: per-node ops diverged");
        assert_eq!(first.net_per_node, r.net_per_node, "run {i}: net stats diverged");
        assert_eq!(first.dsm_per_node, r.dsm_per_node, "run {i}: DSM stats diverged");
    }
}

/// Silent-node topology under async sync: nodes that never send data can
/// only move their peers' horizons through null promises. If nulls didn't
/// flow (or didn't carry the §12.2 self-echo recursion), this run would
/// deadlock or diverge instead of completing.
#[test]
fn async_nulls_alone_carry_the_horizon() {
    use jsplit_apps::tsp;
    let p = tsp::program(tsp::TspParams { n: 7, seed: 42, depth: 2, threads: 2 });
    for lookahead in [Lookahead::Global, Lookahead::PerPair] {
        let sim = run(Backend::Sim, ProtocolMode::MtsHlrc, 8, &p);
        let asy = run_async(ProtocolMode::MtsHlrc, 8, lookahead, &p);
        assert_reports_match(&format!("tsp-silent async ({lookahead:?})"), &sim, &asy);
        let quiet = asy.net_per_node.iter().skip(1).any(|n| n.msgs_sent == 0);
        assert!(quiet, "expected at least one silent worker in an 8-node run of 2 threads");
        assert!(asy.sync.nulls_sent > 0, "silent nodes must have shipped standalone null promises");
    }
}

/// Single-node async runs take the same horizon=∞ fast path as epoch mode.
#[test]
fn async_sync_matches_sim_single_node() {
    let (_, p) = apps().swap_remove(0);
    let sim = run(Backend::Sim, ProtocolMode::MtsHlrc, 1, &p);
    let asy = run_async(ProtocolMode::MtsHlrc, 1, Lookahead::PerPair, &p);
    assert_reports_match("tsp-1node async", &sim, &asy);
}

/// Async orchestration counters: no barrier is ever crossed, horizons
/// advance, and null promises flow (standalone or piggybacked). The
/// volume of nulls is wall-timing-dependent, so only presence is asserted.
#[test]
fn async_sync_counters_are_populated() {
    let (_, p) = apps().swap_remove(0);
    let r = run_async(ProtocolMode::MtsHlrc, 4, Lookahead::PerPair, &p);
    let s = r.sync;
    assert_eq!(s.barrier_waits, 0, "async sync must never touch the barrier");
    assert!(s.windows > 0, "no bursts counted");
    assert!(s.horizon_advances > 0, "horizons never advanced");
    assert!(s.nulls_sent + s.nulls_piggybacked > 0, "no null promises shipped");
    assert!(s.msgs_framed > 0, "no messages framed");
    // Epoch runs must stay free of the async counters.
    let epoch = run(Backend::Threads, ProtocolMode::MtsHlrc, 4, &p);
    assert_eq!(epoch.sync.nulls_sent, 0);
    assert_eq!(epoch.sync.nulls_piggybacked, 0);
    assert_eq!(epoch.sync.horizon_advances, 0);
}

/// A traced async run still produces the byte-identical canonical event
/// stream (nulls are sync-layer traffic, invisible to the virtual-time
/// trace), and its wall profile tiles with `horizon_wait` standing in for
/// the barrier categories.
#[test]
fn async_trace_is_byte_identical_and_wall_profile_tiles() {
    use jsplit_trace::SpanKind;
    let (_, p) = apps().swap_remove(0);
    let sim = run_cluster(
        ClusterConfig::javasplit(JvmProfile::SunSim, 4)
            .with_backend(Backend::Sim)
            .with_trace(jsplit_trace::TraceMode::Full),
        &p,
    )
    .expect("sim setup");
    let asy = run_cluster(
        ClusterConfig::javasplit(JvmProfile::SunSim, 4)
            .with_backend(Backend::Threads)
            .with_sync(SyncMode::Async)
            .with_trace(jsplit_trace::TraceMode::Full),
        &p,
    )
    .expect("async setup");
    sim.expect_clean();
    asy.expect_clean();
    assert_eq!(sim.trace, asy.trace, "async trace diverged from sim");
    let wall = asy.wall.as_ref().expect("traced run carries a wall profile");
    for n in &wall.nodes {
        let acc = n.accounted_ns();
        assert!(acc <= n.wall_ns, "node {}: accounted {acc} ns exceeds wall {} ns", n.node, n.wall_ns);
        let gap = n.wall_ns - acc;
        assert!(
            gap <= n.wall_ns / 100 + 500_000,
            "node {}: unaccounted gap {gap} ns of wall {} ns (> 1% + 0.5 ms)",
            n.node,
            n.wall_ns
        );
        // The barrier categories must be empty and the async one populated.
        assert_eq!(n.stats_of(SpanKind::BarrierWait).count, 0, "node {}: barrier spans under async", n.node);
        assert_eq!(n.stats_of(SpanKind::CondvarWait).count, 0, "node {}: condvar spans under async", n.node);
        assert_eq!(n.stats_of(SpanKind::SlotSpin).count, 0, "node {}: slot-spin spans under async", n.node);
        assert!(n.stats_of(SpanKind::Execute).count > 0, "node {}: no execute spans", n.node);
    }
    assert!(
        wall.nodes.iter().any(|n| n.stats_of(SpanKind::HorizonWait).count > 0),
        "no node ever parked on its horizon in a 4-node run"
    );
}

/// The convoy kernel: 16 nodes, one ~12x-slower straggler. Under epoch
/// sync every round is paced by the straggler (the barrier convoy); async
/// lets the 15 fast nodes run ahead and park. Both must match the sim.
///
/// The wall-clock claim is core-count-gated, mirroring the CI convoy
/// guard's warn-don't-fail stance on the 1-core container: with real
/// parallelism the convoy is real wall time and async must win outright;
/// on an oversubscribed few-core host a barrier convoy costs almost
/// nothing (blocked threads donate their core to the straggler, making
/// epoch near-optimal there), so async only has to stay within a 2x
/// regression band — enough to catch a horizon stall, which shows up as
/// an order of magnitude, not a fraction.
#[test]
fn async_beats_epoch_on_the_skewed_kernel() {
    let p = jsplit_apps::micro::skewed_block_array_kernel(1600, 16, 400);
    let sim = run(Backend::Sim, ProtocolMode::MtsHlrc, 16, &p);
    let mut epoch_best = f64::INFINITY;
    let mut async_best = f64::INFINITY;
    for _ in 0..2 {
        let e = run(Backend::Threads, ProtocolMode::MtsHlrc, 16, &p);
        assert_reports_match("skew epoch-vs-sim", &sim, &e);
        epoch_best = epoch_best.min(e.host_wall_secs);
        let a = run_async(ProtocolMode::MtsHlrc, 16, Lookahead::PerPair, &p);
        assert_reports_match("skew async-vs-sim", &sim, &a);
        async_best = async_best.min(a.host_wall_secs);
    }
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    if cores >= 8 {
        assert!(
            async_best < epoch_best,
            "async ({async_best:.4}s) lost the convoy race to epoch ({epoch_best:.4}s) on a {cores}-core host"
        );
    } else {
        assert!(
            async_best <= epoch_best * 2.0,
            "async ({async_best:.4}s) fell past the regression band vs epoch ({epoch_best:.4}s) even for a {cores}-core host"
        );
    }
}

/// The threads driver cannot honour mid-run joins; they must be rejected
/// up front as a configuration error — the right variant with an accurate
/// message, not silently ignored (tracing, once also rejected here, is now
/// supported and covered by the differential trace tests).
#[test]
fn threads_backend_rejects_mid_run_joins() {
    use jsplit_runtime::NodeSpec;
    let (_, p) = apps().swap_remove(0);

    let joins = ClusterConfig::javasplit(JvmProfile::SunSim, 2)
        .with_backend(Backend::Threads)
        .with_joins(vec![(1_000_000, NodeSpec::sun())]);
    match run_cluster(joins, &p) {
        Err(jsplit_runtime::ClusterError::Config(msg)) => {
            assert!(msg.contains("mid-run joins"), "unhelpful rejection message: {msg}");
            assert!(msg.contains("sim backend"), "message should point at the supported backend: {msg}");
        }
        Err(other) => panic!("expected ClusterError::Config, got {other:?}"),
        Ok(_) => panic!("mid-run joins must be rejected"),
    }
}
