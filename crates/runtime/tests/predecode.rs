//! Differential tests for the decode-once direct-threaded executor: the
//! predecoded micro-op path (the default) must be observationally
//! equivalent to the classic enum-decode interpreter it replaced.
//!
//! The predecoder lowers every method body into a flat array of 16-byte
//! micro-ops at load time — operands resolved, static costs precomputed,
//! hot consecutive pairs fused into superinstructions — and the executor
//! dispatches on a dense u8 opcode instead of re-matching the full
//! `Instr` enum every step. None of that may be observable: program
//! stdout, virtual execution time, instruction counts, per-node DSM
//! protocol counters, and per-node network totals must match the classic
//! interpreter exactly, on all three paper applications, in both protocol
//! modes, on every backend (sim, threads, sockets). The classic path is
//! kept behind `ClusterConfig::with_classic_interp(true)` precisely so
//! this oracle stays runnable forever.
//!
//! The structural tests go below the cluster layer: for each app's loaded
//! image, every lowered micro-op must preserve the verifier's stack-shape
//! judgment (fused ops compose their components' effects), and every
//! fused superinstruction must survive a disassemble/parse round trip.

use jsplit_dsm::ProtocolMode;
use jsplit_mjvm::class::Program;
use jsplit_mjvm::cost::JvmProfile;
use jsplit_mjvm::pcode;
use jsplit_mjvm::Image;
use jsplit_runtime::config::SocketsConfig;
use jsplit_runtime::exec::run_cluster;
use jsplit_runtime::{Backend, ClusterConfig, RunReport};

fn apps() -> Vec<(&'static str, Program)> {
    use jsplit_apps::{raytracer, series, tsp};
    vec![
        ("tsp", tsp::program(tsp::TspParams { n: 8, seed: 42, depth: 2, threads: 8 })),
        ("series", series::program(series::SeriesParams { n: 16, intervals: 40, threads: 8 })),
        ("raytracer", raytracer::program(raytracer::RayParams { size: 16, grid: 2, threads: 8 })),
    ]
}

/// The spawned worker binary for sockets runs (the test harness's own
/// `current_exe` is the test runner, not a worker).
fn sockets_config() -> SocketsConfig {
    SocketsConfig {
        worker_bin: Some(std::path::PathBuf::from(env!("CARGO_BIN_EXE_jsplit"))),
        ..SocketsConfig::default()
    }
}

fn run_with(proto: ProtocolMode, backend: Backend, classic: bool, p: &Program) -> RunReport {
    let mut cfg = ClusterConfig::javasplit(JvmProfile::SunSim, 4)
        .with_protocol(proto)
        .with_backend(backend)
        .with_classic_interp(classic);
    if backend == Backend::Sockets {
        cfg = cfg.with_sockets(sockets_config());
    }
    let r = run_cluster(cfg, p).expect("cluster setup");
    r.expect_clean();
    r
}

/// Everything observable about a run except host wall-clock and driver
/// internals (sync counters, slab high-water) — identical criteria to the
/// cross-backend suite.
fn assert_reports_match(ctx: &str, classic: &RunReport, fast: &RunReport) {
    assert_eq!(classic.output, fast.output, "{ctx}: stdout diverged");
    assert_eq!(classic.exec_time_ps, fast.exec_time_ps, "{ctx}: virtual time diverged");
    assert_eq!(classic.setup_ps, fast.setup_ps, "{ctx}: setup time diverged");
    assert_eq!(classic.ops, fast.ops, "{ctx}: total ops diverged");
    assert_eq!(classic.ops_per_node, fast.ops_per_node, "{ctx}: per-node ops diverged");
    assert_eq!(classic.threads, fast.threads, "{ctx}: thread count diverged");
    assert_eq!(classic.dsm_per_node, fast.dsm_per_node, "{ctx}: per-node DSM stats diverged");
    assert_eq!(classic.net_per_node, fast.net_per_node, "{ctx}: per-node net stats diverged");
}

/// The oracle: the classic interpreter under the reference simulator.
fn classic_sim(proto: ProtocolMode, p: &Program) -> RunReport {
    run_with(proto, Backend::Sim, true, p)
}

#[test]
fn predecoded_sim_matches_classic_on_all_apps_both_protocols() {
    for (app, p) in &apps() {
        for proto in [ProtocolMode::MtsHlrc, ProtocolMode::ClassicHlrc] {
            let classic = classic_sim(proto, p);
            let fast = run_with(proto, Backend::Sim, false, p);
            assert_reports_match(&format!("{app} ({proto:?}) sim"), &classic, &fast);
        }
    }
}

#[test]
fn predecoded_threads_matches_classic_on_all_apps_both_protocols() {
    for (app, p) in &apps() {
        for proto in [ProtocolMode::MtsHlrc, ProtocolMode::ClassicHlrc] {
            let classic = classic_sim(proto, p);
            let fast = run_with(proto, Backend::Threads, false, p);
            assert_reports_match(&format!("{app} ({proto:?}) threads"), &classic, &fast);
        }
    }
}

#[test]
fn predecoded_sockets_matches_classic_on_all_apps_both_protocols() {
    for (app, p) in &apps() {
        for proto in [ProtocolMode::MtsHlrc, ProtocolMode::ClassicHlrc] {
            let classic = classic_sim(proto, p);
            let fast = run_with(proto, Backend::Sockets, false, p);
            assert_reports_match(&format!("{app} ({proto:?}) sockets"), &classic, &fast);
        }
    }
}

/// The `classic_interp` flag rides the sockets wire config: a classic
/// multi-process run must still match the classic sim oracle (catches a
/// worker silently ignoring — or double-applying — the flag).
#[test]
fn classic_flag_round_trips_over_sockets_wire() {
    let (_, p) = apps().swap_remove(0); // tsp
    let classic = classic_sim(ProtocolMode::MtsHlrc, &p);
    let sockets = run_with(ProtocolMode::MtsHlrc, Backend::Sockets, true, &p);
    assert_reports_match("tsp classic-over-sockets", &classic, &sockets);
}

/// Property: predecoding preserves the verifier's stack-shape judgment on
/// every method of every real app image, under both cost profiles (the
/// micro-op cost field differs per profile; the shape must not). This is
/// the structural half of the differential suite — it checks each
/// micro-op against the source instruction's verified pop/push counts and
/// each fused op against the composition of its components, including
/// branch-target agreement.
#[test]
fn predecode_preserves_verifier_stack_shapes_on_all_apps() {
    for (app, p) in &apps() {
        let image = Image::load(p).expect("load");
        for profile in [JvmProfile::SunSim, JvmProfile::IbmSim] {
            let pim = pcode::predecode(&image, profile.cost_model());
            if let Err(e) = pcode::verify_against(&pim, &image) {
                panic!("{app} ({}): predecode shape check failed: {e}", profile.name());
            }
            assert!(pim.methods.len() == image.methods.len(), "{app}: method count diverged");
        }
    }
}

/// Real app images must actually exercise the fuser — otherwise the
/// shape property above would be vacuous for superinstructions.
#[test]
fn real_apps_contain_fused_superinstructions() {
    for (app, p) in &apps() {
        let image = Image::load(p).expect("load");
        let pim = pcode::predecode(&image, JvmProfile::SunSim.cost_model());
        assert!(pim.fused > 0, "{app}: predecoder fused no pairs");
        // Every fused op the image contains must disassemble and parse
        // back to itself (the unit suite covers all variants synthetically;
        // this covers the ones real programs produce, with real operands).
        let mut seen = 0u64;
        for m in pim.methods.iter().flat_map(|pm| &pm.ops) {
            if let Some(s) = pcode::fmt_fused(m) {
                let back = pcode::parse_fused(&s).expect("fused disasm must parse back");
                assert_eq!(
                    (back.op, back.t, back.x, back.a, back.b),
                    (m.op, m.t, m.x, m.a, m.b),
                    "{app}: round trip changed `{s}`"
                );
                seen += 1;
            }
        }
        assert_eq!(seen, pim.fused, "{app}: fused count disagrees with fmt_fused coverage");
    }
}
