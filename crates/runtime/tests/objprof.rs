//! Per-object DSM sharing profiler integration tests.
//!
//! The profiler follows the trace layer's discipline, and these tests pin
//! the three properties that make it trustworthy:
//!
//! * **Bit-identical off→on.** Enabling `objprof` must not perturb the
//!   execution: program output, virtual time, ops, and every per-node DSM
//!   and network counter are identical with the profiler on and off, on
//!   every backend, both DSM protocols, both sync modes.
//! * **Deterministic report.** The merged [`ObjProfReport`] is a pure
//!   function of the virtual-time execution, so it is identical
//!   run-to-run *and* across the sim / threads / sockets backends — the
//!   sockets path additionally round-trips each worker's profile through
//!   the wire codec.
//! * **Reconciles with `DsmStats`.** Per-object sums plus the
//!   unattributed bucket equal the aggregate totals exactly, for every
//!   mapped event kind.
//!
//! The worker-fault test exercises the sockets backend's panic path: a
//! worker that dies mid-run must surface its real panic message through a
//! `Fault` envelope, not a bare "connection reset" at the coordinator.

use std::sync::Mutex;

use jsplit_dsm::{DsmStats, ProtocolMode};
use jsplit_mjvm::class::Program;
use jsplit_mjvm::cost::JvmProfile;
use jsplit_runtime::config::SocketsConfig;
use jsplit_runtime::exec::run_cluster;
use jsplit_runtime::{Backend, ClusterConfig, ClusterError, RunReport, SyncMode};
use jsplit_trace::{ObjProfReport, STATS_MAPPED};

fn tsp() -> Program {
    jsplit_apps::tsp::program(jsplit_apps::tsp::TspParams { n: 8, seed: 42, depth: 2, threads: 8 })
}

fn raytracer() -> Program {
    jsplit_apps::raytracer::program(jsplit_apps::raytracer::RayParams {
        size: 16,
        grid: 2,
        threads: 8,
    })
}

/// The spawned worker binary (the test harness's own `current_exe` is the
/// test runner, not a worker).
fn sockets_config() -> SocketsConfig {
    SocketsConfig {
        worker_bin: Some(std::path::PathBuf::from(env!("CARGO_BIN_EXE_jsplit"))),
        ..SocketsConfig::default()
    }
}

/// Serializes sockets-spawning tests against the `JSPLIT_TEST_WORKER_PANIC`
/// environment variable: spawned workers inherit the environment, so a
/// concurrently-running fault-injection test would kill them.
static WORKER_ENV: Mutex<()> = Mutex::new(());

fn cfg(backend: Backend, proto: ProtocolMode, sync: SyncMode, objprof: bool) -> ClusterConfig {
    let mut c = ClusterConfig::javasplit(JvmProfile::SunSim, 4)
        .with_backend(backend)
        .with_protocol(proto)
        .with_sync(sync)
        .with_objprof(objprof);
    if backend == Backend::Sockets {
        c = c.with_sockets(sockets_config());
    }
    c
}

fn run(cfg: ClusterConfig, p: &Program) -> RunReport {
    let lock = WORKER_ENV.lock().unwrap_or_else(|e| e.into_inner());
    let r = run_cluster(cfg, p).expect("cluster setup");
    drop(lock);
    r.expect_clean();
    r
}

fn assert_observation_equal(ctx: &str, a: &RunReport, b: &RunReport) {
    assert_eq!(a.output, b.output, "{ctx}: stdout diverged");
    assert_eq!(a.exec_time_ps, b.exec_time_ps, "{ctx}: virtual time diverged");
    assert_eq!(a.ops, b.ops, "{ctx}: total ops diverged");
    assert_eq!(a.ops_per_node, b.ops_per_node, "{ctx}: per-node ops diverged");
    assert_eq!(a.dsm_per_node, b.dsm_per_node, "{ctx}: per-node DSM stats diverged");
    assert_eq!(a.net_per_node, b.net_per_node, "{ctx}: per-node net stats diverged");
}

/// Profiling is observation-free: the full backend × protocol × sync
/// matrix runs bit-identically with the profiler on and off.
#[test]
fn objprof_off_vs_on_is_bit_identical_across_backends() {
    let p = tsp();
    for (backend, proto, sync) in [
        (Backend::Sim, ProtocolMode::MtsHlrc, SyncMode::Epoch),
        (Backend::Sim, ProtocolMode::ClassicHlrc, SyncMode::Epoch),
        (Backend::Threads, ProtocolMode::MtsHlrc, SyncMode::Epoch),
        (Backend::Threads, ProtocolMode::MtsHlrc, SyncMode::Async),
        (Backend::Threads, ProtocolMode::ClassicHlrc, SyncMode::Async),
        (Backend::Sockets, ProtocolMode::MtsHlrc, SyncMode::Epoch),
        (Backend::Sockets, ProtocolMode::MtsHlrc, SyncMode::Async),
        (Backend::Sockets, ProtocolMode::ClassicHlrc, SyncMode::Epoch),
    ] {
        let ctx = format!("{backend:?}/{proto:?}/{sync:?}");
        let bare = run(cfg(backend, proto, sync, false), &p);
        let profiled = run(cfg(backend, proto, sync, true), &p);
        assert_observation_equal(&ctx, &bare, &profiled);
        assert!(bare.objprof.is_none(), "{ctx}: bare run must not carry a profile");
        let rep = profiled.objprof.as_ref().expect("profiled run carries a report");
        assert!(!rep.objects.is_empty(), "{ctx}: TSP shares objects; report cannot be empty");
    }
}

/// The merged report is deterministic run-to-run and identical across all
/// three backends (the sockets path round-trips worker profiles through
/// the wire codec; any loss or reordering would show here).
#[test]
fn objprof_report_identical_across_runs_and_backends() {
    let p = tsp();
    let reference = run(cfg(Backend::Sim, ProtocolMode::MtsHlrc, SyncMode::Epoch, true), &p)
        .objprof
        .expect("sim report");
    let again = run(cfg(Backend::Sim, ProtocolMode::MtsHlrc, SyncMode::Epoch, true), &p)
        .objprof
        .expect("sim report");
    assert_eq!(reference, again, "sim report not reproducible run-to-run");
    for (backend, sync) in [
        (Backend::Threads, SyncMode::Epoch),
        (Backend::Threads, SyncMode::Async),
        (Backend::Sockets, SyncMode::Epoch),
        (Backend::Sockets, SyncMode::Async),
    ] {
        let rep = run(cfg(backend, ProtocolMode::MtsHlrc, sync, true), &p)
            .objprof
            .expect("live report");
        assert_eq!(reference, rep, "{backend:?}/{sync:?} report diverged from sim");
    }
}

/// The `DsmStats` field named by a [`STATS_MAPPED`] entry.
fn stat_field(s: &DsmStats, name: &str) -> u64 {
    match name {
        "fetches" => s.fetches,
        "fetches_delayed_at_home" => s.fetches_delayed_at_home,
        "diffs_sent" => s.diffs_sent,
        "diffs_applied" => s.diffs_applied,
        "invalidations" => s.invalidations,
        "shared_acquires_local" => s.shared_acquires_local,
        "shared_acquires_remote" => s.shared_acquires_remote,
        "grants_sent" => s.grants_sent,
        "waits" => s.waits,
        "notifies" => s.notifies,
        "promotions" => s.promotions,
        other => panic!("STATS_MAPPED names unknown DsmStats field {other:?}"),
    }
}

fn assert_reconciles(ctx: &str, rep: &ObjProfReport, total: &DsmStats) {
    for (ev, field) in STATS_MAPPED {
        let per_obj: u64 = rep.objects.iter().map(|o| o.total[ev.index()]).sum();
        assert_eq!(
            per_obj + rep.unattributed[ev.index()],
            stat_field(total, field),
            "{ctx}: per-object {} sums do not reconcile with DsmStats.{field}",
            ev.name(),
        );
    }
}

/// Per-object sums + unattributed == aggregate totals, exactly, for every
/// mapped event kind — on both protocols, and on the raytracer too (its
/// chunked scene arrays exercise the region→base gid folding).
#[test]
fn objprof_reconciles_with_dsm_totals() {
    for (app, p) in [("tsp", tsp()), ("raytracer", raytracer())] {
        for proto in [ProtocolMode::MtsHlrc, ProtocolMode::ClassicHlrc] {
            let r = run(cfg(Backend::Sim, proto, SyncMode::Epoch, true), &p);
            let rep = r.objprof.as_ref().expect("report");
            assert_reconciles(&format!("{app}/{proto:?}"), rep, &r.dsm_total());
        }
    }
}

/// A worker that panics mid-run must not look like a silent disconnect:
/// the coordinator's error carries the worker's id and its real panic
/// message, relayed through the `Fault` envelope.
#[test]
fn worker_panic_message_reaches_the_coordinator() {
    let p = tsp();
    let lock = WORKER_ENV.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("JSPLIT_TEST_WORKER_PANIC", "2");
    let result = run_cluster(
        ClusterConfig::javasplit(JvmProfile::SunSim, 4)
            .with_backend(Backend::Sockets)
            .with_sockets(sockets_config()),
        &p,
    );
    std::env::remove_var("JSPLIT_TEST_WORKER_PANIC");
    drop(lock);
    let err = result.expect_err("a dead worker must fail the run");
    let ClusterError::Config(msg) = err else { panic!("expected Config error") };
    assert!(msg.contains("worker 2 panicked"), "error must blame the worker: {msg}");
    assert!(
        msg.contains("injected test panic in worker 2"),
        "error must carry the real panic message: {msg}"
    );
}
