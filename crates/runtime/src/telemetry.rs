//! Live telemetry: the wall-clock sampler thread and the horizon-stall
//! watchdog.
//!
//! The drivers publish into a [`MetricsRegistry`] (one relaxed store per
//! value, at points the hot paths already visit); this module owns the
//! *reader* side. One side-band thread snapshots the registry on a fixed
//! wall-clock interval, computes deltas and rates, streams one JSON object
//! per sample to the `--metrics` file, accumulates the end-of-run
//! [`TelemetrySummary`] (peak/mean rates, horizon-lag percentiles), and —
//! on the threads backend — runs the stall watchdog over the same
//! snapshots.
//!
//! Two clocks, strictly separated: samples are timestamped with *host*
//! wall time (`Instant`), while every sampled value is denominated in the
//! run's own units (virtual ps for horizons, cumulative counts for
//! counters). The sampler only ever loads atomics the nodes publish — it
//! cannot perturb virtual time, scheduling, or any other run state, which
//! is why a `--metrics` run stays bit-identical to a bare one
//! (DESIGN.md §15).
//!
//! # Watchdog blame rule
//!
//! Under conservative sync a node's safe horizon is
//! `min_{i≠j}(next_i + base_i)` (§12.2): if the horizon stops moving, some
//! peer's published promise is the binding term. A node counts as
//! *stalled* when, for a full budget window, (1) its horizon and retired
//! ops have not changed, (2) it has runnable work at or above the horizon
//! (`queue_head < ∞` and `horizon ≤ queue_head`), and (3) it was observed
//! parked at least once — a runnable-but-descheduled thread on an
//! oversubscribed host fails (3) and never false-positives. The *blamed*
//! peer is the argmin of `next_i + base_i` over peers, i.e. exactly the
//! term pinning the horizon; following blamed→blamed while each link is
//! itself horizon-frozen yields the waits-for chain. The watchdog
//! diagnoses (prints the chain and the flight-recorder timeline) and
//! records a [`StallReport`]; it never kills the run.

use crate::config::MetricsConfig;
use jsplit_net::NodeId;
use jsplit_trace::{
    FlightRecorder, LogHist, Metric, MetricsRegistry, StallReport, TelemetrySummary, METRICS,
};
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// What the watchdog needs beyond the registry: the budget and the per-node
/// lookahead bases the blame rule evaluates promises with.
#[derive(Debug, Clone)]
pub struct WatchdogSpec {
    /// Horizon-frozen budget before a stall fires (ms).
    pub budget_ms: u64,
    /// Per-node base link latency (ps): peer `i`'s promise term is
    /// `next_i + base_ps[i]`.
    pub base_ps: Vec<u64>,
}

#[derive(Clone, Copy)]
struct NodeWatch {
    horizon: u64,
    ops: u64,
    /// Sample time the (horizon, ops) pair was last seen changing.
    since_ms: u64,
    /// Node observed parked at least once since `since_ms`.
    parked_seen: bool,
    /// Stall already reported for this frozen window (re-arms on change).
    reported: bool,
}

/// The horizon-stall watchdog. Pure state machine over registry snapshots —
/// the caller supplies `now_ms`, so tests drive it with a fake clock.
pub struct Watchdog {
    spec: WatchdogSpec,
    states: Vec<NodeWatch>,
}

impl Watchdog {
    pub fn new(spec: WatchdogSpec) -> Watchdog {
        Watchdog { spec, states: Vec::new() }
    }

    /// The peer whose published promise `next_i + base_i` is the minimum —
    /// the binding term of `node`'s horizon (ties break to the lowest id).
    fn blame(&self, snap: &[[u64; METRICS]], node: usize) -> (usize, u64) {
        let mut best = (node, u64::MAX);
        for (i, row) in snap.iter().enumerate() {
            if i == node {
                continue;
            }
            let term = row[Metric::NextEventPs.index()]
                .saturating_add(self.spec.base_ps.get(i).copied().unwrap_or(0));
            if term < best.1 {
                best = (i, term);
            }
        }
        best
    }

    /// Advance the stall state machine over one snapshot taken at `now_ms`.
    /// Returns newly fired stall reports (each frozen window fires once).
    pub fn tick(&mut self, snap: &[[u64; METRICS]], now_ms: u64) -> Vec<StallReport> {
        if self.states.len() != snap.len() {
            self.states = snap
                .iter()
                .map(|row| NodeWatch {
                    horizon: row[Metric::HorizonPs.index()],
                    ops: row[Metric::Ops.index()],
                    since_ms: now_ms,
                    parked_seen: false,
                    reported: false,
                })
                .collect();
            return Vec::new();
        }
        let mut fired = Vec::new();
        for (j, row) in snap.iter().enumerate() {
            let horizon = row[Metric::HorizonPs.index()];
            let ops = row[Metric::Ops.index()];
            let st = &mut self.states[j];
            if horizon != st.horizon || ops != st.ops {
                *st = NodeWatch { horizon, ops, since_ms: now_ms, parked_seen: false, reported: false };
                continue;
            }
            st.parked_seen |= row[Metric::Parked.index()] == 1;
            let qnext = row[Metric::QueueHeadPs.index()];
            let stalled_ms = now_ms.saturating_sub(st.since_ms);
            if st.reported
                || snap.len() < 2
                || stalled_ms < self.spec.budget_ms
                || !st.parked_seen
                || qnext == u64::MAX
                || horizon > qnext
            {
                continue;
            }
            self.states[j].reported = true;
            let (blamed, promise) = self.blame(snap, j);
            // Waits-for chain: follow blamed→blamed while each hop is
            // itself horizon-frozen past the budget, until a live node or
            // a cycle closes it.
            let mut chain: Vec<NodeId> = vec![j as NodeId, blamed as NodeId];
            let mut cur = blamed;
            while chain.len() <= snap.len() {
                let st = &self.states[cur];
                if now_ms.saturating_sub(st.since_ms) < self.spec.budget_ms {
                    break;
                }
                let (next_hop, _) = self.blame(snap, cur);
                if next_hop == cur || chain.contains(&(next_hop as NodeId)) {
                    break;
                }
                chain.push(next_hop as NodeId);
                cur = next_hop;
            }
            fired.push(StallReport {
                node: j as NodeId,
                blamed: blamed as NodeId,
                stalled_ms,
                horizon_ps: horizon,
                queue_head_ps: qnext,
                blocker_promise_ps: promise,
                chain,
            });
        }
        fired
    }
}

/// Render one stall report as the blame-chain diagnosis the watchdog
/// prints.
pub fn render_stall(r: &StallReport) -> String {
    let chain: Vec<String> = r.chain.iter().map(|n| n.to_string()).collect();
    format!(
        "watchdog: node {} horizon frozen {} ms at {} ps (queue head {} ps) \
         — blocked by node {} (promise {} ps); waits-for: {}",
        r.node,
        r.stalled_ms,
        r.horizon_ps,
        r.queue_head_ps,
        r.blamed,
        r.blocker_promise_ps,
        chain.join(" -> "),
    )
}

/// Handle to the running sampler thread.
pub struct Telemetry {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<TelemetrySummary>,
}

impl Telemetry {
    /// Spawn the sampler. `watchdog` arms the stall watchdog (threads
    /// backend); `flight` is dumped alongside any stall diagnosis. Returns
    /// `Err` if the `--metrics` output file cannot be created.
    pub fn start(
        cfg: &MetricsConfig,
        registry: Arc<MetricsRegistry>,
        flight: Option<Arc<FlightRecorder>>,
        watchdog: Option<WatchdogSpec>,
    ) -> std::io::Result<Telemetry> {
        let out = match &cfg.out {
            Some(path) => Some(std::io::BufWriter::new(std::fs::File::create(path)?)),
            None => None,
        };
        let interval = cfg.interval.max(std::time::Duration::from_millis(1));
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("jsplit-telemetry".into())
            .spawn(move || sampler_loop(registry, flight, watchdog, out, interval, stop2))
            .expect("spawn telemetry thread");
        Ok(Telemetry { stop, handle })
    }

    /// Stop the sampler (it takes one final sample) and collect the run's
    /// time-series summary.
    pub fn finish(self) -> TelemetrySummary {
        self.stop.store(true, Ordering::Release);
        self.handle.thread().unpark();
        self.handle.join().expect("telemetry thread panicked")
    }
}

/// Append one metric value as a JSON field; the ps-gauge sentinel
/// `u64::MAX` (idle / unbounded) serializes as `null`.
fn push_field(line: &mut String, m: Metric, v: u64) {
    use std::fmt::Write as _;
    if v == u64::MAX
        && matches!(m, Metric::HorizonPs | Metric::NextEventPs | Metric::QueueHeadPs)
    {
        let _ = write!(line, "\"{}\":null", m.name());
    } else {
        let _ = write!(line, "\"{}\":{}", m.name(), v);
    }
}

fn sampler_loop(
    registry: Arc<MetricsRegistry>,
    flight: Option<Arc<FlightRecorder>>,
    watchdog: Option<WatchdogSpec>,
    mut out: Option<std::io::BufWriter<std::fs::File>>,
    interval: std::time::Duration,
    stop: Arc<AtomicBool>,
) -> TelemetrySummary {
    use std::fmt::Write as _;
    let t0 = Instant::now();
    let mut wd = watchdog.map(Watchdog::new);
    let mut summary = TelemetrySummary::default();
    let mut prev: Vec<[u64; METRICS]> = Vec::new();
    let mut cur: Vec<[u64; METRICS]> = Vec::new();
    let mut prev_us: u64 = 0;
    let mut first: Option<(u64, u64, u64)> = None; // (t_us, ops, bytes)
    let mut last: (u64, u64, u64);
    let mut line = String::new();
    let mut seq: u64 = 0;
    loop {
        let stopping = stop.load(Ordering::Acquire);
        registry.snapshot_into(&mut cur);
        let now_us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
        let dt_secs = (now_us.saturating_sub(prev_us)) as f64 / 1e6;

        // Cluster aggregates over this snapshot.
        let sum = |m: Metric| cur.iter().map(|r| r[m.index()]).sum::<u64>();
        let ops = sum(Metric::Ops);
        let bytes = sum(Metric::NetBytesSent);
        let live = sum(Metric::LiveThreads);
        let (ops_rate, bytes_rate) = if prev.len() == cur.len() && dt_secs > 0.0 {
            let psum = |m: Metric| prev.iter().map(|r| r[m.index()]).sum::<u64>();
            (
                ops.saturating_sub(psum(Metric::Ops)) as f64 / dt_secs,
                bytes.saturating_sub(psum(Metric::NetBytesSent)) as f64 / dt_secs,
            )
        } else {
            (0.0, 0.0)
        };
        summary.peak_ops_per_sec = summary.peak_ops_per_sec.max(ops_rate);
        summary.peak_bytes_per_sec = summary.peak_bytes_per_sec.max(bytes_rate);
        first.get_or_insert((now_us, ops, bytes));
        last = (now_us, ops, bytes);

        // Per-node horizon lag behind the cluster-max finite horizon.
        let hmax = cur
            .iter()
            .map(|r| r[Metric::HorizonPs.index()])
            .filter(|&h| h != u64::MAX)
            .max();
        let mut lag_max: u64 = 0;
        if let Some(hmax) = hmax {
            for row in &cur {
                let h = row[Metric::HorizonPs.index()];
                if h != u64::MAX {
                    let lag = hmax - h;
                    summary.horizon_lag_ps.record(lag);
                    lag_max = lag_max.max(lag);
                }
            }
        }

        if let Some(w) = &mut out {
            line.clear();
            let _ = write!(
                line,
                "{{\"seq\":{seq},\"t_ms\":{:.3},\"cluster\":{{\"ops\":{ops},\
                 \"ops_per_sec\":{:.0},\"bytes_sent\":{bytes},\"bytes_per_sec\":{:.0},\
                 \"live_threads\":{live},\"horizon_lag_max_ps\":{lag_max}}},\"nodes\":[",
                now_us as f64 / 1e3,
                ops_rate,
                bytes_rate,
            );
            for (i, row) in cur.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                let _ = write!(line, "{{\"node\":{i},");
                for m in jsplit_trace::ALL_METRICS {
                    push_field(&mut line, m, row[m.index()]);
                    line.push(',');
                }
                let h = row[Metric::HorizonPs.index()];
                let lag = match hmax {
                    Some(hmax) if h != u64::MAX => hmax - h,
                    _ => 0,
                };
                let _ = write!(line, "\"lag_ps\":{lag}}}");
            }
            line.push_str("]}\n");
            // Write-and-flush per sample: the file tails live and is whole
            // even if the run aborts.
            let _ = w.write_all(line.as_bytes());
            let _ = w.flush();
        }

        if let Some(wd) = &mut wd {
            for r in wd.tick(&cur, now_us / 1000) {
                eprintln!("{}", render_stall(&r));
                if let Some(f) = &flight {
                    eprint!("{}", f.render());
                }
                summary.stalls.push(r);
            }
        }

        summary.samples += 1;
        seq += 1;
        prev_us = now_us;
        std::mem::swap(&mut prev, &mut cur);
        if stopping {
            break;
        }
        std::thread::park_timeout(interval);
    }
    // Whole-run means from the first/last snapshots.
    if let Some((t_first, ops_first, bytes_first)) = first {
        let span = (last.0.saturating_sub(t_first)) as f64 / 1e6;
        if span > 0.0 {
            summary.mean_ops_per_sec = last.1.saturating_sub(ops_first) as f64 / span;
            summary.mean_bytes_per_sec = last.2.saturating_sub(bytes_first) as f64 / span;
        }
    }
    summary
}

/// Cluster-wide horizon-lag percentiles straight from a summary (the
/// figures BENCH_LIVE rows carry).
pub fn lag_percentiles(s: &TelemetrySummary) -> (u64, u64, u64) {
    let h: &LogHist = &s.horizon_lag_ps;
    (h.percentile(0.50), h.percentile(0.90), h.percentile(0.99))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(n: usize) -> Vec<[u64; METRICS]> {
        vec![[0; METRICS]; n]
    }

    fn set(s: &mut [[u64; METRICS]], node: usize, m: Metric, v: u64) {
        s[node][m.index()] = v;
    }

    fn spec(n: usize, budget_ms: u64) -> WatchdogSpec {
        WatchdogSpec { budget_ms, base_ps: vec![1000; n] }
    }

    /// A parked node with runnable work above a frozen horizon fires after
    /// the budget and blames the argmin-promise peer.
    #[test]
    fn watchdog_fires_and_blames_argmin_peer() {
        let mut wd = Watchdog::new(spec(3, 100));
        let mut s = snap(3);
        // Node 2 parked at horizon 5000 with a runnable event at 7000.
        set(&mut s, 2, Metric::HorizonPs, 5000);
        set(&mut s, 2, Metric::QueueHeadPs, 7000);
        set(&mut s, 2, Metric::Parked, 1);
        // Peer promises: node 0 pins (next 4000 + base 1000 = 5000), node 1
        // is comfortably ahead.
        set(&mut s, 0, Metric::NextEventPs, 4000);
        set(&mut s, 1, Metric::NextEventPs, 50_000);
        set(&mut s, 0, Metric::HorizonPs, u64::MAX);
        set(&mut s, 1, Metric::HorizonPs, u64::MAX);
        assert!(wd.tick(&s, 0).is_empty(), "first tick only initializes");
        assert!(wd.tick(&s, 50).is_empty(), "budget not yet exhausted");
        let fired = wd.tick(&s, 150);
        assert_eq!(fired.len(), 1);
        let r = &fired[0];
        assert_eq!(r.node, 2);
        assert_eq!(r.blamed, 0);
        assert_eq!(r.blocker_promise_ps, 5000);
        assert!(r.stalled_ms >= 100);
        assert_eq!(r.chain[0], 2);
        assert_eq!(r.chain[1], 0);
        // One report per frozen window.
        assert!(wd.tick(&s, 300).is_empty());
        // Horizon moves → re-armed; freeze again → fires again.
        set(&mut s, 2, Metric::HorizonPs, 6000);
        assert!(wd.tick(&s, 310).is_empty());
        let again = wd.tick(&s, 500);
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].horizon_ps, 6000);
    }

    /// A node that is frozen but never observed parked (e.g. runnable yet
    /// descheduled on an oversubscribed host) must not fire; neither must a
    /// node with no runnable work or with work already below its horizon.
    #[test]
    fn watchdog_requires_parked_and_runnable_above_horizon() {
        let mut wd = Watchdog::new(spec(2, 50));
        let mut s = snap(2);
        set(&mut s, 1, Metric::HorizonPs, 100);
        set(&mut s, 1, Metric::QueueHeadPs, 200);
        wd.tick(&s, 0);
        assert!(wd.tick(&s, 1000).is_empty(), "not parked → no fire");
        // Parked but idle (no queued work): parking is legitimate.
        set(&mut s, 1, Metric::Parked, 1);
        set(&mut s, 1, Metric::QueueHeadPs, u64::MAX);
        let mut wd = Watchdog::new(spec(2, 50));
        wd.tick(&s, 0);
        assert!(wd.tick(&s, 1000).is_empty(), "idle → no fire");
        // Parked with executable work below the horizon: it will run it.
        set(&mut s, 1, Metric::QueueHeadPs, 50);
        let mut wd = Watchdog::new(spec(2, 50));
        wd.tick(&s, 0);
        assert!(wd.tick(&s, 1000).is_empty(), "work below horizon → no fire");
    }

    /// Progress in ops (or horizon) resets the freeze window.
    #[test]
    fn watchdog_resets_on_progress() {
        let mut wd = Watchdog::new(spec(2, 100));
        let mut s = snap(2);
        set(&mut s, 0, Metric::HorizonPs, 10);
        set(&mut s, 0, Metric::QueueHeadPs, 20);
        set(&mut s, 0, Metric::Parked, 1);
        wd.tick(&s, 0);
        for t in 1..10u64 {
            set(&mut s, 0, Metric::Ops, t); // steady progress
            assert!(wd.tick(&s, t * 60).is_empty());
        }
    }

    /// The chain follows frozen blamed nodes and terminates on cycles.
    #[test]
    fn watchdog_chain_follows_frozen_blame_links() {
        let mut wd = Watchdog::new(spec(3, 100));
        let mut s = snap(3);
        // 0 parked on 1's promise; 1 frozen too (blames 2); 2 is the root.
        set(&mut s, 0, Metric::HorizonPs, 1000);
        set(&mut s, 0, Metric::QueueHeadPs, 5000);
        set(&mut s, 0, Metric::Parked, 1);
        set(&mut s, 0, Metric::NextEventPs, 40_000);
        set(&mut s, 1, Metric::HorizonPs, 900);
        set(&mut s, 1, Metric::NextEventPs, 0); // pins node 0
        set(&mut s, 2, Metric::HorizonPs, 800);
        set(&mut s, 2, Metric::NextEventPs, 20_000);
        wd.tick(&s, 0);
        let fired = wd.tick(&s, 200);
        assert_eq!(fired.len(), 1);
        let r = &fired[0];
        assert_eq!(r.node, 0);
        assert_eq!(r.blamed, 1);
        // 1 is frozen → follow its blame (argmin over {0: 40000+1000,
        // 2: 20000+1000} = 2); 2 is frozen but its blame (1) already in the
        // chain → stop.
        assert_eq!(r.chain, vec![0, 1, 2]);
        let txt = render_stall(r);
        assert!(txt.contains("waits-for: 0 -> 1 -> 2"), "{txt}");
    }

    /// Single-node runs never fire (there is no peer to wait for).
    #[test]
    fn watchdog_single_node_never_fires() {
        let mut wd = Watchdog::new(spec(1, 10));
        let mut s = snap(1);
        set(&mut s, 0, Metric::Parked, 1);
        set(&mut s, 0, Metric::QueueHeadPs, 100);
        wd.tick(&s, 0);
        assert!(wd.tick(&s, 10_000).is_empty());
    }
}
