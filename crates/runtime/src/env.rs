//! Per-worker interpreter environments.
//!
//! [`JsEnv`] plugs the MTS-HLRC engine into the interpreter's [`VmEnv`]
//! interface: access checks become DSM checks, the substituted monitor
//! handlers become queue-passing lock operations, and console output is
//! forwarded to the console node (I/O interception, paper §4). The baseline
//! mode reuses [`jsplit_mjvm::BaselineEnv`] unchanged; [`NodeEnv`] selects
//! between them per worker.

use jsplit_dsm::node::{AccessOutcome, LockOutcome};
use jsplit_dsm::{DsmNode, Msg};
use jsplit_mjvm::cost::CostModel;
use jsplit_mjvm::heap::{Heap, ObjRef, ThreadUid};
use jsplit_mjvm::instr::AccessKind;
use jsplit_mjvm::interp::{CheckOutcome, MonOutcome, Thread, VmError};
use jsplit_mjvm::loader::ClassId;
use jsplit_mjvm::{BaselineEnv, Value, VmEnv};
use jsplit_net::NodeId;
use jsplit_trace::BlockReason;
use std::collections::HashMap;

/// The JavaSplit worker environment.
pub struct JsEnv {
    pub model: &'static CostModel,
    pub node: NodeId,
    pub dsm: DsmNode,
    /// Current virtual time, set by the scheduler before each slice.
    pub now_ps: u64,
    /// Spawn requests recorded during the slice: (thread object, priority).
    pub spawns: Vec<(ObjRef, i32)>,
    /// Sleepers: (absolute wake time ps, thread).
    pub sleepers: Vec<(u64, ThreadUid)>,
    /// Non-DSM sends produced during the slice (console forwarding).
    pub sends: Vec<(NodeId, Msg)>,
    /// Console lines emitted on the console node itself.
    pub console: Vec<String>,
    pub thread_class: ClassId,
    /// Why the last blocking operation blocked — consumed by the scheduler
    /// when a slice ends `Blocked`, to tag the trace's stall interval.
    pub block_reason: Option<BlockReason>,
    files: HashMap<i32, (String, Vec<String>, usize)>,
    next_fd: i32,
}

/// The node that collects console output (worker 0 — where `main` runs).
pub const CONSOLE_NODE: NodeId = 0;

impl JsEnv {
    pub fn new(model: &'static CostModel, node: NodeId, dsm: DsmNode, thread_class: ClassId) -> JsEnv {
        JsEnv {
            model,
            node,
            dsm,
            now_ps: 0,
            spawns: Vec::new(),
            sleepers: Vec::new(),
            sends: Vec::new(),
            console: Vec::new(),
            thread_class,
            block_reason: None,
            files: HashMap::new(),
            next_fd: 3,
        }
    }
}

fn mon_err(e: jsplit_dsm::node::MonitorError) -> VmError {
    VmError::IllegalMonitorState { op: e.0 }
}

impl VmEnv for JsEnv {
    fn check_read(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef, _kind: AccessKind, idx: Option<i32>) -> CheckOutcome {
        match self.dsm.check_read(heap, t.uid, obj, idx) {
            AccessOutcome::Hit => CheckOutcome::Proceed,
            AccessOutcome::Miss => {
                self.block_reason = Some(BlockReason::Fetch);
                CheckOutcome::Miss
            }
        }
    }

    fn check_write(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef, _kind: AccessKind, idx: Option<i32>) -> CheckOutcome {
        match self.dsm.check_write(heap, t.uid, obj, idx) {
            AccessOutcome::Hit => CheckOutcome::Proceed,
            AccessOutcome::Miss => {
                self.block_reason = Some(BlockReason::Fetch);
                CheckOutcome::Miss
            }
        }
    }

    // In a fully rewritten program the original monitor ops only appear via
    // natives (wait/notify); route everything through the DSM handlers.
    fn monitor_enter(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> MonOutcome {
        self.dsm_monitor_enter(heap, t, obj)
    }

    fn monitor_exit(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> Result<u64, VmError> {
        self.dsm_monitor_exit(heap, t, obj)
    }

    fn dsm_monitor_enter(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> MonOutcome {
        match self.dsm.monitor_enter(heap, t.uid, t.priority, obj) {
            LockOutcome::EnteredLocal => MonOutcome::Entered { cost: self.model.dsm_local_acquire },
            LockOutcome::EnteredShared => MonOutcome::Entered { cost: self.model.dsm_shared_acquire },
            LockOutcome::Blocked => {
                self.block_reason = Some(BlockReason::Lock);
                MonOutcome::Blocked { cost: self.model.dsm_shared_acquire }
            }
        }
    }

    fn dsm_monitor_exit(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> Result<u64, VmError> {
        match self.dsm.monitor_exit(heap, t.uid, obj) {
            Ok(true) => Ok(self.model.dsm_local_release),
            Ok(false) => Ok(self.model.dsm_shared_release),
            Err(e) => Err(mon_err(e)),
        }
    }

    fn obj_wait(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> Result<u64, VmError> {
        self.dsm.obj_wait(heap, t.uid, t.priority, obj).map_err(mon_err)?;
        self.block_reason = Some(BlockReason::Wait);
        Ok(self.model.dsm_shared_release + self.model.dsm_shared_acquire)
    }

    fn obj_notify(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef, all: bool) -> Result<u64, VmError> {
        self.dsm.obj_notify(heap, t.uid, obj, all).map_err(mon_err)?;
        Ok(self.model.dsm_local_release)
    }

    fn spawn(&mut self, heap: &mut Heap, _t: &mut Thread, thread_obj: ObjRef, _via_dsm: bool) -> Result<u64, VmError> {
        // Thread layout: target(0), priority(1), alive(2) — see stdlib.
        let priority = match &heap.get(thread_obj).payload {
            jsplit_mjvm::ObjPayload::Fields(f) => f.get(1).map(|v| v.as_i32()).unwrap_or(5),
            _ => 5,
        };
        self.spawns.push((thread_obj, priority));
        Ok(self.model.invoke * 4)
    }

    fn sleep(&mut self, t: &mut Thread, millis: i64) -> u64 {
        let wake = self.now_ps + (millis.max(0) as u64) * jsplit_mjvm::cost::PS_PER_MS;
        self.sleepers.push((wake, t.uid));
        self.block_reason = Some(BlockReason::Sleep);
        self.model.invoke
    }

    fn current_thread_obj(&mut self, heap: &mut Heap, t: &mut Thread) -> ObjRef {
        if let Some(r) = t.thread_obj {
            return r;
        }
        let r = heap.alloc_object(self.thread_class, 3, vec![Value::Null, Value::I32(5), Value::I32(1)]);
        t.thread_obj = Some(r);
        r
    }

    fn println(&mut self, _t: &Thread, line: &str) {
        // Low-level I/O is intercepted and forwarded to the console node.
        if self.node == CONSOLE_NODE {
            self.console.push(line.to_string());
        } else {
            self.sends.push((CONSOLE_NODE, Msg::Println { line: line.to_string(), origin: self.node }));
        }
    }

    fn now_millis(&self) -> i64 {
        (self.now_ps / jsplit_mjvm::cost::PS_PER_MS) as i64
    }

    fn file_open(&mut self, name: &str) -> i32 {
        let fd = self.next_fd;
        self.next_fd += 1;
        self.files.insert(fd, (name.to_string(), Vec::new(), 0));
        fd
    }

    fn file_write_line(&mut self, fd: i32, line: &str) {
        if let Some((_, lines, _)) = self.files.get_mut(&fd) {
            lines.push(line.to_string());
        }
    }

    fn file_read_line(&mut self, fd: i32) -> Option<String> {
        let (_, lines, pos) = self.files.get_mut(&fd)?;
        let line = lines.get(*pos)?.clone();
        *pos += 1;
        Some(line)
    }

    fn file_close(&mut self, _fd: i32) {}
}

/// Per-worker environment: baseline or JavaSplit.
// One instance per node; boxing the large variant would buy nothing.
#[allow(clippy::large_enum_variant)]
pub enum NodeEnv {
    Baseline(BaselineEnv),
    Js(JsEnv),
}

impl NodeEnv {
    pub fn js(&mut self) -> &mut JsEnv {
        match self {
            NodeEnv::Js(e) => e,
            NodeEnv::Baseline(_) => panic!("baseline worker has no DSM engine"),
        }
    }

    /// Why the slice that just ended blocked; defaults to
    /// [`BlockReason::Other`] when no blocking site recorded one (baseline
    /// monitors, joins).
    pub fn take_block_reason(&mut self) -> BlockReason {
        match self {
            NodeEnv::Js(e) => e.block_reason.take().unwrap_or(BlockReason::Other),
            NodeEnv::Baseline(_) => BlockReason::Other,
        }
    }

    pub fn baseline(&mut self) -> &mut BaselineEnv {
        match self {
            NodeEnv::Baseline(e) => e,
            NodeEnv::Js(_) => panic!("JavaSplit worker has no baseline env"),
        }
    }

    pub fn set_now(&mut self, now_ps: u64) {
        match self {
            NodeEnv::Baseline(e) => e.clock_ps = now_ps,
            NodeEnv::Js(e) => e.now_ps = now_ps,
        }
    }
}

macro_rules! delegate {
    ($self:ident, $m:ident ( $($a:expr),* )) => {
        match $self {
            NodeEnv::Baseline(e) => e.$m($($a),*),
            NodeEnv::Js(e) => e.$m($($a),*),
        }
    };
}

impl VmEnv for NodeEnv {
    fn check_read(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef, kind: AccessKind, idx: Option<i32>) -> CheckOutcome {
        delegate!(self, check_read(heap, t, obj, kind, idx))
    }
    fn check_write(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef, kind: AccessKind, idx: Option<i32>) -> CheckOutcome {
        delegate!(self, check_write(heap, t, obj, kind, idx))
    }
    fn monitor_enter(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> MonOutcome {
        delegate!(self, monitor_enter(heap, t, obj))
    }
    fn monitor_exit(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> Result<u64, VmError> {
        delegate!(self, monitor_exit(heap, t, obj))
    }
    fn dsm_monitor_enter(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> MonOutcome {
        delegate!(self, dsm_monitor_enter(heap, t, obj))
    }
    fn dsm_monitor_exit(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> Result<u64, VmError> {
        delegate!(self, dsm_monitor_exit(heap, t, obj))
    }
    fn obj_wait(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> Result<u64, VmError> {
        delegate!(self, obj_wait(heap, t, obj))
    }
    fn obj_notify(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef, all: bool) -> Result<u64, VmError> {
        delegate!(self, obj_notify(heap, t, obj, all))
    }
    fn volatile_acquire(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> MonOutcome {
        delegate!(self, volatile_acquire(heap, t, obj))
    }
    fn volatile_release(&mut self, heap: &mut Heap, t: &mut Thread, obj: ObjRef) -> Result<u64, VmError> {
        delegate!(self, volatile_release(heap, t, obj))
    }
    fn spawn(&mut self, heap: &mut Heap, t: &mut Thread, thread_obj: ObjRef, via_dsm: bool) -> Result<u64, VmError> {
        delegate!(self, spawn(heap, t, thread_obj, via_dsm))
    }
    fn sleep(&mut self, t: &mut Thread, millis: i64) -> u64 {
        delegate!(self, sleep(t, millis))
    }
    fn yield_now(&mut self, t: &mut Thread) -> u64 {
        delegate!(self, yield_now(t))
    }
    fn current_thread_obj(&mut self, heap: &mut Heap, t: &mut Thread) -> ObjRef {
        delegate!(self, current_thread_obj(heap, t))
    }
    fn println(&mut self, t: &Thread, line: &str) {
        delegate!(self, println(t, line))
    }
    fn now_millis(&self) -> i64 {
        match self {
            NodeEnv::Baseline(e) => e.now_millis(),
            NodeEnv::Js(e) => e.now_millis(),
        }
    }
    fn file_open(&mut self, name: &str) -> i32 {
        delegate!(self, file_open(name))
    }
    fn file_write_line(&mut self, fd: i32, line: &str) {
        delegate!(self, file_write_line(fd, line))
    }
    fn file_read_line(&mut self, fd: i32) -> Option<String> {
        delegate!(self, file_read_line(fd))
    }
    fn file_close(&mut self, fd: i32) {
        delegate!(self, file_close(fd))
    }
}
