//! The multi-threaded driver: each [`NodeRuntime`] on its own OS thread,
//! protocol messages crossing channels as *encoded bytes* — the paper's
//! actual deployment shape (§2: independent runtimes on commodity
//! workstations exchanging messages), where the sim driver is its
//! deterministic reference model.
//!
//! # Conservative virtual-time windows
//!
//! Virtual time is still the semantic clock (instruction costs, link
//! latencies); only the *execution* is parallel. The classic conservative
//! PDES argument applies: every cross-node message carries at least the
//! sender's per-message base latency, so a node can safely process local
//! events up to a horizon no in-flight or future message can undercut.
//!
//! Each round (one *epoch*):
//!
//! 1. flushes pending wire frames and crosses the single `Barrier` — after
//!    it, everything peers sent in the previous window is in our channel,
//! 2. drains inbound frames into the local event queue (sorted
//!    deterministically by `(deliver, step, src, seq)`),
//! 3. publishes per-node aggregates (earliest local event = a lower bound
//!    on every future send, live threads, spawn counters, retired ops)
//!    seqlock-style: plain stores, then an epoch-counter release store,
//! 4. waits (a short spin, then a parked condvar wait on oversubscribed
//!    hosts) until every peer's epoch counter reaches this round — the
//!    only other synchronization point (the decide-side barrier of the
//!    original protocol, replaced by the epoch slots),
//! 5. derives the same global decision on every thread — finish, abort,
//!    deadlock, or a window horizon (see below) — and processes its local
//!    events below the horizon in parallel with every other node.
//!
//! ## Lookahead
//!
//! [`Lookahead::Global`] bounds every window by the cheapest sender's base
//! latency: horizon = `min_next + min_base`. [`Lookahead::PerPair`] uses
//! the published per-node promises (null-message style): node `j` advances
//! to
//!
//! ```text
//! h_j = min( min_{i≠j} (next_i + base_i),          direct influence
//!            next_j + base_j + min_{i≠j} base_i )  self-echo via a peer
//! ```
//!
//! The first term bounds any chain of causality *starting at a peer*: all
//! of `i`'s sends this round happen at virtual times ≥ `next_i` (it drains
//! only at round boundaries, and every effect of an event at `t` is
//! stamped ≥ `t`), so anything reaching `j` — directly or through other
//! nodes, which only add nonnegative hops — arrives ≥ `next_i + base_i`.
//! The second term bounds chains starting at `j` itself: `j`'s earliest
//! send leaves at ≥ `next_j`, needs `base_j` to reach any peer and at
//! least the cheapest peer base to come back. Without it a two-hop echo
//! through an idle peer (`next_i = ∞`) could arrive inside an unbounded
//! window. Idle peers otherwise cost nothing — `∞ + base` never binds —
//! which is what lets lightly-coupled topologies run long windows.
//!
//! Within a window nodes run concurrently on real CPUs (the wall-clock
//! speedup), yet each node's virtual-time execution is identical to what
//! the sequential simulator would do — program output and protocol
//! counters match the sim backend under either lookahead mode (asserted by
//! the cross-backend differential tests). The residual freedom is
//! tie-ordering of *distinct nodes'* events at exactly equal virtual
//! times, which the deterministic key resolves run-to-run reproducibly.
//!
//! ## Tracing and profiling
//!
//! Virtual-time tracing works here too: each node records its own events
//! into a private `TraceSink` (no cross-thread synchronization), and the
//! driver merges the per-node streams at join through
//! [`jsplit_trace::canonicalize`] — the same normal form the sim driver
//! applies to its global recording — so a traced threads run produces a
//! byte-identical event stream to the sim backend (asserted by the
//! differential trace test). Wall-clock profiling ([`ClusterConfig`]'s
//! `profile`) adds a per-node [`SpanRecorder`]: boundary-timestamp marks
//! around each phase of the epoch loop (flush / barrier / drain / decide /
//! spin / condvar / execute), so the span categories tile each thread's
//! wall time exactly; disabled runs pay one `Option` branch per site.
//!
//! Restrictions vs the sim driver: no mid-run joins, and the `max_ops`
//! abort guard is enforced at window granularity rather than per event.

use crate::balance::{BalancerState, LoadBalancer};
use crate::config::{ClusterConfig, Lookahead, Mode};
use crate::driver::{self, ClusterError, Driver, Prepared};
use crate::env::CONSOLE_NODE;
use crate::node::{Effect, LocalEv, NodeRuntime};
use crate::report::{RunReport, SyncStats};
use jsplit_dsm::Msg;
use jsplit_mjvm::heap::ThreadUid;
use jsplit_mjvm::interp::{Frame, VmError};
use jsplit_mjvm::loader::MethodId;
use jsplit_mjvm::Value;
use jsplit_net::{ChannelEndpoint, MeshSetup, NodeId, Reader};
use jsplit_trace::{
    Event, NodeWallProfile, RingRecorder, SpanKind, SpanRecorder, TraceEvent, TraceMode, TraceSink,
    VecRecorder, WallProfile,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::Instant;

/// Per-node sink construction (the `Send` bound lets it ride to the node's
/// OS thread; the sim's global `make_sink` doesn't need one).
fn make_node_sink(mode: TraceMode) -> Box<dyn TraceSink + Send> {
    match mode {
        TraceMode::Full => Box::new(VecRecorder::new()),
        TraceMode::Ring(cap) => Box::new(RingRecorder::new(cap)),
    }
}

/// Per-node aggregates, published once per round. Field stores are plain
/// (`Relaxed`); the `epoch` release store makes them visible, seqlock
/// style — a reader that has observed `epoch ≥ r` reads round-`r` values.
/// A slot is never overwritten while readable: publishing round `r+1`
/// happens after the round-`r+1` barrier, which no peer reaches before it
/// finished reading round `r`.
#[derive(Default)]
struct NodeSlot {
    /// Earliest local event time after this round's drain — a lower bound
    /// on the virtual time of *any* future send by this node (`u64::MAX`
    /// if idle). Non-decreasing across rounds.
    next_event: AtomicU64,
    live: AtomicU64,
    /// Cumulative `SpawnThread` messages sent / installed (their difference
    /// is the cluster-wide in-flight count — the sim's `in_flight` sum).
    spawns_sent: AtomicU64,
    spawns_recv: AtomicU64,
    ops: AtomicU64,
    /// Publication counter: holds the latest round whose values are
    /// readable from this slot.
    epoch: AtomicU64,
}

struct Shared {
    slots: Vec<NodeSlot>,
    /// The one barrier per round, separating "all sends of the previous
    /// window are flushed" from "drain and decide".
    barrier: Barrier,
    /// Global-mode window width: the minimum cross-node per-message base
    /// latency (`u64::MAX` for a single node — one window runs everything).
    window_ps: u64,
    /// Per-sender zero-byte latency (ps): the lookahead each node's
    /// promise is extended by.
    base_ps: Vec<u64>,
    /// `min_{i≠j} base_ps[i]` per node `j` (the self-echo return hop).
    min_peer_base: Vec<u64>,
    lookahead: Lookahead,
    max_ops: u64,
    /// Blocking fallback for the epoch wait: a publisher that stored its
    /// epoch takes this lock and notifies; a waiter whose short spin
    /// failed re-checks under the lock and parks. On machines with a core
    /// per node the spin almost always wins; on oversubscribed hosts
    /// parking beats a `yield_now` storm.
    epoch_lock: Mutex<()>,
    epoch_cv: Condvar,
}

/// What one node thread hands back when the run is over.
struct NodeOutcome {
    node: NodeRuntime,
    endpoint: ChannelEndpoint,
    errors: Vec<(ThreadUid, VmError)>,
    deadlocked: bool,
    aborted: bool,
    /// Final length of the local event-payload slab (live-event bound).
    slab_high_water: u64,
    /// Windows this node processed (identical on every node).
    windows: u64,
    /// `Barrier::wait` calls this node made.
    barrier_waits: u64,
    /// The node's private trace sink, still open: the driver appends the
    /// leftover DSM/endpoint buffers (stamped at the *global* finish time,
    /// which no single node knows) before draining it.
    recorder: Option<Box<dyn TraceSink + Send>>,
    /// Wall-clock span profile (`None` unless profiling was on).
    profile: Option<NodeWallProfile>,
}

/// A node-local scheduled event (the per-node analogue of the sim driver's
/// global queue entry).
enum NodeEv {
    Local(LocalEv),
    Deliver { src: NodeId, msg: Msg },
}

/// Event-queue ordering key: `(time, step, lane, seq, slab index)`.
type EvKey = (u64, u64, NodeId, u64, usize);

/// One node's event loop state, running on a dedicated OS thread.
struct NodeLoop {
    node: NodeRuntime,
    endpoint: ChannelEndpoint,
    shared: Arc<Shared>,
    mode: Mode,
    thread_main: MethodId,
    n_nodes: usize,
    /// Strided uid allocation: `id + k·n` — disjoint from every other node
    /// without global coordination. uids are fixed-width on the wire, so
    /// message sizes (and byte counters) match the sim's dense allocation.
    next_uid: ThreadUid,
    lb: BalancerState,
    /// `SpawnThread`s this node shipped per destination (the origin-local
    /// load estimate: remote loads are what we shipped there).
    shipped_to: Vec<u64>,
    /// Self-shipped spawns not yet installed (counted into our own load).
    self_inflight: u64,
    spawns_sent: u64,
    spawns_recv: u64,
    /// Local event queue, deterministically ordered by
    /// `(time, step, lane, seq)`: `step` is the virtual time of the event
    /// that produced the entry, `lane` the producing node, `seq` a local
    /// tie-breaker assigned in deterministic order.
    events: BinaryHeap<Reverse<EvKey>>,
    payloads: Vec<Option<NodeEv>>,
    free_events: Vec<usize>,
    seq: u64,
    errors: Vec<(ThreadUid, VmError)>,
    fx: Vec<Effect>,
    /// Reused drain staging buffer (sorted per round, never reallocated in
    /// the steady state).
    drain_scratch: Vec<(u64, u64, NodeId, u64, Msg)>,
    windows: u64,
    barrier_waits: u64,
    /// This node's private trace sink (`None` = tracing off). Never shared:
    /// recording is a plain method call on thread-local state.
    recorder: Option<Box<dyn TraceSink + Send>>,
    /// Wall-clock span profiler (`None` = profiling off: one branch/site).
    profiler: Option<SpanRecorder>,
    /// Thread start instant, set by the node thread itself; `wall_ns` is
    /// measured from it independently of the span accounting.
    t0: Instant,
}

impl NodeLoop {
    fn push(&mut self, time: u64, step: u64, lane: NodeId, ev: NodeEv) {
        let idx = match self.free_events.pop() {
            Some(i) => {
                self.payloads[i] = Some(ev);
                i
            }
            None => {
                self.payloads.push(Some(ev));
                self.payloads.len() - 1
            }
        };
        self.events.push(Reverse((time, step, lane, self.seq, idx)));
        self.seq += 1;
    }

    fn alloc_uid(&mut self) -> ThreadUid {
        let uid = self.next_uid;
        self.next_uid += self.n_nodes as ThreadUid;
        uid
    }

    /// Record one trace event at virtual time `t` (no-op when disabled).
    #[inline]
    fn record(&mut self, t: u64, ev: TraceEvent) {
        if let Some(r) = &mut self.recorder {
            r.record(Event { t, ev });
        }
    }

    /// Stamp and flush this node's clock-free DSM trace buffer at `now`,
    /// then the endpoint's pre-stamped send events — the same order (and
    /// the same call sites, via `FlushTrace`) as the sim driver's
    /// `drain_trace_buffers`, so the per-node recorded sequence matches.
    fn drain_trace(&mut self, now: u64) {
        let Some(r) = &mut self.recorder else {
            return;
        };
        for ev in self.node.take_dsm_trace() {
            r.record(Event { t: now, ev });
        }
        if let Some(buf) = &mut self.endpoint.trace {
            for e in buf.drain(..) {
                r.record(e);
            }
        }
    }

    /// Execute a node's effect stream at processing step `step` (the
    /// virtual time of the event being processed).
    fn apply_effects(&mut self, step: u64) {
        let mut fx = std::mem::take(&mut self.fx);
        for f in fx.drain(..) {
            match f {
                Effect::Local { time, ev } => {
                    let lane = self.endpoint.id;
                    self.push(time, step, lane, NodeEv::Local(ev));
                }
                Effect::Send { at, dst, msg } => self.transmit(at, step, dst, msg),
                Effect::Spawn { now, thread_obj, priority } => {
                    self.dispatch_spawn(now, step, thread_obj, priority);
                }
                Effect::Trace { t, ev } => self.record(t, ev),
                Effect::FlushTrace { now } => self.drain_trace(now),
            }
        }
        self.fx = fx;
    }

    /// Encode, account and ship one protocol message at virtual `at`:
    /// remote messages into the destination's pending frame, self-sends
    /// straight back into the local queue.
    fn transmit(&mut self, at: u64, step: u64, dst: NodeId, msg: Msg) {
        if matches!(msg, Msg::SpawnThread { .. }) {
            self.spawns_sent += 1;
        }
        let kind = msg.kind();
        let (deliver, local) = self.endpoint.transmit(at, step, dst, kind, &mut |w| msg.encode_into(w));
        if let Some(wire) = local {
            // Loopback: delivered below any window horizon, so it never
            // crosses the mesh — it goes straight into our queue. The
            // bound is profile-derived (`LinkParams::loopback_ps`, clamped
            // to the base latency); strictly-future delivery keeps the
            // in-window processing order intact. Round-trip the codec
            // anyway: the wire sees what a peer would.
            debug_assert!(
                deliver >= at + self.endpoint.link().loopback_ps(),
                "loopback delivered before its profile bound"
            );
            self.endpoint.record_recv(wire.payload.len(), wire.kind);
            let msg = Msg::decode_from(&mut Reader::new(&wire.payload[..])).expect("loopback codec round-trip");
            self.endpoint.recycle(wire.payload);
            let lane = self.endpoint.id;
            self.push(deliver, step, lane, NodeEv::Deliver { src: lane, msg });
        }
    }

    /// Place a newly started thread (§2's load-balancing plug-in, with an
    /// origin-local load estimate: own load = live + own in-flight, remote
    /// load = spawns shipped there. Identical to the sim's global view as
    /// long as remote threads neither exit nor spawn before placement
    /// finishes — true for the fork-join apps; a future TCP backend would
    /// gossip loads instead).
    fn dispatch_spawn(&mut self, now: u64, step: u64, thread_obj: jsplit_mjvm::heap::ObjRef, priority: i32) {
        let me = self.endpoint.id;
        match self.mode {
            Mode::Baseline => {
                let uid = self.alloc_uid();
                let image = self.node.image().clone();
                let m = image.method(self.thread_main);
                let frame = Frame::new(self.thread_main, m.max_locals, vec![Value::Ref(thread_obj)], false);
                let mut fx = std::mem::take(&mut self.fx);
                self.node.add_thread(uid, frame, Some(thread_obj), now, &mut fx);
                self.fx = fx;
                self.apply_effects(step);
            }
            Mode::JavaSplit => {
                let loads: Vec<usize> = (0..self.n_nodes)
                    .map(|i| {
                        if i == me as usize {
                            self.node.live() + self.self_inflight as usize
                        } else {
                            self.shipped_to[i] as usize
                        }
                    })
                    .collect();
                let dst = self.lb.pick(&loads, me);
                self.shipped_to[dst as usize] += 1;
                if dst == me {
                    self.self_inflight += 1;
                }
                let msg = self.node.prepare_spawn(thread_obj, priority);
                if let Msg::SpawnThread { thread_gid, .. } = &msg {
                    self.record(now, jsplit_trace::TraceEvent::ThreadShip { from: me, to: dst, thread_gid: thread_gid.0 });
                }
                self.transmit(now, step, dst, msg);
            }
        }
    }

    /// Deliver one protocol message at virtual `time`.
    fn deliver(&mut self, time: u64, src: NodeId, msg: Msg) {
        match msg {
            Msg::Println { line, .. } => self.node.push_console(line),
            Msg::SpawnThread { thread_gid, class, state, priority } => {
                self.spawns_recv += 1;
                if src == self.endpoint.id {
                    self.self_inflight = self.self_inflight.saturating_sub(1);
                }
                let uid = self.alloc_uid();
                let mut fx = std::mem::take(&mut self.fx);
                self.node
                    .install_spawned_thread(uid, thread_gid, class, &state, priority, self.thread_main, time, &mut fx);
                self.fx = fx;
                self.apply_effects(time);
            }
            other => {
                let mut fx = std::mem::take(&mut self.fx);
                self.node.handle_dsm(time, other, &mut fx);
                self.fx = fx;
                self.apply_effects(time);
            }
        }
    }

    /// Drain inbound frames into the local queue, deterministically:
    /// arrival interleaving across senders is scheduler noise, so sort by
    /// the virtual-time key before assigning local sequence numbers.
    /// Records decode in place from the frame buffers (which return to
    /// their senders' pools).
    fn drain_inbox(&mut self) {
        let mut batch = std::mem::take(&mut self.drain_scratch);
        self.endpoint.drain_frames(&mut |src, _kind, deliver_ps, step_ps, seq, payload| {
            let msg = Msg::decode_from(&mut Reader::new(payload)).expect("wire codec round-trip");
            batch.push((deliver_ps, step_ps, src, seq, msg));
        });
        if !batch.is_empty() {
            batch.sort_unstable_by_key(|&(deliver, step, src, seq, _)| (deliver, step, src, seq));
            for (deliver, step, src, _, msg) in batch.drain(..) {
                self.push(deliver, step, src, NodeEv::Deliver { src, msg });
            }
        }
        self.drain_scratch = batch;
    }

    /// The thread body: epochs of flush → barrier → drain → publish →
    /// spin → decide → process-window, until the cluster-wide decision
    /// says stop.
    fn run(mut self) -> NodeOutcome {
        let me = self.endpoint.id as usize;
        let shared = self.shared.clone();
        let n = shared.slots.len();
        let mut deadlocked = false;
        let mut aborted = false;
        let mut round: u64 = 0;
        let mut next_buf = vec![0u64; n];
        loop {
            round += 1;
            // Span accounting (when on) is boundary-chained: each `mark`
            // closes the segment since the previous boundary, so the seven
            // categories tile this thread's wall time with no gaps. The
            // mark here attributes everything since the last horizon
            // decision — window processing, plus bootstrap on round 1 — to
            // Execute.
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::Execute);
            }
            // Everything this node sent in the previous window (and during
            // bootstrap) ships now; the barrier then guarantees every
            // peer's sends are in our channel before we drain. Draining
            // *after* the barrier is load-bearing: a message missed here
            // could fall inside a later (wider) horizon.
            self.endpoint.flush();
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::FrameFlush);
            }
            shared.barrier.wait();
            self.barrier_waits += 1;
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::BarrierWait);
            }
            self.drain_inbox();
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::InboxDrain);
            }
            // Publish this round's aggregates: plain field stores, then
            // the epoch release-store that makes them readable.
            let slot = &shared.slots[me];
            let next = self.events.peek().map_or(u64::MAX, |Reverse((t, ..))| *t);
            slot.next_event.store(next, Ordering::Relaxed);
            slot.live.store(self.node.live() as u64, Ordering::Relaxed);
            slot.spawns_sent.store(self.spawns_sent, Ordering::Relaxed);
            slot.spawns_recv.store(self.spawns_recv, Ordering::Relaxed);
            slot.ops.store(self.node.ops, Ordering::Relaxed);
            slot.epoch.store(round, Ordering::Release);
            // Wake anyone parked on the epoch: the lock round-trip after
            // the store is what makes a missed wakeup impossible (a waiter
            // holds it between its failed re-check and parking).
            drop(shared.epoch_lock.lock().unwrap());
            shared.epoch_cv.notify_all();
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::Decide);
            }
            // Wait until every peer has published this round; each thread
            // then derives the same global decision from the same values.
            // Attribution splits at the first park: time up to it is
            // SlotSpin, the remainder CondvarWait.
            let published = |shared: &Shared| shared.slots.iter().all(|s| s.epoch.load(Ordering::Acquire) >= round);
            let mut spins = 0u32;
            let mut parked = false;
            while !published(&shared) {
                if spins < 64 {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    if !parked {
                        parked = true;
                        if let Some(p) = &mut self.profiler {
                            p.mark(SpanKind::SlotSpin);
                        }
                    }
                    let guard = shared.epoch_lock.lock().unwrap();
                    if published(&shared) {
                        break;
                    }
                    // The timeout is belt-and-braces only; the publish
                    // protocol above cannot miss a wakeup.
                    let _ = shared
                        .epoch_cv
                        .wait_timeout(guard, std::time::Duration::from_micros(200))
                        .unwrap();
                }
            }
            if let Some(p) = &mut self.profiler {
                p.mark(if parked { SpanKind::CondvarWait } else { SpanKind::SlotSpin });
            }
            let mut live = 0u64;
            let mut sent = 0u64;
            let mut recv = 0u64;
            let mut ops = 0u64;
            let mut min_next = u64::MAX;
            for (i, s) in shared.slots.iter().enumerate() {
                live += s.live.load(Ordering::Relaxed);
                sent += s.spawns_sent.load(Ordering::Relaxed);
                recv += s.spawns_recv.load(Ordering::Relaxed);
                ops += s.ops.load(Ordering::Relaxed);
                let nx = s.next_event.load(Ordering::Relaxed);
                next_buf[i] = nx;
                min_next = min_next.min(nx);
            }
            // Spawned-but-undelivered threads count as live: a main that
            // exits immediately after `start()` must not end the run.
            if live == 0 && sent == recv {
                break;
            }
            if ops > shared.max_ops {
                aborted = true;
                break;
            }
            if min_next == u64::MAX {
                // Live threads, no scheduled events anywhere, empty
                // channels (anything sent last round was flushed before
                // the barrier and just drained): nothing can ever run
                // again.
                deadlocked = true;
                break;
            }
            self.windows += 1;
            // The safe horizon: no message can be delivered to this node
            // below it (module docs give the argument). n == 1 degenerates
            // to one unbounded window.
            let horizon = if n == 1 {
                u64::MAX
            } else {
                match shared.lookahead {
                    Lookahead::Global => min_next.saturating_add(shared.window_ps),
                    Lookahead::PerPair => {
                        let mut h = next_buf[me]
                            .saturating_add(shared.base_ps[me])
                            .saturating_add(shared.min_peer_base[me]);
                        for (i, nx) in next_buf.iter().enumerate() {
                            if i != me {
                                h = h.min(nx.saturating_add(shared.base_ps[i]));
                            }
                        }
                        h
                    }
                }
            };
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::Decide);
                if horizon != u64::MAX && min_next != u64::MAX {
                    p.window_ps.record(horizon - min_next);
                }
            }
            while let Some(&Reverse((time, _, _, _, idx))) = self.events.peek() {
                if time >= horizon {
                    break;
                }
                self.events.pop();
                let ev = self.payloads[idx].take().expect("event payload");
                self.free_events.push(idx);
                match ev {
                    NodeEv::Local(LocalEv::Slice { cpu, thread }) => {
                        let mut fx = std::mem::take(&mut self.fx);
                        let r = self.node.run_slice(time, cpu, thread, &mut fx);
                        self.fx = fx;
                        if let Some(e) = r.error {
                            self.errors.push((thread, e));
                        }
                        self.apply_effects(time);
                    }
                    NodeEv::Local(LocalEv::Wake { thread }) => {
                        let mut fx = std::mem::take(&mut self.fx);
                        self.node.make_ready(thread, time, &mut fx);
                        self.fx = fx;
                        self.apply_effects(time);
                    }
                    NodeEv::Deliver { src, msg } => self.deliver(time, src, msg),
                }
            }
        }
        // Close the final segment (the aggregation/decision that broke the
        // loop) and reconcile against the independently measured thread
        // wall time.
        let profile = self.profiler.take().map(|mut rec| {
            rec.mark(SpanKind::Decide);
            let wall_ns = u64::try_from(self.t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let mut p = rec.finish(self.endpoint.id, wall_ns);
            if let Some(h) = self.endpoint.frame_hist.take() {
                p.frame_bytes = h;
            }
            p
        });
        NodeOutcome {
            slab_high_water: self.payloads.len() as u64,
            node: self.node,
            endpoint: self.endpoint,
            errors: self.errors,
            deadlocked,
            aborted,
            windows: self.windows,
            barrier_waits: self.barrier_waits,
            recorder: self.recorder,
            profile,
        }
    }
}

/// The multi-threaded backend.
pub struct ThreadsDriver {
    config: ClusterConfig,
    prepared: Prepared,
    nodes: Vec<NodeRuntime>,
    endpoints: Vec<ChannelEndpoint>,
    setup_ps: u64,
}

impl ThreadsDriver {
    /// Prepare a run: rewrite, load, build the channel mesh and the node
    /// runtimes, ship classes, bootstrap statics — the same setup sequence
    /// as the sim driver, against the channel transport.
    pub fn new(config: ClusterConfig, program: &jsplit_mjvm::class::Program) -> Result<ThreadsDriver, ClusterError> {
        if !config.joins.is_empty() {
            return Err(ClusterError::Config("the threads backend does not support mid-run joins; use the sim backend".into()));
        }
        let prepared = driver::prepare(&config, program)?;
        let links: Vec<_> = config.nodes.iter().map(|s| driver::link_params(*s)).collect();
        // The loopback bound is profile-derived and must sit below every
        // conservative horizon built from base latencies — the clamp in
        // `loopback_ps` guarantees it; this makes the assumption explicit.
        for l in &links {
            assert!(l.loopback_ps() <= l.base_ps(), "loopback bound {} ps above link base {} ps", l.loopback_ps(), l.base_ps());
        }
        let mut endpoints = ChannelEndpoint::mesh(&links, config.wire_batch);
        // Arm the per-endpoint trace/histogram buffers *before* class
        // shipping so setup-phase `NetSend`s are captured, like the sim's
        // global network trace.
        if config.trace.is_some() {
            for ep in &mut endpoints {
                ep.trace = Some(Vec::new());
            }
        }
        if config.profile || config.trace.is_some() {
            for ep in &mut endpoints {
                ep.frame_hist = Some(jsplit_trace::LogHist::new());
            }
        }
        let mut nodes: Vec<NodeRuntime> = config
            .nodes
            .iter()
            .enumerate()
            .map(|(i, spec)| NodeRuntime::new(i as NodeId, *spec, &config, prepared.image.clone(), prepared.thread_class))
            .collect();
        let mut setup_ps = 0;
        if config.mode == Mode::JavaSplit {
            for i in 1..nodes.len() {
                let at = driver::ship_classes(&mut MeshSetup(&mut endpoints), 0, i as NodeId, prepared.class_bytes);
                setup_ps = setup_ps.max(at);
            }
            driver::bootstrap_statics(&mut nodes, &prepared.image);
        }
        Ok(ThreadsDriver { config, prepared, nodes, endpoints, setup_ps })
    }

    /// Run to completion: one OS thread per node, then merge the outcomes
    /// into the same [`RunReport`] shape the sim driver produces.
    pub fn run(self) -> RunReport {
        let started = std::time::Instant::now();
        let n = self.nodes.len();
        let base_ps: Vec<u64> = self.config.nodes.iter().map(|s| driver::link_params(*s).base_ps()).collect();
        // Global mode: the window is bounded by the *cheapest sender's*
        // base latency — any cross-node message costs at least that much.
        let window_ps = base_ps.iter().copied().min().unwrap_or(u64::MAX);
        let min_peer_base: Vec<u64> = (0..n)
            .map(|j| {
                base_ps
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != j)
                    .map(|(_, b)| *b)
                    .min()
                    .unwrap_or(u64::MAX)
            })
            .collect();
        let shared = Arc::new(Shared {
            slots: (0..n).map(|_| NodeSlot::default()).collect(),
            barrier: Barrier::new(n),
            window_ps,
            base_ps,
            min_peer_base,
            lookahead: self.config.lookahead,
            max_ops: self.config.max_ops,
            epoch_lock: Mutex::new(()),
            epoch_cv: Condvar::new(),
        });
        let mode = self.config.mode;
        let thread_main = self.prepared.thread_main;
        let main_method = self.prepared.image.main_method;
        let main_locals = self.prepared.image.method(main_method).max_locals;
        let balancer = self.config.balancer;
        let trace_mode = self.config.trace;
        let profile_on = self.config.profile || trace_mode.is_some();
        // Raw spans (the Chrome real-time lanes) are only worth their
        // memory when a trace export was requested.
        let keep_spans = trace_mode.is_some();

        let mut handles = Vec::with_capacity(n);
        for (node, endpoint) in self.nodes.into_iter().zip(self.endpoints) {
            let shared = shared.clone();
            let mut lp = NodeLoop {
                next_uid: node.id as ThreadUid,
                node,
                endpoint,
                shared,
                mode,
                thread_main,
                n_nodes: n,
                lb: BalancerState::new(balancer),
                shipped_to: vec![0; n],
                self_inflight: 0,
                spawns_sent: 0,
                spawns_recv: 0,
                events: BinaryHeap::new(),
                payloads: Vec::new(),
                free_events: Vec::new(),
                seq: 0,
                errors: Vec::new(),
                fx: Vec::new(),
                drain_scratch: Vec::new(),
                windows: 0,
                barrier_waits: 0,
                recorder: trace_mode.map(make_node_sink),
                profiler: None,
                t0: started,
            };
            handles.push(std::thread::spawn(move || {
                // Wall time and the span origin are anchored at the node
                // thread itself, so thread-spawn latency stays outside the
                // profile; `started` remains the shared cross-thread axis.
                lp.t0 = Instant::now();
                if profile_on {
                    lp.profiler = Some(SpanRecorder::new(started, keep_spans));
                }
                // The main thread starts on worker 0 (§2), before the first
                // round so the first published snapshot already counts it.
                if lp.endpoint.id == CONSOLE_NODE {
                    let uid = lp.alloc_uid();
                    let frame = Frame::new(main_method, main_locals, vec![], false);
                    let mut fx = std::mem::take(&mut lp.fx);
                    lp.node.add_thread(uid, frame, None, 0, &mut fx);
                    lp.fx = fx;
                    lp.apply_effects(0);
                }
                // Setup-phase activity (statics bootstrap, class shipping)
                // is part of the trace; stamp it at t = 0 like the sim.
                lp.drain_trace(0);
                lp.run()
            }));
        }
        let mut outcomes: Vec<NodeOutcome> = handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect();
        outcomes.sort_by_key(|o| o.node.id);

        let host_wall_secs = started.elapsed().as_secs_f64();
        let deadlocked = outcomes[0].deadlocked;
        let aborted = outcomes[0].aborted;
        let mut errors: Vec<(ThreadUid, VmError)> = Vec::new();
        let mut console = Vec::new();
        for o in &mut outcomes {
            errors.append(&mut o.errors);
            if o.node.id == CONSOLE_NODE {
                console = o.node.take_console();
            }
        }
        let sync = SyncStats {
            windows: outcomes[0].windows,
            barrier_waits: outcomes.iter().map(|o| o.barrier_waits).sum(),
            frames_sent: outcomes.iter().map(|o| o.endpoint.frame_stats.frames_sent).sum(),
            frame_bytes: outcomes.iter().map(|o| o.endpoint.frame_stats.frame_bytes).sum(),
            msgs_framed: outcomes.iter().map(|o| o.endpoint.frame_stats.msgs_framed).sum(),
        };
        let finish = outcomes.iter().map(|o| o.node.finish_time).max().unwrap_or(0);
        // Merge the per-node streams into the sim's canonical normal form:
        // flush each node's leftover buffers at the global finish time
        // (exactly what the sim's final `drain_trace_buffers` pass does),
        // concatenate in node order, then canonicalize — the result is
        // byte-identical to a sim trace of the same program as long as each
        // node records the same per-node event sequence, which the
        // differential trace tests assert.
        let trace = if trace_mode.is_some() {
            let mut all: Vec<Event> = Vec::new();
            for o in &mut outcomes {
                let Some(r) = &mut o.recorder else { continue };
                for ev in o.node.take_dsm_trace() {
                    r.record(Event { t: finish, ev });
                }
                if let Some(buf) = &mut o.endpoint.trace {
                    for e in buf.drain(..) {
                        r.record(e);
                    }
                }
                all.extend(o.recorder.take().expect("recorder present").into_events());
            }
            Some(jsplit_trace::canonicalize(all))
        } else {
            None
        };
        let (breakdown, lock_stats) = match &trace {
            Some(evs) => {
                let cpus: Vec<u32> = vec![self.config.cpus_per_node as u32; outcomes.len()];
                (
                    jsplit_trace::node_breakdown(evs, &cpus, finish),
                    jsplit_trace::lock_contention(evs),
                )
            }
            None => (Vec::new(), Vec::new()),
        };
        let wall = if profile_on {
            Some(WallProfile { nodes: outcomes.iter_mut().filter_map(|o| o.profile.take()).collect() })
        } else {
            None
        };
        RunReport {
            exec_time_ps: finish,
            output: console,
            errors,
            deadlocked,
            aborted,
            ops: outcomes.iter().map(|o| o.node.ops).sum(),
            threads: outcomes.iter().map(|o| o.node.spawned_here).sum(),
            net_per_node: outcomes.iter().map(|o| o.endpoint.stats.clone()).collect(),
            dsm_per_node: outcomes.iter().filter_map(|o| o.node.dsm_stats()).collect(),
            rewrite: self.prepared.rewrite,
            setup_ps: self.setup_ps,
            class_bytes: self.prepared.class_bytes as u64,
            event_slab_high_water: outcomes.iter().map(|o| o.slab_high_water).max().unwrap_or(0),
            ops_per_node: outcomes.iter().map(|o| o.node.ops).collect(),
            trace,
            breakdown,
            lock_stats,
            host_wall_secs,
            sync,
            wall,
        }
    }
}

impl Driver for ThreadsDriver {
    fn run(self) -> RunReport {
        ThreadsDriver::run(self)
    }
}
