//! The multi-threaded driver: each [`NodeRuntime`] on its own OS thread,
//! protocol messages crossing channels as *encoded bytes* — the paper's
//! actual deployment shape (§2: independent runtimes on commodity
//! workstations exchanging messages), where the sim driver is its
//! deterministic reference model.
//!
//! The conservative-sync protocol itself — the drain → horizon → execute →
//! publish loop, both lookahead modes, the async send-coverage machinery
//! and the termination proofs — lives in [`crate::engine`], backend-
//! independent. This module is the *instantiation* over one address space:
//!
//! * frames cross [`ChannelEndpoint`] in-process channels,
//! * the epoch protocol's four primitives ([`crate::engine::EpochPeers`])
//!   are shared-memory: a `std::sync::Barrier` for the round barrier and
//!   seqlock-style [`NodeSlot`]s (plain stores + an epoch-counter release
//!   store; waiters spin briefly, then park on a condvar) for
//!   publish/wait/read,
//! * async mode shares an [`engine::AsyncShared`] directly — published
//!   slots, per-pair ack cells and CAS-decided termination, which only
//!   exist because the peers *can* share memory (the sockets backend
//!   replaces all of it with coordinator-side counting, DESIGN.md §16.3).
//!
//! Each epoch round: flush pending frames, cross the barrier (after it,
//! everything peers sent in the previous window is in our channel), drain,
//! publish per-node aggregates, wait for all peers' epochs, and derive the
//! same global decision on every thread — finish, abort, deadlock, or a
//! window horizon (argument in the engine docs).
//!
//! ## Tracing and profiling
//!
//! Virtual-time tracing works here too: each node records its own events
//! into a private `TraceSink` (no cross-thread synchronization), and the
//! driver merges the per-node streams at join through
//! [`jsplit_trace::canonicalize`] — the same normal form the sim driver
//! applies to its global recording — so a traced threads run produces a
//! byte-identical event stream to the sim backend (asserted by the
//! differential trace test). Wall-clock profiling ([`ClusterConfig`]'s
//! `profile`) adds a per-node [`SpanRecorder`]: boundary-timestamp marks
//! around each phase of the epoch loop (flush / barrier / drain / decide /
//! spin / condvar / execute), so the span categories tile each thread's
//! wall time exactly; disabled runs pay one `Option` branch per site.
//!
//! Restrictions vs the sim driver: no mid-run joins, and the `max_ops`
//! abort guard is enforced at window granularity rather than per event.

use crate::balance::BalancerState;
use crate::config::{ClusterConfig, Mode, SyncMode};
use crate::driver::{self, ClusterError, Driver, Prepared};
use crate::engine::{make_node_sink, AsyncShared, EpochPeers, EpochSlot, Horizons, NodeOutcome, SyncEngine};
use crate::env::CONSOLE_NODE;
use crate::node::NodeRuntime;
use crate::report::{RunReport, SyncStats};
use crate::telemetry::{Telemetry, WatchdogSpec};
use jsplit_mjvm::heap::ThreadUid;
use jsplit_mjvm::interp::VmError;
use jsplit_net::{ChannelEndpoint, MeshSetup, NodeId};
use jsplit_trace::{Event, FlightRecorder, MetricsRegistry, SpanRecorder, WallProfile};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::Instant;

/// Per-node aggregates, published once per round. Field stores are plain
/// (`Relaxed`); the `epoch` release store makes them visible, seqlock
/// style — a reader that has observed `epoch ≥ r` reads round-`r` values.
/// A slot is never overwritten while readable: publishing round `r+1`
/// happens after the round-`r+1` barrier, which no peer reaches before it
/// finished reading round `r`.
#[derive(Default)]
struct NodeSlot {
    next_event: AtomicU64,
    live: AtomicU64,
    spawns_sent: AtomicU64,
    spawns_recv: AtomicU64,
    ops: AtomicU64,
    /// Publication counter: holds the latest round whose values are
    /// readable from this slot.
    epoch: AtomicU64,
}

struct Shared {
    slots: Vec<NodeSlot>,
    /// The one barrier per round, separating "all sends of the previous
    /// window are flushed" from "drain and decide".
    barrier: Barrier,
    /// Blocking fallback for the epoch wait: a publisher that stored its
    /// epoch takes this lock and notifies; a waiter whose short spin
    /// failed re-checks under the lock and parks. On machines with a core
    /// per node the spin almost always wins; on oversubscribed hosts
    /// parking beats a `yield_now` storm.
    epoch_lock: Mutex<()>,
    epoch_cv: Condvar,
}

impl Shared {
    /// Publish node `me`'s epoch counter for `round` and wake parked
    /// waiters. The lock round-trip *between* the store and the notify is
    /// what closes the lost-wakeup window: a waiter that missed the store
    /// in its spin holds the lock from its re-check until it parks, so this
    /// publisher either sees the re-check succeed (waiter never parks) or
    /// blocks here until the waiter is parked and notifiable.
    fn publish_epoch(&self, me: usize, round: u64) {
        self.slots[me].epoch.store(round, Ordering::Release);
        drop(self.epoch_lock.lock().unwrap());
        self.epoch_cv.notify_all();
    }

    fn epochs_published(&self, round: u64) -> bool {
        self.slots.iter().all(|s| s.epoch.load(Ordering::Acquire) >= round)
    }

    /// Wait until every node has published `round`: a short spin, then a
    /// parked (untimed) condvar wait. Returns whether the wait parked.
    /// `before_park` runs once, after the spin budget is exhausted and
    /// before the parking path's locked re-check — the epoch loop hangs
    /// its profiling mark there, and the lost-wakeup regression test
    /// injects a publisher to force the publish-between-spin-and-park
    /// interleaving. The wait is untimed on purpose: the publish protocol
    /// above makes a missed wakeup impossible, and the 200µs timeout the
    /// pre-async driver carried as a crutch cost a spurious-wakeup storm
    /// per round on oversubscribed hosts.
    fn wait_epochs(&self, round: u64, before_park: &mut dyn FnMut()) -> bool {
        let mut spins = 0u32;
        let mut parked = false;
        while !self.epochs_published(round) {
            if spins < 64 {
                spins += 1;
                std::hint::spin_loop();
            } else {
                if !parked {
                    parked = true;
                    before_park();
                }
                let guard = self.epoch_lock.lock().unwrap();
                if self.epochs_published(round) {
                    break;
                }
                drop(self.epoch_cv.wait(guard).unwrap());
            }
        }
        parked
    }
}

/// The shared-memory instantiation of the epoch protocol: the engine's
/// four primitives mapped onto the barrier + seqlock slots above. The
/// publish's release store pairs with the wait/read side's acquire loads —
/// the Release/Acquire contract [`EpochPeers`] names.
struct ThreadPeers {
    shared: Arc<Shared>,
}

impl EpochPeers for ThreadPeers {
    fn barrier(&mut self) {
        self.shared.barrier.wait();
    }

    fn publish(&mut self, me: NodeId, round: u64, slot: &EpochSlot) {
        let s = &self.shared.slots[me as usize];
        s.next_event.store(slot.next_event, Ordering::Relaxed);
        s.live.store(slot.live, Ordering::Relaxed);
        s.spawns_sent.store(slot.spawns_sent, Ordering::Relaxed);
        s.spawns_recv.store(slot.spawns_recv, Ordering::Relaxed);
        s.ops.store(slot.ops, Ordering::Relaxed);
        // Wake anyone parked on the epoch ([`Shared::publish_epoch`]'s
        // lock round-trip is what makes a missed wakeup impossible).
        self.shared.publish_epoch(me as usize, round);
    }

    fn wait(&mut self, round: u64, before_park: &mut dyn FnMut()) -> bool {
        self.shared.wait_epochs(round, before_park)
    }

    fn read(&mut self, _round: u64, out: &mut [EpochSlot]) {
        for (s, o) in self.shared.slots.iter().zip(out.iter_mut()) {
            o.next_event = s.next_event.load(Ordering::Relaxed);
            o.live = s.live.load(Ordering::Relaxed);
            o.spawns_sent = s.spawns_sent.load(Ordering::Relaxed);
            o.spawns_recv = s.spawns_recv.load(Ordering::Relaxed);
            o.ops = s.ops.load(Ordering::Relaxed);
        }
    }
}

/// The multi-threaded backend.
pub struct ThreadsDriver {
    config: ClusterConfig,
    prepared: Prepared,
    nodes: Vec<NodeRuntime>,
    endpoints: Vec<ChannelEndpoint>,
    setup_ps: u64,
}

impl ThreadsDriver {
    /// Prepare a run: rewrite, load, build the channel mesh and the node
    /// runtimes, ship classes, bootstrap statics — the same setup sequence
    /// as the sim driver, against the channel transport.
    pub fn new(config: ClusterConfig, program: &jsplit_mjvm::class::Program) -> Result<ThreadsDriver, ClusterError> {
        if !config.joins.is_empty() {
            return Err(ClusterError::Config("the threads backend does not support mid-run joins; use the sim backend".into()));
        }
        let prepared = driver::prepare(&config, program)?;
        let links: Vec<_> = config.nodes.iter().map(|s| driver::link_params(*s)).collect();
        // The loopback bound is profile-derived and must sit below every
        // conservative horizon built from base latencies — the clamp in
        // `loopback_ps` guarantees it; this makes the assumption explicit.
        for l in &links {
            assert!(l.loopback_ps() <= l.base_ps(), "loopback bound {} ps above link base {} ps", l.loopback_ps(), l.base_ps());
        }
        let mut endpoints = ChannelEndpoint::mesh(&links, config.wire_batch);
        // Arm the per-endpoint trace/histogram buffers *before* class
        // shipping so setup-phase `NetSend`s are captured, like the sim's
        // global network trace.
        if config.trace.is_some() {
            for ep in &mut endpoints {
                ep.trace = Some(Vec::new());
            }
        }
        if config.profile || config.trace.is_some() {
            for ep in &mut endpoints {
                ep.frame_hist = Some(jsplit_trace::LogHist::new());
            }
        }
        let mut nodes: Vec<NodeRuntime> = config
            .nodes
            .iter()
            .enumerate()
            .map(|(i, spec)| NodeRuntime::new(i as NodeId, *spec, &config, prepared.image.clone(), prepared.thread_class))
            .collect();
        let mut setup_ps = 0;
        if config.mode == Mode::JavaSplit {
            for i in 1..nodes.len() {
                let at = driver::ship_classes(&mut MeshSetup(&mut endpoints), 0, i as NodeId, prepared.class_bytes);
                setup_ps = setup_ps.max(at);
            }
            driver::bootstrap_statics(&mut nodes, &prepared.image);
        }
        Ok(ThreadsDriver { config, prepared, nodes, endpoints, setup_ps })
    }

    /// Run to completion: one OS thread per node, then merge the outcomes
    /// into the same [`RunReport`] shape the sim driver produces.
    pub fn run(self) -> RunReport {
        let started = std::time::Instant::now();
        let n = self.nodes.len();
        let base_ps: Vec<u64> = self.config.nodes.iter().map(|s| driver::link_params(*s).base_ps()).collect();
        let hz = Horizons::new(base_ps, self.config.lookahead, self.config.max_ops);
        let shared = Arc::new(Shared {
            slots: (0..n).map(|_| NodeSlot::default()).collect(),
            barrier: Barrier::new(n),
            epoch_lock: Mutex::new(()),
            epoch_cv: Condvar::new(),
        });
        // Async sync mode swaps the epoch loop for the barrier-free burst
        // loop, sharing termination state directly.
        let asy = (self.config.sync == SyncMode::Async).then(|| Arc::new(AsyncShared::new(n)));
        // Live telemetry: registry + flight recorder shared with the node
        // threads, sampler/watchdog on a side-band thread. All `None`
        // without `--metrics` — the hot paths then pay one untaken branch.
        let metrics_cfg = self.config.metrics.clone();
        let registry = metrics_cfg.as_ref().map(|_| MetricsRegistry::new(n));
        let flight = metrics_cfg.as_ref().filter(|c| c.flight).map(|_| FlightRecorder::new(n));
        if let Some(f) = &flight {
            jsplit_trace::arm_panic_dump(f);
        }
        let telemetry = metrics_cfg.as_ref().and_then(|cfg| {
            let wd = cfg.watchdog_budget.map(|d| WatchdogSpec {
                budget_ms: (d.as_millis() as u64).max(1),
                base_ps: hz.base_ps.clone(),
            });
            match Telemetry::start(cfg, registry.clone().expect("registry"), flight.clone(), wd) {
                Ok(t) => Some(t),
                Err(e) => {
                    eprintln!("metrics: cannot open {:?}: {e}; sampling disabled", cfg.out);
                    None
                }
            }
        });
        let mode = self.config.mode;
        let thread_main = self.prepared.thread_main;
        let main_method = self.prepared.image.main_method;
        let main_locals = self.prepared.image.method(main_method).max_locals;
        let balancer = self.config.balancer;
        let trace_mode = self.config.trace;
        let profile_on = self.config.profile || trace_mode.is_some();
        // Raw spans (the Chrome real-time lanes) are only worth their
        // memory when a trace export was requested.
        let keep_spans = trace_mode.is_some();

        let mut handles = Vec::with_capacity(n);
        for (node, endpoint) in self.nodes.into_iter().zip(self.endpoints) {
            let shared = shared.clone();
            let mut eng = SyncEngine::new(node, endpoint, hz.clone(), mode, thread_main, n, BalancerState::new(balancer));
            eng.asy = asy.clone();
            eng.recorder = trace_mode.map(make_node_sink);
            eng.metrics = registry.clone();
            eng.flight = flight.clone();
            eng.t0 = started;
            eng.stall_inject_ms = metrics_cfg
                .as_ref()
                .and_then(|c| c.stall_inject)
                .filter(|&(node, _)| node == eng.endpoint.id)
                .map(|(_, ms)| ms);
            handles.push(std::thread::spawn(move || {
                // Wall time and the span origin are anchored at the node
                // thread itself, so thread-spawn latency stays outside the
                // profile; `started` remains the shared cross-thread axis.
                eng.t0 = Instant::now();
                if profile_on {
                    eng.profiler = Some(SpanRecorder::new(started, keep_spans));
                }
                // The main thread starts on worker 0 (§2), before the first
                // round so the first published snapshot already counts it.
                if eng.endpoint.id == CONSOLE_NODE {
                    eng.bootstrap_main(main_method, main_locals);
                }
                // Setup-phase activity (statics bootstrap, class shipping)
                // is part of the trace; stamp it at t = 0 like the sim.
                eng.drain_trace(0);
                if eng.asy.is_some() {
                    eng.run_async()
                } else {
                    eng.run_epoch(&mut ThreadPeers { shared })
                }
            }));
        }
        let mut outcomes: Vec<NodeOutcome> = handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect();
        outcomes.sort_by_key(|o| o.node.id);
        // Stop the sampler (it takes one closing sample of the final
        // published counters) and fold the time series into the report.
        let telemetry_summary = telemetry.map(Telemetry::finish);
        if let Some(f) = &flight {
            jsplit_trace::disarm_panic_dump(f);
        }

        let host_wall_secs = started.elapsed().as_secs_f64();
        let deadlocked = outcomes[0].deadlocked;
        let aborted = outcomes[0].aborted;
        let mut errors: Vec<(ThreadUid, VmError)> = Vec::new();
        let mut console = Vec::new();
        for o in &mut outcomes {
            errors.append(&mut o.errors);
            if o.node.id == CONSOLE_NODE {
                console = o.node.take_console();
            }
        }
        let sync = SyncStats {
            // Epoch rounds are cluster-global (identical on every node);
            // async bursts are per-node, so the cluster figure is the sum.
            windows: match self.config.sync {
                SyncMode::Epoch => outcomes[0].windows,
                SyncMode::Async => outcomes.iter().map(|o| o.windows).sum(),
            },
            barrier_waits: outcomes.iter().map(|o| o.barrier_waits).sum(),
            frames_sent: outcomes.iter().map(|o| o.endpoint.frame_stats.frames_sent).sum(),
            frame_bytes: outcomes.iter().map(|o| o.endpoint.frame_stats.frame_bytes).sum(),
            msgs_framed: outcomes.iter().map(|o| o.endpoint.frame_stats.msgs_framed).sum(),
            nulls_sent: outcomes.iter().map(|o| o.endpoint.frame_stats.nulls_sent).sum(),
            nulls_piggybacked: outcomes.iter().map(|o| o.endpoint.frame_stats.nulls_piggybacked).sum(),
            horizon_advances: outcomes.iter().map(|o| o.horizon_advances).sum(),
        };
        let finish = outcomes.iter().map(|o| o.node.finish_time).max().unwrap_or(0);
        // Merge the per-node streams into the sim's canonical normal form:
        // flush each node's leftover buffers at the global finish time
        // (exactly what the sim's final `drain_trace_buffers` pass does),
        // concatenate in node order, then canonicalize — the result is
        // byte-identical to a sim trace of the same program as long as each
        // node records the same per-node event sequence, which the
        // differential trace tests assert.
        let trace = if trace_mode.is_some() {
            let mut all: Vec<Event> = Vec::new();
            for o in &mut outcomes {
                let Some(r) = &mut o.recorder else { continue };
                for ev in o.node.take_dsm_trace() {
                    r.record(Event { t: finish, ev });
                }
                if let Some(buf) = &mut o.endpoint.trace {
                    for e in buf.drain(..) {
                        r.record(e);
                    }
                }
                all.extend(o.recorder.take().expect("recorder present").into_events());
            }
            Some(jsplit_trace::canonicalize(all))
        } else {
            None
        };
        let (breakdown, lock_stats) = match &trace {
            Some(evs) => {
                let cpus: Vec<u32> = vec![self.config.cpus_per_node as u32; outcomes.len()];
                (
                    jsplit_trace::node_breakdown(evs, &cpus, finish),
                    jsplit_trace::lock_contention(evs),
                )
            }
            None => (Vec::new(), Vec::new()),
        };
        let wall = if profile_on {
            Some(WallProfile { nodes: outcomes.iter_mut().filter_map(|o| o.profile.take()).collect() })
        } else {
            None
        };
        let objprof = self.config.objprof.then(|| {
            // Outcomes are sorted by node id above, so slice index = id.
            let profiles: Vec<jsplit_trace::ObjProfile> = outcomes
                .iter_mut()
                .map(|o| o.node.take_objprof().unwrap_or_default())
                .collect();
            jsplit_trace::build_report(&profiles)
        });
        RunReport {
            exec_time_ps: finish,
            output: console,
            errors,
            deadlocked,
            aborted,
            ops: outcomes.iter().map(|o| o.node.ops).sum(),
            threads: outcomes.iter().map(|o| o.node.spawned_here).sum(),
            net_per_node: outcomes.iter().map(|o| o.endpoint.stats.clone()).collect(),
            dsm_per_node: outcomes.iter().filter_map(|o| o.node.dsm_stats()).collect(),
            rewrite: self.prepared.rewrite,
            setup_ps: self.setup_ps,
            class_bytes: self.prepared.class_bytes as u64,
            event_slab_high_water: outcomes.iter().map(|o| o.slab_high_water).max().unwrap_or(0),
            ops_per_node: outcomes.iter().map(|o| o.node.ops).collect(),
            trace,
            breakdown,
            lock_stats,
            host_wall_secs,
            sync,
            wall,
            telemetry: telemetry_summary,
            opstats: None,
            objprof,
        }
    }
}

impl Driver for ThreadsDriver {
    fn run(self) -> RunReport {
        ThreadsDriver::run(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    fn shared_pair() -> Arc<Shared> {
        Arc::new(Shared {
            slots: (0..2).map(|_| NodeSlot::default()).collect(),
            barrier: Barrier::new(1),
            epoch_lock: Mutex::new(()),
            epoch_cv: Condvar::new(),
        })
    }

    /// Regression for the epoch-wait lost wakeup: a peer that publishes
    /// its epoch *between* a waiter's exhausted spin and its condvar park
    /// must still be observed. [`Shared::wait_epochs`] is untimed, so
    /// before the locked re-check + publish-side lock round-trip existed
    /// this interleaving parked forever (with the old 200µs-timeout wait
    /// it "only" cost a silent timeout per occurrence). The `before_park`
    /// hook pins the publish to exactly that window on even iterations;
    /// odd iterations race a late publisher against the park itself to
    /// cover the notify path too.
    #[test]
    fn epoch_wait_survives_publish_between_spin_and_park() {
        for i in 0..200u32 {
            let shared = shared_pair();
            shared.publish_epoch(0, 1);
            let (tx, rx) = mpsc::channel();
            let s = shared.clone();
            let waiter = std::thread::spawn(move || {
                let s2 = s.clone();
                let mut publisher = None;
                s.wait_epochs(1, &mut || {
                    if i % 2 == 0 {
                        s2.publish_epoch(1, 1);
                    } else {
                        let s3 = s2.clone();
                        publisher = Some(std::thread::spawn(move || {
                            std::thread::sleep(Duration::from_micros(50));
                            s3.publish_epoch(1, 1);
                        }));
                    }
                });
                if let Some(p) = publisher {
                    p.join().unwrap();
                }
                tx.send(()).unwrap();
            });
            rx.recv_timeout(Duration::from_secs(10))
                .expect("waiter hung: epoch publish lost between spin and park");
            waiter.join().unwrap();
        }
    }
}
