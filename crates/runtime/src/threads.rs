//! The multi-threaded driver: each [`NodeRuntime`] on its own OS thread,
//! protocol messages crossing channels as *encoded bytes* — the paper's
//! actual deployment shape (§2: independent runtimes on commodity
//! workstations exchanging messages), where the sim driver is its
//! deterministic reference model.
//!
//! # Conservative virtual-time windows
//!
//! Virtual time is still the semantic clock (instruction costs, link
//! latencies); only the *execution* is parallel. The classic conservative
//! PDES argument applies: every cross-node message carries at least the
//! sender's per-message base latency, so a node can safely process local
//! events up to a horizon no in-flight or future message can undercut.
//!
//! Each round (one *epoch*):
//!
//! 1. flushes pending wire frames and crosses the single `Barrier` — after
//!    it, everything peers sent in the previous window is in our channel,
//! 2. drains inbound frames into the local event queue (sorted
//!    deterministically by `(deliver, step, src, seq)`),
//! 3. publishes per-node aggregates (earliest local event = a lower bound
//!    on every future send, live threads, spawn counters, retired ops)
//!    seqlock-style: plain stores, then an epoch-counter release store,
//! 4. waits (a short spin, then a parked condvar wait on oversubscribed
//!    hosts) until every peer's epoch counter reaches this round — the
//!    only other synchronization point (the decide-side barrier of the
//!    original protocol, replaced by the epoch slots),
//! 5. derives the same global decision on every thread — finish, abort,
//!    deadlock, or a window horizon (see below) — and processes its local
//!    events below the horizon in parallel with every other node.
//!
//! ## Lookahead
//!
//! [`Lookahead::Global`] bounds every window by the cheapest sender's base
//! latency: horizon = `min_next + min_base`. [`Lookahead::PerPair`] uses
//! the published per-node promises (null-message style): node `j` advances
//! to
//!
//! ```text
//! h_j = min( min_{i≠j} (next_i + base_i),          direct influence
//!            next_j + base_j + min_{i≠j} base_i )  self-echo via a peer
//! ```
//!
//! The first term bounds any chain of causality *starting at a peer*: all
//! of `i`'s sends this round happen at virtual times ≥ `next_i` (it drains
//! only at round boundaries, and every effect of an event at `t` is
//! stamped ≥ `t`), so anything reaching `j` — directly or through other
//! nodes, which only add nonnegative hops — arrives ≥ `next_i + base_i`.
//! The second term bounds chains starting at `j` itself: `j`'s earliest
//! send leaves at ≥ `next_j`, needs `base_j` to reach any peer and at
//! least the cheapest peer base to come back. Without it a two-hop echo
//! through an idle peer (`next_i = ∞`) could arrive inside an unbounded
//! window. Idle peers otherwise cost nothing — `∞ + base` never binds —
//! which is what lets lightly-coupled topologies run long windows.
//!
//! Within a window nodes run concurrently on real CPUs (the wall-clock
//! speedup), yet each node's virtual-time execution is identical to what
//! the sequential simulator would do — program output and protocol
//! counters match the sim backend under either lookahead mode (asserted by
//! the cross-backend differential tests). The residual freedom is
//! tie-ordering of *distinct nodes'* events at exactly equal virtual
//! times, which the deterministic key resolves run-to-run reproducibly.
//!
//! ## Asynchronous sync (`--sync async`)
//!
//! [`SyncMode::Async`] removes the barrier entirely (DESIGN.md §14):
//! Chandy–Misra–Bryant null messages riding the same lookahead bounds.
//! Each node free-runs a drain → horizon → execute → publish loop with no
//! global rendezvous; a node with no work below its horizon parks on its
//! inbound channel (1 ms timeout as the liveness backstop).
//!
//! The horizon comes from two sources, maxed together: per-peer *channel
//! clocks* (the latest promise or delivery time received from each peer)
//! and the *snapshot horizon* — the §12.2 rule evaluated over the
//! published per-node slots. What makes the snapshot valid at every
//! instant, records in flight or not, is the **send-coverage invariant**
//! (§14.4): a node's published `next` is the minimum of its queue head
//! and the send time of its oldest un-drained outbound record
//! ([`NodeLoop::async_next`]), receivers republish their own `next`
//! *before* crediting the per-pair ack cells, and senders prune their
//! coverage floor only against those cells — so every in-flight record is
//! covered by a published slot at all times and no global quiescence
//! check is needed.
//!
//! Because every peer can evaluate the snapshot itself, null frames carry
//! no information an awake node needs: they are doorbells. A standalone
//! null ships only to a peer parked on a runnable event, and only at the
//! *crossing* — the first promise that lifts the sender's delivery bound
//! past that peer's published queue head ([`NodeLoop::refresh_promises`]).
//! A straggler climbing through its own self-echo windows re-derives its
//! horizon from the slots before parking (the self-serve climb) instead
//! of waiting for a null round-trip. Termination is detected from the
//! published counters ([`AsyncShared::finished`] / `deadlocked`), decided
//! by a CAS race, and followed by a two-phase flush rendezvous so receive
//! accounting matches the sim. Output and protocol counters stay
//! counter-identical to the sim and to epoch sync; only null/frame counts
//! are wall-timing-dependent.
//!
//! ## Tracing and profiling
//!
//! Virtual-time tracing works here too: each node records its own events
//! into a private `TraceSink` (no cross-thread synchronization), and the
//! driver merges the per-node streams at join through
//! [`jsplit_trace::canonicalize`] — the same normal form the sim driver
//! applies to its global recording — so a traced threads run produces a
//! byte-identical event stream to the sim backend (asserted by the
//! differential trace test). Wall-clock profiling ([`ClusterConfig`]'s
//! `profile`) adds a per-node [`SpanRecorder`]: boundary-timestamp marks
//! around each phase of the epoch loop (flush / barrier / drain / decide /
//! spin / condvar / execute), so the span categories tile each thread's
//! wall time exactly; disabled runs pay one `Option` branch per site.
//!
//! Restrictions vs the sim driver: no mid-run joins, and the `max_ops`
//! abort guard is enforced at window granularity rather than per event.

use crate::balance::{BalancerState, LoadBalancer};
use crate::config::{ClusterConfig, Lookahead, Mode, SyncMode};
use crate::driver::{self, ClusterError, Driver, Prepared};
use crate::env::CONSOLE_NODE;
use crate::node::{Effect, LocalEv, NodeRuntime};
use crate::report::{RunReport, SyncStats};
use jsplit_dsm::Msg;
use jsplit_mjvm::heap::ThreadUid;
use jsplit_mjvm::interp::{Frame, VmError};
use jsplit_mjvm::loader::MethodId;
use jsplit_mjvm::Value;
use jsplit_net::{ChannelEndpoint, MeshSetup, NodeId, Reader};
use crate::telemetry::{Telemetry, WatchdogSpec};
use jsplit_trace::{
    Event, FlightRecorder, FlightTag, Metric, MetricsRegistry, NodeWallProfile, RingRecorder,
    SpanKind, SpanRecorder, TraceEvent, TraceMode, TraceSink, VecRecorder, WallProfile,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::Instant;

/// Per-node sink construction (the `Send` bound lets it ride to the node's
/// OS thread; the sim's global `make_sink` doesn't need one).
fn make_node_sink(mode: TraceMode) -> Box<dyn TraceSink + Send> {
    match mode {
        TraceMode::Full => Box::new(VecRecorder::new()),
        TraceMode::Ring(cap) => Box::new(RingRecorder::new(cap)),
    }
}

/// Per-node aggregates, published once per round. Field stores are plain
/// (`Relaxed`); the `epoch` release store makes them visible, seqlock
/// style — a reader that has observed `epoch ≥ r` reads round-`r` values.
/// A slot is never overwritten while readable: publishing round `r+1`
/// happens after the round-`r+1` barrier, which no peer reaches before it
/// finished reading round `r`.
#[derive(Default)]
struct NodeSlot {
    /// Earliest local event time after this round's drain — a lower bound
    /// on the virtual time of *any* future send by this node (`u64::MAX`
    /// if idle). Non-decreasing across rounds.
    next_event: AtomicU64,
    live: AtomicU64,
    /// Cumulative `SpawnThread` messages sent / installed (their difference
    /// is the cluster-wide in-flight count — the sim's `in_flight` sum).
    spawns_sent: AtomicU64,
    spawns_recv: AtomicU64,
    ops: AtomicU64,
    /// Publication counter: holds the latest round whose values are
    /// readable from this slot.
    epoch: AtomicU64,
}

struct Shared {
    slots: Vec<NodeSlot>,
    /// The one barrier per round, separating "all sends of the previous
    /// window are flushed" from "drain and decide".
    barrier: Barrier,
    /// Global-mode window width: the minimum cross-node per-message base
    /// latency (`u64::MAX` for a single node — one window runs everything).
    window_ps: u64,
    /// Per-sender zero-byte latency (ps): the lookahead each node's
    /// promise is extended by.
    base_ps: Vec<u64>,
    /// `min_{i≠j} base_ps[i]` per node `j` (the self-echo return hop).
    min_peer_base: Vec<u64>,
    lookahead: Lookahead,
    max_ops: u64,
    /// Blocking fallback for the epoch wait: a publisher that stored its
    /// epoch takes this lock and notifies; a waiter whose short spin
    /// failed re-checks under the lock and parks. On machines with a core
    /// per node the spin almost always wins; on oversubscribed hosts
    /// parking beats a `yield_now` storm.
    epoch_lock: Mutex<()>,
    epoch_cv: Condvar,
}

impl Shared {
    /// Publish node `me`'s epoch counter for `round` and wake parked
    /// waiters. The lock round-trip *between* the store and the notify is
    /// what closes the lost-wakeup window: a waiter that missed the store
    /// in its spin holds the lock from its re-check until it parks, so this
    /// publisher either sees the re-check succeed (waiter never parks) or
    /// blocks here until the waiter is parked and notifiable.
    fn publish_epoch(&self, me: usize, round: u64) {
        self.slots[me].epoch.store(round, Ordering::Release);
        drop(self.epoch_lock.lock().unwrap());
        self.epoch_cv.notify_all();
    }

    fn epochs_published(&self, round: u64) -> bool {
        self.slots.iter().all(|s| s.epoch.load(Ordering::Acquire) >= round)
    }

    /// Wait until every node has published `round`: a short spin, then a
    /// parked (untimed) condvar wait. Returns whether the wait parked.
    /// `before_park` runs once, after the spin budget is exhausted and
    /// before the parking path's locked re-check — the epoch loop hangs
    /// its profiling mark there, and the lost-wakeup regression test
    /// injects a publisher to force the publish-between-spin-and-park
    /// interleaving. The wait is untimed on purpose: the publish protocol
    /// above makes a missed wakeup impossible, and the 200µs timeout the
    /// pre-async driver carried as a crutch cost a spurious-wakeup storm
    /// per round on oversubscribed hosts.
    fn wait_epochs(&self, round: u64, before_park: &mut dyn FnMut()) -> bool {
        let mut spins = 0u32;
        let mut parked = false;
        while !self.epochs_published(round) {
            if spins < 64 {
                spins += 1;
                std::hint::spin_loop();
            } else {
                if !parked {
                    parked = true;
                    before_park();
                }
                let guard = self.epoch_lock.lock().unwrap();
                if self.epochs_published(round) {
                    break;
                }
                drop(self.epoch_cv.wait(guard).unwrap());
            }
        }
        parked
    }
}

/// Cross-node state for the asynchronous sync mode (DESIGN.md §14): no
/// barrier, no rounds — progress rides per-channel promises, and the only
/// shared state is what termination detection needs.
///
/// Counter discipline (all `SeqCst`; the proofs in §14.3 lean on the
/// single total order):
/// * `spawns_sent` / `msgs_sent` are incremented *before* the record can
///   enter a channel ([`NodeLoop::transmit`]);
/// * a node's `live` delta is added *before* its `spawns_recv` delta at
///   burst end, and both only after the installs they describe;
/// * `msgs_recv` is incremented while the draining node's slot version is
///   odd, before it republishes `next`.
struct AsyncShared {
    /// Per-node `(version, next)`: `version` odd while the node is inside
    /// a drain→process→publish burst, even while it is idle between
    /// bursts; `next` is its earliest pending event (`u64::MAX` if none),
    /// valid whenever `version` is even.
    slots: Vec<AsyncSlot>,
    /// Live guest threads cluster-wide (sum of published per-node deltas;
    /// deltas wrap mod 2⁶⁴, the sum is exact). Initialized to 1: the main
    /// thread is prepaid so no checker can observe an all-zero world
    /// before node 0 bootstraps.
    live: AtomicU64,
    spawns_sent: AtomicU64,
    spawns_recv: AtomicU64,
    /// Remote data records sent / drained (loopbacks never enter a
    /// channel and are excluded; null records are not data).
    msgs_sent: AtomicU64,
    msgs_recv: AtomicU64,
    /// Per-pair drain acknowledgements: `acked[src·n + dst]` counts the
    /// data records from `src` that `dst` has drained into its queue. A
    /// receiver credits its cell *after* republishing its own `next`
    /// (which then covers the drained events); the sender prunes its
    /// `unacked` send-time floor against the cell. Channels are FIFO per
    /// pair, so a bare count identifies exactly which sends are ack'd.
    acked: Vec<AtomicU64>,
    ops: AtomicU64,
    /// Run outcome, decided exactly once ([`AsyncDone`] values).
    done: AtomicU64,
    /// Shutdown rendezvous: nodes increment after their final flush; the
    /// final leftover drain waits for all `n`, so every sent record is
    /// receive-accounted before endpoints are torn down.
    flushed: AtomicU64,
}

#[derive(Default)]
struct AsyncSlot {
    version: AtomicU64,
    /// Pending-aware `next` ([`NodeLoop::async_next`]): earliest queued
    /// event, clamped to the node's in-flight send floor. Horizon input.
    next: AtomicU64,
    /// Bare queue head, published alongside `next`: the *executable*
    /// demand signal. A node parked at `qnext` can only be unblocked by a
    /// peer whose delivery bound crosses it — the gate standalone nulls
    /// ride on. (`next` would over-trigger: an in-flight-send floor pins
    /// it below anything the node could actually run.)
    qnext: AtomicU64,
    /// True while the node is parked on its inbound channel
    /// ([`NodeLoop::run_async`]'s horizon wait) — the other half of the
    /// demand signal: an awake peer recomputes its horizon from the
    /// published snapshot by itself and needs no frame.
    parked: AtomicBool,
}

/// `AsyncShared::done` values.
mod async_done {
    pub const RUNNING: u64 = 0;
    pub const FINISH: u64 = 1;
    pub const DEADLOCK: u64 = 2;
    pub const ABORT: u64 = 3;
}

impl AsyncShared {
    fn new(n: usize) -> AsyncShared {
        AsyncShared {
            slots: (0..n)
                .map(|_| AsyncSlot {
                    version: AtomicU64::new(0),
                    next: AtomicU64::new(0),
                    qnext: AtomicU64::new(0),
                    parked: AtomicBool::new(false),
                })
                .collect(),
            live: AtomicU64::new(1),
            spawns_sent: AtomicU64::new(0),
            spawns_recv: AtomicU64::new(0),
            msgs_sent: AtomicU64::new(0),
            msgs_recv: AtomicU64::new(0),
            acked: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
            ops: AtomicU64::new(0),
            done: AtomicU64::new(async_done::RUNNING),
            flushed: AtomicU64::new(0),
        }
    }

    /// Race to set the terminal outcome; `true` for the winning node,
    /// which owes its peers a wakeup (they may be parked on the inbound
    /// channel and would otherwise only notice at the next timeout).
    fn decide(&self, outcome: u64) -> bool {
        self.done.compare_exchange(async_done::RUNNING, outcome, Ordering::SeqCst, Ordering::SeqCst).is_ok()
    }

    /// Finish detection without a rendezvous (§14.3): `live == 0` with
    /// spawn counters settled. The read order `sent, recv, live, sent` is
    /// load-bearing: any spawn not yet fully published leaves either a
    /// counter mismatch or a visible live thread at one of these reads.
    fn finished(&self) -> bool {
        let s1 = self.spawns_sent.load(Ordering::SeqCst);
        let r1 = self.spawns_recv.load(Ordering::SeqCst);
        let l = self.live.load(Ordering::SeqCst);
        let s2 = self.spawns_sent.load(Ordering::SeqCst);
        l == 0 && s1 == r1 && s1 == s2
    }

    /// Deadlock detection (§14.3): live threads, every published `next`
    /// at infinity, nothing in flight — double-scanned with slot versions
    /// even and stable so the snapshot is a consistent quiescent state.
    /// Cold path: only runs on an idle node between parks. `vbuf` is the
    /// caller's reusable version-snapshot buffer.
    fn deadlocked(&self, vbuf: &mut Vec<u64>) -> bool {
        vbuf.clear();
        for s in &self.slots {
            let v = s.version.load(Ordering::SeqCst);
            if v % 2 == 1 || s.next.load(Ordering::SeqCst) != u64::MAX {
                return false;
            }
            vbuf.push(v);
        }
        let ms1 = self.msgs_sent.load(Ordering::SeqCst);
        let mr1 = self.msgs_recv.load(Ordering::SeqCst);
        let s1 = self.spawns_sent.load(Ordering::SeqCst);
        let r1 = self.spawns_recv.load(Ordering::SeqCst);
        let l = self.live.load(Ordering::SeqCst);
        if l == 0 || ms1 != mr1 || s1 != r1 {
            return false;
        }
        // Stability re-scan: versions unchanged means no node drained or
        // processed anything between the two scans, so the `next` values
        // and counters describe one global instant.
        for (s, &v) in self.slots.iter().zip(vbuf.iter()) {
            if s.version.load(Ordering::SeqCst) != v {
                return false;
            }
        }
        self.msgs_sent.load(Ordering::SeqCst) == ms1
            && self.msgs_recv.load(Ordering::SeqCst) == mr1
            && self.spawns_sent.load(Ordering::SeqCst) == s1
    }
}

/// What one node thread hands back when the run is over.
struct NodeOutcome {
    node: NodeRuntime,
    endpoint: ChannelEndpoint,
    errors: Vec<(ThreadUid, VmError)>,
    deadlocked: bool,
    aborted: bool,
    /// Final length of the local event-payload slab (live-event bound).
    slab_high_water: u64,
    /// Windows this node processed (identical on every node under epoch
    /// sync; per-node bursts-with-work under async).
    windows: u64,
    /// `Barrier::wait` calls this node made (zero under async sync).
    barrier_waits: u64,
    /// Times this node's safe horizon strictly advanced (async sync).
    horizon_advances: u64,
    /// The node's private trace sink, still open: the driver appends the
    /// leftover DSM/endpoint buffers (stamped at the *global* finish time,
    /// which no single node knows) before draining it.
    recorder: Option<Box<dyn TraceSink + Send>>,
    /// Wall-clock span profile (`None` unless profiling was on).
    profile: Option<NodeWallProfile>,
}

/// A node-local scheduled event (the per-node analogue of the sim driver's
/// global queue entry).
enum NodeEv {
    Local(LocalEv),
    Deliver { src: NodeId, msg: Msg },
}

/// Event-queue ordering key: `(time, step, lane, seq, slab index)`.
type EvKey = (u64, u64, NodeId, u64, usize);

/// One node's event loop state, running on a dedicated OS thread.
struct NodeLoop {
    node: NodeRuntime,
    endpoint: ChannelEndpoint,
    shared: Arc<Shared>,
    /// Async-mode shared state (`None` under epoch sync). Its presence also
    /// arms the eager global counter increments in [`NodeLoop::transmit`].
    asy: Option<Arc<AsyncShared>>,
    mode: Mode,
    thread_main: MethodId,
    n_nodes: usize,
    /// Strided uid allocation: `id + k·n` — disjoint from every other node
    /// without global coordination. uids are fixed-width on the wire, so
    /// message sizes (and byte counters) match the sim's dense allocation.
    next_uid: ThreadUid,
    lb: BalancerState,
    /// `SpawnThread`s this node shipped per destination (the origin-local
    /// load estimate: remote loads are what we shipped there).
    shipped_to: Vec<u64>,
    /// Self-shipped spawns not yet installed (counted into our own load).
    self_inflight: u64,
    spawns_sent: u64,
    spawns_recv: u64,
    /// Local event queue, deterministically ordered by
    /// `(time, step, lane, seq)`: `step` is the virtual time of the event
    /// that produced the entry, `lane` the producing node, `seq` a local
    /// tie-breaker assigned in deterministic order.
    events: BinaryHeap<Reverse<EvKey>>,
    payloads: Vec<Option<NodeEv>>,
    free_events: Vec<usize>,
    seq: u64,
    errors: Vec<(ThreadUid, VmError)>,
    fx: Vec<Effect>,
    /// Reused drain staging buffer (sorted per round, never reallocated in
    /// the steady state).
    drain_scratch: Vec<(u64, u64, NodeId, u64, Msg)>,
    /// Cumulative data records shipped per destination (async sync);
    /// pairs with [`AsyncShared::acked`] to prune `unacked`.
    sent_to: Vec<u64>,
    /// Send times of records shipped but not yet drained by their
    /// receiver, per destination, in channel (FIFO) order:
    /// `(cumulative send index, virtual send time)`. The oldest front
    /// across all queues is the send-coverage floor every published
    /// `next` is clamped to — the invariant that keeps the async horizon
    /// snapshot valid with records in flight (§14.4).
    unacked: Vec<VecDeque<(u64, u64)>>,
    /// Reused per-drain record counts per source (ack credits).
    ack_scratch: Vec<u64>,
    windows: u64,
    barrier_waits: u64,
    /// Times the safe horizon strictly advanced (async sync only).
    horizon_advances: u64,
    /// This node's private trace sink (`None` = tracing off). Never shared:
    /// recording is a plain method call on thread-local state.
    recorder: Option<Box<dyn TraceSink + Send>>,
    /// Wall-clock span profiler (`None` = profiling off: one branch/site).
    profiler: Option<SpanRecorder>,
    /// Live-metrics registry (`None` = metrics off: one branch per publish
    /// site). Values go out as single relaxed stores of counters this loop
    /// already maintains — the sampler thread does all derived work.
    metrics: Option<Arc<MetricsRegistry>>,
    /// Flight recorder for recent state transitions (`None` = off).
    flight: Option<Arc<FlightRecorder>>,
    /// Watchdog fault injection: sleep this many wall-clock ms before the
    /// first async iteration, pinning peers on our unpublished promise.
    stall_inject_ms: Option<u64>,
    /// Thread start instant, set by the node thread itself; `wall_ns` is
    /// measured from it independently of the span accounting.
    t0: Instant,
}

impl NodeLoop {
    fn push(&mut self, time: u64, step: u64, lane: NodeId, ev: NodeEv) {
        let idx = match self.free_events.pop() {
            Some(i) => {
                self.payloads[i] = Some(ev);
                i
            }
            None => {
                self.payloads.push(Some(ev));
                self.payloads.len() - 1
            }
        };
        self.events.push(Reverse((time, step, lane, self.seq, idx)));
        self.seq += 1;
    }

    fn alloc_uid(&mut self) -> ThreadUid {
        let uid = self.next_uid;
        self.next_uid += self.n_nodes as ThreadUid;
        uid
    }

    /// Record one trace event at virtual time `t` (no-op when disabled).
    #[inline]
    fn record(&mut self, t: u64, ev: TraceEvent) {
        if let Some(r) = &mut self.recorder {
            r.record(Event { t, ev });
        }
    }

    /// Log one flight-recorder transition (no-op when disabled).
    #[inline]
    fn fly(&self, tag: FlightTag, a: u64, b: u64) {
        if let Some(f) = &self.flight {
            f.log(self.endpoint.id, tag, a, b);
        }
    }

    /// Publish this node's registry cells: one relaxed store per value, of
    /// counters the loop already maintains. Called at points the hot path
    /// visits anyway (epoch round publish, async burst publish, pre-park);
    /// with metrics off the whole thing is one untaken branch.
    fn publish_metrics(&self, horizon: u64, next: u64, qnext: u64) {
        let Some(reg) = &self.metrics else {
            return;
        };
        let me = self.endpoint.id;
        reg.set(me, Metric::Ops, self.node.ops);
        reg.set(me, Metric::LiveThreads, self.node.live() as u64);
        reg.set(me, Metric::Windows, self.windows);
        reg.set(me, Metric::BarrierWaits, self.barrier_waits);
        reg.set(me, Metric::HorizonAdvances, self.horizon_advances);
        reg.set(me, Metric::HorizonPs, horizon);
        reg.set(me, Metric::NextEventPs, next);
        reg.set(me, Metric::QueueHeadPs, qnext);
        let ns = &self.endpoint.stats;
        reg.set(me, Metric::NetMsgsSent, ns.msgs_sent);
        reg.set(me, Metric::NetBytesSent, ns.bytes_sent);
        reg.set(me, Metric::NetMsgsRecv, ns.msgs_recv);
        let fs = &self.endpoint.frame_stats;
        reg.set(me, Metric::FramesSent, fs.frames_sent);
        reg.set(me, Metric::NullsSent, fs.nulls_sent + fs.nulls_piggybacked);
        if let Some(d) = self.node.dsm_stats_ref() {
            reg.set(me, Metric::DsmFetches, d.fetches);
            reg.set(me, Metric::DsmDiffs, d.diffs_sent);
            reg.set(me, Metric::DsmInvalidations, d.invalidations);
            reg.set(me, Metric::DsmLockGrants, d.grants_sent);
        }
    }

    /// Stamp and flush this node's clock-free DSM trace buffer at `now`,
    /// then the endpoint's pre-stamped send events — the same order (and
    /// the same call sites, via `FlushTrace`) as the sim driver's
    /// `drain_trace_buffers`, so the per-node recorded sequence matches.
    fn drain_trace(&mut self, now: u64) {
        let Some(r) = &mut self.recorder else {
            return;
        };
        for ev in self.node.take_dsm_trace() {
            r.record(Event { t: now, ev });
        }
        if let Some(buf) = &mut self.endpoint.trace {
            for e in buf.drain(..) {
                r.record(e);
            }
        }
    }

    /// Execute a node's effect stream at processing step `step` (the
    /// virtual time of the event being processed).
    fn apply_effects(&mut self, step: u64) {
        let mut fx = std::mem::take(&mut self.fx);
        for f in fx.drain(..) {
            match f {
                Effect::Local { time, ev } => {
                    let lane = self.endpoint.id;
                    self.push(time, step, lane, NodeEv::Local(ev));
                }
                Effect::Send { at, dst, msg } => self.transmit(at, step, dst, msg),
                Effect::Spawn { now, thread_obj, priority } => {
                    self.dispatch_spawn(now, step, thread_obj, priority);
                }
                Effect::Trace { t, ev } => self.record(t, ev),
                Effect::FlushTrace { now } => self.drain_trace(now),
            }
        }
        self.fx = fx;
    }

    /// Encode, account and ship one protocol message at virtual `at`:
    /// remote messages into the destination's pending frame, self-sends
    /// straight back into the local queue.
    fn transmit(&mut self, at: u64, step: u64, dst: NodeId, msg: Msg) {
        // Async termination counters go up *before* the record can enter a
        // channel (`endpoint.transmit` may auto-flush a full frame): a
        // checker that has not seen the increment cannot have seen the
        // message either — the send-before-flight rule §14.3 leans on.
        if matches!(msg, Msg::SpawnThread { .. }) {
            self.spawns_sent += 1;
            if let Some(a) = &self.asy {
                a.spawns_sent.fetch_add(1, Ordering::SeqCst);
            }
        }
        if dst != self.endpoint.id {
            if let Some(a) = &self.asy {
                a.msgs_sent.fetch_add(1, Ordering::SeqCst);
                // Send-coverage bookkeeping (§14.4): until the receiver
                // acks the drain, every published `next` of ours is clamped
                // to this record's send time, so the horizon snapshot keeps
                // covering it while it is in flight.
                self.sent_to[dst as usize] += 1;
                self.unacked[dst as usize].push_back((self.sent_to[dst as usize], at));
            }
        }
        let kind = msg.kind();
        let (deliver, local) = self.endpoint.transmit(at, step, dst, kind, &mut |w| msg.encode_into(w));
        if let Some(wire) = local {
            // Loopback: delivered below any window horizon, so it never
            // crosses the mesh — it goes straight into our queue. The
            // bound is profile-derived (`LinkParams::loopback_ps`, clamped
            // to the base latency); strictly-future delivery keeps the
            // in-window processing order intact. Round-trip the codec
            // anyway: the wire sees what a peer would.
            debug_assert!(
                deliver >= at + self.endpoint.link().loopback_ps(),
                "loopback delivered before its profile bound"
            );
            self.endpoint.record_recv(wire.payload.len(), wire.kind);
            let msg = Msg::decode_from(&mut Reader::new(&wire.payload[..])).expect("loopback codec round-trip");
            self.endpoint.recycle(wire.payload);
            let lane = self.endpoint.id;
            self.push(deliver, step, lane, NodeEv::Deliver { src: lane, msg });
        }
    }

    /// Place a newly started thread (§2's load-balancing plug-in, with an
    /// origin-local load estimate: own load = live + own in-flight, remote
    /// load = spawns shipped there. Identical to the sim's global view as
    /// long as remote threads neither exit nor spawn before placement
    /// finishes — true for the fork-join apps; a future TCP backend would
    /// gossip loads instead).
    fn dispatch_spawn(&mut self, now: u64, step: u64, thread_obj: jsplit_mjvm::heap::ObjRef, priority: i32) {
        let me = self.endpoint.id;
        match self.mode {
            Mode::Baseline => {
                let uid = self.alloc_uid();
                let image = self.node.image().clone();
                let m = image.method(self.thread_main);
                let frame = Frame::new(self.thread_main, m.max_locals, vec![Value::Ref(thread_obj)], false);
                let mut fx = std::mem::take(&mut self.fx);
                self.node.add_thread(uid, frame, Some(thread_obj), now, &mut fx);
                self.fx = fx;
                self.apply_effects(step);
            }
            Mode::JavaSplit => {
                let loads: Vec<usize> = (0..self.n_nodes)
                    .map(|i| {
                        if i == me as usize {
                            self.node.live() + self.self_inflight as usize
                        } else {
                            self.shipped_to[i] as usize
                        }
                    })
                    .collect();
                let dst = self.lb.pick(&loads, me);
                self.shipped_to[dst as usize] += 1;
                if dst == me {
                    self.self_inflight += 1;
                }
                let msg = self.node.prepare_spawn(thread_obj, priority);
                if let Msg::SpawnThread { thread_gid, .. } = &msg {
                    self.record(now, jsplit_trace::TraceEvent::ThreadShip { from: me, to: dst, thread_gid: thread_gid.0 });
                }
                self.transmit(now, step, dst, msg);
            }
        }
    }

    /// Deliver one protocol message at virtual `time`.
    fn deliver(&mut self, time: u64, src: NodeId, msg: Msg) {
        match msg {
            Msg::Println { line, .. } => self.node.push_console(line),
            Msg::SpawnThread { thread_gid, class, state, priority } => {
                self.spawns_recv += 1;
                if src == self.endpoint.id {
                    self.self_inflight = self.self_inflight.saturating_sub(1);
                }
                let uid = self.alloc_uid();
                let mut fx = std::mem::take(&mut self.fx);
                self.node
                    .install_spawned_thread(uid, thread_gid, class, &state, priority, self.thread_main, time, &mut fx);
                self.fx = fx;
                self.apply_effects(time);
            }
            other => {
                let mut fx = std::mem::take(&mut self.fx);
                self.node.handle_dsm(time, other, &mut fx);
                self.fx = fx;
                self.apply_effects(time);
            }
        }
    }

    /// Drain inbound frames into the local queue, deterministically:
    /// arrival interleaving across senders is scheduler noise, so sort by
    /// the virtual-time key before assigning local sequence numbers.
    /// Records decode in place from the frame buffers (which return to
    /// their senders' pools).
    fn drain_inbox(&mut self) {
        let mut batch = std::mem::take(&mut self.drain_scratch);
        self.endpoint.drain_frames(&mut |src, _kind, deliver_ps, step_ps, seq, payload| {
            let msg = Msg::decode_from(&mut Reader::new(payload)).expect("wire codec round-trip");
            batch.push((deliver_ps, step_ps, src, seq, msg));
        });
        if !batch.is_empty() {
            batch.sort_unstable_by_key(|&(deliver, step, src, seq, _)| (deliver, step, src, seq));
            for (deliver, step, src, _, msg) in batch.drain(..) {
                self.push(deliver, step, src, NodeEv::Deliver { src, msg });
            }
        }
        self.drain_scratch = batch;
    }

    /// Pop-side of the event loop: execute one scheduled event at `time`
    /// whose payload sits at slab `idx` (shared by both sync modes).
    fn process_one(&mut self, time: u64, idx: usize) {
        let ev = self.payloads[idx].take().expect("event payload");
        self.free_events.push(idx);
        match ev {
            NodeEv::Local(LocalEv::Slice { cpu, thread }) => {
                let mut fx = std::mem::take(&mut self.fx);
                let r = self.node.run_slice(time, cpu, thread, &mut fx);
                self.fx = fx;
                if let Some(e) = r.error {
                    self.errors.push((thread, e));
                }
                self.apply_effects(time);
            }
            NodeEv::Local(LocalEv::Wake { thread }) => {
                let mut fx = std::mem::take(&mut self.fx);
                self.node.make_ready(thread, time, &mut fx);
                self.fx = fx;
                self.apply_effects(time);
            }
            NodeEv::Deliver { src, msg } => self.deliver(time, src, msg),
        }
    }

    /// The thread body: epochs of flush → barrier → drain → publish →
    /// spin → decide → process-window, until the cluster-wide decision
    /// says stop.
    fn run(mut self) -> NodeOutcome {
        let me = self.endpoint.id as usize;
        let shared = self.shared.clone();
        let n = shared.slots.len();
        let mut deadlocked = false;
        let mut aborted = false;
        let mut round: u64 = 0;
        let mut next_buf = vec![0u64; n];
        loop {
            round += 1;
            // Span accounting (when on) is boundary-chained: each `mark`
            // closes the segment since the previous boundary, so the seven
            // categories tile this thread's wall time with no gaps. The
            // mark here attributes everything since the last horizon
            // decision — window processing, plus bootstrap on round 1 — to
            // Execute.
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::Execute);
            }
            // Everything this node sent in the previous window (and during
            // bootstrap) ships now; the barrier then guarantees every
            // peer's sends are in our channel before we drain. Draining
            // *after* the barrier is load-bearing: a message missed here
            // could fall inside a later (wider) horizon.
            self.endpoint.flush();
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::FrameFlush);
            }
            shared.barrier.wait();
            self.barrier_waits += 1;
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::BarrierWait);
            }
            self.drain_inbox();
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::InboxDrain);
            }
            // Publish this round's aggregates: plain field stores, then
            // the epoch release-store that makes them readable.
            let slot = &shared.slots[me];
            let next = self.events.peek().map_or(u64::MAX, |Reverse((t, ..))| *t);
            slot.next_event.store(next, Ordering::Relaxed);
            slot.live.store(self.node.live() as u64, Ordering::Relaxed);
            slot.spawns_sent.store(self.spawns_sent, Ordering::Relaxed);
            slot.spawns_recv.store(self.spawns_recv, Ordering::Relaxed);
            slot.ops.store(self.node.ops, Ordering::Relaxed);
            // Wake anyone parked on the epoch ([`Shared::publish_epoch`]'s
            // lock round-trip is what makes a missed wakeup impossible).
            shared.publish_epoch(me, round);
            self.fly(FlightTag::EpochPublish, round, next);
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::Decide);
            }
            // Wait until every peer has published this round; each thread
            // then derives the same global decision from the same values.
            // Attribution splits at the first park: time up to it is
            // SlotSpin, the remainder CondvarWait.
            let mut profiler = self.profiler.take();
            let metrics = self.metrics.clone();
            let flight = self.flight.clone();
            let parked = shared.wait_epochs(round, &mut || {
                if let Some(p) = &mut profiler {
                    p.mark(SpanKind::SlotSpin);
                }
                // The parked gauge + flight mark ride the same hook: it
                // runs once, right before the locked re-check parks us.
                if let Some(reg) = &metrics {
                    reg.set(me as NodeId, Metric::Parked, 1);
                }
                if let Some(f) = &flight {
                    f.log(me as NodeId, FlightTag::Park, round, next);
                }
            });
            self.profiler = profiler;
            if parked {
                if let Some(reg) = &self.metrics {
                    reg.set(me as NodeId, Metric::Parked, 0);
                }
                self.fly(FlightTag::Unpark, round, next);
            }
            if let Some(p) = &mut self.profiler {
                p.mark(if parked { SpanKind::CondvarWait } else { SpanKind::SlotSpin });
            }
            let mut live = 0u64;
            let mut sent = 0u64;
            let mut recv = 0u64;
            let mut ops = 0u64;
            let mut min_next = u64::MAX;
            for (i, s) in shared.slots.iter().enumerate() {
                live += s.live.load(Ordering::Relaxed);
                sent += s.spawns_sent.load(Ordering::Relaxed);
                recv += s.spawns_recv.load(Ordering::Relaxed);
                ops += s.ops.load(Ordering::Relaxed);
                let nx = s.next_event.load(Ordering::Relaxed);
                next_buf[i] = nx;
                min_next = min_next.min(nx);
            }
            // Spawned-but-undelivered threads count as live: a main that
            // exits immediately after `start()` must not end the run.
            if live == 0 && sent == recv {
                break;
            }
            if ops > shared.max_ops {
                aborted = true;
                break;
            }
            if min_next == u64::MAX {
                // Live threads, no scheduled events anywhere, empty
                // channels (anything sent last round was flushed before
                // the barrier and just drained): nothing can ever run
                // again.
                deadlocked = true;
                break;
            }
            self.windows += 1;
            // The safe horizon: no message can be delivered to this node
            // below it (module docs give the argument). n == 1 degenerates
            // to one unbounded window.
            let horizon = if n == 1 {
                u64::MAX
            } else {
                match shared.lookahead {
                    Lookahead::Global => min_next.saturating_add(shared.window_ps),
                    Lookahead::PerPair => {
                        let mut h = next_buf[me]
                            .saturating_add(shared.base_ps[me])
                            .saturating_add(shared.min_peer_base[me]);
                        for (i, nx) in next_buf.iter().enumerate() {
                            if i != me {
                                h = h.min(nx.saturating_add(shared.base_ps[i]));
                            }
                        }
                        h
                    }
                }
            };
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::Decide);
                if horizon != u64::MAX && min_next != u64::MAX {
                    p.window_ps.record(horizon - min_next);
                }
            }
            self.publish_metrics(horizon, next, next);
            while let Some(&Reverse((time, _, _, _, idx))) = self.events.peek() {
                if time >= horizon {
                    break;
                }
                self.events.pop();
                self.process_one(time, idx);
            }
        }
        self.fly(FlightTag::Decide, if deadlocked { 2 } else if aborted { 3 } else { 1 }, round);
        // Final publish so the sampler's closing sample carries end-of-run
        // counters (the horizon gauge goes to ∞: the run is over, nothing
        // lags anything).
        self.publish_metrics(u64::MAX, self.queue_head(), self.queue_head());
        self.finish_outcome(deadlocked, aborted)
    }

    /// Close the final profiling segment (the decision that broke the
    /// loop), reconcile against the independently measured thread wall
    /// time, and package the outcome (shared by both sync modes).
    fn finish_outcome(mut self, deadlocked: bool, aborted: bool) -> NodeOutcome {
        let profile = self.profiler.take().map(|mut rec| {
            rec.mark(SpanKind::Decide);
            let wall_ns = u64::try_from(self.t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let mut p = rec.finish(self.endpoint.id, wall_ns);
            if let Some(h) = self.endpoint.frame_hist.take() {
                p.frame_bytes = h;
            }
            p
        });
        NodeOutcome {
            slab_high_water: self.payloads.len() as u64,
            node: self.node,
            endpoint: self.endpoint,
            errors: self.errors,
            deadlocked,
            aborted,
            windows: self.windows,
            barrier_waits: self.barrier_waits,
            horizon_advances: self.horizon_advances,
            recorder: self.recorder,
            profile,
        }
    }

    /// This node's pending-aware `next` (async sync): the earliest local
    /// event, clamped to the send time of the oldest record we shipped
    /// whose receiver has not drained it yet. Publishing this — never the
    /// bare queue head — is the send-coverage invariant (§14.4): a record
    /// in flight is always covered by its *sender's* published `next`,
    /// which is what keeps the snapshot horizon valid with traffic in
    /// flight, without any global quiescence check.
    fn async_next(&self) -> u64 {
        let floor = self.unacked.iter().filter_map(|u| u.front().map(|&(_, t)| t)).min().unwrap_or(u64::MAX);
        self.queue_head().min(floor)
    }

    /// Bare earliest queued event — the node's *executable* demand, as
    /// opposed to the coverage-clamped [`Self::async_next`]. Published as
    /// `qnext` so peers can tell "parked on a runnable event" from
    /// "floor merely pinned by an un-drained send".
    fn queue_head(&self) -> u64 {
        self.events.peek().map_or(u64::MAX, |Reverse((t, ..))| *t)
    }

    /// Drop receiver-acknowledged records from the send-coverage floor.
    /// Channels are FIFO per pair, so the receiver's drain count
    /// identifies exactly the prefix of `unacked` whose coverage has
    /// passed to the receiver's published `next`.
    fn prune_acked(&mut self, asy: &AsyncShared) {
        let me = self.endpoint.id as usize;
        let n = self.n_nodes;
        for dst in 0..n {
            if self.unacked[dst].is_empty() {
                continue;
            }
            let a = asy.acked[me * n + dst].load(Ordering::SeqCst);
            while self.unacked[dst].front().is_some_and(|&(c, _)| c <= a) {
                self.unacked[dst].pop_front();
            }
        }
    }

    /// Drain inbound frames under async sync: data records merge into the
    /// event queue exactly as [`NodeLoop::drain_inbox`], and additionally
    /// advance the per-peer channel clocks — a data record's delivery time
    /// is itself a promise (per-link deliveries are strictly increasing),
    /// a null record carries one explicitly.
    /// Returns the number of data records drained (null promises are not
    /// counted — a drain that only moved promises leaves no observable
    /// trace in the termination-detection state).
    fn drain_inbox_async(&mut self, chan: &mut [u64]) -> u64 {
        let mut batch = std::mem::take(&mut self.drain_scratch);
        let mut records = 0u64;
        self.endpoint.drain_frames_with_nulls(
            &mut |src, _kind, deliver_ps, step_ps, seq, payload| {
                let msg = Msg::decode_from(&mut Reader::new(payload)).expect("wire codec round-trip");
                batch.push((deliver_ps, step_ps, src, seq, msg));
                records += 1;
            },
            &mut |src, promise| {
                let c = &mut chan[src as usize];
                *c = (*c).max(promise);
            },
        );
        if !batch.is_empty() {
            for &(deliver, _, src, _, _) in batch.iter() {
                let c = &mut chan[src as usize];
                *c = (*c).max(deliver);
                self.ack_scratch[src as usize] += 1;
            }
            batch.sort_unstable_by_key(|&(deliver, step, src, seq, _)| (deliver, step, src, seq));
            for (deliver, step, src, _, msg) in batch.drain(..) {
                self.push(deliver, step, src, NodeEv::Deliver { src, msg });
            }
        }
        self.drain_scratch = batch;
        if records > 0 {
            // Accounting order is load-bearing for §14.4: republish our
            // `next` (now covering the drained events) *before* crediting
            // the per-pair ack cells — a sender that prunes its coverage
            // floor must already see the handoff in our published slot.
            let me = self.endpoint.id as usize;
            let n = self.n_nodes;
            let next = self.async_next();
            let qhead = self.queue_head();
            let asy = self.asy.clone().expect("async drain outside async mode");
            asy.slots[me].next.store(next, Ordering::SeqCst);
            asy.slots[me].qnext.store(qhead, Ordering::SeqCst);
            asy.msgs_recv.fetch_add(records, Ordering::SeqCst);
            for src in 0..n {
                let k = std::mem::replace(&mut self.ack_scratch[src], 0);
                if k == 0 {
                    continue;
                }
                asy.acked[src * n + me].fetch_add(k, Ordering::SeqCst);
                // Doorbell: the sender's published `next` may be pinned at
                // these records' send times, capping every horizon in the
                // cluster. If it is parked it cannot prune by itself —
                // wake it (value 0 is a no-op promise, pure wakeup).
                if asy.slots[src].parked.load(Ordering::SeqCst) {
                    self.endpoint.push_null(src as NodeId, 0);
                }
            }
        }
        records
    }

    /// Ring peers whose horizon may hang on this node's progress (async
    /// sync). The promise is `min(pending-aware next, input horizon) +
    /// lookahead`: a bound on the delivery time of anything we may still
    /// send — future sends are triggered either by a queued event
    /// (≥ `next`), by an in-flight record of ours (≥ its send time, the
    /// `async_next` floor), or by a future arrival (≥ the input horizon),
    /// and cost at least the lookahead in flight.
    ///
    /// Since every peer can compute the full snapshot horizon itself from
    /// the published slots ([`NodeLoop::snapshot_horizon`]), nulls carry
    /// no information an awake peer needs — they are *doorbells*. A
    /// standalone null therefore ships only to a peer that is parked on a
    /// runnable event (`qnext < ∞`; an awake peer recomputes from the
    /// slots by itself), and only at the *crossing*: the first promise
    /// that lifts our delivery bound past the peer's executable head.
    /// Below the head our term cannot be what unblocks it; above the head
    /// it already is not what blocks it — either way a frame is a wasted
    /// wakeup. The peer whose term is the last to cross is by definition
    /// the blocker, and its crossing frame is the wakeup that matters; a
    /// crossing that happens while the peer is awake (ring skipped) is
    /// covered by the peer's own pre-park snapshot peek, and any residual
    /// race by its park timeout. Only strict increases ship: a promise
    /// never retracts, and each frame both wakes the peer and advances
    /// its channel clock.
    fn refresh_promises(&mut self, asy: &AsyncShared, promised: &mut [u64], horizon: u64, my_base: u64) {
        let promise = self.async_next().min(horizon).saturating_add(my_base);
        let me = self.endpoint.id as usize;
        for (dst, sent) in promised.iter_mut().enumerate() {
            if dst == me || promise <= *sent {
                continue;
            }
            let slot = &asy.slots[dst];
            let qn = slot.qnext.load(Ordering::SeqCst);
            // Crossing rule: `*sent ≤ qn < promise`, i.e. this frame is
            // the one that first clears the peer's head.
            if qn == u64::MAX || *sent > qn || promise <= qn {
                continue;
            }
            if !slot.parked.load(Ordering::SeqCst) {
                continue;
            }
            self.endpoint.push_null(dst as NodeId, promise);
            *sent = promise;
        }
    }

    /// Poke every peer with a (possibly repeated) null so that anyone
    /// parked on the inbound channel wakes immediately — owed by the node
    /// that wins the termination race, since balanced-mode suppression
    /// means nobody else may be about to send them anything.
    fn wake_peers(&mut self, promised: &[u64]) {
        let me = self.endpoint.id as usize;
        for (dst, &sent) in promised.iter().enumerate() {
            if dst != me {
                self.endpoint.push_null(dst as NodeId, sent);
            }
        }
    }

    /// Epoch-grade horizon from the published snapshot — valid at every
    /// instant, records in flight or not. The published `next` values are
    /// fed to the §12.2 per-pair (or global-window) horizon rule
    /// verbatim; our own slot contributes the live pending-aware `next`.
    ///
    /// Soundness rests on the send-coverage invariant (§14.4): a node's
    /// published `next` is at all times a lower bound on (a) every event
    /// in its queue — drains republish before acking, loopbacks land
    /// above the section's processing point — and (b) the send time of
    /// every record it has shipped that is still undrained (`async_next`
    /// clamps to the `unacked` floor, and the floor only lifts after the
    /// receiver's published `next` covers the record — the ack-after-
    /// republish order in [`NodeLoop::drain_inbox_async`]). With every
    /// in-flight record covered by its sender, any future send by node
    /// `i` originates at ≥ its published `next_i`, and the §12.2
    /// induction goes through unchanged — no quiescence, no version
    /// stability, no counter bracketing. A straggler in a busy cluster
    /// advances its horizon with `n` atomic loads per burst, waking
    /// nobody.
    fn snapshot_horizon(&self, asy: &AsyncShared, next_me: u64, next_buf: &mut Vec<u64>) -> u64 {
        let shared = &self.shared;
        let me = self.endpoint.id as usize;
        next_buf.clear();
        for (i, s) in asy.slots.iter().enumerate() {
            if i == me {
                next_buf.push(next_me);
            } else {
                next_buf.push(s.next.load(Ordering::SeqCst));
            }
        }
        match shared.lookahead {
            Lookahead::Global => {
                let min_next = next_buf.iter().copied().min().unwrap_or(u64::MAX);
                min_next.saturating_add(shared.window_ps)
            }
            Lookahead::PerPair => {
                let mut h = next_me.saturating_add(shared.base_ps[me]).saturating_add(shared.min_peer_base[me]);
                for (i, nx) in next_buf.iter().enumerate() {
                    if i != me {
                        h = h.min(nx.saturating_add(shared.base_ps[i]));
                    }
                }
                h
            }
        }
    }

    /// The thread body under `--sync async` (DESIGN.md §14): no barrier,
    /// no rounds. Each iteration drains whatever has arrived, advances the
    /// safe horizon from the per-peer channel clocks, executes the burst
    /// of events strictly below it, publishes termination-detection state,
    /// ships pending frames plus null promises, and parks on the inbound
    /// channel only when it has nothing left to do.
    fn run_async(mut self) -> NodeOutcome {
        let me = self.endpoint.id as usize;
        let shared = self.shared.clone();
        let asy = self.asy.clone().expect("async shared state");
        let n = shared.base_ps.len();
        // The lookahead this node's promises extend by: its own base link
        // latency per-pair, the cluster-cheapest base under global mode
        // (same conservatism as the epoch global window).
        let my_base = match shared.lookahead {
            Lookahead::PerPair => shared.base_ps[me],
            Lookahead::Global => shared.window_ps,
        };
        // chan[p] = channel clock for peer p: no future record from p can
        // deliver below it. Own entry pinned at ∞ so `min` skips it.
        let mut chan = vec![0u64; n];
        chan[me] = u64::MAX;
        let mut promised = vec![0u64; n];
        let mut vbuf: Vec<u64> = Vec::with_capacity(n);
        let mut next_buf: Vec<u64> = Vec::with_capacity(n);
        // The main thread is prepaid in `AsyncShared::live`; baseline the
        // console node at 1 so its bootstrap burst publishes a zero delta.
        let mut last_live: u64 = if me == CONSOLE_NODE as usize { 1 } else { 0 };
        let mut last_spawns_recv = 0u64;
        let mut last_ops = 0u64;
        let mut horizon = 0u64;
        let mut version = 0u64;
        let outcome;
        // Watchdog fault injection: sleep with our initial slot (next = 0)
        // still published — every peer's horizon pins on our promise until
        // we wake. Wall-clock only; virtual-time results are unchanged.
        if let Some(ms) = self.stall_inject_ms.take() {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        loop {
            // --- Odd section: drain, execute, publish. Checkers treat the
            // whole burst as one atomic step.
            asy.slots[me].version.store(version + 1, Ordering::SeqCst);
            let drained = self.drain_inbox_async(&mut chan);
            self.prune_acked(&asy);
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::InboxDrain);
            }
            let mut h = if n == 1 { u64::MAX } else { chan.iter().copied().min().unwrap_or(u64::MAX) };
            if n > 1 {
                // The snapshot horizon is valid at every instant (§14.4
                // send coverage) — the self-serve path that lets a
                // straggler climb through its own windows without a null
                // round-trip or a peer wakeup. Channel clocks can still
                // exceed it briefly (a data delivery outruns its sender's
                // republished `next`), so take the max of both.
                let next_me = self.async_next();
                let h2 = self.snapshot_horizon(&asy, next_me, &mut next_buf);
                h = h.max(h2);
            }
            if h > horizon {
                self.horizon_advances += 1;
                if let Some(p) = &mut self.profiler {
                    if h != u64::MAX {
                        p.window_ps.record(h - horizon);
                    }
                }
                self.fly(FlightTag::HorizonClimb, h, horizon);
                horizon = h;
            }
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::Decide);
            }
            let mut burst = 0u64;
            while let Some(&Reverse((time, _, _, _, idx))) = self.events.peek() {
                if time >= horizon {
                    break;
                }
                self.events.pop();
                self.process_one(time, idx);
                burst += 1;
                // A long burst must not starve peers whose horizon hangs
                // on our promise (the skew scenario): refresh periodically
                // as `next` climbs, not just at burst end.
                if burst.is_multiple_of(256) {
                    self.refresh_promises(&asy, &mut promised, horizon, my_base);
                }
            }
            if burst > 0 {
                self.windows += 1;
            }
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::Execute);
            }
            let next = self.async_next();
            if drained == 0 && burst == 0 && asy.slots[me].next.load(Ordering::SeqCst) == next {
                // Quiet iteration: only null promises moved, nothing the
                // termination checkers observe changed. (A differing
                // published `next` disqualifies: an idle node's very first
                // iteration must promote the slot's initial 0 to ∞, or its
                // unpublished state drags every peer's fast-path horizon
                // down to one link latency for the whole run.) Revert the
                // version to the previous even value instead of closing a
                // new section — otherwise an idle cluster creeping its
                // horizons through a null cascade would bump versions
                // forever and
                // starve the deadlock detector's stability re-scan.
                asy.slots[me].version.store(version, Ordering::SeqCst);
            } else {
                // Publish counter deltas: live strictly before spawns_recv
                // (§14.3 install rule); deltas wrap mod 2⁶⁴ so the global
                // sums stay exact through decrements.
                let live_now = self.node.live() as u64;
                if live_now != last_live {
                    asy.live.fetch_add(live_now.wrapping_sub(last_live), Ordering::SeqCst);
                    last_live = live_now;
                }
                if self.spawns_recv != last_spawns_recv {
                    asy.spawns_recv.fetch_add(self.spawns_recv - last_spawns_recv, Ordering::SeqCst);
                    last_spawns_recv = self.spawns_recv;
                }
                if self.node.ops != last_ops {
                    asy.ops.fetch_add(self.node.ops - last_ops, Ordering::SeqCst);
                    last_ops = self.node.ops;
                }
                let qhead = self.queue_head();
                asy.slots[me].next.store(next, Ordering::SeqCst);
                asy.slots[me].qnext.store(qhead, Ordering::SeqCst);
                // --- Close the odd section; from here the published
                // snapshot is consistent and we only move frames and
                // promises.
                version += 2;
                asy.slots[me].version.store(version, Ordering::SeqCst);
                self.fly(FlightTag::BurstPublish, version, next);
                self.publish_metrics(horizon, next, qhead);
            }
            self.refresh_promises(&asy, &mut promised, horizon, my_base);
            self.endpoint.flush();
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::FrameFlush);
            }
            let done = asy.done.load(Ordering::SeqCst);
            if done != async_done::RUNNING {
                outcome = done;
                break;
            }
            if asy.ops.load(Ordering::SeqCst) > shared.max_ops {
                if asy.decide(async_done::ABORT) {
                    self.wake_peers(&promised);
                }
                continue;
            }
            // Executable-work check on the bare queue head: the published
            // `next` may sit below it (pinned by the in-flight floor), and
            // spinning on that would busy-wait for an ack instead of
            // parking for it.
            if self.queue_head() < horizon {
                // More work is already executable (the burst refreshed our
                // own view mid-flight): loop straight around.
                continue;
            }
            // Idle: we ran out of horizon. Try to detect termination, then
            // park on the inbound channel until a peer's data or promise
            // (or the done flag, within the timeout) moves us.
            if asy.finished() {
                if asy.decide(async_done::FINISH) {
                    self.wake_peers(&promised);
                }
                continue;
            }
            if asy.deadlocked(&mut vbuf) {
                if asy.decide(async_done::DEADLOCK) {
                    self.wake_peers(&promised);
                }
                continue;
            }
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::Decide);
            }
            // A burst that raised our published `next` usually raises the
            // snapshot horizon with it (the self-echo term): peek before
            // parking and spin straight into the next window if it moved —
            // this is the self-serve climb that replaces a null round-trip
            // per window with a handful of atomic loads.
            if n > 1 && self.snapshot_horizon(&asy, self.async_next(), &mut next_buf) > horizon {
                continue;
            }
            // The parked bit is the demand signal `refresh_promises` gates
            // standalone nulls on; raise it only for the wait itself. The
            // registry's gauges refresh right before parking so the
            // watchdog judges the park against current values (quiet
            // iterations skip the burst publish but may have climbed the
            // horizon through nulls).
            let qhead = self.queue_head();
            self.publish_metrics(horizon, self.async_next(), qhead);
            if let Some(reg) = &self.metrics {
                reg.set(me as NodeId, Metric::Parked, 1);
            }
            self.fly(FlightTag::Park, horizon, qhead);
            asy.slots[me].parked.store(true, Ordering::SeqCst);
            self.endpoint.wait_inbound(std::time::Duration::from_millis(1));
            asy.slots[me].parked.store(false, Ordering::SeqCst);
            if let Some(reg) = &self.metrics {
                reg.set(me as NodeId, Metric::Parked, 0);
            }
            self.fly(FlightTag::Unpark, horizon, qhead);
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::HorizonWait);
            }
        }
        // Two-phase shutdown: ship anything still pending, rendezvous on
        // the flush counter, then drain leftovers so receive accounting
        // matches the sim (which records both ends at send time). The
        // drained events are dropped unprocessed — exactly the events the
        // sim discards after its termination condition trips.
        self.fly(FlightTag::Decide, outcome, 0);
        self.endpoint.flush();
        asy.flushed.fetch_add(1, Ordering::SeqCst);
        while asy.flushed.load(Ordering::SeqCst) < n as u64 {
            std::thread::yield_now();
        }
        self.drain_inbox_async(&mut chan);
        self.fly(
            FlightTag::FlushRendezvous,
            self.endpoint.frame_stats.frames_sent,
            self.endpoint.frame_stats.msgs_framed,
        );
        // Final publish: the sampler's closing sample sees end-of-run
        // counters, so whole-run mean rates come out right (horizon to ∞:
        // the run is over, nothing lags anything).
        self.publish_metrics(u64::MAX, self.async_next(), self.queue_head());
        self.finish_outcome(outcome == async_done::DEADLOCK, outcome == async_done::ABORT)
    }
}

/// The multi-threaded backend.
pub struct ThreadsDriver {
    config: ClusterConfig,
    prepared: Prepared,
    nodes: Vec<NodeRuntime>,
    endpoints: Vec<ChannelEndpoint>,
    setup_ps: u64,
}

impl ThreadsDriver {
    /// Prepare a run: rewrite, load, build the channel mesh and the node
    /// runtimes, ship classes, bootstrap statics — the same setup sequence
    /// as the sim driver, against the channel transport.
    pub fn new(config: ClusterConfig, program: &jsplit_mjvm::class::Program) -> Result<ThreadsDriver, ClusterError> {
        if !config.joins.is_empty() {
            return Err(ClusterError::Config("the threads backend does not support mid-run joins; use the sim backend".into()));
        }
        let prepared = driver::prepare(&config, program)?;
        let links: Vec<_> = config.nodes.iter().map(|s| driver::link_params(*s)).collect();
        // The loopback bound is profile-derived and must sit below every
        // conservative horizon built from base latencies — the clamp in
        // `loopback_ps` guarantees it; this makes the assumption explicit.
        for l in &links {
            assert!(l.loopback_ps() <= l.base_ps(), "loopback bound {} ps above link base {} ps", l.loopback_ps(), l.base_ps());
        }
        let mut endpoints = ChannelEndpoint::mesh(&links, config.wire_batch);
        // Arm the per-endpoint trace/histogram buffers *before* class
        // shipping so setup-phase `NetSend`s are captured, like the sim's
        // global network trace.
        if config.trace.is_some() {
            for ep in &mut endpoints {
                ep.trace = Some(Vec::new());
            }
        }
        if config.profile || config.trace.is_some() {
            for ep in &mut endpoints {
                ep.frame_hist = Some(jsplit_trace::LogHist::new());
            }
        }
        let mut nodes: Vec<NodeRuntime> = config
            .nodes
            .iter()
            .enumerate()
            .map(|(i, spec)| NodeRuntime::new(i as NodeId, *spec, &config, prepared.image.clone(), prepared.thread_class))
            .collect();
        let mut setup_ps = 0;
        if config.mode == Mode::JavaSplit {
            for i in 1..nodes.len() {
                let at = driver::ship_classes(&mut MeshSetup(&mut endpoints), 0, i as NodeId, prepared.class_bytes);
                setup_ps = setup_ps.max(at);
            }
            driver::bootstrap_statics(&mut nodes, &prepared.image);
        }
        Ok(ThreadsDriver { config, prepared, nodes, endpoints, setup_ps })
    }

    /// Run to completion: one OS thread per node, then merge the outcomes
    /// into the same [`RunReport`] shape the sim driver produces.
    pub fn run(self) -> RunReport {
        let started = std::time::Instant::now();
        let n = self.nodes.len();
        let base_ps: Vec<u64> = self.config.nodes.iter().map(|s| driver::link_params(*s).base_ps()).collect();
        // Global mode: the window is bounded by the *cheapest sender's*
        // base latency — any cross-node message costs at least that much.
        let window_ps = base_ps.iter().copied().min().unwrap_or(u64::MAX);
        let min_peer_base: Vec<u64> = (0..n)
            .map(|j| {
                base_ps
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != j)
                    .map(|(_, b)| *b)
                    .min()
                    .unwrap_or(u64::MAX)
            })
            .collect();
        let shared = Arc::new(Shared {
            slots: (0..n).map(|_| NodeSlot::default()).collect(),
            barrier: Barrier::new(n),
            window_ps,
            base_ps,
            min_peer_base,
            lookahead: self.config.lookahead,
            max_ops: self.config.max_ops,
            epoch_lock: Mutex::new(()),
            epoch_cv: Condvar::new(),
        });
        // Async sync mode swaps the epoch loop for the barrier-free burst
        // loop; the `Shared` above still carries the lookahead tables both
        // modes read.
        let asy = (self.config.sync == SyncMode::Async).then(|| Arc::new(AsyncShared::new(n)));
        // Live telemetry: registry + flight recorder shared with the node
        // threads, sampler/watchdog on a side-band thread. All `None`
        // without `--metrics` — the hot paths then pay one untaken branch.
        let metrics_cfg = self.config.metrics.clone();
        let registry = metrics_cfg.as_ref().map(|_| MetricsRegistry::new(n));
        let flight = metrics_cfg.as_ref().filter(|c| c.flight).map(|_| FlightRecorder::new(n));
        if let Some(f) = &flight {
            jsplit_trace::arm_panic_dump(f);
        }
        let telemetry = metrics_cfg.as_ref().and_then(|cfg| {
            let wd = cfg.watchdog_budget.map(|d| WatchdogSpec {
                budget_ms: (d.as_millis() as u64).max(1),
                base_ps: shared.base_ps.clone(),
            });
            match Telemetry::start(cfg, registry.clone().expect("registry"), flight.clone(), wd) {
                Ok(t) => Some(t),
                Err(e) => {
                    eprintln!("metrics: cannot open {:?}: {e}; sampling disabled", cfg.out);
                    None
                }
            }
        });
        let mode = self.config.mode;
        let thread_main = self.prepared.thread_main;
        let main_method = self.prepared.image.main_method;
        let main_locals = self.prepared.image.method(main_method).max_locals;
        let balancer = self.config.balancer;
        let trace_mode = self.config.trace;
        let profile_on = self.config.profile || trace_mode.is_some();
        // Raw spans (the Chrome real-time lanes) are only worth their
        // memory when a trace export was requested.
        let keep_spans = trace_mode.is_some();

        let mut handles = Vec::with_capacity(n);
        for (node, endpoint) in self.nodes.into_iter().zip(self.endpoints) {
            let shared = shared.clone();
            let mut lp = NodeLoop {
                next_uid: node.id as ThreadUid,
                node,
                endpoint,
                shared,
                asy: asy.clone(),
                mode,
                thread_main,
                n_nodes: n,
                lb: BalancerState::new(balancer),
                shipped_to: vec![0; n],
                self_inflight: 0,
                spawns_sent: 0,
                spawns_recv: 0,
                events: BinaryHeap::new(),
                payloads: Vec::new(),
                free_events: Vec::new(),
                seq: 0,
                errors: Vec::new(),
                fx: Vec::new(),
                drain_scratch: Vec::new(),
                sent_to: vec![0; n],
                unacked: (0..n).map(|_| VecDeque::new()).collect(),
                ack_scratch: vec![0; n],
                windows: 0,
                barrier_waits: 0,
                horizon_advances: 0,
                recorder: trace_mode.map(make_node_sink),
                profiler: None,
                metrics: registry.clone(),
                flight: flight.clone(),
                stall_inject_ms: None,
                t0: started,
            };
            lp.stall_inject_ms = metrics_cfg
                .as_ref()
                .and_then(|c| c.stall_inject)
                .filter(|&(node, _)| node == lp.endpoint.id)
                .map(|(_, ms)| ms);
            handles.push(std::thread::spawn(move || {
                // Wall time and the span origin are anchored at the node
                // thread itself, so thread-spawn latency stays outside the
                // profile; `started` remains the shared cross-thread axis.
                lp.t0 = Instant::now();
                if profile_on {
                    lp.profiler = Some(SpanRecorder::new(started, keep_spans));
                }
                // The main thread starts on worker 0 (§2), before the first
                // round so the first published snapshot already counts it.
                if lp.endpoint.id == CONSOLE_NODE {
                    let uid = lp.alloc_uid();
                    let frame = Frame::new(main_method, main_locals, vec![], false);
                    let mut fx = std::mem::take(&mut lp.fx);
                    lp.node.add_thread(uid, frame, None, 0, &mut fx);
                    lp.fx = fx;
                    lp.apply_effects(0);
                }
                // Setup-phase activity (statics bootstrap, class shipping)
                // is part of the trace; stamp it at t = 0 like the sim.
                lp.drain_trace(0);
                if lp.asy.is_some() {
                    lp.run_async()
                } else {
                    lp.run()
                }
            }));
        }
        let mut outcomes: Vec<NodeOutcome> = handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect();
        outcomes.sort_by_key(|o| o.node.id);
        // Stop the sampler (it takes one closing sample of the final
        // published counters) and fold the time series into the report.
        let telemetry_summary = telemetry.map(Telemetry::finish);
        if let Some(f) = &flight {
            jsplit_trace::disarm_panic_dump(f);
        }

        let host_wall_secs = started.elapsed().as_secs_f64();
        let deadlocked = outcomes[0].deadlocked;
        let aborted = outcomes[0].aborted;
        let mut errors: Vec<(ThreadUid, VmError)> = Vec::new();
        let mut console = Vec::new();
        for o in &mut outcomes {
            errors.append(&mut o.errors);
            if o.node.id == CONSOLE_NODE {
                console = o.node.take_console();
            }
        }
        let sync = SyncStats {
            // Epoch rounds are cluster-global (identical on every node);
            // async bursts are per-node, so the cluster figure is the sum.
            windows: match self.config.sync {
                SyncMode::Epoch => outcomes[0].windows,
                SyncMode::Async => outcomes.iter().map(|o| o.windows).sum(),
            },
            barrier_waits: outcomes.iter().map(|o| o.barrier_waits).sum(),
            frames_sent: outcomes.iter().map(|o| o.endpoint.frame_stats.frames_sent).sum(),
            frame_bytes: outcomes.iter().map(|o| o.endpoint.frame_stats.frame_bytes).sum(),
            msgs_framed: outcomes.iter().map(|o| o.endpoint.frame_stats.msgs_framed).sum(),
            nulls_sent: outcomes.iter().map(|o| o.endpoint.frame_stats.nulls_sent).sum(),
            nulls_piggybacked: outcomes.iter().map(|o| o.endpoint.frame_stats.nulls_piggybacked).sum(),
            horizon_advances: outcomes.iter().map(|o| o.horizon_advances).sum(),
        };
        let finish = outcomes.iter().map(|o| o.node.finish_time).max().unwrap_or(0);
        // Merge the per-node streams into the sim's canonical normal form:
        // flush each node's leftover buffers at the global finish time
        // (exactly what the sim's final `drain_trace_buffers` pass does),
        // concatenate in node order, then canonicalize — the result is
        // byte-identical to a sim trace of the same program as long as each
        // node records the same per-node event sequence, which the
        // differential trace tests assert.
        let trace = if trace_mode.is_some() {
            let mut all: Vec<Event> = Vec::new();
            for o in &mut outcomes {
                let Some(r) = &mut o.recorder else { continue };
                for ev in o.node.take_dsm_trace() {
                    r.record(Event { t: finish, ev });
                }
                if let Some(buf) = &mut o.endpoint.trace {
                    for e in buf.drain(..) {
                        r.record(e);
                    }
                }
                all.extend(o.recorder.take().expect("recorder present").into_events());
            }
            Some(jsplit_trace::canonicalize(all))
        } else {
            None
        };
        let (breakdown, lock_stats) = match &trace {
            Some(evs) => {
                let cpus: Vec<u32> = vec![self.config.cpus_per_node as u32; outcomes.len()];
                (
                    jsplit_trace::node_breakdown(evs, &cpus, finish),
                    jsplit_trace::lock_contention(evs),
                )
            }
            None => (Vec::new(), Vec::new()),
        };
        let wall = if profile_on {
            Some(WallProfile { nodes: outcomes.iter_mut().filter_map(|o| o.profile.take()).collect() })
        } else {
            None
        };
        RunReport {
            exec_time_ps: finish,
            output: console,
            errors,
            deadlocked,
            aborted,
            ops: outcomes.iter().map(|o| o.node.ops).sum(),
            threads: outcomes.iter().map(|o| o.node.spawned_here).sum(),
            net_per_node: outcomes.iter().map(|o| o.endpoint.stats.clone()).collect(),
            dsm_per_node: outcomes.iter().filter_map(|o| o.node.dsm_stats()).collect(),
            rewrite: self.prepared.rewrite,
            setup_ps: self.setup_ps,
            class_bytes: self.prepared.class_bytes as u64,
            event_slab_high_water: outcomes.iter().map(|o| o.slab_high_water).max().unwrap_or(0),
            ops_per_node: outcomes.iter().map(|o| o.node.ops).collect(),
            trace,
            breakdown,
            lock_stats,
            host_wall_secs,
            sync,
            wall,
            telemetry: telemetry_summary,
        }
    }
}

impl Driver for ThreadsDriver {
    fn run(self) -> RunReport {
        ThreadsDriver::run(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    fn shared_pair() -> Arc<Shared> {
        Arc::new(Shared {
            slots: (0..2).map(|_| NodeSlot::default()).collect(),
            barrier: Barrier::new(1),
            window_ps: 0,
            base_ps: vec![0; 2],
            min_peer_base: vec![0; 2],
            lookahead: Lookahead::PerPair,
            max_ops: u64::MAX,
            epoch_lock: Mutex::new(()),
            epoch_cv: Condvar::new(),
        })
    }

    /// Regression for the epoch-wait lost wakeup: a peer that publishes
    /// its epoch *between* a waiter's exhausted spin and its condvar park
    /// must still be observed. [`Shared::wait_epochs`] is untimed, so
    /// before the locked re-check + publish-side lock round-trip existed
    /// this interleaving parked forever (with the old 200µs-timeout wait
    /// it "only" cost a silent timeout per occurrence). The `before_park`
    /// hook pins the publish to exactly that window on even iterations;
    /// odd iterations race a late publisher against the park itself to
    /// cover the notify path too.
    #[test]
    fn epoch_wait_survives_publish_between_spin_and_park() {
        for i in 0..200u32 {
            let shared = shared_pair();
            shared.publish_epoch(0, 1);
            let (tx, rx) = mpsc::channel();
            let s = shared.clone();
            let waiter = std::thread::spawn(move || {
                let s2 = s.clone();
                let mut publisher = None;
                s.wait_epochs(1, &mut || {
                    if i % 2 == 0 {
                        s2.publish_epoch(1, 1);
                    } else {
                        let s3 = s2.clone();
                        publisher = Some(std::thread::spawn(move || {
                            std::thread::sleep(Duration::from_micros(50));
                            s3.publish_epoch(1, 1);
                        }));
                    }
                });
                if let Some(p) = publisher {
                    p.join().unwrap();
                }
                tx.send(()).unwrap();
            });
            rx.recv_timeout(Duration::from_secs(10))
                .expect("waiter hung: epoch publish lost between spin and park");
            waiter.join().unwrap();
        }
    }
}
