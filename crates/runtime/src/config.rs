//! Cluster configuration.

use crate::balance::Balancer;
use jsplit_dsm::ProtocolMode;
use jsplit_mjvm::cost::JvmProfile;
use jsplit_trace::TraceMode;

/// Original program on one node vs rewritten program on the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Unrewritten program, classic monitors, single node ("Original").
    Baseline,
    /// Rewritten program on the distributed runtime ("JavaSplit").
    JavaSplit,
}

/// Which driver executes the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Deterministic discrete-event virtual-time simulation (the reference
    /// semantics; bit-for-bit reproducible).
    #[default]
    Sim,
    /// Each node on its own OS thread, protocol messages crossing channels
    /// as encoded bytes. Virtual-time semantics are preserved (windowed
    /// conservative synchronization), wall-clock time is real.
    Threads,
    /// Each node in its own OS *process*, frames crossing real TCP sockets
    /// through a coordinator (the paper's deployment shape: independent
    /// runtimes talking over standard IP sockets). Same conservative sync
    /// engine as `Threads`; results are identical to the sim.
    Sockets,
}

/// Sockets-backend deployment knobs ([`ClusterConfig::sockets`]).
#[derive(Debug, Clone)]
pub struct SocketsConfig {
    /// Coordinator listen address (`None` = `127.0.0.1:0`, an ephemeral
    /// localhost port — the spawn-workers default).
    pub listen: Option<std::net::SocketAddr>,
    /// Fork/exec one local worker process per node (`false` = print the
    /// dial-in address and wait for externally launched workers).
    pub spawn_workers: bool,
    /// Worker executable (`None` = this binary, re-invoked with the
    /// `worker` subcommand).
    pub worker_bin: Option<std::path::PathBuf>,
    /// How long a worker keeps retrying its dial-in (exponential backoff).
    pub connect_timeout: std::time::Duration,
    /// How long the coordinator waits for all workers to complete the
    /// handshake before giving up and naming the missing node ids.
    pub accept_timeout: std::time::Duration,
}

impl Default for SocketsConfig {
    fn default() -> SocketsConfig {
        SocketsConfig {
            listen: None,
            spawn_workers: true,
            worker_bin: None,
            connect_timeout: std::time::Duration::from_secs(10),
            accept_timeout: std::time::Duration::from_secs(30),
        }
    }
}

/// How the threads backend bounds each synchronization window (sim runs are
/// unaffected: the virtual-time queue is globally ordered there).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Lookahead {
    /// One global window width: the minimum cross-node base latency over
    /// all senders. Simple, but the cheapest link throttles everyone.
    Global,
    /// Null-message-style per-pair horizons: each node advances to the
    /// minimum over peers of `peer's earliest send + peer's base latency`,
    /// so lightly-coupled and idle peers don't constrain progress.
    #[default]
    PerPair,
}

/// How the threads backend's nodes agree on safe horizons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncMode {
    /// Windowed rounds: flush → single `Barrier::wait` → publish node
    /// slots → identical local decision (DESIGN.md §12). Every node pays
    /// for the slowest node every round.
    #[default]
    Epoch,
    /// Fully asynchronous conservative sync (DESIGN.md §14): per-peer
    /// channel clocks advanced by data deliveries and Chandy–Misra–Bryant
    /// null-message promises; each node executes up to its own input
    /// horizon with no barrier and no global round structure. Virtual-time
    /// results are identical to `Epoch` and to the sim.
    Async,
}

/// Live telemetry configuration (`None` on [`ClusterConfig::metrics`] =
/// disabled, the zero-cost default). All of it is side-band: a run with
/// metrics on is bit-identical to one with them off.
#[derive(Debug, Clone)]
pub struct MetricsConfig {
    /// Stream newline-delimited JSON samples here (`None` = sample for the
    /// end-of-run summary only).
    pub out: Option<std::path::PathBuf>,
    /// Wall-clock sampling interval (clamped to ≥ 1 ms).
    pub interval: std::time::Duration,
    /// Arm the horizon-stall watchdog with this budget (threads backend; a
    /// node whose horizon stays frozen past it gets a blame diagnosis).
    pub watchdog_budget: Option<std::time::Duration>,
    /// Keep a per-node flight recorder and dump it on panic or stall.
    pub flight: bool,
    /// Fault injection for watchdog tests: the named node sleeps this many
    /// wall-clock ms before entering its async loop, pinning every peer's
    /// horizon on its unpublished promise. Virtual-time results are
    /// unaffected (the sleep is wall-clock only).
    pub stall_inject: Option<(u16, u64)>,
}

impl Default for MetricsConfig {
    fn default() -> MetricsConfig {
        MetricsConfig {
            out: None,
            interval: std::time::Duration::from_millis(50),
            watchdog_budget: None,
            flight: true,
            stall_inject: None,
        }
    }
}

/// One worker node (heterogeneous clusters mix profiles, paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSpec {
    pub profile: JvmProfile,
}

impl NodeSpec {
    pub fn sun() -> NodeSpec {
        NodeSpec { profile: JvmProfile::SunSim }
    }

    pub fn ibm() -> NodeSpec {
        NodeSpec { profile: JvmProfile::IbmSim }
    }
}

/// Full cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub mode: Mode,
    pub nodes: Vec<NodeSpec>,
    /// Virtual CPUs per node (the paper's testbed: dual-processor Xeons).
    pub cpus_per_node: usize,
    /// MTS-HLRC (paper) or classic HLRC (ablation baseline).
    pub protocol: ProtocolMode,
    /// Load-balancing plug-in (paper §2: "a plug-in load balancing
    /// function"; default = least loaded).
    pub balancer: Balancer,
    /// Instructions per scheduling quantum.
    pub fuel: u32,
    /// Abort guard: maximum retired instructions across the cluster.
    pub max_ops: u64,
    /// Workers that join mid-execution: (virtual time ps, spec) (paper §2).
    pub joins: Vec<(u64, NodeSpec)>,
    /// Ablation: disable the §4.4 local-object lock-counter fast path.
    pub disable_local_locks: bool,
    /// §4.3 extension: chunk arrays longer than this many elements into
    /// per-region coherency units (`None` = paper-prototype behaviour).
    pub array_chunk: Option<u32>,
    /// Structured event tracing (`None` = disabled, the zero-cost default;
    /// the run behaves bit-identically either way). Works on both backends;
    /// the threads driver merges per-node streams into the same canonical
    /// order the sim produces.
    pub trace: Option<TraceMode>,
    /// Wall-clock span profiling (threads backend): per-node stall
    /// breakdown + latency histograms into `RunReport::wall`. No effect on
    /// virtual-time results; ignored by the sim backend (its wall time is
    /// meaningless). Implied by `trace` on the threads backend.
    pub profile: bool,
    /// Which driver executes the run (sim by default; mid-run joins still
    /// require the sim backend).
    pub backend: Backend,
    /// Window-bound strategy for the threads backend.
    pub lookahead: Lookahead,
    /// Synchronization protocol for the threads backend (epoch barrier
    /// rounds vs asynchronous per-pair horizons; results are identical).
    pub sync: SyncMode,
    /// Coalesce per-peer wire messages into frames (threads backend). Off
    /// ships every message as its own frame; statistics and results are
    /// identical either way.
    pub wire_batch: bool,
    /// Live telemetry: lock-free registry + wall-clock sampler (+ watchdog
    /// and flight recorder on the threads backend). `None` = off, the
    /// zero-cost default; on or off, runs are bit-identical.
    pub metrics: Option<MetricsConfig>,
    /// Sockets-backend deployment knobs (ignored by the other backends).
    pub sockets: SocketsConfig,
    /// Run the classic enum-dispatch interpreter instead of the predecoded
    /// direct-threaded executor. Results are bit-identical either way (the
    /// differential suites assert it); the classic path exists as the
    /// semantic reference and for A/B measurement.
    pub classic_interp: bool,
    /// Count retired opcodes and consecutive pairs per node (the `repro
    /// opstats` profiler). Forces the classic interpreter (the counter
    /// hooks live there) and costs a hash-map update per instruction, so
    /// off by default.
    pub opstats: bool,
    /// Per-object DSM sharing profiler: attribute every coherence event to
    /// its base `Gid`, classify sharing patterns, and rank home-migration
    /// candidates into `RunReport::objprof`. Off by default; on or off,
    /// virtual-time results are bit-identical (counts are side-band).
    pub objprof: bool,
}

impl ClusterConfig {
    /// The paper's "Original" configuration: one node, `cpus` CPUs.
    pub fn baseline(profile: JvmProfile, cpus: usize) -> ClusterConfig {
        ClusterConfig {
            mode: Mode::Baseline,
            nodes: vec![NodeSpec { profile }],
            cpus_per_node: cpus,
            protocol: ProtocolMode::MtsHlrc,
            balancer: Balancer::LeastLoaded,
            fuel: 4096,
            max_ops: u64::MAX,
            joins: Vec::new(),
            disable_local_locks: false,
            array_chunk: None,
            trace: None,
            profile: false,
            backend: Backend::default(),
            lookahead: Lookahead::default(),
            sync: SyncMode::default(),
            wire_batch: true,
            metrics: None,
            sockets: SocketsConfig::default(),
            classic_interp: false,
            opstats: false,
            objprof: false,
        }
    }

    /// A homogeneous JavaSplit cluster of `n` dual-CPU nodes.
    pub fn javasplit(profile: JvmProfile, n: usize) -> ClusterConfig {
        ClusterConfig {
            mode: Mode::JavaSplit,
            nodes: (0..n).map(|_| NodeSpec { profile }).collect(),
            cpus_per_node: 2,
            protocol: ProtocolMode::MtsHlrc,
            balancer: Balancer::LeastLoaded,
            fuel: 4096,
            max_ops: u64::MAX,
            joins: Vec::new(),
            disable_local_locks: false,
            array_chunk: None,
            trace: None,
            profile: false,
            backend: Backend::default(),
            lookahead: Lookahead::default(),
            sync: SyncMode::default(),
            wire_batch: true,
            metrics: None,
            sockets: SocketsConfig::default(),
            classic_interp: false,
            opstats: false,
            objprof: false,
        }
    }

    /// A heterogeneous cluster from explicit specs.
    pub fn heterogeneous(nodes: Vec<NodeSpec>) -> ClusterConfig {
        ClusterConfig {
            mode: Mode::JavaSplit,
            nodes,
            cpus_per_node: 2,
            protocol: ProtocolMode::MtsHlrc,
            balancer: Balancer::LeastLoaded,
            fuel: 4096,
            max_ops: u64::MAX,
            joins: Vec::new(),
            disable_local_locks: false,
            array_chunk: None,
            trace: None,
            profile: false,
            backend: Backend::default(),
            lookahead: Lookahead::default(),
            sync: SyncMode::default(),
            wire_batch: true,
            metrics: None,
            sockets: SocketsConfig::default(),
            classic_interp: false,
            opstats: false,
            objprof: false,
        }
    }

    pub fn with_array_chunk(mut self, elems: u32) -> Self {
        self.array_chunk = Some(elems);
        self
    }

    pub fn without_local_locks(mut self) -> Self {
        self.disable_local_locks = true;
        self
    }

    pub fn with_protocol(mut self, protocol: ProtocolMode) -> Self {
        self.protocol = protocol;
        self
    }

    pub fn with_balancer(mut self, balancer: Balancer) -> Self {
        self.balancer = balancer;
        self
    }

    pub fn with_joins(mut self, joins: Vec<(u64, NodeSpec)>) -> Self {
        self.joins = joins;
        self
    }

    pub fn with_max_ops(mut self, max_ops: u64) -> Self {
        self.max_ops = max_ops;
        self
    }

    /// Enable structured event tracing ([`TraceMode::Full`] for the whole
    /// stream, `Ring(n)` for the last n events).
    pub fn with_trace(mut self, mode: TraceMode) -> Self {
        self.trace = Some(mode);
        self
    }

    /// Enable wall-clock span profiling on the threads backend.
    pub fn with_profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Select the execution backend (virtual-time sim vs real OS threads).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Select the threads backend's window-bound strategy.
    pub fn with_lookahead(mut self, lookahead: Lookahead) -> Self {
        self.lookahead = lookahead;
        self
    }

    /// Select the threads backend's synchronization protocol.
    pub fn with_sync(mut self, sync: SyncMode) -> Self {
        self.sync = sync;
        self
    }

    /// Toggle wire batching on the threads backend.
    pub fn with_wire_batch(mut self, on: bool) -> Self {
        self.wire_batch = on;
        self
    }

    /// Enable live telemetry (registry + sampler; watchdog and flight
    /// recorder per the [`MetricsConfig`]).
    pub fn with_metrics(mut self, metrics: MetricsConfig) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Configure the sockets backend's deployment knobs.
    pub fn with_sockets(mut self, sockets: SocketsConfig) -> Self {
        self.sockets = sockets;
        self
    }

    /// Run on the classic enum-dispatch interpreter (A/B reference path).
    pub fn with_classic_interp(mut self, on: bool) -> Self {
        self.classic_interp = on;
        self
    }

    /// Enable the per-node opcode/pair frequency profiler.
    pub fn with_opstats(mut self, on: bool) -> Self {
        self.opstats = on;
        self
    }

    /// Enable the per-object DSM sharing profiler.
    pub fn with_objprof(mut self, on: bool) -> Self {
        self.objprof = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let c = ClusterConfig::javasplit(JvmProfile::SunSim, 4)
            .with_protocol(ProtocolMode::ClassicHlrc)
            .with_balancer(Balancer::RoundRobin)
            .with_max_ops(1000);
        assert_eq!(c.nodes.len(), 4);
        assert_eq!(c.protocol, ProtocolMode::ClassicHlrc);
        assert_eq!(c.max_ops, 1000);
        let b = ClusterConfig::baseline(JvmProfile::IbmSim, 2);
        assert_eq!(b.mode, Mode::Baseline);
        assert_eq!(b.cpus_per_node, 2);
        assert_eq!(b.trace, None);
        let t = ClusterConfig::javasplit(JvmProfile::SunSim, 2).with_trace(TraceMode::Ring(64));
        assert_eq!(t.trace, Some(TraceMode::Ring(64)));
        assert_eq!(t.backend, Backend::Sim);
        let th = ClusterConfig::javasplit(JvmProfile::SunSim, 2).with_backend(Backend::Threads);
        assert_eq!(th.backend, Backend::Threads);
        assert!(!th.profile);
        assert!(ClusterConfig::javasplit(JvmProfile::SunSim, 2).with_profile(true).profile);
        assert_eq!(th.lookahead, Lookahead::PerPair);
        assert_eq!(th.sync, SyncMode::Epoch);
        assert!(th.wire_batch);
        let asy = ClusterConfig::javasplit(JvmProfile::SunSim, 2).with_sync(SyncMode::Async);
        assert_eq!(asy.sync, SyncMode::Async);
        let tuned = ClusterConfig::javasplit(JvmProfile::SunSim, 2)
            .with_lookahead(Lookahead::Global)
            .with_wire_batch(false);
        assert_eq!(tuned.lookahead, Lookahead::Global);
        assert!(!tuned.wire_batch);
        assert!(tuned.metrics.is_none());
        let m = ClusterConfig::javasplit(JvmProfile::SunSim, 2).with_metrics(MetricsConfig {
            watchdog_budget: Some(std::time::Duration::from_millis(200)),
            ..MetricsConfig::default()
        });
        let mc = m.metrics.expect("metrics set");
        assert_eq!(mc.interval, std::time::Duration::from_millis(50));
        assert!(mc.flight);
        assert_eq!(mc.watchdog_budget, Some(std::time::Duration::from_millis(200)));
        assert!(mc.stall_inject.is_none());
    }
}
