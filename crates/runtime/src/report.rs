//! Run reports: everything the benchmarks and tests observe about a run.

use jsplit_dsm::DsmStats;
use jsplit_mjvm::heap::ThreadUid;
use jsplit_mjvm::interp::VmError;
use jsplit_net::NetStats;
use jsplit_rewriter::RewriteStats;

/// The result of a completed cluster run.
#[derive(Debug)]
pub struct RunReport {
    /// Virtual time at which the last application thread finished.
    pub exec_time_ps: u64,
    /// Console output in arrival order at the console node.
    pub output: Vec<String>,
    /// Threads that died with a trap.
    pub errors: Vec<(ThreadUid, VmError)>,
    /// `true` if the run stalled with live but unrunnable threads.
    pub deadlocked: bool,
    /// `true` if the `max_ops` guard aborted the run.
    pub aborted: bool,
    /// Instructions retired across all nodes.
    pub ops: u64,
    /// Threads created over the run (including main).
    pub threads: u32,
    /// Per-node network statistics.
    pub net_per_node: Vec<NetStats>,
    /// Per-node DSM statistics (empty in baseline mode).
    pub dsm_per_node: Vec<DsmStats>,
    /// Rewriter statistics (JavaSplit mode only).
    pub rewrite: Option<RewriteStats>,
    /// Setup time: distributing the rewritten class files to the initial
    /// pool (paper §2) — excluded from `exec_time_ps`, like the paper's
    /// measurement window.
    pub setup_ps: u64,
    /// Serialized size of the shipped program.
    pub class_bytes: u64,
    /// High-water mark of *simultaneously live* scheduler events: the final
    /// length of the event-payload slab, whose slots are recycled through a
    /// free list. Stays flat as total events processed grows — asserted by
    /// the bounded-memory regression test.
    pub event_slab_high_water: u64,
}

impl RunReport {
    /// Execution time in (virtual) seconds.
    pub fn exec_time_secs(&self) -> f64 {
        self.exec_time_ps as f64 / jsplit_mjvm::cost::PS_PER_SEC as f64
    }

    /// Cluster-wide network totals.
    pub fn net_total(&self) -> NetStats {
        let mut t = NetStats::default();
        for s in &self.net_per_node {
            t.merge(s);
        }
        t
    }

    /// Cluster-wide DSM totals.
    pub fn dsm_total(&self) -> DsmStats {
        let mut t = DsmStats::default();
        for s in &self.dsm_per_node {
            t.merge(s);
        }
        t
    }

    /// Assert the run completed cleanly (test helper).
    pub fn expect_clean(&self) -> &Self {
        assert!(!self.deadlocked, "run deadlocked");
        assert!(!self.aborted, "run aborted by max_ops");
        assert!(self.errors.is_empty(), "thread traps: {:?}", self.errors);
        self
    }
}
