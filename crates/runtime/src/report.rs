//! Run reports: everything the benchmarks and tests observe about a run.

use jsplit_dsm::DsmStats;
use jsplit_mjvm::heap::ThreadUid;
use jsplit_mjvm::interp::VmError;
use jsplit_net::NetStats;
use jsplit_rewriter::RewriteStats;
use jsplit_trace::{
    Event, LockStat, NodeBreakdown, ObjProfReport, SpanKind, TelemetrySummary, WallProfile,
};
use std::fmt::Write as _;

/// Synchronization-layer counters from the threads backend (all zero under
/// the sim backend, which has no windows or frames). Deliberately *not*
/// part of [`NetStats`]: message-level accounting must stay identical
/// across backends, while these describe how the parallel execution was
/// orchestrated.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SyncStats {
    /// Synchronization windows (epoch rounds) the cluster ran.
    pub windows: u64,
    /// Total `Barrier::wait` calls across nodes (one per node per round
    /// under the epoch protocol; the pre-overhaul driver paid two).
    pub barrier_waits: u64,
    /// Frames shipped across all nodes.
    pub frames_sent: u64,
    /// Total frame bytes (headers + payloads) across all nodes.
    pub frame_bytes: u64,
    /// Messages carried inside frames across all nodes.
    pub msgs_framed: u64,
    /// Standalone null-message promises shipped (async sync mode).
    pub nulls_sent: u64,
    /// Null promises that rode along in a data frame (async sync mode).
    pub nulls_piggybacked: u64,
    /// Times a node's safe horizon strictly advanced (async sync mode) —
    /// the async analogue of `windows`.
    pub horizon_advances: u64,
}

impl SyncStats {
    /// Channel crossings saved by coalescing: messages that rode along in
    /// an already-counted frame.
    pub fn msgs_batched(&self) -> u64 {
        self.msgs_framed.saturating_sub(self.frames_sent)
    }

    /// Mean shipped frame size in bytes.
    pub fn bytes_per_frame_avg(&self) -> f64 {
        if self.frames_sent == 0 {
            0.0
        } else {
            self.frame_bytes as f64 / self.frames_sent as f64
        }
    }
}

/// The result of a completed cluster run.
#[derive(Debug)]
pub struct RunReport {
    /// Virtual time at which the last application thread finished.
    pub exec_time_ps: u64,
    /// Console output in arrival order at the console node.
    pub output: Vec<String>,
    /// Threads that died with a trap.
    pub errors: Vec<(ThreadUid, VmError)>,
    /// `true` if the run stalled with live but unrunnable threads.
    pub deadlocked: bool,
    /// `true` if the `max_ops` guard aborted the run.
    pub aborted: bool,
    /// Instructions retired across all nodes.
    pub ops: u64,
    /// Threads created over the run (including main).
    pub threads: u32,
    /// Per-node network statistics.
    pub net_per_node: Vec<NetStats>,
    /// Per-node DSM statistics (empty in baseline mode).
    pub dsm_per_node: Vec<DsmStats>,
    /// Rewriter statistics (JavaSplit mode only).
    pub rewrite: Option<RewriteStats>,
    /// Setup time: distributing the rewritten class files to the initial
    /// pool (paper §2) — excluded from `exec_time_ps`, like the paper's
    /// measurement window.
    pub setup_ps: u64,
    /// Serialized size of the shipped program.
    pub class_bytes: u64,
    /// High-water mark of *simultaneously live* scheduler events: the final
    /// length of the event-payload slab, whose slots are recycled through a
    /// free list. Stays flat as total events processed grows — asserted by
    /// the bounded-memory regression test.
    pub event_slab_high_water: u64,
    /// Instructions retired per node.
    pub ops_per_node: Vec<u64>,
    /// The full structured event stream, sorted by virtual time (`None`
    /// unless the run was configured with [`ClusterConfig::with_trace`]).
    ///
    /// [`ClusterConfig::with_trace`]: crate::config::ClusterConfig::with_trace
    pub trace: Option<Vec<Event>>,
    /// Per-node time breakdown derived from the trace (empty when tracing
    /// is off). With [`jsplit_trace::TraceMode::Full`] each node's buckets
    /// sum exactly to `exec_time_ps × cpus`.
    pub breakdown: Vec<NodeBreakdown>,
    /// Per-lock contention statistics derived from the trace (empty when
    /// tracing is off).
    pub lock_stats: Vec<LockStat>,
    /// Host (real) time the driver spent executing the run. For the sim
    /// backend this measures the simulator itself; for the threads backend
    /// it is the wall-clock time of the parallel execution — the number the
    /// live benchmarks report.
    pub host_wall_secs: f64,
    /// Threads-backend synchronization counters (zero for sim runs).
    pub sync: SyncStats,
    /// Wall-clock span profile from the threads backend (`None` for sim
    /// runs or when profiling is off): per-node stall breakdown summing to
    /// each thread's wall time, plus latency/size histograms.
    pub wall: Option<WallProfile>,
    /// Live-telemetry time series summary (`None` unless the run was
    /// configured with [`ClusterConfig::with_metrics`]): sample count,
    /// peak/mean cluster rates, horizon-lag percentiles, watchdog stalls.
    ///
    /// [`ClusterConfig::with_metrics`]: crate::config::ClusterConfig::with_metrics
    pub telemetry: Option<TelemetrySummary>,
    /// Merged opcode/pair frequency counters (`None` unless the run was
    /// configured with [`ClusterConfig::with_opstats`]; sim backend only).
    ///
    /// [`ClusterConfig::with_opstats`]: crate::config::ClusterConfig::with_opstats
    pub opstats: Option<jsplit_mjvm::opstats::OpStats>,
    /// Per-object DSM sharing report (`None` unless the run was configured
    /// with [`ClusterConfig::with_objprof`]): every profiled object with its
    /// sharing class, per-node event matrix, heat rank and home-migration
    /// advice. Identical across backends for the same program.
    ///
    /// [`ClusterConfig::with_objprof`]: crate::config::ClusterConfig::with_objprof
    pub objprof: Option<ObjProfReport>,
}

impl RunReport {
    /// Execution time in (virtual) seconds.
    pub fn exec_time_secs(&self) -> f64 {
        self.exec_time_ps as f64 / jsplit_mjvm::cost::PS_PER_SEC as f64
    }

    /// Cluster-wide network totals.
    pub fn net_total(&self) -> NetStats {
        let mut t = NetStats::default();
        for s in &self.net_per_node {
            t.merge(s);
        }
        t
    }

    /// Cluster-wide DSM totals.
    pub fn dsm_total(&self) -> DsmStats {
        let mut t = DsmStats::default();
        for s in &self.dsm_per_node {
            t.merge(s);
        }
        t
    }

    /// Assert the run completed cleanly (test helper).
    pub fn expect_clean(&self) -> &Self {
        assert!(!self.deadlocked, "run deadlocked");
        assert!(!self.aborted, "run aborted by max_ops");
        assert!(self.errors.is_empty(), "thread traps: {:?}", self.errors);
        self
    }

    /// A human-readable per-node summary table, plus — when the run was
    /// traced — the stall breakdown and the most contended locks.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "exec {:.6} s  ({} ops, {} threads{}{})",
            self.exec_time_secs(),
            self.ops,
            self.threads,
            if self.deadlocked { ", DEADLOCKED" } else { "" },
            if self.aborted { ", ABORTED" } else { "" },
        );
        let _ = writeln!(
            s,
            "{:>4} {:>14} {:>9} {:>12} {:>9} {:>12} {:>8} {:>8} {:>8}",
            "node", "ops", "snd msgs", "snd bytes", "rcv msgs", "rcv bytes", "fetches", "diffs", "grants"
        );
        for (i, ops) in self.ops_per_node.iter().enumerate() {
            let net = self.net_per_node.get(i);
            let dsm = self.dsm_per_node.get(i);
            let _ = writeln!(
                s,
                "{:>4} {:>14} {:>9} {:>12} {:>9} {:>12} {:>8} {:>8} {:>8}",
                i,
                ops,
                net.map_or(0, |n| n.msgs_sent),
                net.map_or(0, |n| n.bytes_sent),
                net.map_or(0, |n| n.msgs_recv),
                net.map_or(0, |n| n.bytes_recv),
                dsm.map_or(0, |d| d.fetches),
                dsm.map_or(0, |d| d.diffs_sent),
                dsm.map_or(0, |d| d.grants_sent),
            );
        }
        let net = self.net_total();
        let dsm = self.dsm_total();
        let _ = writeln!(
            s,
            "{:>4} {:>14} {:>9} {:>12} {:>9} {:>12} {:>8} {:>8} {:>8}",
            "all",
            self.ops,
            net.msgs_sent,
            net.bytes_sent,
            net.msgs_recv,
            net.bytes_recv,
            dsm.fetches,
            dsm.diffs_sent,
            dsm.grants_sent,
        );
        let mut cluster = format!(
            "cluster: {:.0} ops/sec host, {} bytes on the wire",
            self.ops as f64 / self.host_wall_secs.max(1e-9),
            net.bytes_sent,
        );
        if let Some((kind, ns)) = self.wall.as_ref().and_then(|w| w.dominant_stall()) {
            let wall_total: u64 =
                self.wall.as_ref().map_or(0, |w| w.nodes.iter().map(|n| n.accounted_ns()).sum());
            let _ = write!(
                cluster,
                ", dominant stall {} {:.1}%",
                kind.label(),
                100.0 * ns as f64 / wall_total.max(1) as f64
            );
        }
        let _ = writeln!(s, "{cluster}");
        if !self.breakdown.is_empty() {
            let _ = writeln!(
                s,
                "{:>4} {:>9} {:>9} {:>9} {:>9} {:>9}",
                "node", "compute%", "lock%", "fetch%", "ack%", "idle%"
            );
            for b in &self.breakdown {
                let tot = b.total_ps().max(1) as f64;
                let pct = |v: u64| 100.0 * v as f64 / tot;
                let _ = writeln!(
                    s,
                    "{:>4} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                    b.node,
                    pct(b.compute_ps),
                    pct(b.lock_wait_ps),
                    pct(b.fetch_stall_ps),
                    pct(b.ack_wait_ps),
                    pct(b.idle_ps),
                );
            }
        }
        if self.sync.windows > 0 {
            let _ = writeln!(
                s,
                "sync: {} windows, {} barrier waits, {} frames ({} msgs framed, {} batched, {:.1} B/frame avg)",
                self.sync.windows,
                self.sync.barrier_waits,
                self.sync.frames_sent,
                self.sync.msgs_framed,
                self.sync.msgs_batched(),
                self.sync.bytes_per_frame_avg(),
            );
            if self.sync.horizon_advances > 0 {
                let _ = writeln!(
                    s,
                    "async: {} horizon advances, {} nulls sent, {} nulls piggybacked",
                    self.sync.horizon_advances,
                    self.sync.nulls_sent,
                    self.sync.nulls_piggybacked,
                );
            }
        }
        if let Some(wall) = &self.wall {
            let _ = writeln!(
                s,
                "{:>4} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9}",
                "node",
                "wall ms",
                "exec%",
                "barr%",
                "hrzn%",
                "spin%",
                "cv%",
                "inbox%",
                "flush%",
                "decide%",
                "wait p50",
                "wait p90",
                "wait p99"
            );
            for n in &wall.nodes {
                let tot = n.accounted_ns().max(1) as f64;
                let pct = |k: SpanKind| 100.0 * n.stats_of(k).total_ns as f64 / tot;
                // Wait percentiles: barrier waits under epoch sync, horizon
                // waits under async (exactly one of the two is populated).
                let bw = n.stats_of(SpanKind::BarrierWait);
                let wait = if bw.count > 0 { bw } else { n.stats_of(SpanKind::HorizonWait) };
                let us = |ns: u64| format!("{:.1}us", ns as f64 / 1_000.0);
                let _ = writeln!(
                    s,
                    "{:>4} {:>9.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>9} {:>9} {:>9}",
                    n.node,
                    n.wall_ns as f64 / 1e6,
                    pct(SpanKind::Execute),
                    pct(SpanKind::BarrierWait),
                    pct(SpanKind::HorizonWait),
                    pct(SpanKind::SlotSpin),
                    pct(SpanKind::CondvarWait),
                    pct(SpanKind::InboxDrain),
                    pct(SpanKind::FrameFlush),
                    pct(SpanKind::Decide),
                    us(wait.hist.percentile(0.50)),
                    us(wait.hist.percentile(0.90)),
                    us(wait.hist.percentile(0.99)),
                );
            }
            if let Some((kind, ns)) = wall.dominant_stall() {
                let wall_total: u64 = wall.nodes.iter().map(|n| n.accounted_ns()).sum();
                let _ = writeln!(
                    s,
                    "dominant stall: {} ({:.1}% of cluster wall time; window p50 {:.3} us virtual)",
                    kind.label(),
                    100.0 * ns as f64 / wall_total.max(1) as f64,
                    wall.nodes.first().map_or(0.0, |n| n.window_ps.percentile(0.50) as f64 / 1e6),
                );
            }
        }
        if let Some(t) = &self.telemetry {
            let (p50, p90, p99) = crate::telemetry::lag_percentiles(t);
            let _ = writeln!(
                s,
                "telemetry: {} samples; ops/sec peak {:.0} mean {:.0}; bytes/sec peak {:.0} mean {:.0}; horizon lag p50/p90/p99 {}/{}/{} ps",
                t.samples,
                t.peak_ops_per_sec,
                t.mean_ops_per_sec,
                t.peak_bytes_per_sec,
                t.mean_bytes_per_sec,
                p50,
                p90,
                p99,
            );
            for stall in &t.stalls {
                let _ = writeln!(s, "{}", crate::telemetry::render_stall(stall));
            }
        }
        if let Some(op) = &self.objprof {
            let _ = writeln!(
                s,
                "{:>14} {:>5} {:>17} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7}",
                "object gid", "home", "class", "heat", "fetches", "diffs", "invals", "acq rem", "grants"
            );
            use jsplit_trace::ObjEvent as OE;
            for o in op.objects.iter().take(10) {
                let _ = writeln!(
                    s,
                    "{:>14} {:>5} {:>17} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7}",
                    o.gid,
                    o.home,
                    o.class.name(),
                    o.heat,
                    o.total[OE::Fetch.index()],
                    o.total[OE::DiffSent.index()],
                    o.total[OE::Invalidated.index()],
                    o.total[OE::AcquireRemote.index()],
                    o.total[OE::Grant.index()],
                );
            }
            if op.objects.len() > 10 {
                let _ = writeln!(s, "... {} more profiled objects", op.objects.len() - 10);
            }
            for &i in op.candidates.iter().take(5) {
                let o = &op.objects[i];
                let _ = writeln!(
                    s,
                    "migrate gid {} home {} -> node {} (saves ~{} coherence msgs, {})",
                    o.gid,
                    o.home,
                    o.advice.dominant,
                    o.advice.score,
                    o.class.name(),
                );
            }
        }
        if !self.lock_stats.is_empty() {
            let mut hot: Vec<_> = self.lock_stats.iter().collect();
            hot.sort_by_key(|l| std::cmp::Reverse(l.total_wait_ps));
            let _ = writeln!(
                s,
                "{:>12} {:>9} {:>9} {:>7} {:>14} {:>14}",
                "lock gid", "acquires", "transfers", "max q", "total wait ps", "mean wait ps"
            );
            for l in hot.iter().take(10) {
                let _ = writeln!(
                    s,
                    "{:>12} {:>9} {:>9} {:>7} {:>14} {:>14}",
                    l.gid, l.acquires, l.transfers, l.max_queue, l.total_wait_ps, l.mean_wait_ps()
                );
            }
        }
        s
    }
}
