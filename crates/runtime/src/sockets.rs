//! The real-socket multi-process backend: one coordinator, one OS process
//! per node, TCP between them — the paper's deployment shape taken off the
//! single machine (§2: independent runtimes on commodity workstations).
//!
//! The conservative-sync engine is [`crate::engine`], unchanged from the
//! threads backend; this module is the *instantiation* over processes that
//! share no memory:
//!
//! * frames cross the wire as length-prefixed [`Envelope::Data`] messages
//!   relayed by a star coordinator (workers never dial each other — the
//!   coordinator is the switch, which keeps deployment to "every worker
//!   knows one address"),
//! * the epoch protocol's four primitives ([`EpochPeers`]) become
//!   `Barrier`/`BarrierAck`/`Slot`/`Slots` round-trips. The ordering
//!   argument that replaces the threads backend's Release/Acquire pair is
//!   two FIFOs end to end: each worker's window data precedes its
//!   `Barrier` on its own stream (per-stream FIFO), the coordinator's
//!   relay loop is one thread draining one mpsc queue whose per-producer
//!   FIFO keeps that order, so when the n-th `Barrier` is dequeued every
//!   window frame has already been written toward its destination — and
//!   per-stream FIFO again delivers those frames to each worker *before*
//!   its `BarrierAck`. A worker that returns from the barrier therefore
//!   holds everything its peers sent in the window, exactly the guarantee
//!   the shared-memory barrier gave (DESIGN.md §16.2).
//! * the async mode runs pure per-channel Chandy–Misra–Bryant promises
//!   ([`SyncEngine::run_async_wire`]); the in-process mode's shared
//!   send-coverage counters have no wire analogue, so *the coordinator*
//!   owns termination: it counts the non-null records it relays toward
//!   each worker ([`jsplit_net::transport::frame_data_records`]) and
//!   declares the run over when every worker is idle (`qhead == MAX`) and
//!   has drained exactly what was relayed to it — a report rides each
//!   worker's stream *behind* every record it accounts for, so the count
//!   comparison can never observe false quiescence (DESIGN.md §16.3).
//!
//! Handshake: a worker dials in (bounded retry with exponential backoff)
//! and sends `Hello { magic, version, node_id, config_hash }`; the
//! coordinator validates ([`jsplit_net::tcp::validate_hello`]) and answers
//! `Welcome` carrying the full serialized cluster config and program, or
//! `Reject { reason }` — a mismatched peer gets a clear error, never a
//! hang. Every worker then runs [`driver::prepare`] deterministically from
//! the same bytes, so rewrite output, image layout and gid assignment are
//! identical across processes without shipping any derived state.
//!
//! Live telemetry crosses processes: the coordinator owns the registry,
//! sampler and watchdog, and each worker ships its own registry row as a
//! `Metrics` envelope from its engine thread (rate-limited to the
//! coordinator's sampling interval) — the merged NDJSON stream and
//! [`RunReport::telemetry`] come out schema-identical to the threads
//! backend's. The per-object sharing profiler and the flight recorder are
//! armed the same way, via `Welcome { flags }`; a worker that panics sends
//! a `Fault` envelope carrying the panic message and its flight-recorder
//! tail, so the coordinator reports the real cause instead of a bare
//! connection drop.
//!
//! Restrictions vs the threads backend: no mid-run joins, no tracing, no
//! wall profiling (those merge per-node in-memory buffers; over sockets
//! they would need their own wire format). Virtual-time results — stdout,
//! `exec_time_ps`, `NetStats`, `DsmStats` — are bit-identical to the sim
//! and threads backends (asserted by the differential tests in
//! `tests/sockets.rs`).

use crate::balance::{Balancer, BalancerState};
use crate::config::{Backend, ClusterConfig, Lookahead, Mode, NodeSpec, SocketsConfig, SyncMode};
use crate::driver::{self, ClusterError, Prepared};
use crate::engine::{async_done, EpochPeers, EpochSlot, Horizons, SyncEngine, WirePeers};
use crate::env::CONSOLE_NODE;
use crate::node::NodeRuntime;
use crate::report::{RunReport, SyncStats};
use crate::telemetry::{Telemetry, WatchdogSpec};
use jsplit_dsm::{DsmStats, ProtocolMode};
use jsplit_mjvm::classfile_io::{decode_program, encode_program};
use jsplit_mjvm::cost::JvmProfile;
use jsplit_mjvm::heap::ThreadUid;
use jsplit_mjvm::interp::VmError;
use jsplit_net::codec::{CodecError, Reader, Writer};
use jsplit_net::tcp::{
    self, Envelope, HandshakeExpect, SlotWire, TcpFrameLink, ANY_NODE, MAGIC, VERSION, WF_FLIGHT,
    WF_OBJPROF,
};
use jsplit_net::transport::{frame_data_records, FrameStats};
use jsplit_net::{ChannelEndpoint, Frame, NetStats, NodeId, SoloSetup};
use jsplit_trace::{FlightRecorder, MetricsRegistry, ObjProfile, ALL_METRICS, METRICS};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// How long an accepted socket may dawdle over its `Hello` before the
/// coordinator gives up on it (a non-worker that dialed in and sent
/// nothing must not stall the whole accept phase).
const HELLO_TIMEOUT: Duration = Duration::from_secs(5);

// ---------------------------------------------------------------------------
// Cluster-config wire form
// ---------------------------------------------------------------------------

/// Serialize the run-relevant subset of a [`ClusterConfig`] — everything
/// that affects virtual-time results. Deployment knobs (`sockets`,
/// `metrics`, `trace`, `profile`) are per-process concerns and stay out,
/// which also keeps them out of the handshake's config hash.
fn encode_wire_config(cfg: &ClusterConfig) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(match cfg.mode {
        Mode::Baseline => 0,
        Mode::JavaSplit => 1,
    });
    w.varu(cfg.nodes.len() as u64);
    for spec in &cfg.nodes {
        w.u8(match spec.profile {
            JvmProfile::SunSim => 0,
            JvmProfile::IbmSim => 1,
        });
    }
    w.varu(cfg.cpus_per_node as u64);
    w.u8(match cfg.protocol {
        ProtocolMode::MtsHlrc => 0,
        ProtocolMode::ClassicHlrc => 1,
    });
    w.u8(match cfg.balancer {
        Balancer::LeastLoaded => 0,
        Balancer::RoundRobin => 1,
        Balancer::Pinned => 2,
    });
    w.u32(cfg.fuel);
    w.u64(cfg.max_ops);
    w.u8(cfg.disable_local_locks as u8);
    match cfg.array_chunk {
        None => {
            w.u8(0);
        }
        Some(c) => {
            w.u8(1).u32(c);
        }
    }
    w.u8(match cfg.lookahead {
        Lookahead::Global => 0,
        Lookahead::PerPair => 1,
    });
    w.u8(match cfg.sync {
        SyncMode::Epoch => 0,
        SyncMode::Async => 1,
    });
    w.u8(cfg.wire_batch as u8);
    w.u8(cfg.classic_interp as u8);
    w.into_inner()
}

fn decode_wire_config(bytes: &[u8]) -> Result<ClusterConfig, CodecError> {
    let mut r = Reader::new(bytes);
    let mode = match r.u8()? {
        0 => Mode::Baseline,
        1 => Mode::JavaSplit,
        _ => return Err(CodecError("bad mode byte")),
    };
    let n = r.varu()? as usize;
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        nodes.push(NodeSpec {
            profile: match r.u8()? {
                0 => JvmProfile::SunSim,
                1 => JvmProfile::IbmSim,
                _ => return Err(CodecError("bad profile byte")),
            },
        });
    }
    let cpus_per_node = r.varu()? as usize;
    let protocol = match r.u8()? {
        0 => ProtocolMode::MtsHlrc,
        1 => ProtocolMode::ClassicHlrc,
        _ => return Err(CodecError("bad protocol byte")),
    };
    let balancer = match r.u8()? {
        0 => Balancer::LeastLoaded,
        1 => Balancer::RoundRobin,
        2 => Balancer::Pinned,
        _ => return Err(CodecError("bad balancer byte")),
    };
    let fuel = r.u32()?;
    let max_ops = r.u64()?;
    let disable_local_locks = r.u8()? != 0;
    let array_chunk = match r.u8()? {
        0 => None,
        _ => Some(r.u32()?),
    };
    let lookahead = match r.u8()? {
        0 => Lookahead::Global,
        1 => Lookahead::PerPair,
        _ => return Err(CodecError("bad lookahead byte")),
    };
    let sync = match r.u8()? {
        0 => SyncMode::Epoch,
        1 => SyncMode::Async,
        _ => return Err(CodecError("bad sync byte")),
    };
    let wire_batch = r.u8()? != 0;
    let classic_interp = r.u8()? != 0;
    Ok(ClusterConfig {
        mode,
        nodes,
        cpus_per_node,
        protocol,
        balancer,
        fuel,
        max_ops,
        joins: Vec::new(),
        disable_local_locks,
        array_chunk,
        trace: None,
        profile: false,
        backend: Backend::Sockets,
        lookahead,
        sync,
        wire_batch,
        metrics: None,
        sockets: SocketsConfig::default(),
        classic_interp,
        // Per-node profiling counters have no berth in the worker report;
        // opstats runs use the sim backend.
        opstats: false,
        // Armed via `Welcome { flags }`, not the hashed wire config — the
        // profiler never changes virtual-time results.
        objprof: false,
    })
}

// ---------------------------------------------------------------------------
// Worker report wire form
// ---------------------------------------------------------------------------

/// Everything one worker contributes to the final [`RunReport`], carried
/// home in the `Report` envelope.
#[derive(Debug, PartialEq)]
struct WorkerReport {
    console: Vec<String>,
    errors: Vec<(ThreadUid, VmError)>,
    deadlocked: bool,
    aborted: bool,
    ops: u64,
    spawned_here: u32,
    finish_time: u64,
    slab_high_water: u64,
    windows: u64,
    barrier_waits: u64,
    horizon_advances: u64,
    setup_ps: u64,
    net: NetStats,
    dsm: Option<DsmStats>,
    frames: FrameStats,
    /// Rendered flight-recorder tail ("" unless `Welcome` armed it) — the
    /// coordinator prints it when its watchdog fired during the run.
    flight: String,
    /// Per-object sharing profile (`None` unless `Welcome` armed it).
    objprof: Option<ObjProfile>,
}

fn encode_vm_error(w: &mut Writer, e: &VmError) {
    match e {
        VmError::NullDeref { method, pc } => {
            w.u8(0).str(method).varu(*pc as u64);
        }
        VmError::DivByZero { method, pc } => {
            w.u8(1).str(method).varu(*pc as u64);
        }
        VmError::IndexOutOfBounds { len, idx } => {
            w.u8(2).varu(*len as u64).i64(*idx);
        }
        VmError::NegativeArraySize(s) => {
            w.u8(3).i64(*s);
        }
        VmError::StackUnderflow { method, pc } => {
            w.u8(4).str(method).varu(*pc as u64);
        }
        VmError::IllegalMonitorState { op } => {
            w.u8(5).str(op);
        }
        VmError::NoSuchMethod(m) => {
            w.u8(6).str(m);
        }
        VmError::Unquickened(m) => {
            w.u8(7).str(m);
        }
        VmError::TypeMismatch(m) => {
            w.u8(8).str(m);
        }
        VmError::VolatileStackEmpty => {
            w.u8(9);
        }
    }
}

fn decode_vm_error(r: &mut Reader<&[u8]>) -> Result<VmError, CodecError> {
    Ok(match r.u8()? {
        0 => VmError::NullDeref { method: r.str()?, pc: r.varu()? as usize },
        1 => VmError::DivByZero { method: r.str()?, pc: r.varu()? as usize },
        2 => VmError::IndexOutOfBounds { len: r.varu()? as usize, idx: r.i64()? },
        3 => VmError::NegativeArraySize(r.i64()?),
        4 => VmError::StackUnderflow { method: r.str()?, pc: r.varu()? as usize },
        // `op` names a monitor operation — a tiny static set; the leak is
        // bounded by the handful of distinct error strings per run.
        5 => VmError::IllegalMonitorState { op: Box::leak(r.str()?.into_boxed_str()) },
        6 => VmError::NoSuchMethod(r.str()?),
        7 => VmError::Unquickened(r.str()?),
        8 => VmError::TypeMismatch(r.str()?),
        9 => VmError::VolatileStackEmpty,
        _ => return Err(CodecError("bad VmError tag")),
    })
}

fn encode_net_stats(w: &mut Writer, s: &NetStats) {
    w.u64(s.msgs_sent).u64(s.msgs_recv).u64(s.bytes_sent).u64(s.bytes_recv);
    for arr in [&s.sent_by_kind, &s.bytes_by_kind, &s.recv_by_kind, &s.recv_bytes_by_kind] {
        for v in arr {
            w.u64(*v);
        }
    }
}

fn decode_net_stats(r: &mut Reader<&[u8]>) -> Result<NetStats, CodecError> {
    let mut s = NetStats {
        msgs_sent: r.u64()?,
        msgs_recv: r.u64()?,
        bytes_sent: r.u64()?,
        bytes_recv: r.u64()?,
        ..NetStats::default()
    };
    for arr in [&mut s.sent_by_kind, &mut s.bytes_by_kind, &mut s.recv_by_kind, &mut s.recv_bytes_by_kind] {
        for v in arr.iter_mut() {
            *v = r.u64()?;
        }
    }
    Ok(s)
}

fn encode_dsm_stats(w: &mut Writer, s: &DsmStats) {
    w.u64(s.promotions)
        .u64(s.local_acquires)
        .u64(s.shared_acquires_local)
        .u64(s.shared_acquires_remote)
        .u64(s.grants_sent)
        .u64(s.fetches)
        .u64(s.diffs_sent)
        .u64(s.diff_fields)
        .u64(s.diffs_applied)
        .u64(s.releases_awaiting_acks)
        .u64(s.invalidations)
        .u64(s.waits)
        .u64(s.notifies)
        .varu(s.notices_stored_max as u64)
        .varu(s.notice_mem_max as u64)
        .u64(s.homed_objects)
        .u64(s.fetches_delayed_at_home);
}

fn decode_dsm_stats(r: &mut Reader<&[u8]>) -> Result<DsmStats, CodecError> {
    Ok(DsmStats {
        promotions: r.u64()?,
        local_acquires: r.u64()?,
        shared_acquires_local: r.u64()?,
        shared_acquires_remote: r.u64()?,
        grants_sent: r.u64()?,
        fetches: r.u64()?,
        diffs_sent: r.u64()?,
        diff_fields: r.u64()?,
        diffs_applied: r.u64()?,
        releases_awaiting_acks: r.u64()?,
        invalidations: r.u64()?,
        waits: r.u64()?,
        notifies: r.u64()?,
        notices_stored_max: r.varu()? as usize,
        notice_mem_max: r.varu()? as usize,
        homed_objects: r.u64()?,
        fetches_delayed_at_home: r.u64()?,
    })
}

fn encode_worker_report(rep: &WorkerReport) -> Vec<u8> {
    let mut w = Writer::new();
    w.varu(rep.console.len() as u64);
    for line in &rep.console {
        w.str(line);
    }
    w.varu(rep.errors.len() as u64);
    for (uid, e) in &rep.errors {
        w.varu(*uid as u64);
        encode_vm_error(&mut w, e);
    }
    w.u8(rep.deadlocked as u8).u8(rep.aborted as u8);
    w.u64(rep.ops)
        .u32(rep.spawned_here)
        .u64(rep.finish_time)
        .u64(rep.slab_high_water)
        .u64(rep.windows)
        .u64(rep.barrier_waits)
        .u64(rep.horizon_advances)
        .u64(rep.setup_ps);
    encode_net_stats(&mut w, &rep.net);
    match &rep.dsm {
        None => {
            w.u8(0);
        }
        Some(d) => {
            w.u8(1);
            encode_dsm_stats(&mut w, d);
        }
    }
    w.u64(rep.frames.frames_sent)
        .u64(rep.frames.frame_bytes)
        .u64(rep.frames.msgs_framed)
        .u64(rep.frames.nulls_sent)
        .u64(rep.frames.nulls_piggybacked);
    w.str(&rep.flight);
    // The profile goes last: its codec is self-delimiting raw bytes, which
    // the decoder reads straight off the remaining slice.
    match &rep.objprof {
        None => {
            w.u8(0);
            w.into_inner()
        }
        Some(p) => {
            w.u8(1);
            let mut out = w.into_inner();
            p.encode(&mut out);
            out
        }
    }
}

fn decode_worker_report(bytes: &[u8]) -> Result<WorkerReport, CodecError> {
    let mut r = Reader::new(bytes);
    let n_console = r.varu()? as usize;
    let mut console = Vec::with_capacity(n_console.min(1 << 16));
    for _ in 0..n_console {
        console.push(r.str()?);
    }
    let n_errors = r.varu()? as usize;
    let mut errors = Vec::with_capacity(n_errors.min(1 << 16));
    for _ in 0..n_errors {
        let uid = r.varu()? as ThreadUid;
        errors.push((uid, decode_vm_error(&mut r)?));
    }
    let deadlocked = r.u8()? != 0;
    let aborted = r.u8()? != 0;
    let ops = r.u64()?;
    let spawned_here = r.u32()?;
    let finish_time = r.u64()?;
    let slab_high_water = r.u64()?;
    let windows = r.u64()?;
    let barrier_waits = r.u64()?;
    let horizon_advances = r.u64()?;
    let setup_ps = r.u64()?;
    let net = decode_net_stats(&mut r)?;
    let dsm = match r.u8()? {
        0 => None,
        _ => Some(decode_dsm_stats(&mut r)?),
    };
    let frames = FrameStats {
        frames_sent: r.u64()?,
        frame_bytes: r.u64()?,
        msgs_framed: r.u64()?,
        nulls_sent: r.u64()?,
        nulls_piggybacked: r.u64()?,
    };
    let flight = r.str()?;
    let objprof = match r.u8()? {
        0 => None,
        _ => {
            let mut pos = bytes.len() - r.remaining();
            Some(ObjProfile::decode(bytes, &mut pos).ok_or(CodecError("bad objprof payload"))?)
        }
    };
    Ok(WorkerReport {
        console,
        errors,
        deadlocked,
        aborted,
        ops,
        spawned_here,
        finish_time,
        slab_high_water,
        windows,
        barrier_waits,
        horizon_advances,
        setup_ps,
        net,
        dsm,
        frames,
        flight,
        objprof,
    })
}

// ---------------------------------------------------------------------------
// Worker-side peers: the engine's seams mapped onto the coordinator link
// ---------------------------------------------------------------------------

/// The worker's view of its peers: one socket to the coordinator (writes
/// go out directly; the ingress pump routes inbound `Data` into the
/// endpoint's frame channel and everything else into `ctrl`). Implements
/// both engine seams — [`EpochPeers`] as envelope round-trips, and
/// [`WirePeers`] for the coordinator-terminated async mode. Connection
/// loss panics, matching [`TcpFrameLink`]: a worker without its
/// coordinator has no recovery path, and the process exit *is* the error
/// signal the coordinator acts on.
struct WirePeerLink {
    sock: TcpStream,
    ctrl: Receiver<io::Result<Envelope>>,
    me: NodeId,
    /// Round counter for [`EpochPeers::barrier`] (the engine does not pass
    /// one); advances in lockstep with the engine's own round variable.
    round: u64,
    /// Peer slots from the last `Slots` broadcast, held for `read`.
    slots: Vec<SlotWire>,
}

impl WirePeerLink {
    fn send(&mut self, env: &Envelope) {
        tcp::write_envelope(&mut self.sock, env)
            .unwrap_or_else(|e| panic!("worker {}: coordinator connection lost: {e}", self.me));
    }

    fn recv_ctrl(&mut self) -> Envelope {
        match self.ctrl.recv() {
            Ok(Ok(env)) => env,
            Ok(Err(e)) => panic!("worker {}: coordinator connection lost: {e}", self.me),
            Err(_) => panic!("worker {}: ingress pump exited", self.me),
        }
    }
}

impl EpochPeers for WirePeerLink {
    fn barrier(&mut self) {
        self.round += 1;
        let round = self.round;
        self.send(&Envelope::Barrier { round });
        // The ack arrives strictly after every window frame the
        // coordinator relayed to us (per-stream FIFO), so returning here
        // gives the same "all previous-window sends are inbound" guarantee
        // as the shared-memory barrier.
        match self.recv_ctrl() {
            Envelope::BarrierAck { round: r } if r == round => {}
            other => panic!("worker {}: expected BarrierAck({round}), got {other:?}", self.me),
        }
    }

    fn publish(&mut self, _me: NodeId, round: u64, slot: &EpochSlot) {
        self.send(&Envelope::Slot {
            round,
            slot: [slot.next_event, slot.live, slot.spawns_sent, slot.spawns_recv, slot.ops],
        });
    }

    fn wait(&mut self, round: u64, before_park: &mut dyn FnMut()) -> bool {
        let mut parked = false;
        let env = match self.ctrl.try_recv() {
            Ok(Ok(env)) => env,
            Ok(Err(e)) => panic!("worker {}: coordinator connection lost: {e}", self.me),
            Err(TryRecvError::Empty) => {
                parked = true;
                before_park();
                self.recv_ctrl()
            }
            Err(TryRecvError::Disconnected) => panic!("worker {}: ingress pump exited", self.me),
        };
        match env {
            Envelope::Slots { round: r, slots } if r == round => self.slots = slots,
            other => panic!("worker {}: expected Slots({round}), got {other:?}", self.me),
        }
        parked
    }

    fn read(&mut self, _round: u64, out: &mut [EpochSlot]) {
        for (o, s) in out.iter_mut().zip(&self.slots) {
            *o = EpochSlot {
                next_event: s[0],
                live: s[1],
                spawns_sent: s[2],
                spawns_recv: s[3],
                ops: s[4],
            };
        }
    }
}

impl WirePeers for WirePeerLink {
    fn poll_done(&mut self) -> Option<u64> {
        match self.ctrl.try_recv() {
            Ok(Ok(Envelope::Done { outcome })) => Some(outcome as u64),
            Ok(Ok(other)) => panic!("worker {}: unexpected {other:?} before Done", self.me),
            Ok(Err(e)) => panic!("worker {}: coordinator connection lost: {e}", self.me),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => panic!("worker {}: ingress pump exited", self.me),
        }
    }

    fn send_state(&mut self, qhead: u64, drained: u64, live: u64, ops: u64) {
        self.send(&Envelope::State { qhead, drained, live, ops });
    }

    fn flush_rendezvous(&mut self) {
        self.send(&Envelope::Flushed);
        // `Shutdown` is broadcast only after all n `Flushed` reports were
        // dequeued, and each worker's leftover frames precede its
        // `Flushed` — so per-stream FIFO puts every peer's leftovers in
        // our channel before this returns.
        match self.recv_ctrl() {
            Envelope::Shutdown => {}
            other => panic!("worker {}: expected Shutdown, got {other:?}", self.me),
        }
    }
}

// ---------------------------------------------------------------------------
// Worker process
// ---------------------------------------------------------------------------

/// Entry point for `jsplit worker ...`: parse the worker flags and run to
/// completion against the coordinator.
pub fn worker_main(args: &[String]) -> Result<(), ClusterError> {
    let mut connect: Option<String> = None;
    let mut node_id: Option<u16> = None;
    let mut config_hash = 0u64;
    let mut connect_timeout = Duration::from_secs(10);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| {
            it.next().cloned().ok_or_else(|| ClusterError::Config(format!("worker: {flag} needs a value")))
        };
        match a.as_str() {
            "--connect" => connect = Some(val("--connect")?),
            "--node-id" => {
                node_id = Some(val("--node-id")?.parse().map_err(|e| {
                    ClusterError::Config(format!("worker: bad --node-id: {e}"))
                })?)
            }
            "--config-hash" => {
                config_hash = val("--config-hash")?.parse().map_err(|e| {
                    ClusterError::Config(format!("worker: bad --config-hash: {e}"))
                })?
            }
            "--connect-timeout" => {
                let secs: f64 = val("--connect-timeout")?.parse().map_err(|e| {
                    ClusterError::Config(format!("worker: bad --connect-timeout: {e}"))
                })?;
                connect_timeout = Duration::from_secs_f64(secs.max(0.0));
            }
            other => return Err(ClusterError::Config(format!("worker: unknown flag {other}"))),
        }
    }
    let connect = connect
        .ok_or_else(|| ClusterError::Config("worker: --connect HOST:PORT is required".into()))?;
    run_worker(&connect, node_id, config_hash, connect_timeout)
}

/// Dial the coordinator with bounded exponential backoff (25 ms doubling
/// to a 500 ms cap) until `timeout` is spent.
fn dial(connect: &str, timeout: Duration) -> Result<TcpStream, ClusterError> {
    let deadline = Instant::now() + timeout;
    let mut delay = Duration::from_millis(25);
    loop {
        match TcpStream::connect(connect) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() + delay >= deadline {
                    return Err(ClusterError::Config(format!(
                        "worker: cannot reach coordinator at {connect} within {timeout:?}: {e}"
                    )));
                }
                thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(500));
            }
        }
    }
}

/// Run one worker process: handshake, deterministic bootstrap, engine run,
/// final report.
pub fn run_worker(
    connect: &str,
    node_id: Option<u16>,
    config_hash: u64,
    connect_timeout: Duration,
) -> Result<(), ClusterError> {
    let mut stream = dial(connect, connect_timeout)?;
    let _ = stream.set_nodelay(true);
    let sock_err = |e: io::Error| ClusterError::Config(format!("worker: coordinator connection failed: {e}"));
    tcp::write_envelope(
        &mut stream,
        &Envelope::Hello {
            magic: MAGIC,
            version: VERSION,
            node_id: node_id.unwrap_or(ANY_NODE),
            config_hash,
        },
    )
    .map_err(sock_err)?;
    let (me, n, metrics_interval_us, flags, cfg_blob, program_bytes) =
        match tcp::read_envelope(&mut stream).map_err(sock_err)? {
            Envelope::Welcome {
                node_id,
                nodes,
                config_hash: _,
                metrics_interval_us,
                flags,
                config,
                program,
            } => (node_id, nodes as usize, metrics_interval_us, flags, config, program),
            Envelope::Reject { reason } => {
                return Err(ClusterError::Config(format!("worker: coordinator rejected handshake: {reason}")))
            }
            other => {
                return Err(ClusterError::Config(format!("worker: expected Welcome, got {other:?}")))
            }
        };
    // Everything past the handshake runs under catch_unwind: a panic turns
    // into a `Fault` envelope carrying the real cause (plus the flight-
    // recorder tail, if armed) instead of a bare connection drop at the
    // coordinator.
    let flight = ((flags & WF_FLIGHT) != 0).then(|| FlightRecorder::new(n));
    if let Some(f) = &flight {
        jsplit_trace::arm_panic_dump(f);
    }
    let fault_sock = stream.try_clone().map_err(sock_err)?;
    let flight2 = flight.clone();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_worker_body(stream, me, n, metrics_interval_us, flags, &cfg_blob, &program_bytes, flight)
    }));
    match result {
        Ok(r) => r,
        Err(payload) => {
            let message = panic_message(payload.as_ref());
            let mut s = fault_sock;
            let _ = tcp::write_envelope(
                &mut s,
                &Envelope::Fault {
                    node: me,
                    message: message.clone(),
                    flight: flight2.map(|f| f.render()).unwrap_or_default(),
                },
            );
            Err(ClusterError::Config(format!("worker {me} panicked: {message}")))
        }
    }
}

/// Extract the human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".into()
    }
}

/// The post-handshake worker: deterministic bootstrap, engine run, final
/// report. Runs under `run_worker`'s catch_unwind.
#[allow(clippy::too_many_arguments)]
fn run_worker_body(
    mut stream: TcpStream,
    me: u16,
    n: usize,
    metrics_interval_us: u64,
    flags: u8,
    cfg_blob: &[u8],
    program_bytes: &[u8],
    flight: Option<Arc<FlightRecorder>>,
) -> Result<(), ClusterError> {
    let sock_err = |e: io::Error| ClusterError::Config(format!("worker: coordinator connection failed: {e}"));
    // Test hook for the fault path: the named worker dies right here, after
    // the handshake, exercising the Fault envelope end to end.
    if std::env::var("JSPLIT_TEST_WORKER_PANIC").is_ok_and(|v| v == me.to_string()) {
        panic!("injected test panic in worker {me}");
    }
    let mut config = decode_wire_config(cfg_blob)
        .map_err(|e| ClusterError::Config(format!("worker {me}: bad wire config: {e}")))?;
    config.objprof = (flags & WF_OBJPROF) != 0;
    if config.nodes.len() != n {
        return Err(ClusterError::Config(format!(
            "worker {me}: Welcome says {n} nodes but the config carries {}",
            config.nodes.len()
        )));
    }
    let program = decode_program(program_bytes)
        .map_err(|e| ClusterError::Config(format!("worker {me}: bad wire program: {e:?}")))?;
    // The same deterministic preparation every process runs from the same
    // bytes: rewrite, image, class-distribution size — no derived state
    // crosses the wire.
    let prepared = driver::prepare(&config, &program)?;
    let links: Vec<_> = config.nodes.iter().map(|s| driver::link_params(*s)).collect();
    for l in &links {
        assert!(
            l.loopback_ps() <= l.base_ps(),
            "loopback bound {} ps above link base {} ps",
            l.loopback_ps(),
            l.base_ps()
        );
    }

    // Endpoint plumbing: the engine writes the socket directly (TcpFrameLink),
    // the ingress pump feeds decoded Data frames into `frame_rx` and
    // control envelopes into `ctrl` — with an empty-frame doorbell so an
    // engine parked in `wait_inbound` wakes for control traffic too.
    let (frame_tx, frame_rx) = mpsc::channel::<Frame>();
    let (pool_tx, pool_rx) = mpsc::channel::<Vec<u8>>();
    let (ctrl_tx, ctrl_rx) = mpsc::channel::<io::Result<Envelope>>();
    let wire = Box::new(TcpFrameLink::new(stream.try_clone().map_err(sock_err)?, pool_tx));
    let mut endpoint =
        ChannelEndpoint::single(me, n, links[me as usize], wire, frame_rx, pool_rx, config.wire_batch);
    let mut pump_stream = stream.try_clone().map_err(sock_err)?;
    thread::spawn(move || loop {
        match tcp::read_envelope(&mut pump_stream) {
            Ok(Envelope::Data { src, frame, .. }) => {
                if frame_tx.send(Frame { src, buf: frame }).is_err() {
                    return;
                }
            }
            Ok(env) => {
                let stop = matches!(env, Envelope::Shutdown);
                let _ = ctrl_tx.send(Ok(env));
                let _ = frame_tx.send(Frame { src: me, buf: Vec::new() });
                if stop {
                    return;
                }
            }
            Err(e) => {
                let _ = ctrl_tx.send(Err(e));
                let _ = frame_tx.send(Frame { src: me, buf: Vec::new() });
                return;
            }
        }
    });

    let mut node =
        NodeRuntime::new(me, config.nodes[me as usize], &config, prepared.image.clone(), prepared.thread_class);
    // Setup accounting, replicated per process: worker 0 plans the class
    // sends (it is the console node that ships them), every other worker
    // records its own receive — together they reproduce exactly the mesh
    // accounting the threads driver does centrally, without any setup
    // bytes actually crossing the wire.
    let mut setup_ps = 0u64;
    if config.mode == Mode::JavaSplit {
        if me == CONSOLE_NODE {
            for dst in 1..n {
                let at = driver::ship_classes(&mut SoloSetup(&mut endpoint), 0, dst as NodeId, prepared.class_bytes);
                setup_ps = setup_ps.max(at);
            }
            driver::bootstrap_statics(std::slice::from_mut(&mut node), &prepared.image);
        } else {
            driver::ship_classes(&mut SoloSetup(&mut endpoint), 0, me, prepared.class_bytes);
            // Replay node 0's singleton creation on a scratch runtime: gid
            // assignment is deterministic, so the specs come out identical
            // to the ones the real node 0 produced in its own process.
            let mut scratch =
                NodeRuntime::new(0, config.nodes[0], &config, prepared.image.clone(), prepared.thread_class);
            driver::bootstrap_statics(std::slice::from_mut(&mut scratch), &prepared.image);
            let singles = driver::singleton_specs(&mut scratch, &prepared.image);
            driver::install_singletons(&mut node, &prepared.image, &singles);
        }
    }

    let base_ps: Vec<u64> = links.iter().map(|l| l.base_ps()).collect();
    let hz = Horizons::new(base_ps, config.lookahead, config.max_ops);
    let main_method = prepared.image.main_method;
    let main_locals = prepared.image.method(main_method).max_locals;
    let mut eng = SyncEngine::new(
        node,
        endpoint,
        hz,
        config.mode,
        prepared.thread_main,
        n,
        BalancerState::new(config.balancer),
    );
    eng.t0 = Instant::now();
    eng.flight = flight.clone();
    if metrics_interval_us > 0 {
        // Local one-writer registry; the pump ships our row toward the
        // coordinator's merged registry from the engine thread, so the
        // envelope never interleaves with frames or control traffic.
        let reg = MetricsRegistry::new(n);
        eng.metrics = Some(reg.clone());
        let mut pump_sock = stream.try_clone().map_err(sock_err)?;
        let interval = Duration::from_micros(metrics_interval_us.max(1));
        let mut last: Option<Instant> = None;
        eng.metrics_pump = Some(Box::new(move |force: bool| {
            if !force && last.is_some_and(|t| t.elapsed() < interval) {
                return;
            }
            last = Some(Instant::now());
            let cells: Vec<u64> = ALL_METRICS.iter().map(|&m| reg.get(me, m)).collect();
            tcp::write_envelope(&mut pump_sock, &Envelope::Metrics { node: me, cells })
                .unwrap_or_else(|e| panic!("worker {me}: coordinator connection lost: {e}"));
        }));
    }
    if me == CONSOLE_NODE {
        eng.bootstrap_main(main_method, main_locals);
    }
    eng.drain_trace(0);
    let mut link = WirePeerLink {
        sock: stream.try_clone().map_err(sock_err)?,
        ctrl: ctrl_rx,
        me,
        round: 0,
        slots: vec![[0; 5]; n],
    };
    let mut outcome = match config.sync {
        SyncMode::Epoch => eng.run_epoch(&mut link),
        SyncMode::Async => eng.run_async_wire(&mut link),
    };

    let console = if me == CONSOLE_NODE { outcome.node.take_console() } else { Vec::new() };
    let rep = WorkerReport {
        console,
        errors: std::mem::take(&mut outcome.errors),
        deadlocked: outcome.deadlocked,
        aborted: outcome.aborted,
        ops: outcome.node.ops,
        spawned_here: outcome.node.spawned_here,
        finish_time: outcome.node.finish_time,
        slab_high_water: outcome.slab_high_water,
        windows: outcome.windows,
        barrier_waits: outcome.barrier_waits,
        horizon_advances: outcome.horizon_advances,
        setup_ps,
        net: outcome.endpoint.stats.clone(),
        dsm: outcome.node.dsm_stats(),
        frames: outcome.endpoint.frame_stats,
        flight: flight.as_ref().map(|f| f.render()).unwrap_or_default(),
        objprof: outcome.node.take_objprof(),
    };
    tcp::write_envelope(&mut stream, &Envelope::Report { body: encode_worker_report(&rep) })
        .map_err(sock_err)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// The multi-process backend's coordinator: binds a listener, (optionally)
/// fork/execs one worker per node, handshakes them in, then acts as the
/// cluster's star switch — relaying data frames, sequencing epoch rounds,
/// and (async mode) deciding termination — until every worker has filed
/// its [`WorkerReport`].
pub struct SocketsDriver {
    config: ClusterConfig,
    prepared: Prepared,
    cfg_blob: Vec<u8>,
    program_bytes: Vec<u8>,
    config_hash: u64,
}

impl SocketsDriver {
    pub fn new(config: ClusterConfig, program: &jsplit_mjvm::class::Program) -> Result<SocketsDriver, ClusterError> {
        if !config.joins.is_empty() {
            return Err(ClusterError::Config(
                "the sockets backend does not support mid-run joins; use the sim backend".into(),
            ));
        }
        if config.trace.is_some() || config.profile {
            return Err(ClusterError::Config(
                "the sockets backend does not support tracing/profiling; use the threads backend".into(),
            ));
        }
        if config.nodes.len() >= ANY_NODE as usize {
            return Err(ClusterError::Config(format!(
                "the sockets backend supports at most {} nodes",
                ANY_NODE - 1
            )));
        }
        // Validate the config and compute what the report needs (rewrite
        // stats, class-distribution size); the workers re-derive the same
        // image from the wire bytes.
        let prepared = driver::prepare(&config, program)?;
        let cfg_blob = encode_wire_config(&config);
        let program_bytes = encode_program(program);
        let config_hash = tcp::fnv1a(&[&cfg_blob, &program_bytes]);
        Ok(SocketsDriver { config, prepared, cfg_blob, program_bytes, config_hash })
    }

    pub fn run(self) -> Result<RunReport, ClusterError> {
        let mut children: Vec<(u16, Child)> = Vec::new();
        let result = self.run_inner(&mut children);
        if result.is_err() {
            for (_, c) in children.iter_mut() {
                let _ = c.kill();
                let _ = c.wait();
            }
        }
        result
    }

    fn run_inner(self, children: &mut Vec<(u16, Child)>) -> Result<RunReport, ClusterError> {
        let started = Instant::now();
        let n = self.config.nodes.len();
        let sockets = self.config.sockets.clone();
        let listen = sockets.listen.unwrap_or_else(|| SocketAddr::from(([127, 0, 0, 1], 0)));
        let listener = TcpListener::bind(listen)
            .map_err(|e| ClusterError::Config(format!("sockets coordinator: cannot bind {listen}: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ClusterError::Config(format!("sockets coordinator: local_addr: {e}")))?;

        if sockets.spawn_workers {
            let bin = match &sockets.worker_bin {
                Some(p) => p.clone(),
                None => std::env::current_exe()
                    .map_err(|e| ClusterError::Config(format!("sockets coordinator: current_exe: {e}")))?,
            };
            for i in 0..n as u16 {
                let child = Command::new(&bin)
                    .arg("worker")
                    .arg("--connect")
                    .arg(addr.to_string())
                    .arg("--node-id")
                    .arg(i.to_string())
                    .arg("--config-hash")
                    .arg(self.config_hash.to_string())
                    .arg("--connect-timeout")
                    .arg(format!("{}", sockets.connect_timeout.as_secs_f64()))
                    .stdin(Stdio::null())
                    .spawn()
                    .map_err(|e| {
                        ClusterError::Config(format!(
                            "sockets coordinator: cannot spawn worker {i} ({}): {e}",
                            bin.display()
                        ))
                    })?;
                children.push((i, child));
            }
        } else {
            eprintln!(
                "jsplit sockets: waiting for {n} worker(s) on {addr} — start each with \
                 `jsplit worker --connect {addr}`"
            );
        }

        // Accept phase: non-blocking listener under a deadline, so a
        // worker that never dials in (or a spawned process that died)
        // turns into a clear error naming the missing node ids instead of
        // a hang.
        listener
            .set_nonblocking(true)
            .map_err(|e| ClusterError::Config(format!("sockets coordinator: set_nonblocking: {e}")))?;
        let deadline = Instant::now() + sockets.accept_timeout;
        let expect = HandshakeExpect { nodes: n as u16, config_hash: self.config_hash };
        // Telemetry/observer arming rides the Welcome, outside the hashed
        // wire config (deployment knobs never change virtual-time results).
        let metrics_interval_us = self
            .config
            .metrics
            .as_ref()
            .map(|m| {
                u64::try_from(m.interval.max(Duration::from_millis(1)).as_micros())
                    .unwrap_or(u64::MAX)
            })
            .unwrap_or(0);
        let mut wflags = 0u8;
        if self.config.objprof {
            wflags |= WF_OBJPROF;
        }
        if self.config.metrics.as_ref().is_some_and(|m| m.flight) {
            wflags |= WF_FLIGHT;
        }
        let mut claimed = vec![false; n];
        let mut streams: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        let mut rejections: Vec<String> = Vec::new();
        while claimed.iter().any(|c| !c) {
            match listener.accept() {
                Ok((stream, peer)) => {
                    let mut s = stream;
                    let _ = s.set_nonblocking(false);
                    let _ = s.set_nodelay(true);
                    let _ = s.set_read_timeout(Some(HELLO_TIMEOUT));
                    match tcp::read_envelope(&mut s) {
                        Ok(hello) => match tcp::validate_hello(&hello, expect, &claimed) {
                            Ok(id) => {
                                tcp::write_envelope(
                                    &mut s,
                                    &Envelope::Welcome {
                                        node_id: id,
                                        nodes: n as u16,
                                        config_hash: self.config_hash,
                                        metrics_interval_us,
                                        flags: wflags,
                                        config: self.cfg_blob.clone(),
                                        program: self.program_bytes.clone(),
                                    },
                                )
                                .map_err(|e| {
                                    ClusterError::Config(format!(
                                        "sockets coordinator: Welcome to node {id} failed: {e}"
                                    ))
                                })?;
                                let _ = s.set_read_timeout(None);
                                claimed[id as usize] = true;
                                streams[id as usize] = Some(s);
                            }
                            Err(reason) => {
                                let _ = tcp::write_envelope(&mut s, &Envelope::Reject { reason: reason.clone() });
                                eprintln!("jsplit sockets: rejected dial-in from {peer}: {reason}");
                                rejections.push(format!("{peer}: {reason}"));
                            }
                        },
                        Err(e) => rejections.push(format!("{peer}: bad hello: {e}")),
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    for (id, c) in children.iter_mut() {
                        if !claimed[*id as usize] {
                            if let Ok(Some(status)) = c.try_wait() {
                                return Err(ClusterError::Config(format!(
                                    "sockets coordinator: worker process for node {id} exited during the handshake ({status})"
                                )));
                            }
                        }
                    }
                    if Instant::now() >= deadline {
                        let missing: Vec<String> = claimed
                            .iter()
                            .enumerate()
                            .filter(|&(_, c)| !c)
                            .map(|(i, _)| i.to_string())
                            .collect();
                        let mut msg = format!(
                            "sockets coordinator: worker(s) for node id(s) {} never completed the handshake within {:?}",
                            missing.join(", "),
                            sockets.accept_timeout
                        );
                        if !rejections.is_empty() {
                            msg.push_str(&format!("; rejected dial-ins: {}", rejections.join("; ")));
                        }
                        return Err(ClusterError::Config(msg));
                    }
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(ClusterError::Config(format!("sockets coordinator: accept failed: {e}"))),
            }
        }
        drop(listener);
        let mut streams: Vec<TcpStream> = streams.into_iter().map(|s| s.expect("claimed")).collect();

        // Coordinator-owned telemetry: the registry the workers' `Metrics`
        // envelopes merge into, sampled and watchdogged exactly like the
        // threads backend samples its shared-memory registry — so the
        // NDJSON stream and the end-of-run summary are schema-identical.
        let metrics_cfg = self.config.metrics.clone();
        let registry = metrics_cfg.as_ref().map(|_| MetricsRegistry::new(n));
        let mut telemetry = metrics_cfg.as_ref().and_then(|cfg| {
            let wd = cfg.watchdog_budget.map(|d| WatchdogSpec {
                budget_ms: (d.as_millis() as u64).max(1),
                base_ps: self.config.nodes.iter().map(|s| driver::link_params(*s).base_ps()).collect(),
            });
            match Telemetry::start(cfg, registry.clone().expect("registry"), None, wd) {
                Ok(t) => Some(t),
                Err(e) => {
                    eprintln!("metrics: cannot open {:?}: {e}; sampling disabled", cfg.out);
                    None
                }
            }
        });

        // One reader thread per worker feeds a single sequencing queue;
        // this main thread does every write. Per-producer mpsc FIFO is the
        // ordering backbone: a worker's Data is dequeued before its
        // Barrier/Slot/State/Flushed, so every broadcast below happens
        // after the frames it logically follows have been relayed.
        let (tx, rx) = mpsc::channel::<(u16, io::Result<Envelope>)>();
        for (id, s) in streams.iter().enumerate() {
            let mut rs = s
                .try_clone()
                .map_err(|e| ClusterError::Config(format!("sockets coordinator: clone stream {id}: {e}")))?;
            let tx: Sender<(u16, io::Result<Envelope>)> = tx.clone();
            let id = id as u16;
            thread::spawn(move || loop {
                match tcp::read_envelope(&mut rs) {
                    Ok(env) => {
                        let last = matches!(env, Envelope::Report { .. });
                        if tx.send((id, Ok(env))).is_err() || last {
                            return;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send((id, Err(e)));
                        return;
                    }
                }
            });
        }
        drop(tx);

        let mut fwd_to = vec![0u64; n];
        let mut barrier_pending: HashMap<u64, u16> = HashMap::new();
        let mut slot_pending: HashMap<u64, (u16, Vec<SlotWire>)> = HashMap::new();
        let mut states: Vec<Option<(u64, u64, u64, u64)>> = vec![None; n];
        let mut done_sent = false;
        let mut flushed = 0usize;
        let mut report_blobs: Vec<Option<Vec<u8>>> = vec![None; n];
        let mut reports_in = 0usize;
        let werr = |id: u16, e: io::Error| {
            ClusterError::Config(format!("sockets coordinator: write to worker {id} failed: {e}"))
        };
        while reports_in < n {
            let (from, env) = rx
                .recv()
                .map_err(|_| ClusterError::Config("sockets coordinator: all worker connections lost".into()))?;
            let env = match env {
                Ok(env) => env,
                Err(e) => {
                    if let Some(t) = telemetry.take() {
                        t.finish();
                    }
                    return Err(ClusterError::Config(format!(
                        "sockets coordinator: worker {from} disconnected before reporting: {e}"
                    )));
                }
            };
            match env {
                Envelope::Data { src, dst, frame } => {
                    let d = dst as usize;
                    if d >= n {
                        return Err(ClusterError::Config(format!(
                            "sockets coordinator: worker {from} addressed nonexistent node {dst}"
                        )));
                    }
                    fwd_to[d] += frame_data_records(&frame);
                    tcp::write_data(&mut streams[d], src, dst, &frame).map_err(|e| werr(dst, e))?;
                }
                Envelope::Barrier { round } => {
                    let c = barrier_pending.entry(round).or_insert(0);
                    *c += 1;
                    if *c as usize == n {
                        barrier_pending.remove(&round);
                        for (id, s) in streams.iter_mut().enumerate() {
                            tcp::write_envelope(s, &Envelope::BarrierAck { round })
                                .map_err(|e| werr(id as u16, e))?;
                        }
                    }
                }
                Envelope::Slot { round, slot } => {
                    let e = slot_pending.entry(round).or_insert_with(|| (0, vec![[0u64; 5]; n]));
                    e.1[from as usize] = slot;
                    e.0 += 1;
                    if e.0 as usize == n {
                        let (_, slots) = slot_pending.remove(&round).expect("just inserted");
                        for (id, s) in streams.iter_mut().enumerate() {
                            tcp::write_envelope(s, &Envelope::Slots { round, slots: slots.clone() })
                                .map_err(|e| werr(id as u16, e))?;
                        }
                    }
                }
                Envelope::State { qhead, drained, live, ops } => {
                    states[from as usize] = Some((qhead, drained, live, ops));
                    if !done_sent {
                        if let Some(outcome) = decide_async(&states, &fwd_to, self.config.max_ops) {
                            done_sent = true;
                            for (id, s) in streams.iter_mut().enumerate() {
                                tcp::write_envelope(s, &Envelope::Done { outcome: outcome as u8 })
                                    .map_err(|e| werr(id as u16, e))?;
                            }
                        }
                    }
                }
                Envelope::Flushed => {
                    flushed += 1;
                    if flushed == n {
                        // All leftovers are relayed (each worker's frames
                        // precede its Flushed); Shutdown lands behind them
                        // on every stream.
                        for (id, s) in streams.iter_mut().enumerate() {
                            tcp::write_envelope(s, &Envelope::Shutdown).map_err(|e| werr(id as u16, e))?;
                        }
                    }
                }
                Envelope::Report { body } => {
                    report_blobs[from as usize] = Some(body);
                    reports_in += 1;
                }
                Envelope::Metrics { node: _, cells } => {
                    // Merge the worker's registry row (trust `from`, the
                    // authenticated stream, over the claimed node id). A
                    // mismatched cell count is a version skew the handshake
                    // should have caught — drop the sample, not the run.
                    if let Some(reg) = &registry {
                        if cells.len() == METRICS {
                            for (m, v) in ALL_METRICS.iter().zip(cells) {
                                reg.set(from, *m, v);
                            }
                        }
                    }
                }
                Envelope::Fault { node, message, flight } => {
                    if !flight.is_empty() {
                        eprintln!("jsplit sockets: worker {node} flight recorder:\n{flight}");
                    }
                    if let Some(t) = telemetry.take() {
                        t.finish();
                    }
                    return Err(ClusterError::Config(format!("worker {node} panicked: {message}")));
                }
                other => {
                    return Err(ClusterError::Config(format!(
                        "sockets coordinator: unexpected {other:?} from worker {from}"
                    )))
                }
            }
        }

        // Reap spawned workers (they exit right after their Report).
        let reap_deadline = Instant::now() + Duration::from_secs(10);
        for (id, c) in children.iter_mut() {
            loop {
                match c.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < reap_deadline => thread::sleep(Duration::from_millis(5)),
                    _ => {
                        let _ = c.kill();
                        let _ = c.wait();
                        eprintln!("jsplit sockets: worker {id} did not exit after reporting; killed");
                        break;
                    }
                }
            }
        }
        children.clear();

        // Stop the sampler (it takes one closing sample of the merged
        // registry) and fold the time series into the report.
        let telemetry_summary = telemetry.take().map(Telemetry::finish);

        let reports: Vec<WorkerReport> = report_blobs
            .into_iter()
            .enumerate()
            .map(|(i, b)| {
                decode_worker_report(&b.expect("report counted"))
                    .map_err(|e| ClusterError::Config(format!("sockets coordinator: bad report from worker {i}: {e}")))
            })
            .collect::<Result<_, _>>()?;
        // The watchdog fired during the run: relay each worker's flight-
        // recorder tail (the coordinator has no local one to dump).
        if telemetry_summary.as_ref().is_some_and(|t| !t.stalls.is_empty()) {
            for (i, r) in reports.iter().enumerate() {
                if !r.flight.is_empty() {
                    eprintln!("jsplit sockets: worker {i} flight recorder:\n{}", r.flight);
                }
            }
        }
        Ok(self.assemble(started, reports, telemetry_summary))
    }

    /// Fold the per-worker reports into the same [`RunReport`] shape the
    /// sim and threads drivers produce (minus trace/profile, which the
    /// sockets backend rejects at construction).
    fn assemble(
        self,
        started: Instant,
        mut reports: Vec<WorkerReport>,
        telemetry: Option<jsplit_trace::TelemetrySummary>,
    ) -> RunReport {
        let mut errors: Vec<(ThreadUid, VmError)> = Vec::new();
        let mut console = Vec::new();
        for (i, r) in reports.iter_mut().enumerate() {
            errors.append(&mut r.errors);
            if i == CONSOLE_NODE as usize {
                console = std::mem::take(&mut r.console);
            }
        }
        let objprof = self.config.objprof.then(|| {
            // Slice index = node id (reports are in node order).
            let profiles: Vec<ObjProfile> =
                reports.iter_mut().map(|r| r.objprof.take().unwrap_or_default()).collect();
            jsplit_trace::build_report(&profiles)
        });
        let sync = SyncStats {
            windows: match self.config.sync {
                SyncMode::Epoch => reports[0].windows,
                SyncMode::Async => reports.iter().map(|r| r.windows).sum(),
            },
            barrier_waits: reports.iter().map(|r| r.barrier_waits).sum(),
            frames_sent: reports.iter().map(|r| r.frames.frames_sent).sum(),
            frame_bytes: reports.iter().map(|r| r.frames.frame_bytes).sum(),
            msgs_framed: reports.iter().map(|r| r.frames.msgs_framed).sum(),
            nulls_sent: reports.iter().map(|r| r.frames.nulls_sent).sum(),
            nulls_piggybacked: reports.iter().map(|r| r.frames.nulls_piggybacked).sum(),
            horizon_advances: reports.iter().map(|r| r.horizon_advances).sum(),
        };
        RunReport {
            exec_time_ps: reports.iter().map(|r| r.finish_time).max().unwrap_or(0),
            output: console,
            errors,
            deadlocked: reports[0].deadlocked,
            aborted: reports[0].aborted,
            ops: reports.iter().map(|r| r.ops).sum(),
            threads: reports.iter().map(|r| r.spawned_here).sum(),
            net_per_node: reports.iter().map(|r| r.net.clone()).collect(),
            dsm_per_node: reports.iter().filter_map(|r| r.dsm.clone()).collect(),
            rewrite: self.prepared.rewrite,
            setup_ps: reports.iter().map(|r| r.setup_ps).max().unwrap_or(0),
            class_bytes: self.prepared.class_bytes as u64,
            event_slab_high_water: reports.iter().map(|r| r.slab_high_water).max().unwrap_or(0),
            ops_per_node: reports.iter().map(|r| r.ops).collect(),
            trace: None,
            breakdown: Vec::new(),
            lock_stats: Vec::new(),
            host_wall_secs: started.elapsed().as_secs_f64(),
            sync,
            wall: None,
            telemetry,
            opstats: None,
            objprof,
        }
    }
}

/// The async-mode termination scan (DESIGN.md §16.3), evaluated on every
/// `State` arrival: FINISH/DEADLOCK when every worker has reported, is
/// idle (`qhead == MAX`) and has drained exactly what was relayed toward
/// it; ABORT as soon as the cluster-wide retired-op count (over the states
/// present so far) exceeds the budget. Re-evaluating only on `State`
/// arrivals is sufficient: `fwd_to` changes only when data is relayed, and
/// a worker that drains new data always re-reports (its `drained` tuple
/// component changed).
fn decide_async(states: &[Option<(u64, u64, u64, u64)>], fwd_to: &[u64], max_ops: u64) -> Option<u64> {
    let ops: u64 = states.iter().flatten().map(|s| s.3).sum();
    if ops > max_ops {
        return Some(async_done::ABORT);
    }
    let mut live = 0u64;
    for (w, st) in states.iter().enumerate() {
        let &(qhead, drained, l, _) = st.as_ref()?;
        if qhead != u64::MAX || drained != fwd_to[w] {
            return None;
        }
        live += l;
    }
    Some(if live == 0 { async_done::FINISH } else { async_done::DEADLOCK })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_config_round_trips() {
        let mut cfg = ClusterConfig::javasplit(JvmProfile::SunSim, 4);
        cfg.nodes[2] = NodeSpec { profile: JvmProfile::IbmSim };
        cfg.protocol = ProtocolMode::ClassicHlrc;
        cfg.balancer = Balancer::RoundRobin;
        cfg.fuel = 123;
        cfg.max_ops = 9_999;
        cfg.disable_local_locks = true;
        cfg.array_chunk = Some(64);
        cfg.lookahead = Lookahead::Global;
        cfg.sync = SyncMode::Async;
        cfg.wire_batch = false;
        let got = decode_wire_config(&encode_wire_config(&cfg)).unwrap();
        assert_eq!(got.mode, cfg.mode);
        assert_eq!(got.nodes, cfg.nodes);
        assert_eq!(got.cpus_per_node, cfg.cpus_per_node);
        assert_eq!(got.protocol, cfg.protocol);
        assert_eq!(got.balancer, cfg.balancer);
        assert_eq!(got.fuel, cfg.fuel);
        assert_eq!(got.max_ops, cfg.max_ops);
        assert_eq!(got.disable_local_locks, cfg.disable_local_locks);
        assert_eq!(got.array_chunk, cfg.array_chunk);
        assert_eq!(got.lookahead, cfg.lookahead);
        assert_eq!(got.sync, cfg.sync);
        assert_eq!(got.wire_batch, cfg.wire_batch);
        assert_eq!(got.backend, Backend::Sockets);
        assert!(got.trace.is_none() && !got.profile && got.metrics.is_none());
        // Deployment-side observers stay out of the hashed wire config.
        assert!(!got.objprof);
    }

    #[test]
    fn worker_report_round_trips() {
        let mut net = NetStats { msgs_sent: 7, bytes_recv: 1234, ..NetStats::default() };
        net.sent_by_kind[3] = 42;
        net.recv_bytes_by_kind[7] = 99;
        let dsm = DsmStats {
            promotions: 1,
            fetches: 2,
            notices_stored_max: 37,
            notice_mem_max: 512,
            ..DsmStats::default()
        };
        let rep = WorkerReport {
            console: vec!["hello".into(), "world".into()],
            errors: vec![
                (3, VmError::NullDeref { method: "Foo.bar".into(), pc: 17 }),
                (9, VmError::IndexOutOfBounds { len: 4, idx: -1 }),
                (1, VmError::IllegalMonitorState { op: "notify" }),
                (2, VmError::VolatileStackEmpty),
            ],
            deadlocked: true,
            aborted: false,
            ops: 1_000_000,
            spawned_here: 12,
            finish_time: 987_654_321,
            slab_high_water: 64,
            windows: 17,
            barrier_waits: 5,
            horizon_advances: 31,
            setup_ps: 555,
            net,
            dsm: Some(dsm),
            frames: FrameStats {
                frames_sent: 10,
                frame_bytes: 2000,
                msgs_framed: 30,
                nulls_sent: 4,
                nulls_piggybacked: 2,
            },
            flight: "t+0.1ms decide outcome=1".into(),
            objprof: Some({
                let mut p = ObjProfile::new();
                p.bump(0x0100_0000_0042, jsplit_trace::ObjEvent::Fetch);
                p.grant_edge(0x0100_0000_0042, 3);
                p.note_region(0x0100_0000_0043, 0x0100_0000_0042);
                p.bump_unattributed(jsplit_trace::ObjEvent::Notify);
                p
            }),
        };
        let got = decode_worker_report(&encode_worker_report(&rep)).unwrap();
        assert_eq!(got, rep);
        // The dsm-less, observer-less (baseline) shape too.
        let rep2 = WorkerReport {
            dsm: None,
            console: Vec::new(),
            errors: Vec::new(),
            flight: String::new(),
            objprof: None,
            ..rep
        };
        let got2 = decode_worker_report(&encode_worker_report(&rep2)).unwrap();
        assert_eq!(got2, rep2);
    }

    #[test]
    fn async_decision_requires_full_quiescence() {
        let m = u64::MAX;
        // Missing state: no decision.
        assert_eq!(decide_async(&[Some((m, 0, 0, 1)), None], &[0, 0], u64::MAX), None);
        // Busy worker: no decision.
        assert_eq!(
            decide_async(&[Some((5, 0, 0, 1)), Some((m, 0, 0, 1))], &[0, 0], u64::MAX),
            None
        );
        // Undrained relay: no decision.
        assert_eq!(
            decide_async(&[Some((m, 2, 0, 1)), Some((m, 0, 0, 1))], &[3, 0], u64::MAX),
            None
        );
        // All idle and drained, no live threads: finish.
        assert_eq!(
            decide_async(&[Some((m, 2, 0, 1)), Some((m, 1, 0, 1))], &[2, 1], u64::MAX),
            Some(async_done::FINISH)
        );
        // Same but a live (blocked) thread somewhere: deadlock.
        assert_eq!(
            decide_async(&[Some((m, 2, 1, 1)), Some((m, 1, 0, 1))], &[2, 1], u64::MAX),
            Some(async_done::DEADLOCK)
        );
        // Op budget blown: abort, even with states missing.
        assert_eq!(decide_async(&[Some((5, 0, 0, 100)), None], &[0, 0], 99), Some(async_done::ABORT));
    }
}
