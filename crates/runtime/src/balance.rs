//! Plug-in load balancing (paper §2).
//!
//! "Each newly created application thread is placed for execution on one of
//! the worker nodes, according to a plug-in load balancing function.
//! Currently, we use the simplest load-balancing function, placing a new
//! thread on the least loaded worker."

use jsplit_net::NodeId;

/// The load-balancing strategy interface: given the live-thread count per
/// node and the spawning node, pick the executing node.
pub trait LoadBalancer {
    fn pick(&mut self, loads: &[usize], origin: NodeId) -> NodeId;
}

/// Built-in strategies (a trait object also works for custom ones; the enum
/// keeps configs `Clone`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Balancer {
    /// The paper's default.
    LeastLoaded,
    /// Cycle through nodes regardless of load.
    RoundRobin,
    /// Keep every thread on the spawning node (useful for ablations: all
    /// parallelism stays local).
    Pinned,
}

/// Stateful instantiation of a [`Balancer`].
#[derive(Debug)]
pub struct BalancerState {
    kind: Balancer,
    next: usize,
}

impl BalancerState {
    pub fn new(kind: Balancer) -> BalancerState {
        BalancerState { kind, next: 0 }
    }
}

impl LoadBalancer for BalancerState {
    fn pick(&mut self, loads: &[usize], origin: NodeId) -> NodeId {
        match self.kind {
            Balancer::LeastLoaded => loads
                .iter()
                .enumerate()
                .min_by_key(|(i, &l)| (l, *i))
                .map(|(i, _)| i as NodeId)
                .unwrap_or(origin),
            Balancer::RoundRobin => {
                let n = loads.len().max(1);
                let pick = (self.next % n) as NodeId;
                self.next += 1;
                pick
            }
            Balancer::Pinned => origin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_loaded_picks_minimum_then_lowest_id() {
        let mut b = BalancerState::new(Balancer::LeastLoaded);
        assert_eq!(b.pick(&[3, 1, 2], 0), 1);
        assert_eq!(b.pick(&[2, 2, 2], 1), 0, "tie broken by lowest id");
    }

    #[test]
    fn round_robin_cycles() {
        let mut b = BalancerState::new(Balancer::RoundRobin);
        let picks: Vec<NodeId> = (0..5).map(|_| b.pick(&[0, 0, 0], 0)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn pinned_stays_home() {
        let mut b = BalancerState::new(Balancer::Pinned);
        assert_eq!(b.pick(&[9, 0], 0), 0);
    }
}
