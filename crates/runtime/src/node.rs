//! One worker node as an independent runtime (paper §2: each node is a
//! separate JVM on a commodity workstation).
//!
//! [`NodeRuntime`] owns everything that is per-node in the paper's design —
//! heap, interpreter threads, scheduler queues, the DSM engine and the
//! environment — and *nothing* that is global. It never touches a clock or
//! a network: every externally visible consequence of running it (future
//! local events, outgoing protocol messages, thread spawns, trace records)
//! is emitted as an ordered [`Effect`] list that the owning [driver]
//! executes. The effect order is exactly the event-push order of the
//! original monolithic scheduler, which is what keeps the virtual-time sim
//! driver bit-for-bit identical and lets the threads driver replay the same
//! semantics on real OS threads.
//!
//! [driver]: crate::driver

use crate::config::{ClusterConfig, Mode, NodeSpec};
use crate::env::{JsEnv, NodeEnv};
use jsplit_dsm::node::Action;
use jsplit_dsm::{DsmConfig, DsmNode, Msg};
use jsplit_mjvm::cost::CostModel;
use jsplit_mjvm::heap::{Heap, ObjRef, ThreadUid};
use jsplit_mjvm::interp::{self, Frame, StepCtx, StepState, Thread, VmError};
use jsplit_mjvm::loader::{ClassId, Image};
use jsplit_mjvm::opstats::OpStats;
use jsplit_mjvm::pcode::{self, PImage};
use jsplit_net::NodeId;
use jsplit_trace::TraceEvent;
use std::collections::VecDeque;
use std::sync::Arc;

/// Sentinel in [`NodeRuntime::thread_slot`] marking a uid whose thread has
/// exited or never lived here (slab slots are recycled, uids are not).
pub const DEAD_SLOT: u32 = u32::MAX;

/// A node-local scheduled event: what a driver's queue holds for one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalEv {
    /// Run a quantum of `thread` on `cpu`.
    Slice { cpu: usize, thread: ThreadUid },
    /// Make `thread` runnable (sleep timer expiry or deferred wake).
    Wake { thread: ThreadUid },
}

/// One externally visible consequence of advancing a node, in emission
/// order. Drivers must execute effects strictly in order: the sim driver's
/// determinism contract is that its global event sequence numbers are
/// assigned in exactly this order.
#[derive(Debug)]
pub enum Effect {
    /// Schedule a node-local event at virtual `time`.
    Local { time: u64, ev: LocalEv },
    /// Transmit a protocol message at virtual time `at` (the driver owns
    /// latency, delivery and accounting via its transport).
    Send { at: u64, dst: NodeId, msg: Msg },
    /// A newly started thread needs placing — load balancing, uid
    /// allocation and shipping are driver concerns.
    Spawn { now: u64, thread_obj: ObjRef, priority: i32 },
    /// Record one trace event (emitted only when tracing is enabled).
    Trace { t: u64, ev: TraceEvent },
    /// Drain the node's buffered DSM trace events (and the driver's network
    /// trace buffer) at virtual time `now` — the stamping point.
    FlushTrace { now: u64 },
}

/// What one CPU slice did, for the driver's global bookkeeping.
#[derive(Debug, Default)]
pub struct SliceResult {
    /// Instructions retired in the slice.
    pub ops: u64,
    /// The thread exited (normally or by trap).
    pub exited: bool,
    /// The trap, if the thread died with one.
    pub error: Option<VmError>,
}

/// A single worker node's complete runtime state.
pub struct NodeRuntime {
    pub id: NodeId,
    pub model: &'static CostModel,
    pub heap: Heap,
    pub env: NodeEnv,
    image: Arc<Image>,
    /// Thread slab: a thread's slot is stable for its whole life (slots of
    /// exited threads are recycled through `free_slots`), so a CPU slice
    /// runs the thread in place.
    threads: Vec<Option<Thread>>,
    free_slots: Vec<u32>,
    /// Live threads on this node (the slab has holes, so it is counted).
    live: usize,
    ready: VecDeque<ThreadUid>,
    cpu_free: Vec<u64>,
    cpu_busy: Vec<bool>,
    /// uid → slot in the thread slab ([`DEAD_SLOT`] if exited or foreign).
    /// Grown on demand: uids are allocated by the driver and may be sparse
    /// on this node (dense-global under the sim driver, strided per node
    /// under the threads driver).
    thread_slot: Vec<u32>,
    /// uid → currently queued in the ready queue.
    in_ready: Vec<bool>,
    /// Instructions retired on this node.
    pub ops: u64,
    /// Virtual time at which this node's last thread so far finished.
    pub finish_time: u64,
    /// Threads created on this node over the run.
    pub spawned_here: u32,
    fuel: u32,
    tracing: bool,
    /// Predecoded bodies for this node's cost model (`None` = classic
    /// enum-dispatch interpreter, the A/B reference path).
    pimage: Option<Arc<PImage>>,
    /// Opcode/pair frequency counters (`repro opstats`); forces classic.
    opstats: Option<Box<OpStats>>,
}

impl NodeRuntime {
    /// Build a fresh worker: heap with statics, environment per mode.
    pub fn new(id: NodeId, spec: NodeSpec, config: &ClusterConfig, image: Arc<Image>, thread_class: ClassId) -> NodeRuntime {
        let model = spec.profile.cost_model();
        let mut heap = Heap::new();
        heap.init_statics(&image);
        let mut env = match config.mode {
            Mode::Baseline => NodeEnv::Baseline(jsplit_mjvm::BaselineEnv::new(model, thread_class)),
            Mode::JavaSplit => NodeEnv::Js(JsEnv::new(
                model,
                id,
                DsmNode::new(
                    id,
                    DsmConfig {
                        mode: config.protocol,
                        disable_local_locks: config.disable_local_locks,
                        array_chunk: config.array_chunk,
                    },
                ),
                thread_class,
            )),
        };
        let tracing = config.trace.is_some();
        if tracing {
            if let NodeEnv::Js(e) = &mut env {
                e.dsm.trace = Some(Vec::new());
            }
        }
        if config.objprof {
            if let NodeEnv::Js(e) = &mut env {
                e.dsm.objprof = Some(Box::new(jsplit_trace::ObjProfile::new()));
            }
        }
        // The micro-op image bakes in this node's cost model, so it is
        // per-node even though the loaded image is shared. Profiling runs
        // stay on the classic interpreter, where the counter hooks live.
        let opstats = config.opstats.then(|| Box::new(OpStats::default()));
        let pimage = (!config.classic_interp && opstats.is_none())
            .then(|| Arc::new(pcode::predecode(&image, model)));
        NodeRuntime {
            id,
            model,
            heap,
            env,
            image,
            threads: Vec::new(),
            free_slots: Vec::new(),
            live: 0,
            ready: VecDeque::new(),
            cpu_free: vec![0; config.cpus_per_node],
            cpu_busy: vec![false; config.cpus_per_node],
            thread_slot: Vec::new(),
            in_ready: Vec::new(),
            ops: 0,
            finish_time: 0,
            spawned_here: 0,
            fuel: config.fuel,
            tracing,
            pimage,
            opstats,
        }
    }

    /// Take this node's opcode/pair counters (profiling runs only).
    pub fn take_opstats(&mut self) -> Option<OpStats> {
        self.opstats.take().map(|b| *b)
    }

    /// Live threads on this node.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Delay every CPU until `at` (a joiner downloading the class files).
    pub fn set_cpu_floor(&mut self, at: u64) {
        for c in &mut self.cpu_free {
            *c = at;
        }
    }

    /// The DSM engine (JavaSplit mode only; panics in baseline mode).
    pub fn dsm(&mut self) -> &mut DsmNode {
        &mut self.env.js().dsm
    }

    /// This node's DSM statistics (`None` in baseline mode).
    pub fn dsm_stats(&self) -> Option<jsplit_dsm::DsmStats> {
        match &self.env {
            NodeEnv::Js(e) => Some(e.dsm.stats.clone()),
            NodeEnv::Baseline(_) => None,
        }
    }

    /// Borrowed view of the DSM statistics (`None` in baseline mode) —
    /// the metrics publish path reads a few counters per round and must
    /// not clone the whole struct each time.
    pub fn dsm_stats_ref(&self) -> Option<&jsplit_dsm::DsmStats> {
        match &self.env {
            NodeEnv::Js(e) => Some(&e.dsm.stats),
            NodeEnv::Baseline(_) => None,
        }
    }

    /// Take the buffered (unstamped) DSM trace events, if any.
    pub fn take_dsm_trace(&mut self) -> Vec<TraceEvent> {
        match &mut self.env {
            NodeEnv::Js(e) => e.dsm.take_trace(),
            NodeEnv::Baseline(_) => Vec::new(),
        }
    }

    /// Take this node's per-object sharing profile (`None` when the
    /// profiler is off or in baseline mode).
    pub fn take_objprof(&mut self) -> Option<jsplit_trace::ObjProfile> {
        match &mut self.env {
            NodeEnv::Js(e) => e.dsm.take_objprof(),
            NodeEnv::Baseline(_) => None,
        }
    }

    /// Append a console line delivered to this (console) node.
    pub fn push_console(&mut self, line: String) {
        match &mut self.env {
            NodeEnv::Js(e) => e.console.push(line),
            NodeEnv::Baseline(e) => e.output.push(line),
        }
    }

    /// Drain this node's console output (for the final report).
    pub fn take_console(&mut self) -> Vec<String> {
        match &mut self.env {
            NodeEnv::Js(e) => std::mem::take(&mut e.console),
            NodeEnv::Baseline(e) => std::mem::take(&mut e.output),
        }
    }

    fn insert_thread(&mut self, th: Thread) -> u32 {
        self.live += 1;
        match self.free_slots.pop() {
            Some(s) => {
                self.threads[s as usize] = Some(th);
                s
            }
            None => {
                self.threads.push(Some(th));
                (self.threads.len() - 1) as u32
            }
        }
    }

    fn remove_thread(&mut self, slot: u32) -> Thread {
        self.live -= 1;
        self.free_slots.push(slot);
        self.threads[slot as usize].take().expect("live thread slot")
    }

    fn slot_of(&self, uid: ThreadUid) -> u32 {
        self.thread_slot.get(uid as usize).copied().unwrap_or(DEAD_SLOT)
    }

    fn set_slot(&mut self, uid: ThreadUid, slot: u32) {
        let i = uid as usize;
        if i >= self.thread_slot.len() {
            self.thread_slot.resize(i + 1, DEAD_SLOT);
            self.in_ready.resize(i + 1, false);
        }
        self.thread_slot[i] = slot;
    }

    #[inline]
    fn tr(&self, out: &mut Vec<Effect>, t: u64, ev: TraceEvent) {
        if self.tracing {
            out.push(Effect::Trace { t, ev });
        }
    }

    /// Install a new thread (uid allocated by the driver) and schedule it.
    pub fn add_thread(&mut self, uid: ThreadUid, frame: Frame, thread_obj: Option<ObjRef>, now: u64, out: &mut Vec<Effect>) {
        let mut th = Thread::new(uid, frame);
        th.thread_obj = thread_obj;
        if let Some(obj) = thread_obj {
            // Thread layout: target(0), priority(1), alive(2).
            if let jsplit_mjvm::ObjPayload::Fields(f) = &self.heap.get(obj).payload {
                if let Some(p) = f.get(1) {
                    th.priority = p.as_i32().clamp(1, 10);
                }
            }
        }
        let slot = self.insert_thread(th);
        self.tr(out, now, TraceEvent::ThreadSpawn { node: self.id, thread: uid });
        self.set_slot(uid, slot);
        self.in_ready[uid as usize] = true;
        self.ready.push_back(uid);
        self.spawned_here += 1;
        self.schedule(now, out);
    }

    /// A live thread's slab slot (panics if dead/foreign).
    fn thread_mut(&mut self, uid: ThreadUid) -> &mut Thread {
        let slot = self.slot_of(uid);
        self.threads[slot as usize].as_mut().expect("live thread")
    }

    /// Override a live thread's priority (shipped-thread install).
    pub fn set_priority(&mut self, uid: ThreadUid, priority: i32) {
        self.thread_mut(uid).priority = priority.clamp(1, 10);
    }

    /// Assign ready threads to idle CPUs.
    fn schedule(&mut self, now: u64, out: &mut Vec<Effect>) {
        loop {
            if self.ready.is_empty() {
                break;
            }
            let Some(cpu) = (0..self.cpu_free.len())
                .filter(|&c| !self.cpu_busy[c])
                .min_by_key(|&c| self.cpu_free[c])
            else {
                break;
            };
            let thread = self.ready.pop_front().unwrap();
            self.in_ready[thread as usize] = false;
            if self.slot_of(thread) == DEAD_SLOT {
                continue;
            }
            self.cpu_busy[cpu] = true;
            let start = now.max(self.cpu_free[cpu]);
            out.push(Effect::Local { time: start, ev: LocalEv::Slice { cpu, thread } });
        }
    }

    /// Make `thread` runnable (no-op for dead/queued threads).
    pub fn make_ready(&mut self, thread: ThreadUid, now: u64, out: &mut Vec<Effect>) {
        let i = thread as usize;
        if self.slot_of(thread) == DEAD_SLOT || self.in_ready[i] {
            return;
        }
        self.tr(out, now, TraceEvent::ThreadReady { node: self.id, thread });
        self.in_ready[i] = true;
        self.ready.push_back(thread);
        self.schedule(now, out);
    }

    /// Drain the environment's accumulated effects (DSM actions, spawns,
    /// sleepers, console sends) at virtual time `now`, in the fixed order
    /// the scheduler has always used: actions, sends, sleepers, spawns,
    /// then the trace flush point.
    pub fn drain_effects(&mut self, now: u64, out: &mut Vec<Effect>) {
        let (actions, sends, spawns, sleepers) = {
            match &mut self.env {
                NodeEnv::Js(e) => (
                    e.dsm.drain_actions(),
                    std::mem::take(&mut e.sends),
                    std::mem::take(&mut e.spawns),
                    std::mem::take(&mut e.sleepers),
                ),
                NodeEnv::Baseline(e) => {
                    let spawns: Vec<(ObjRef, i32)> = e.spawns.drain(..).map(|o| (o, 5)).collect();
                    let wakes: Vec<ThreadUid> = e.wakes.drain(..).collect();
                    let sleepers = std::mem::take(&mut e.sleepers);
                    let actions: Vec<Action> = wakes.into_iter().map(|t| Action::Wake { thread: t }).collect();
                    (actions, Vec::new(), spawns, sleepers)
                }
            }
        };

        for a in actions {
            match a {
                Action::Wake { thread } => self.make_ready(thread, now, out),
                Action::Send { dst, msg } => out.push(Effect::Send { at: now, dst, msg }),
            }
        }
        for (dst, msg) in sends {
            out.push(Effect::Send { at: now, dst, msg });
        }
        for (wake, thread) in sleepers {
            out.push(Effect::Local { time: wake.max(now), ev: LocalEv::Wake { thread } });
        }
        for (thread_obj, priority) in spawns {
            out.push(Effect::Spawn { now, thread_obj, priority });
        }
        if self.tracing {
            out.push(Effect::FlushTrace { now });
        }
    }

    /// Run one CPU quantum of `thread` at virtual `time`.
    pub fn run_slice(&mut self, time: u64, cpu: usize, thread: ThreadUid, out: &mut Vec<Effect>) -> SliceResult {
        let fuel = self.fuel;
        let tracing = self.tracing;
        let mut res = SliceResult::default();
        let slot = self.slot_of(thread);
        if slot == DEAD_SLOT {
            self.cpu_busy[cpu] = false;
            return res;
        }
        let node = self.id;
        // Buffered locally: trace effects are appended once the interpreter
        // borrow ends, in the order the monolithic scheduler recorded them.
        let mut tev: Vec<(u64, TraceEvent)> = Vec::new();
        let end = {
            let th = self.threads[slot as usize].as_mut().expect("live thread slot");
            self.env.set_now(time);
            let model = self.model;
            let step = {
                let mut ctx = StepCtx { image: &self.image, heap: &mut self.heap, env: &mut self.env, cost: model };
                if let Some(pim) = &self.pimage {
                    pcode::step(th, &mut ctx, pim, fuel)
                } else if let Some(stats) = self.opstats.as_deref_mut() {
                    interp::step_with_stats(th, &mut ctx, fuel, stats)
                } else {
                    interp::step(th, &mut ctx, fuel)
                }
            };
            match step {
                Ok(o) => {
                    let end = time + o.cost.max(1);
                    self.cpu_free[cpu] = end;
                    self.cpu_busy[cpu] = false;
                    self.ops += o.ops;
                    res.ops = o.ops;
                    if tracing {
                        tev.push((time, TraceEvent::Slice { node, cpu: cpu as u32, thread, end, ops: o.ops }));
                    }
                    match o.state {
                        StepState::Running => {
                            self.in_ready[thread as usize] = true;
                            self.ready.push_back(thread);
                        }
                        StepState::Blocked => {
                            if tracing {
                                let reason = self.env.take_block_reason();
                                tev.push((end, TraceEvent::ThreadBlock { node, thread, reason }));
                            }
                        }
                        StepState::Done => {
                            let th = self.remove_thread(slot);
                            self.thread_slot[thread as usize] = DEAD_SLOT;
                            res.exited = true;
                            self.finish_time = self.finish_time.max(end);
                            if tracing {
                                tev.push((end, TraceEvent::ThreadExit { node, thread }));
                            }
                            // Thread exit is a release point: flush its
                            // interval now so joiners don't wait behind it,
                            // and hand the Thread object's lock back to its
                            // home, where the joiner lives.
                            if let NodeEnv::Js(e) = &mut self.env {
                                e.dsm.flush_interval(&mut self.heap);
                                if let Some(tobj) = th.thread_obj {
                                    if let Some(gid) = self.heap.get(tobj).dsm.gid {
                                        e.dsm.release_ownership_to_home(&mut self.heap, gid);
                                    }
                                }
                            }
                        }
                    }
                    end
                }
                Err(e) => {
                    let end = time + 1;
                    self.cpu_free[cpu] = end;
                    self.cpu_busy[cpu] = false;
                    let th = self.remove_thread(slot);
                    self.thread_slot[thread as usize] = DEAD_SLOT;
                    res.exited = true;
                    res.error = Some(e);
                    self.finish_time = self.finish_time.max(end);
                    if tracing {
                        tev.push((time, TraceEvent::Slice { node, cpu: cpu as u32, thread, end, ops: 0 }));
                        tev.push((end, TraceEvent::ThreadExit { node, thread }));
                    }
                    // A trapped thread is still a release point (it can
                    // never run again): flush its interval, force-drop any
                    // monitors it still holds so blocked siblings don't
                    // deadlock, and hand its Thread object's lock home for
                    // the joiner — mirroring normal termination above.
                    if let NodeEnv::Js(env) = &mut self.env {
                        env.dsm.flush_interval(&mut self.heap);
                        env.dsm.release_all_held(&mut self.heap, thread);
                        if let Some(tobj) = th.thread_obj {
                            if let Some(gid) = self.heap.get(tobj).dsm.gid {
                                env.dsm.release_ownership_to_home(&mut self.heap, gid);
                            }
                        }
                    }
                    end
                }
            }
        };
        for (t, ev) in tev {
            out.push(Effect::Trace { t, ev });
        }
        self.drain_effects(end, out);
        self.schedule(end, out);
        res
    }

    /// Handle a delivered DSM protocol message at virtual `time` (anything
    /// but `Println`/`SpawnThread`, which the driver routes itself).
    pub fn handle_dsm(&mut self, time: u64, msg: Msg, out: &mut Vec<Effect>) {
        let handler_ps = {
            let env = self.env.js();
            env.dsm.handle(&mut self.heap, &self.image, msg);
            self.model.handler_fixed_ns * 1_000
        };
        self.drain_effects(time + handler_ps, out);
    }

    /// Install a shipped thread object (driver-allocated `uid`), schedule
    /// it and drain the install's effects — the `SpawnThread` delivery path.
    #[allow(clippy::too_many_arguments)]
    pub fn install_spawned_thread(
        &mut self,
        uid: ThreadUid,
        thread_gid: jsplit_mjvm::heap::Gid,
        class: u32,
        state: &jsplit_dsm::WireState,
        priority: i32,
        thread_main: jsplit_mjvm::loader::MethodId,
        time: u64,
        out: &mut Vec<Effect>,
    ) {
        let obj = {
            let image = self.image.clone();
            let env = self.env.js();
            env.dsm.install_spawned(&mut self.heap, &image, thread_gid, class, state)
        };
        let m = self.image.method(thread_main);
        let frame = Frame::new(thread_main, m.max_locals, vec![jsplit_mjvm::Value::Ref(obj)], false);
        self.add_thread(uid, frame, Some(obj), time, out);
        self.set_priority(uid, priority);
        self.drain_effects(time, out);
    }

    /// Share and serialize a locally started thread for shipping (§2).
    pub fn prepare_spawn(&mut self, thread_obj: ObjRef, priority: i32) -> Msg {
        let image = self.image.clone();
        let env = self.env.js();
        env.dsm.prepare_spawn(&mut self.heap, &image, thread_obj, priority)
    }

    /// The image this node executes.
    pub fn image(&self) -> &Arc<Image> {
        &self.image
    }
}
