//! The virtual-time driver: discrete-event simulation over the node
//! runtimes (the "runtime" of the paper's §2, with the testbed of §6 as
//! its virtual-time model).
//!
//! One global event queue orders CPU slices and message deliveries by
//! virtual time (ties broken by insertion order, so runs are bit-for-bit
//! deterministic). Each [`NodeRuntime`] owns a heap, a DSM engine, a ready
//! queue and `cpus_per_node` virtual CPUs; threads are green threads whose
//! instruction costs advance their CPU's clock per the node's JVM-brand
//! cost model. This driver is the *reference semantics*: the threads
//! backend ([`crate::threads`]) must agree with it on program output and
//! protocol counters.

use crate::balance::{BalancerState, LoadBalancer};
use crate::config::{Backend, ClusterConfig, Mode, NodeSpec};
use crate::driver::{self, Driver, Prepared};
use crate::env::CONSOLE_NODE;
use crate::node::{Effect, LocalEv, NodeRuntime};
use crate::report::RunReport;
use jsplit_mjvm::class::Program;
use jsplit_mjvm::heap::{ObjRef, ThreadUid};
use jsplit_mjvm::interp::{Frame, VmError};
use jsplit_mjvm::loader::{ClassId, Image, MethodId};
use jsplit_mjvm::Value;
use jsplit_net::{Network, NodeId};
use jsplit_rewriter::RewriteStats;
use crate::telemetry::Telemetry;
use jsplit_trace::{make_sink, Metric, MetricsRegistry, TraceEvent, TraceSink};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

pub use crate::driver::ClusterError;

/// A scheduled event.
enum Ev {
    /// A node-local event (CPU slice or sleeper wake).
    Local { node: NodeId, ev: LocalEv },
    /// Deliver a protocol/runtime message.
    Deliver { dst: NodeId, msg: jsplit_dsm::Msg },
    /// A new worker joins the pool (paper §2).
    Join { spec: NodeSpec },
}

/// The distributed runtime under the deterministic virtual-time driver.
pub struct Cluster {
    config: ClusterConfig,
    image: Arc<Image>,
    rewrite: Option<RewriteStats>,
    nodes: Vec<NodeRuntime>,
    net: Network,
    events: BinaryHeap<Reverse<(u64, u64, usize)>>,
    /// Event payloads, slab-allocated: dispatched slots are recycled through
    /// `free_events`, so storage is bounded by the number of *live*
    /// (scheduled, not yet dispatched) events instead of every event ever
    /// pushed. Ordering is untouched — the heap key is (time, seq, idx) and
    /// `seq` is unique, so a recycled idx never changes dispatch order.
    payloads: Vec<Option<Ev>>,
    free_events: Vec<usize>,
    seq: u64,
    next_uid: ThreadUid,
    live_threads: usize,
    total_threads: u32,
    console: Vec<String>,
    errors: Vec<(ThreadUid, VmError)>,
    ops: u64,
    lb: BalancerState,
    thread_main: MethodId,
    thread_class: ClassId,
    /// Spawns dispatched but not yet delivered, per node — counted into the
    /// load-balancing loads so a burst of starts still spreads out.
    in_flight: Vec<u32>,
    /// Serialized size of the rewritten program (class distribution cost).
    class_bytes: usize,
    /// Virtual time spent distributing class files before the run.
    setup_ps: u64,
    /// Structured event recorder (`None` = tracing disabled, the default;
    /// every producer site checks this before doing any work).
    recorder: Option<Box<dyn TraceSink>>,
    /// Scratch buffer for node effect drains, reused across events.
    fx: Vec<Effect>,
    /// Live-metrics registry (`None` = metrics off, the default; the
    /// publish path is one untaken branch per event batch).
    metrics: Option<Arc<MetricsRegistry>>,
}

impl Cluster {
    /// Prepare a run: rewrite (JavaSplit mode), load, create workers, set up
    /// the shared `C_static` singletons and place `main` on worker 0.
    pub fn new(config: ClusterConfig, program: &Program) -> Result<Cluster, ClusterError> {
        let Prepared { image, rewrite, class_bytes, thread_class, thread_main } = driver::prepare(&config, program)?;

        let links = config.nodes.iter().map(|s| driver::link_params(*s)).collect();
        let mut net = Network::new(links);
        if config.trace.is_some() {
            net.trace = Some(Vec::new());
        }

        let mut nodes = Vec::with_capacity(config.nodes.len());
        for (i, spec) in config.nodes.iter().enumerate() {
            nodes.push(NodeRuntime::new(i as NodeId, *spec, &config, image.clone(), thread_class));
        }

        // Sized eagerly for the initial pool (and grown in `join_worker`),
        // never lazily in the dispatch path.
        let in_flight = vec![0; nodes.len()];
        let recorder = config.trace.map(make_sink);
        let metrics = config.metrics.as_ref().map(|_| MetricsRegistry::new(nodes.len()));
        let mut cluster = Cluster {
            lb: BalancerState::new(config.balancer),
            config,
            image,
            rewrite,
            nodes,
            net,
            events: BinaryHeap::new(),
            payloads: Vec::new(),
            free_events: Vec::new(),
            seq: 0,
            next_uid: 0,
            live_threads: 0,
            total_threads: 0,
            console: Vec::new(),
            errors: Vec::new(),
            ops: 0,
            thread_main,
            thread_class,
            in_flight,
            class_bytes,
            setup_ps: 0,
            recorder,
            fx: Vec::new(),
            metrics,
        };

        // Ship the rewritten class files to every worker during *setup*.
        // Like the paper's evaluation, the measured execution window starts
        // once the pool is ready, so distribution is reported as setup time
        // (and counted in the traffic statistics) but does not delay t = 0.
        if cluster.config.mode == Mode::JavaSplit {
            for i in 1..cluster.nodes.len() {
                let at = driver::ship_classes(&mut cluster.net, 0, i as NodeId, class_bytes);
                cluster.setup_ps = cluster.setup_ps.max(at);
            }
        }

        if cluster.config.mode == Mode::JavaSplit {
            driver::bootstrap_statics(&mut cluster.nodes, &cluster.image.clone());
        }

        // Mid-run joins.
        let joins = cluster.config.joins.clone();
        for (t, spec) in joins {
            cluster.push(t, Ev::Join { spec });
        }

        // The main thread starts on worker 0 (§2: the rewritten classes are
        // sent to one of the worker nodes that starts executing main()).
        let main = cluster.image.main_method;
        let locals = cluster.image.method(main).max_locals;
        let frame = Frame::new(main, locals, vec![], false);
        cluster.add_thread(CONSOLE_NODE, frame, None, 0);

        // Setup-phase activity (statics bootstrap, class shipping) is part
        // of the trace too; stamp its buffered DSM events at t = 0.
        for n in 0..cluster.nodes.len() {
            cluster.drain_trace_buffers(n as NodeId, 0);
        }

        Ok(cluster)
    }

    /// Record one trace event at virtual time `t` (no-op when disabled).
    #[inline]
    fn tr(&mut self, t: u64, ev: TraceEvent) {
        if let Some(r) = &mut self.recorder {
            r.record(jsplit_trace::Event { t, ev });
        }
    }

    /// Stamp and flush the clock-free DSM buffer of `node` at `now`, plus
    /// the network's pre-stamped send events. Called at every point where a
    /// worker's effects are drained, so stamps are deterministic.
    fn drain_trace_buffers(&mut self, node: NodeId, now: u64) {
        let Some(r) = &mut self.recorder else {
            return;
        };
        for ev in self.nodes[node as usize].take_dsm_trace() {
            r.record(jsplit_trace::Event { t: now, ev });
        }
        if let Some(buf) = &mut self.net.trace {
            for e in buf.drain(..) {
                r.record(e);
            }
        }
    }

    fn push(&mut self, time: u64, ev: Ev) {
        let idx = match self.free_events.pop() {
            Some(i) => {
                self.payloads[i] = Some(ev);
                i
            }
            None => {
                self.payloads.push(Some(ev));
                self.payloads.len() - 1
            }
        };
        self.events.push(Reverse((time, self.seq, idx)));
        self.seq += 1;
    }

    /// Execute a node's ordered effect stream. Effects become event-queue
    /// pushes in emission order, which is what makes the refactored driver
    /// bit-identical to the old monolithic scheduler: global sequence
    /// numbers are assigned exactly where they always were.
    fn apply_effects(&mut self, node: NodeId) {
        let mut fx = std::mem::take(&mut self.fx);
        for f in fx.drain(..) {
            match f {
                Effect::Local { time, ev } => self.push(time, Ev::Local { node, ev }),
                Effect::Send { at, dst, msg } => self.transmit(at, node, dst, msg),
                Effect::Spawn { now, thread_obj, priority } => self.dispatch_spawn(node, thread_obj, priority, now),
                Effect::Trace { t, ev } => self.tr(t, ev),
                Effect::FlushTrace { now } => self.drain_trace_buffers(node, now),
            }
        }
        // Hand the (drained) scratch buffer back for the next event.
        self.fx = fx;
    }

    fn add_thread(&mut self, node: NodeId, frame: Frame, thread_obj: Option<ObjRef>, now: u64) -> ThreadUid {
        let uid = self.next_uid;
        self.next_uid += 1;
        debug_assert!(self.fx.is_empty());
        let mut fx = std::mem::take(&mut self.fx);
        self.nodes[node as usize].add_thread(uid, frame, thread_obj, now, &mut fx);
        self.fx = fx;
        self.live_threads += 1;
        self.total_threads += 1;
        self.apply_effects(node);
        uid
    }

    fn transmit(&mut self, now: u64, src: NodeId, dst: NodeId, msg: jsplit_dsm::Msg) {
        let bytes = msg.wire_len();
        let at = self.net.send(now, src, dst, bytes, msg.kind());
        self.push(at, Ev::Deliver { dst, msg });
    }

    /// Place a newly started thread per the load-balancing function (§2).
    fn dispatch_spawn(&mut self, origin: NodeId, thread_obj: ObjRef, priority: i32, now: u64) {
        match self.config.mode {
            Mode::Baseline => {
                let m = self.image.method(self.thread_main);
                let frame = Frame::new(self.thread_main, m.max_locals, vec![Value::Ref(thread_obj)], false);
                self.add_thread(origin, frame, Some(thread_obj), now);
            }
            Mode::JavaSplit => {
                let loads: Vec<usize> = self
                    .nodes
                    .iter()
                    .enumerate()
                    .map(|(i, w)| w.live() + self.in_flight[i] as usize)
                    .collect();
                let dst = self.lb.pick(&loads, origin);
                self.in_flight[dst as usize] += 1;
                let msg = self.nodes[origin as usize].prepare_spawn(thread_obj, priority);
                if let jsplit_dsm::Msg::SpawnThread { thread_gid, .. } = &msg {
                    self.tr(now, TraceEvent::ThreadShip { from: origin, to: dst, thread_gid: thread_gid.0 });
                }
                // Shipping may have shared objects; nothing else to drain
                // (prepare_spawn itself queues no sends).
                self.transmit(now, origin, dst, msg);
            }
        }
    }

    fn run_slice(&mut self, time: u64, node: NodeId, cpu: usize, thread: ThreadUid) {
        debug_assert!(self.fx.is_empty());
        let mut fx = std::mem::take(&mut self.fx);
        let r = self.nodes[node as usize].run_slice(time, cpu, thread, &mut fx);
        self.fx = fx;
        self.ops += r.ops;
        if r.exited {
            self.live_threads -= 1;
            if let Some(e) = r.error {
                self.errors.push((thread, e));
            }
        }
        self.apply_effects(node);
    }

    fn deliver(&mut self, time: u64, dst: NodeId, msg: jsplit_dsm::Msg) {
        match msg {
            jsplit_dsm::Msg::Println { line, .. } => {
                // Forwarded console output lands in the console node's own
                // buffer so local and remote lines stay in arrival order.
                self.nodes[dst as usize].push_console(line);
            }
            jsplit_dsm::Msg::SpawnThread { thread_gid, class, state, priority } => {
                let slot = &mut self.in_flight[dst as usize];
                *slot = slot.saturating_sub(1);
                let uid = self.next_uid;
                self.next_uid += 1;
                debug_assert!(self.fx.is_empty());
                let mut fx = std::mem::take(&mut self.fx);
                self.nodes[dst as usize].install_spawned_thread(
                    uid,
                    thread_gid,
                    class,
                    &state,
                    priority,
                    self.thread_main,
                    time,
                    &mut fx,
                );
                self.fx = fx;
                self.live_threads += 1;
                self.total_threads += 1;
                self.apply_effects(dst);
            }
            other => {
                debug_assert!(self.fx.is_empty());
                let mut fx = std::mem::take(&mut self.fx);
                self.nodes[dst as usize].handle_dsm(time, other, &mut fx);
                self.fx = fx;
                self.apply_effects(dst);
            }
        }
    }

    fn wake(&mut self, time: u64, node: NodeId, thread: ThreadUid) {
        debug_assert!(self.fx.is_empty());
        let mut fx = std::mem::take(&mut self.fx);
        self.nodes[node as usize].make_ready(thread, time, &mut fx);
        self.fx = fx;
        self.apply_effects(node);
    }

    /// Publish every node's counters into the live-metrics registry. The
    /// sim driver is single-threaded, so the per-node horizon gauges of the
    /// threads backend all collapse to the one global virtual clock here
    /// (lag is identically zero, as it should be for a sequential
    /// scheduler). Mid-run joiners beyond the registry's initial size are
    /// not sampled — the registry is fixed at creation.
    fn publish_metrics(&self, now: u64) {
        let Some(reg) = &self.metrics else { return };
        for (i, node) in self.nodes.iter().enumerate().take(reg.n_nodes()) {
            let id = i as NodeId;
            reg.set(id, Metric::Ops, node.ops);
            reg.set(id, Metric::LiveThreads, node.live() as u64);
            reg.set(id, Metric::HorizonPs, now);
            reg.set(id, Metric::NextEventPs, now);
            reg.set(id, Metric::QueueHeadPs, now);
            if let Some(st) = self.net.stats.get(i) {
                reg.set(id, Metric::NetMsgsSent, st.msgs_sent);
                reg.set(id, Metric::NetBytesSent, st.bytes_sent);
                reg.set(id, Metric::NetMsgsRecv, st.msgs_recv);
            }
            if let Some(d) = node.dsm_stats_ref() {
                reg.set(id, Metric::DsmFetches, d.fetches);
                reg.set(id, Metric::DsmDiffs, d.diffs_sent);
                reg.set(id, Metric::DsmInvalidations, d.invalidations);
                reg.set(id, Metric::DsmLockGrants, d.grants_sent);
            }
        }
    }

    fn join_worker(&mut self, time: u64, spec: NodeSpec) {
        let id = self.net.add_node(driver::link_params(spec));
        let image = self.image.clone();
        let mut w = NodeRuntime::new(id, spec, &self.config, image.clone(), self.thread_class);
        // The joiner downloads the rewritten classes first (the paper's
        // applet workers fetch them over HTTP).
        if self.config.mode == Mode::JavaSplit {
            let at = driver::ship_classes(&mut self.net, time, id, self.class_bytes);
            w.set_cpu_floor(at);
        }
        // Late joiners also need the statics singletons (paper: new nodes
        // join "simply by pointing a browser at the worker applet").
        if self.config.mode == Mode::JavaSplit {
            let singletons = driver::singleton_specs(&mut self.nodes[0], &image);
            driver::install_singletons(&mut w, &image, &singletons);
        }
        self.nodes.push(w);
        self.in_flight.push(0);
    }

    /// Run to completion and produce the report.
    pub fn run(mut self) -> RunReport {
        let started = std::time::Instant::now();
        // Side-band sampler: reads the registry on its own thread, never
        // touches virtual time (no watchdog or flight recorder here — the
        // sim driver cannot stall on a peer).
        let telemetry = match (&self.config.metrics, &self.metrics) {
            (Some(cfg), Some(reg)) => match Telemetry::start(cfg, reg.clone(), None, None) {
                Ok(t) => Some(t),
                Err(e) => {
                    eprintln!("jsplit: cannot open metrics output: {e}");
                    None
                }
            },
            _ => None,
        };
        let mut aborted = false;
        let mut processed: u64 = 0;
        while let Some(Reverse((time, _, idx))) = self.events.pop() {
            processed += 1;
            if self.metrics.is_some() && processed.is_multiple_of(4096) {
                self.publish_metrics(time);
            }
            // Spawned-but-undelivered threads count as live: a main that
            // exits immediately after `start()` must not end the run.
            let spawning: u32 = self.in_flight.iter().sum();
            if self.live_threads == 0 && spawning == 0 {
                break;
            }
            if self.ops > self.config.max_ops {
                aborted = true;
                break;
            }
            let ev = self.payloads[idx].take().expect("event payload");
            self.free_events.push(idx);
            match ev {
                Ev::Local { node, ev: LocalEv::Slice { cpu, thread } } => self.run_slice(time, node, cpu, thread),
                Ev::Local { node, ev: LocalEv::Wake { thread } } => self.wake(time, node, thread),
                Ev::Deliver { dst, msg } => self.deliver(time, dst, msg),
                Ev::Join { spec } => self.join_worker(time, spec),
            }
        }
        let deadlocked = self.live_threads > 0 && !aborted;
        // Collect console output from the console node's environment.
        let mut out = self.nodes[CONSOLE_NODE as usize].take_console();
        self.console.append(&mut out);
        // Flush every worker's remaining buffered trace events at the
        // horizon, then canonicalize the stream: per-node recording order
        // is kept, cross-node ties at equal t break by node id, and thread
        // uids are renamed by first appearance — the same normal form the
        // threads driver produces from its per-node sinks, so traces are
        // byte-comparable across backends.
        let finish = self.nodes.iter().map(|n| n.finish_time).max().unwrap_or(0);
        for n in 0..self.nodes.len() {
            self.drain_trace_buffers(n as NodeId, finish);
        }
        self.publish_metrics(finish);
        let telemetry = telemetry.map(Telemetry::finish);
        let trace = self.recorder.take().map(|r| jsplit_trace::canonicalize(r.into_events()));
        let (breakdown, lock_stats) = match &trace {
            Some(evs) => {
                let cpus: Vec<u32> = vec![self.config.cpus_per_node as u32; self.nodes.len()];
                (
                    jsplit_trace::node_breakdown(evs, &cpus, finish),
                    jsplit_trace::lock_contention(evs),
                )
            }
            None => (Vec::new(), Vec::new()),
        };
        let opstats = {
            let mut merged: Option<jsplit_mjvm::opstats::OpStats> = None;
            for n in self.nodes.iter_mut() {
                if let Some(st) = n.take_opstats() {
                    merged.get_or_insert_with(Default::default).merge(&st);
                }
            }
            merged
        };
        let objprof = self.config.objprof.then(|| {
            // Slice index = node id (joiners append in id order).
            let profiles: Vec<jsplit_trace::ObjProfile> =
                self.nodes.iter_mut().map(|n| n.take_objprof().unwrap_or_default()).collect();
            jsplit_trace::build_report(&profiles)
        });
        RunReport {
            exec_time_ps: finish,
            output: self.console,
            errors: self.errors,
            deadlocked,
            aborted,
            ops: self.ops,
            threads: self.total_threads,
            net_per_node: self.net.stats.clone(),
            dsm_per_node: self.nodes.iter_mut().filter_map(|n| n.dsm_stats()).collect(),
            rewrite: self.rewrite,
            setup_ps: self.setup_ps,
            class_bytes: self.class_bytes as u64,
            event_slab_high_water: self.payloads.len() as u64,
            ops_per_node: self.nodes.iter().map(|n| n.ops).collect(),
            trace,
            breakdown,
            lock_stats,
            host_wall_secs: started.elapsed().as_secs_f64(),
            sync: crate::report::SyncStats::default(),
            wall: None,
            telemetry,
            opstats,
            objprof,
        }
    }
}

impl Driver for Cluster {
    fn run(self) -> RunReport {
        Cluster::run(self)
    }
}

/// Convenience: configure-and-run in one call, dispatching on the
/// configured [`Backend`].
pub fn run_cluster(config: ClusterConfig, program: &Program) -> Result<RunReport, ClusterError> {
    match config.backend {
        Backend::Sim => Ok(Cluster::new(config, program)?.run()),
        Backend::Threads => Ok(crate::threads::ThreadsDriver::new(config, program)?.run()),
        Backend::Sockets => crate::sockets::SocketsDriver::new(config, program)?.run(),
    }
}
