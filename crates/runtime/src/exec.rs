//! The cluster: workers + discrete-event scheduler (the "runtime" of the
//! paper's §2, with the testbed of §6 as its virtual-time model).
//!
//! One global event queue orders CPU slices and message deliveries by
//! virtual time (ties broken by insertion order, so runs are bit-for-bit
//! deterministic). Each worker owns a heap, a DSM engine, a ready queue and
//! `cpus_per_node` virtual CPUs; threads are green threads whose instruction
//! costs advance their CPU's clock per the node's JVM-brand cost model.

use crate::balance::{BalancerState, LoadBalancer};
use crate::config::{ClusterConfig, Mode, NodeSpec};
use crate::env::{JsEnv, NodeEnv, CONSOLE_NODE};
use crate::report::RunReport;
use jsplit_dsm::node::Action;
use jsplit_dsm::{DsmConfig, DsmNode, Msg};
use jsplit_mjvm::class::{Program, Sig};
use jsplit_mjvm::cost::CostModel;
use jsplit_mjvm::heap::{Gid, Heap, ObjRef, ThreadUid};
use jsplit_mjvm::interp::{self, Frame, StepCtx, StepState, Thread, VmError};
use jsplit_mjvm::loader::{ClassId, Image, LoadError, MethodId};
use jsplit_mjvm::{stdlib, Value};
use jsplit_net::{LinkParams, Network, NodeId};
use jsplit_rewriter::{RewriteError, RewriteStats, STATICS_HOLDER};
use jsplit_trace::{make_sink, TraceEvent, TraceSink};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// Sentinel in [`Cluster::thread_slot`] marking a uid whose thread has
/// exited (uids are dense and never reused, slab slots are).
const DEAD_SLOT: u32 = u32::MAX;

/// Errors preparing a cluster run.
#[derive(Debug)]
pub enum ClusterError {
    Rewrite(RewriteError),
    Load(LoadError),
    Config(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Rewrite(e) => write!(f, "rewrite failed: {e}"),
            ClusterError::Load(e) => write!(f, "load failed: {e}"),
            ClusterError::Config(s) => write!(f, "bad configuration: {s}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// A scheduled event.
enum Ev {
    /// Run a quantum of `thread` on `cpu` of `node`.
    Slice { node: NodeId, cpu: usize, thread: ThreadUid },
    /// Deliver a protocol/runtime message.
    Deliver { dst: NodeId, msg: Msg },
    /// A sleeping thread's timer expired.
    WakeSleeper { node: NodeId, thread: ThreadUid },
    /// A new worker joins the pool (paper §2).
    Join { spec: NodeSpec },
}

struct Worker {
    #[allow(dead_code)]
    id: NodeId,
    model: &'static CostModel,
    heap: Heap,
    env: NodeEnv,
    /// Thread slab: a thread's slot is stable for its whole life (slots of
    /// exited threads are recycled through `free_slots`), so a CPU slice
    /// runs the thread in place instead of the old per-slice HashMap
    /// remove/insert round trip.
    threads: Vec<Option<Thread>>,
    free_slots: Vec<u32>,
    /// Live threads on this node (the slab has holes, so it is counted).
    live: usize,
    ready: VecDeque<ThreadUid>,
    cpu_free: Vec<u64>,
    cpu_busy: Vec<bool>,
}

impl Worker {
    fn live(&self) -> usize {
        self.live
    }

    fn insert_thread(&mut self, th: Thread) -> u32 {
        self.live += 1;
        match self.free_slots.pop() {
            Some(s) => {
                self.threads[s as usize] = Some(th);
                s
            }
            None => {
                self.threads.push(Some(th));
                (self.threads.len() - 1) as u32
            }
        }
    }

    fn remove_thread(&mut self, slot: u32) -> Thread {
        self.live -= 1;
        self.free_slots.push(slot);
        self.threads[slot as usize].take().expect("live thread slot")
    }
}

/// The distributed runtime.
pub struct Cluster {
    config: ClusterConfig,
    image: Arc<Image>,
    rewrite: Option<RewriteStats>,
    workers: Vec<Worker>,
    net: Network,
    events: BinaryHeap<Reverse<(u64, u64, usize)>>,
    /// Event payloads, slab-allocated: dispatched slots are recycled through
    /// `free_events`, so storage is bounded by the number of *live*
    /// (scheduled, not yet dispatched) events instead of every event ever
    /// pushed. Ordering is untouched — the heap key is (time, seq, idx) and
    /// `seq` is unique, so a recycled idx never changes dispatch order.
    payloads: Vec<Option<Ev>>,
    free_events: Vec<usize>,
    seq: u64,
    /// uid → slot in its worker's thread slab ([`DEAD_SLOT`] once the
    /// thread exits). Dense because uids are allocated sequentially.
    thread_slot: Vec<u32>,
    /// uid → currently queued in its worker's ready queue. Replaces the
    /// O(ready-queue) `contains` scan on every wake.
    in_ready: Vec<bool>,
    next_uid: ThreadUid,
    live_threads: usize,
    total_threads: u32,
    console: Vec<String>,
    errors: Vec<(ThreadUid, VmError)>,
    ops: u64,
    finish_time: u64,
    lb: BalancerState,
    thread_main: MethodId,
    thread_class: ClassId,
    /// Spawns dispatched but not yet delivered, per node — counted into the
    /// load-balancing loads so a burst of starts still spreads out.
    in_flight: Vec<u32>,
    /// Serialized size of the rewritten program (class distribution cost).
    class_bytes: usize,
    /// Virtual time spent distributing class files before the run.
    setup_ps: u64,
    /// Structured event recorder (`None` = tracing disabled, the default;
    /// every producer site checks this before doing any work).
    recorder: Option<Box<dyn TraceSink>>,
    /// Retired instructions per node (grown on join).
    ops_per_node: Vec<u64>,
}

impl Cluster {
    /// Prepare a run: rewrite (JavaSplit mode), load, create workers, set up
    /// the shared `C_static` singletons and place `main` on worker 0.
    pub fn new(config: ClusterConfig, program: &Program) -> Result<Cluster, ClusterError> {
        if config.nodes.is_empty() {
            return Err(ClusterError::Config("at least one node required".into()));
        }
        if config.mode == Mode::Baseline && config.nodes.len() != 1 {
            return Err(ClusterError::Config("baseline mode runs on exactly one node".into()));
        }

        let (image, rewrite, class_bytes) = match config.mode {
            Mode::Baseline => {
                let image = Image::load(program).map_err(ClusterError::Load)?;
                (image, None, 0usize)
            }
            Mode::JavaSplit => {
                let rw = jsplit_rewriter::rewrite_program(program).map_err(ClusterError::Rewrite)?;
                let image = Image::load(&rw.program).map_err(ClusterError::Load)?;
                // §2: "the resulting rewritten classes are sent to one of
                // the worker nodes" — class distribution is real traffic.
                let bytes = jsplit_mjvm::classfile_io::encode_program(&rw.program).len();
                (image, Some(rw.stats), bytes)
            }
        };
        let image = Arc::new(image);
        let thread_class = image.class_id_any(stdlib::THREAD).expect("Thread class");
        let thread_main = image
            .resolve_method(
                image.class_id_any(stdlib::JSRUNTIME).expect("JSRuntime"),
                &Sig::new("threadMain", &[jsplit_mjvm::Ty::Ref], None),
            )
            .expect("threadMain");

        let links: Vec<LinkParams> = config
            .nodes
            .iter()
            .map(|s| {
                let m = s.profile.cost_model();
                LinkParams { base_ns: m.net_base_ns, per_byte_ns: m.net_per_byte_ns }
            })
            .collect();
        let mut net = Network::new(links);
        if config.trace.is_some() {
            net.trace = Some(Vec::new());
        }

        let mut workers = Vec::with_capacity(config.nodes.len());
        for (i, spec) in config.nodes.iter().enumerate() {
            workers.push(make_worker(i as NodeId, *spec, &config, &image, thread_class));
        }

        // Sized eagerly for the initial pool (and grown in `join_worker`),
        // never lazily in the dispatch path.
        let in_flight = vec![0; workers.len()];
        let recorder = config.trace.map(make_sink);
        let ops_per_node = vec![0u64; workers.len()];
        let mut cluster = Cluster {
            lb: BalancerState::new(config.balancer),
            config,
            image,
            rewrite,
            workers,
            net,
            events: BinaryHeap::new(),
            payloads: Vec::new(),
            free_events: Vec::new(),
            seq: 0,
            thread_slot: Vec::new(),
            in_ready: Vec::new(),
            next_uid: 0,
            live_threads: 0,
            total_threads: 0,
            console: Vec::new(),
            errors: Vec::new(),
            ops: 0,
            finish_time: 0,
            thread_main,
            thread_class,
            in_flight,
            class_bytes,
            setup_ps: 0,
            recorder,
            ops_per_node,
        };

        // Ship the rewritten class files to every worker during *setup*.
        // Like the paper's evaluation, the measured execution window starts
        // once the pool is ready, so distribution is reported as setup time
        // (and counted in the traffic statistics) but does not delay t = 0.
        if cluster.config.mode == Mode::JavaSplit {
            for i in 1..cluster.workers.len() {
                let at = cluster.net.send(0, 0, i as NodeId, class_bytes, jsplit_net::MsgKind::Control);
                cluster.setup_ps = cluster.setup_ps.max(at);
            }
        }

        if cluster.config.mode == Mode::JavaSplit {
            cluster.bootstrap_statics();
        }

        // Mid-run joins.
        let joins = cluster.config.joins.clone();
        for (t, spec) in joins {
            cluster.push(t, Ev::Join { spec });
        }

        // The main thread starts on worker 0 (§2: the rewritten classes are
        // sent to one of the worker nodes that starts executing main()).
        let main = cluster.image.main_method;
        let locals = cluster.image.method(main).max_locals;
        let frame = Frame::new(main, locals, vec![], false);
        cluster.add_thread(CONSOLE_NODE, frame, None, 0);

        // Setup-phase activity (statics bootstrap, class shipping) is part
        // of the trace too; stamp its buffered DSM events at t = 0.
        for n in 0..cluster.workers.len() {
            cluster.drain_trace_buffers(n as NodeId, 0);
        }

        Ok(cluster)
    }

    /// Create the shared `C_static` singletons on worker 0 and fill every
    /// node's constant holder slot with a (placeholder) local copy (§4.2).
    fn bootstrap_statics(&mut self) {
        let image = self.image.clone();
        let mut singletons: Vec<(ClassId, u16, Gid, ClassId)> = Vec::new();
        for rc in &image.classes {
            let Some(slot) = rc.static_names.iter().position(|n| &**n == STATICS_HOLDER) else {
                continue;
            };
            let comp_name = format!("{}{}", rc.name, jsplit_rewriter::STATIC_SUFFIX);
            let comp = image.class_id(&comp_name).expect("companion class exists");
            // Master on worker 0.
            let w0 = &mut self.workers[0];
            let zeros = image.class(comp).zeroed_fields();
            let master = w0.heap.alloc_object(comp, zeros.len(), zeros);
            let gid = w0.env.js().dsm.share_object(&mut w0.heap, master);
            w0.heap.set_static(rc.id, slot as u16, Value::Ref(master));
            singletons.push((rc.id, slot as u16, gid, comp));
        }
        for w in self.workers.iter_mut().skip(1) {
            for (class, slot, gid, comp) in &singletons {
                let local = w.env.js().dsm.ensure_cached(&mut w.heap, &image, *gid, *comp);
                w.heap.set_static(*class, *slot, Value::Ref(local));
            }
        }
    }

    /// Record one trace event at virtual time `t` (no-op when disabled).
    #[inline]
    fn tr(&mut self, t: u64, ev: TraceEvent) {
        if let Some(r) = &mut self.recorder {
            r.record(jsplit_trace::Event { t, ev });
        }
    }

    /// Stamp and flush the clock-free DSM buffer of `node` at `now`, plus
    /// the network's pre-stamped send events. Called at every point where a
    /// worker's effects are drained, so stamps are deterministic.
    fn drain_trace_buffers(&mut self, node: NodeId, now: u64) {
        let Some(r) = &mut self.recorder else {
            return;
        };
        if let NodeEnv::Js(e) = &mut self.workers[node as usize].env {
            for ev in e.dsm.take_trace() {
                r.record(jsplit_trace::Event { t: now, ev });
            }
        }
        if let Some(buf) = &mut self.net.trace {
            for e in buf.drain(..) {
                r.record(e);
            }
        }
    }

    fn push(&mut self, time: u64, ev: Ev) {
        let idx = match self.free_events.pop() {
            Some(i) => {
                self.payloads[i] = Some(ev);
                i
            }
            None => {
                self.payloads.push(Some(ev));
                self.payloads.len() - 1
            }
        };
        self.events.push(Reverse((time, self.seq, idx)));
        self.seq += 1;
    }

    fn add_thread(&mut self, node: NodeId, frame: Frame, thread_obj: Option<ObjRef>, now: u64) -> ThreadUid {
        let uid = self.next_uid;
        self.next_uid += 1;
        let mut th = Thread::new(uid, frame);
        th.thread_obj = thread_obj;
        if let Some(obj) = thread_obj {
            // Thread layout: target(0), priority(1), alive(2).
            if let jsplit_mjvm::ObjPayload::Fields(f) = &self.workers[node as usize].heap.get(obj).payload {
                if let Some(p) = f.get(1) {
                    th.priority = p.as_i32().clamp(1, 10);
                }
            }
        }
        let slot = self.workers[node as usize].insert_thread(th);
        self.tr(now, TraceEvent::ThreadSpawn { node, thread: uid });
        debug_assert_eq!(self.thread_slot.len(), uid as usize);
        self.thread_slot.push(slot);
        self.in_ready.push(true);
        self.workers[node as usize].ready.push_back(uid);
        self.live_threads += 1;
        self.total_threads += 1;
        self.schedule(node, now);
        uid
    }

    /// A live thread's slab slot on its worker.
    fn thread_mut(&mut self, node: NodeId, uid: ThreadUid) -> &mut Thread {
        let slot = self.thread_slot[uid as usize];
        self.workers[node as usize].threads[slot as usize].as_mut().expect("live thread")
    }

    /// Assign ready threads to idle CPUs.
    fn schedule(&mut self, node: NodeId, now: u64) {
        loop {
            let (start, cpu, thread) = {
                let w = &mut self.workers[node as usize];
                if w.ready.is_empty() {
                    break;
                }
                let Some(cpu) = (0..w.cpu_free.len())
                    .filter(|&c| !w.cpu_busy[c])
                    .min_by_key(|&c| w.cpu_free[c])
                else {
                    break;
                };
                let thread = w.ready.pop_front().unwrap();
                self.in_ready[thread as usize] = false;
                if self.thread_slot[thread as usize] == DEAD_SLOT {
                    continue;
                }
                w.cpu_busy[cpu] = true;
                (now.max(w.cpu_free[cpu]), cpu, thread)
            };
            self.push(start, Ev::Slice { node, cpu, thread });
        }
    }

    fn make_ready(&mut self, node: NodeId, thread: ThreadUid, now: u64) {
        let i = thread as usize;
        if self.thread_slot[i] == DEAD_SLOT || self.in_ready[i] {
            return;
        }
        self.tr(now, TraceEvent::ThreadReady { node, thread });
        self.in_ready[i] = true;
        self.workers[node as usize].ready.push_back(thread);
        self.schedule(node, now);
    }

    /// Drain a worker's environment effects (DSM actions, spawns, sleepers,
    /// console sends) at virtual time `now`.
    fn drain_effects(&mut self, node: NodeId, now: u64) {
        // DSM actions + env sends + spawns + sleepers.
        let (actions, sends, spawns, sleepers) = {
            let w = &mut self.workers[node as usize];
            match &mut w.env {
                NodeEnv::Js(e) => (
                    e.dsm.drain_actions(),
                    std::mem::take(&mut e.sends),
                    std::mem::take(&mut e.spawns),
                    std::mem::take(&mut e.sleepers),
                ),
                NodeEnv::Baseline(e) => {
                    let spawns: Vec<(ObjRef, i32)> =
                        e.spawns.drain(..).map(|o| (o, 5)).collect();
                    let wakes: Vec<ThreadUid> = e.wakes.drain(..).collect();
                    let sleepers = std::mem::take(&mut e.sleepers);
                    let actions: Vec<Action> =
                        wakes.into_iter().map(|t| Action::Wake { thread: t }).collect();
                    (actions, Vec::new(), spawns, sleepers)
                }
            }
        };

        for a in actions {
            match a {
                Action::Wake { thread } => self.make_ready(node, thread, now),
                Action::Send { dst, msg } => self.transmit(now, node, dst, msg),
            }
        }
        for (dst, msg) in sends {
            self.transmit(now, node, dst, msg);
        }
        for (wake, thread) in sleepers {
            self.push(wake.max(now), Ev::WakeSleeper { node, thread });
        }
        for (thread_obj, priority) in spawns {
            self.dispatch_spawn(node, thread_obj, priority, now);
        }
        self.drain_trace_buffers(node, now);
    }

    fn transmit(&mut self, now: u64, src: NodeId, dst: NodeId, msg: Msg) {
        let bytes = msg.wire_len();
        let at = self.net.send(now, src, dst, bytes, msg.kind());
        self.push(at, Ev::Deliver { dst, msg });
    }

    /// Place a newly started thread per the load-balancing function (§2).
    fn dispatch_spawn(&mut self, origin: NodeId, thread_obj: ObjRef, priority: i32, now: u64) {
        match self.config.mode {
            Mode::Baseline => {
                let m = self.image.method(self.thread_main);
                let frame = Frame::new(self.thread_main, m.max_locals, vec![Value::Ref(thread_obj)], false);
                self.add_thread(origin, frame, Some(thread_obj), now);
            }
            Mode::JavaSplit => {
                let loads: Vec<usize> = self
                    .workers
                    .iter()
                    .enumerate()
                    .map(|(i, w)| w.live() + self.in_flight[i] as usize)
                    .collect();
                let dst = self.lb.pick(&loads, origin);
                self.in_flight[dst as usize] += 1;
                let msg = {
                    let image: &Image = &self.image;
                    let w = &mut self.workers[origin as usize];
                    let env = w.env.js();
                    env.dsm.prepare_spawn(&mut w.heap, image, thread_obj, priority)
                };
                if let Msg::SpawnThread { thread_gid, .. } = &msg {
                    self.tr(now, TraceEvent::ThreadShip { from: origin, to: dst, thread_gid: thread_gid.0 });
                }
                // Shipping may have shared objects; nothing else to drain
                // (prepare_spawn itself queues no sends).
                self.transmit(now, origin, dst, msg);
            }
        }
    }

    /// Run to completion and produce the report.
    pub fn run(mut self) -> RunReport {
        let mut aborted = false;
        while let Some(Reverse((time, _, idx))) = self.events.pop() {
            // Spawned-but-undelivered threads count as live: a main that
            // exits immediately after `start()` must not end the run.
            let spawning: u32 = self.in_flight.iter().sum();
            if self.live_threads == 0 && spawning == 0 {
                break;
            }
            if self.ops > self.config.max_ops {
                aborted = true;
                break;
            }
            let ev = self.payloads[idx].take().expect("event payload");
            self.free_events.push(idx);
            match ev {
                Ev::Slice { node, cpu, thread } => self.run_slice(time, node, cpu, thread),
                Ev::Deliver { dst, msg } => self.deliver(time, dst, msg),
                Ev::WakeSleeper { node, thread } => self.make_ready(node, thread, time),
                Ev::Join { spec } => self.join_worker(time, spec),
            }
        }
        let deadlocked = self.live_threads > 0 && !aborted;
        // Collect console output from the console node's environment.
        match &mut self.workers[CONSOLE_NODE as usize].env {
            NodeEnv::Js(e) => self.console.append(&mut e.console),
            NodeEnv::Baseline(e) => self.console.append(&mut e.output),
        }
        // Flush every worker's remaining buffered trace events at the
        // horizon, then order the stream by virtual time (stable, so the
        // deterministic insertion order breaks ties).
        let finish = self.finish_time;
        for n in 0..self.workers.len() {
            self.drain_trace_buffers(n as NodeId, finish);
        }
        let trace = self.recorder.take().map(|r| {
            let mut evs = r.into_events();
            evs.sort_by_key(|e| e.t);
            evs
        });
        let (breakdown, lock_stats) = match &trace {
            Some(evs) => {
                let cpus: Vec<u32> = vec![self.config.cpus_per_node as u32; self.workers.len()];
                (
                    jsplit_trace::node_breakdown(evs, &cpus, finish),
                    jsplit_trace::lock_contention(evs),
                )
            }
            None => (Vec::new(), Vec::new()),
        };
        RunReport {
            exec_time_ps: self.finish_time,
            output: self.console,
            errors: self.errors,
            deadlocked,
            aborted,
            ops: self.ops,
            threads: self.total_threads,
            net_per_node: self.net.stats.clone(),
            dsm_per_node: self
                .workers
                .iter_mut()
                .filter_map(|w| match &mut w.env {
                    NodeEnv::Js(e) => Some(e.dsm.stats.clone()),
                    NodeEnv::Baseline(_) => None,
                })
                .collect(),
            rewrite: self.rewrite,
            setup_ps: self.setup_ps,
            class_bytes: self.class_bytes as u64,
            event_slab_high_water: self.payloads.len() as u64,
            ops_per_node: self.ops_per_node,
            trace,
            breakdown,
            lock_stats,
        }
    }

    fn run_slice(&mut self, time: u64, node: NodeId, cpu: usize, thread: ThreadUid) {
        let fuel = self.config.fuel;
        let tracing = self.recorder.is_some();
        // Buffered locally: `self.workers` is mutably borrowed below, so the
        // recorder can only be touched once the block ends.
        let mut tev: Vec<(u64, TraceEvent)> = Vec::new();
        let outcome = {
            let image: &Image = &self.image;
            let w = &mut self.workers[node as usize];
            let slot = self.thread_slot[thread as usize];
            if slot == DEAD_SLOT {
                w.cpu_busy[cpu] = false;
                return;
            }
            let th = w.threads[slot as usize].as_mut().expect("live thread slot");
            w.env.set_now(time);
            let model = w.model;
            let res = {
                let mut ctx = StepCtx { image, heap: &mut w.heap, env: &mut w.env, cost: model };
                interp::step(th, &mut ctx, fuel)
            };
            match res {
                Ok(out) => {
                    let end = time + out.cost.max(1);
                    w.cpu_free[cpu] = end;
                    w.cpu_busy[cpu] = false;
                    self.ops += out.ops;
                    self.ops_per_node[node as usize] += out.ops;
                    if tracing {
                        tev.push((time, TraceEvent::Slice { node, cpu: cpu as u32, thread, end, ops: out.ops }));
                    }
                    match out.state {
                        StepState::Running => {
                            self.in_ready[thread as usize] = true;
                            w.ready.push_back(thread);
                        }
                        StepState::Blocked => {
                            if tracing {
                                let reason = w.env.take_block_reason();
                                tev.push((end, TraceEvent::ThreadBlock { node, thread, reason }));
                            }
                        }
                        StepState::Done => {
                            let th = w.remove_thread(slot);
                            self.thread_slot[thread as usize] = DEAD_SLOT;
                            self.live_threads -= 1;
                            self.finish_time = self.finish_time.max(end);
                            if tracing {
                                tev.push((end, TraceEvent::ThreadExit { node, thread }));
                            }
                            // Thread exit is a release point: flush its
                            // interval now so joiners don't wait behind it,
                            // and hand the Thread object's lock back to its
                            // home, where the joiner lives.
                            if let NodeEnv::Js(e) = &mut w.env {
                                e.dsm.flush_interval(&mut w.heap);
                                if let Some(tobj) = th.thread_obj {
                                    if let Some(gid) = w.heap.get(tobj).dsm.gid {
                                        e.dsm.release_ownership_to_home(&mut w.heap, gid);
                                    }
                                }
                            }
                        }
                    }
                    Some(end)
                }
                Err(e) => {
                    let end = time + 1;
                    w.cpu_free[cpu] = end;
                    w.cpu_busy[cpu] = false;
                    let th = w.remove_thread(slot);
                    self.thread_slot[thread as usize] = DEAD_SLOT;
                    self.errors.push((thread, e));
                    self.live_threads -= 1;
                    self.finish_time = self.finish_time.max(end);
                    if tracing {
                        tev.push((time, TraceEvent::Slice { node, cpu: cpu as u32, thread, end, ops: 0 }));
                        tev.push((end, TraceEvent::ThreadExit { node, thread }));
                    }
                    // A trapped thread is still a release point (it can
                    // never run again): flush its interval, force-drop any
                    // monitors it still holds so blocked siblings don't
                    // deadlock, and hand its Thread object's lock home for
                    // the joiner — mirroring normal termination above.
                    if let NodeEnv::Js(env) = &mut w.env {
                        env.dsm.flush_interval(&mut w.heap);
                        env.dsm.release_all_held(&mut w.heap, thread);
                        if let Some(tobj) = th.thread_obj {
                            if let Some(gid) = w.heap.get(tobj).dsm.gid {
                                env.dsm.release_ownership_to_home(&mut w.heap, gid);
                            }
                        }
                    }
                    Some(end)
                }
            }
        };
        for (t, ev) in tev {
            self.tr(t, ev);
        }
        if let Some(end) = outcome {
            self.drain_effects(node, end);
            self.schedule(node, end);
        }
    }

    fn deliver(&mut self, time: u64, dst: NodeId, msg: Msg) {
        match msg {
            Msg::Println { line, .. } => {
                // Forwarded console output lands in the console node's own
                // buffer so local and remote lines stay in arrival order.
                match &mut self.workers[dst as usize].env {
                    NodeEnv::Js(e) => e.console.push(line),
                    NodeEnv::Baseline(e) => e.output.push(line),
                }
            }
            Msg::SpawnThread { thread_gid, class, state, priority } => {
                let slot = &mut self.in_flight[dst as usize];
                *slot = slot.saturating_sub(1);
                let obj = {
                    let image: &Image = &self.image;
                    let w = &mut self.workers[dst as usize];
                    let env = w.env.js();
                    env.dsm.install_spawned(&mut w.heap, image, thread_gid, class, &state)
                };
                let m = self.image.method(self.thread_main);
                let frame = Frame::new(self.thread_main, m.max_locals, vec![Value::Ref(obj)], false);
                let uid = self.add_thread(dst, frame, Some(obj), time);
                self.thread_mut(dst, uid).priority = priority.clamp(1, 10);
                self.drain_effects(dst, time);
            }
            other => {
                let handler_ps = {
                    let image: &Image = &self.image;
                    let w = &mut self.workers[dst as usize];
                    let env = w.env.js();
                    env.dsm.handle(&mut w.heap, image, other);
                    w.model.handler_fixed_ns * 1_000
                };
                self.drain_effects(dst, time + handler_ps);
            }
        }
    }

    fn join_worker(&mut self, time: u64, spec: NodeSpec) {
        let m = spec.profile.cost_model();
        let id = self.net.add_node(LinkParams { base_ns: m.net_base_ns, per_byte_ns: m.net_per_byte_ns });
        let image = self.image.clone();
        let mut w = make_worker(id, spec, &self.config, &image, self.thread_class);
        // The joiner downloads the rewritten classes first (the paper's
        // applet workers fetch them over HTTP).
        if self.config.mode == Mode::JavaSplit {
            let at = self.net.send(time, 0, id, self.class_bytes, jsplit_net::MsgKind::Control);
            for c in &mut w.cpu_free {
                *c = at;
            }
        }
        // Late joiners also need the statics singletons (paper: new nodes
        // join "simply by pointing a browser at the worker applet").
        if self.config.mode == Mode::JavaSplit {
            let singletons: Vec<(ClassId, u16, Gid, ClassId)> = {
                let w0 = &mut self.workers[0];
                image
                    .classes
                    .iter()
                    .filter_map(|rc| {
                        let slot = rc.static_names.iter().position(|n| &**n == STATICS_HOLDER)?;
                        let Value::Ref(master) = w0.heap.get_static(rc.id, slot as u16) else {
                            return None;
                        };
                        let gid = w0.heap.get(master).dsm.gid?;
                        Some((rc.id, slot as u16, gid, w0.heap.get(master).class))
                    })
                    .collect()
            };
            for (class, slot, gid, comp) in singletons {
                let local = w.env.js().dsm.ensure_cached(&mut w.heap, &image, gid, comp);
                w.heap.set_static(class, slot, Value::Ref(local));
            }
        }
        self.workers.push(w);
        self.in_flight.push(0);
        self.ops_per_node.push(0);
    }
}

fn make_worker(id: NodeId, spec: NodeSpec, config: &ClusterConfig, image: &Arc<Image>, thread_class: ClassId) -> Worker {
    let model = spec.profile.cost_model();
    let mut heap = Heap::new();
    heap.init_statics(image);
    let mut env = match config.mode {
        Mode::Baseline => NodeEnv::Baseline(jsplit_mjvm::BaselineEnv::new(model, thread_class)),
        Mode::JavaSplit => NodeEnv::Js(JsEnv::new(
            model,
            id,
            DsmNode::new(
                id,
                DsmConfig {
                    mode: config.protocol,
                    disable_local_locks: config.disable_local_locks,
                    array_chunk: config.array_chunk,
                },
            ),
            thread_class,
        )),
    };
    if config.trace.is_some() {
        if let NodeEnv::Js(e) = &mut env {
            e.dsm.trace = Some(Vec::new());
        }
    }
    Worker {
        id,
        model,
        heap,
        env,
        threads: Vec::new(),
        free_slots: Vec::new(),
        live: 0,
        ready: VecDeque::new(),
        cpu_free: vec![0; config.cpus_per_node],
        cpu_busy: vec![false; config.cpus_per_node],
    }
}

/// Convenience: configure-and-run in one call.
pub fn run_cluster(config: ClusterConfig, program: &Program) -> Result<RunReport, ClusterError> {
    Ok(Cluster::new(config, program)?.run())
}
