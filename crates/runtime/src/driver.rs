//! The driver layer: what owns time and message delivery.
//!
//! A driver takes the prepared program, builds one [`NodeRuntime`] per
//! worker, and executes the [`Effect`](crate::node::Effect) streams the
//! nodes emit against a [`Transport`]. Two drivers exist:
//!
//! * [`Cluster`](crate::exec::Cluster) — the discrete-event virtual-time
//!   simulator over [`jsplit_net::Network`]: one global event queue, fully
//!   deterministic, the *reference semantics* of the reproduction.
//! * [`ThreadsDriver`](crate::threads::ThreadsDriver) — each node on its
//!   own OS thread over [`jsplit_net::ChannelEndpoint`]s, encoded bytes
//!   crossing the channels, virtual time advanced in conservative windows.
//!
//! This module holds the preparation steps both share: program rewrite and
//! image load, the class-file broadcast (the one helper behind every
//! bootstrap path), and the `C_static` singleton bootstrap of §4.2.

use crate::config::{ClusterConfig, Mode, NodeSpec};
use crate::env::CONSOLE_NODE;
use crate::node::NodeRuntime;
use crate::report::RunReport;
use jsplit_mjvm::class::{Program, Sig};
use jsplit_mjvm::heap::Gid;
use jsplit_mjvm::loader::{ClassId, Image, LoadError, MethodId};
use jsplit_mjvm::{stdlib, Value};
use jsplit_net::{LinkParams, MsgKind, NodeId, Transport};
use jsplit_rewriter::{RewriteError, RewriteStats, STATICS_HOLDER};
use std::sync::Arc;

/// Errors preparing a cluster run.
#[derive(Debug)]
pub enum ClusterError {
    Rewrite(RewriteError),
    Load(LoadError),
    Config(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Rewrite(e) => write!(f, "rewrite failed: {e}"),
            ClusterError::Load(e) => write!(f, "load failed: {e}"),
            ClusterError::Config(s) => write!(f, "bad configuration: {s}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// A backend runs a prepared cluster to completion.
pub trait Driver: Sized {
    fn run(self) -> RunReport;
}

/// Everything both drivers derive from the program before any node exists.
pub struct Prepared {
    pub image: Arc<Image>,
    pub rewrite: Option<RewriteStats>,
    /// Serialized size of the rewritten program (class distribution cost).
    pub class_bytes: usize,
    pub thread_class: ClassId,
    pub thread_main: MethodId,
}

/// Rewrite (JavaSplit mode), load, resolve the runtime entry points.
pub fn prepare(config: &ClusterConfig, program: &Program) -> Result<Prepared, ClusterError> {
    if config.nodes.is_empty() {
        return Err(ClusterError::Config("at least one node required".into()));
    }
    if config.mode == Mode::Baseline && config.nodes.len() != 1 {
        return Err(ClusterError::Config("baseline mode runs on exactly one node".into()));
    }
    let (image, rewrite, class_bytes) = match config.mode {
        Mode::Baseline => {
            let image = Image::load(program).map_err(ClusterError::Load)?;
            (image, None, 0usize)
        }
        Mode::JavaSplit => {
            let rw = jsplit_rewriter::rewrite_program(program).map_err(ClusterError::Rewrite)?;
            let image = Image::load(&rw.program).map_err(ClusterError::Load)?;
            // §2: "the resulting rewritten classes are sent to one of
            // the worker nodes" — class distribution is real traffic. Size
            // it by streaming the encoding in wire-frame-sized chunks: the
            // serialized program never materializes as one giant buffer.
            let bytes = jsplit_mjvm::classfile_io::encode_program_chunked(
                &rw.program,
                jsplit_net::FRAME_CHUNK,
                &mut |_| {},
            );
            (image, Some(rw.stats), bytes)
        }
    };
    let image = Arc::new(image);
    let thread_class = image.class_id_any(stdlib::THREAD).expect("Thread class");
    let thread_main = image
        .resolve_method(
            image.class_id_any(stdlib::JSRUNTIME).expect("JSRuntime"),
            &Sig::new("threadMain", &[jsplit_mjvm::Ty::Ref], None),
        )
        .expect("threadMain");
    Ok(Prepared { image, rewrite, class_bytes, thread_class, thread_main })
}

/// A node's link parameters, from its JVM-brand cost model (Table 3: the
/// socket-stack overhead differs by brand).
pub fn link_params(spec: NodeSpec) -> LinkParams {
    let m = spec.profile.cost_model();
    LinkParams { base_ns: m.net_base_ns, per_byte_ns: m.net_per_byte_ns }
}

/// Ship the rewritten class files from the console node to `dst` at `now`
/// (§2: class distribution is real traffic on the same links, counted in
/// the statistics). Returns the virtual arrival time. Every bootstrap path
/// — initial pool, mid-run joiner, threads backend — goes through here.
pub fn ship_classes(net: &mut dyn Transport, now: u64, dst: NodeId, class_bytes: usize) -> u64 {
    net.send(now, CONSOLE_NODE, dst, class_bytes, MsgKind::Control)
}

/// One `C_static` singleton: (class, static slot, gid, companion class).
pub type SingletonSpec = (ClassId, u16, Gid, ClassId);

/// Create the shared `C_static` singletons on node 0 and fill every node's
/// constant holder slot with a (placeholder) local copy (§4.2).
pub fn bootstrap_statics(nodes: &mut [NodeRuntime], image: &Arc<Image>) {
    let mut singletons: Vec<SingletonSpec> = Vec::new();
    for rc in &image.classes {
        let Some(slot) = rc.static_names.iter().position(|n| &**n == STATICS_HOLDER) else {
            continue;
        };
        let comp_name = format!("{}{}", rc.name, jsplit_rewriter::STATIC_SUFFIX);
        let comp = image.class_id(&comp_name).expect("companion class exists");
        // Master on worker 0.
        let w0 = &mut nodes[0];
        let zeros = image.class(comp).zeroed_fields();
        let master = w0.heap.alloc_object(comp, zeros.len(), zeros);
        let gid = w0.env.js().dsm.share_object(&mut w0.heap, master);
        w0.heap.set_static(rc.id, slot as u16, Value::Ref(master));
        singletons.push((rc.id, slot as u16, gid, comp));
    }
    for w in nodes.iter_mut().skip(1) {
        install_singletons(w, image, &singletons);
    }
}

/// Read the already-bootstrapped singleton set back off node 0's heap (a
/// mid-run joiner needs the same installs the initial pool got).
pub fn singleton_specs(node0: &mut NodeRuntime, image: &Arc<Image>) -> Vec<SingletonSpec> {
    image
        .classes
        .iter()
        .filter_map(|rc| {
            let slot = rc.static_names.iter().position(|n| &**n == STATICS_HOLDER)?;
            let Value::Ref(master) = node0.heap.get_static(rc.id, slot as u16) else {
                return None;
            };
            let gid = node0.heap.get(master).dsm.gid?;
            Some((rc.id, slot as u16, gid, node0.heap.get(master).class))
        })
        .collect()
}

/// Cache the singleton set on one node and point its holder slots at the
/// local copies.
pub fn install_singletons(w: &mut NodeRuntime, image: &Arc<Image>, singletons: &[SingletonSpec]) {
    for (class, slot, gid, comp) in singletons {
        let local = w.env.js().dsm.ensure_cached(&mut w.heap, image, *gid, *comp);
        w.heap.set_static(*class, *slot, Value::Ref(local));
    }
}
