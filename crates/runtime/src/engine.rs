//! The backend-agnostic conservative synchronization engine.
//!
//! One [`SyncEngine`] is a node's event loop: drain inbound records →
//! derive a safe virtual-time horizon → execute local events below it →
//! publish progress — the conservative PDES core shared by every parallel
//! backend. What *varies* per backend is how progress crosses node
//! boundaries, and that seam is two small traits:
//!
//! * [`EpochPeers`] — the windowed (barrier-round) protocol's four
//!   primitives: round barrier, slot publish, publish wait, slot read.
//!   The threads backend implements them over shared-memory atomics and a
//!   `std::sync::Barrier`; the sockets backend over `Barrier`/`BarrierAck`/
//!   `Slot`/`Slots` envelopes relayed by the coordinator.
//! * [`WirePeers`] — what the barrier-free async mode needs from a
//!   message-passing fabric whose peers share no memory: outcome polling,
//!   idle-state reports for the coordinator's termination scan, and the
//!   final-flush rendezvous.
//!
//! The in-process async mode ([`SyncEngine::run_async`]) additionally
//! leans on [`AsyncShared`] — shared-memory slots, the §14.4 send-coverage
//! invariant and CAS-decided termination — which has no wire analogue:
//! over sockets the same lookahead bounds ride pure per-channel
//! Chandy–Misra–Bryant promises and the *coordinator* detects termination
//! ([`SyncEngine::run_async_wire`], DESIGN.md §16.3).
//!
//! # Conservative virtual-time windows
//!
//! Virtual time is the semantic clock (instruction costs, link latencies);
//! only the *execution* is parallel. Every cross-node message carries at
//! least the sender's per-message base latency, so a node can safely
//! process local events up to a horizon no in-flight or future message can
//! undercut.
//!
//! ## Lookahead
//!
//! [`Lookahead::Global`] bounds every window by the cheapest sender's base
//! latency: horizon = `min_next + min_base`. [`Lookahead::PerPair`] uses
//! the published per-node promises (null-message style): node `j` advances
//! to
//!
//! ```text
//! h_j = min( min_{i≠j} (next_i + base_i),          direct influence
//!            next_j + base_j + min_{i≠j} base_i )  self-echo via a peer
//! ```
//!
//! The first term bounds any chain of causality *starting at a peer*: all
//! of `i`'s sends this round happen at virtual times ≥ `next_i` (it drains
//! only at round boundaries, and every effect of an event at `t` is
//! stamped ≥ `t`), so anything reaching `j` — directly or through other
//! nodes, which only add nonnegative hops — arrives ≥ `next_i + base_i`.
//! The second term bounds chains starting at `j` itself: `j`'s earliest
//! send leaves at ≥ `next_j`, needs `base_j` to reach any peer and at
//! least the cheapest peer base to come back. Without it a two-hop echo
//! through an idle peer (`next_i = ∞`) could arrive inside an unbounded
//! window. Idle peers otherwise cost nothing — `∞ + base` never binds —
//! which is what lets lightly-coupled topologies run long windows.
//!
//! Within a window nodes run concurrently on real CPUs (the wall-clock
//! speedup), yet each node's virtual-time execution is identical to what
//! the sequential simulator would do — program output and protocol
//! counters match the sim backend under either lookahead mode and under
//! every backend (asserted by the cross-backend differential tests). The
//! residual freedom is tie-ordering of *distinct nodes'* events at exactly
//! equal virtual times, which the deterministic key resolves run-to-run
//! reproducibly.

use crate::balance::{BalancerState, LoadBalancer};
use crate::config::{Lookahead, Mode};
use crate::env::CONSOLE_NODE;
use crate::node::{Effect, LocalEv, NodeRuntime};
use jsplit_dsm::Msg;
use jsplit_mjvm::heap::ThreadUid;
use jsplit_mjvm::interp::{Frame, VmError};
use jsplit_mjvm::loader::MethodId;
use jsplit_mjvm::Value;
use jsplit_net::{ChannelEndpoint, NodeId, Reader};
use jsplit_trace::{
    Event, FlightRecorder, FlightTag, Metric, MetricsRegistry, NodeWallProfile, RingRecorder,
    SpanKind, SpanRecorder, TraceEvent, TraceMode, TraceSink, VecRecorder,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-node sink construction (the `Send` bound lets it ride to the node's
/// OS thread; the sim's global `make_sink` doesn't need one).
pub(crate) fn make_node_sink(mode: TraceMode) -> Box<dyn TraceSink + Send> {
    match mode {
        TraceMode::Full => Box::new(VecRecorder::new()),
        TraceMode::Ring(cap) => Box::new(RingRecorder::new(cap)),
    }
}

/// The lookahead tables every horizon decision reads — backend-independent
/// cluster constants, owned (small vectors) by each node's engine.
#[derive(Debug, Clone)]
pub(crate) struct Horizons {
    /// Global-mode window width: the minimum cross-node per-message base
    /// latency (`u64::MAX` for a single node — one window runs everything).
    pub window_ps: u64,
    /// Per-sender zero-byte latency (ps): the lookahead each node's
    /// promise is extended by.
    pub base_ps: Vec<u64>,
    /// `min_{i≠j} base_ps[i]` per node `j` (the self-echo return hop).
    pub min_peer_base: Vec<u64>,
    pub lookahead: Lookahead,
    pub max_ops: u64,
}

impl Horizons {
    /// Derive the cluster's lookahead tables from its per-node base
    /// latencies.
    pub fn new(base_ps: Vec<u64>, lookahead: Lookahead, max_ops: u64) -> Horizons {
        let n = base_ps.len();
        let window_ps = base_ps.iter().copied().min().unwrap_or(u64::MAX);
        let min_peer_base = (0..n)
            .map(|j| {
                base_ps
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != j)
                    .map(|(_, b)| *b)
                    .min()
                    .unwrap_or(u64::MAX)
            })
            .collect();
        Horizons { window_ps, base_ps, min_peer_base, lookahead, max_ops }
    }
}

/// One node's per-round aggregates under epoch sync: the values every node
/// publishes after its drain and reads from every peer before deciding.
/// The quintuple is what crosses backends — shared-memory atomics in the
/// threads backend, an explicit `Slot` wire record in the sockets backend.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EpochSlot {
    /// Earliest local event time after this round's drain — a lower bound
    /// on the virtual time of *any* future send by this node (`u64::MAX`
    /// if idle). Non-decreasing across rounds.
    pub next_event: u64,
    pub live: u64,
    /// Cumulative `SpawnThread` messages sent / installed (their difference
    /// is the cluster-wide in-flight count — the sim's `in_flight` sum).
    pub spawns_sent: u64,
    pub spawns_recv: u64,
    pub ops: u64,
}

/// The epoch protocol's synchronization seam. Contract per round `r`
/// (DESIGN.md §16.2):
///
/// 1. [`EpochPeers::barrier`] returns only after every node has entered it
///    for round `r`, and everything a peer flushed before entering is in
///    this node's inbound channel when it returns;
/// 2. [`EpochPeers::publish`] makes this node's round-`r` slot readable by
///    every peer (a Release-equivalent: peers that observe the publish
///    observe the slot values);
/// 3. [`EpochPeers::wait`] returns once all `n` round-`r` slots are
///    readable (the matching Acquire), reporting whether it parked;
/// 4. [`EpochPeers::read`] yields all `n` slots for round `r` — the same
///    values on every node, so every node derives the same decision.
pub(crate) trait EpochPeers {
    fn barrier(&mut self);
    fn publish(&mut self, me: NodeId, round: u64, slot: &EpochSlot);
    /// `before_park` runs once, after any spin budget and before the
    /// blocking path — the engine hangs profiling marks and the parked
    /// gauge there. Returns whether the wait blocked.
    fn wait(&mut self, round: u64, before_park: &mut dyn FnMut()) -> bool;
    fn read(&mut self, round: u64, out: &mut [EpochSlot]);
}

/// What the barrier-free async mode needs from a fabric whose peers live
/// in other processes (the sockets backend): the coordinator owns
/// termination (DESIGN.md §16.3), the engine only reports and polls.
pub(crate) trait WirePeers {
    /// Has the coordinator announced the run's outcome? Non-blocking;
    /// returns an [`async_done`] value once decided.
    fn poll_done(&mut self) -> Option<u64>;
    /// Progress report for the coordinator's termination scan. Must be
    /// called only after the flush that precedes it, so it rides the
    /// stream *behind* every record it accounts for.
    fn send_state(&mut self, qhead: u64, drained: u64, live: u64, ops: u64);
    /// Final-flush rendezvous: announce this node's last flush, block
    /// until every node's leftovers have been relayed into our channel.
    fn flush_rendezvous(&mut self);
}

/// Cross-node state for the in-process asynchronous sync mode (DESIGN.md
/// §14): no barrier, no rounds — progress rides per-channel promises, and
/// the only shared state is what termination detection needs.
///
/// Counter discipline (all `SeqCst`; the proofs in §14.3 lean on the
/// single total order):
/// * `spawns_sent` / `msgs_sent` are incremented *before* the record can
///   enter a channel ([`SyncEngine::transmit`]);
/// * a node's `live` delta is added *before* its `spawns_recv` delta at
///   burst end, and both only after the installs they describe;
/// * `msgs_recv` is incremented while the draining node's slot version is
///   odd, before it republishes `next`.
pub(crate) struct AsyncShared {
    /// Per-node `(version, next)`: `version` odd while the node is inside
    /// a drain→process→publish burst, even while it is idle between
    /// bursts; `next` is its earliest pending event (`u64::MAX` if none),
    /// valid whenever `version` is even.
    pub slots: Vec<AsyncSlot>,
    /// Live guest threads cluster-wide (sum of published per-node deltas;
    /// deltas wrap mod 2⁶⁴, the sum is exact). Initialized to 1: the main
    /// thread is prepaid so no checker can observe an all-zero world
    /// before node 0 bootstraps.
    pub live: AtomicU64,
    pub spawns_sent: AtomicU64,
    pub spawns_recv: AtomicU64,
    /// Remote data records sent / drained (loopbacks never enter a
    /// channel and are excluded; null records are not data).
    pub msgs_sent: AtomicU64,
    pub msgs_recv: AtomicU64,
    /// Per-pair drain acknowledgements: `acked[src·n + dst]` counts the
    /// data records from `src` that `dst` has drained into its queue. A
    /// receiver credits its cell *after* republishing its own `next`
    /// (which then covers the drained events); the sender prunes its
    /// `unacked` send-time floor against the cell. Channels are FIFO per
    /// pair, so a bare count identifies exactly which sends are ack'd.
    pub acked: Vec<AtomicU64>,
    pub ops: AtomicU64,
    /// Run outcome, decided exactly once ([`async_done`] values).
    pub done: AtomicU64,
    /// Shutdown rendezvous: nodes increment after their final flush; the
    /// final leftover drain waits for all `n`, so every sent record is
    /// receive-accounted before endpoints are torn down.
    pub flushed: AtomicU64,
}

#[derive(Default)]
pub(crate) struct AsyncSlot {
    pub version: AtomicU64,
    /// Pending-aware `next` ([`SyncEngine::async_next`]): earliest queued
    /// event, clamped to the node's in-flight send floor. Horizon input.
    pub next: AtomicU64,
    /// Bare queue head, published alongside `next`: the *executable*
    /// demand signal. A node parked at `qnext` can only be unblocked by a
    /// peer whose delivery bound crosses it — the gate standalone nulls
    /// ride on. (`next` would over-trigger: an in-flight-send floor pins
    /// it below anything the node could actually run.)
    pub qnext: AtomicU64,
    /// True while the node is parked on its inbound channel
    /// ([`SyncEngine::run_async`]'s horizon wait) — the other half of the
    /// demand signal: an awake peer recomputes its horizon from the
    /// published snapshot by itself and needs no frame.
    pub parked: AtomicBool,
}

/// Run-outcome values ([`AsyncShared::done`] and the sockets backend's
/// `Done` envelope payload).
pub(crate) mod async_done {
    pub const RUNNING: u64 = 0;
    pub const FINISH: u64 = 1;
    pub const DEADLOCK: u64 = 2;
    pub const ABORT: u64 = 3;
}

impl AsyncShared {
    pub fn new(n: usize) -> AsyncShared {
        AsyncShared {
            slots: (0..n)
                .map(|_| AsyncSlot {
                    version: AtomicU64::new(0),
                    next: AtomicU64::new(0),
                    qnext: AtomicU64::new(0),
                    parked: AtomicBool::new(false),
                })
                .collect(),
            live: AtomicU64::new(1),
            spawns_sent: AtomicU64::new(0),
            spawns_recv: AtomicU64::new(0),
            msgs_sent: AtomicU64::new(0),
            msgs_recv: AtomicU64::new(0),
            acked: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
            ops: AtomicU64::new(0),
            done: AtomicU64::new(async_done::RUNNING),
            flushed: AtomicU64::new(0),
        }
    }

    /// Race to set the terminal outcome; `true` for the winning node,
    /// which owes its peers a wakeup (they may be parked on the inbound
    /// channel and would otherwise only notice at the next timeout).
    pub fn decide(&self, outcome: u64) -> bool {
        self.done.compare_exchange(async_done::RUNNING, outcome, Ordering::SeqCst, Ordering::SeqCst).is_ok()
    }

    /// Finish detection without a rendezvous (§14.3): `live == 0` with
    /// spawn counters settled. The read order `sent, recv, live, sent` is
    /// load-bearing: any spawn not yet fully published leaves either a
    /// counter mismatch or a visible live thread at one of these reads.
    pub fn finished(&self) -> bool {
        let s1 = self.spawns_sent.load(Ordering::SeqCst);
        let r1 = self.spawns_recv.load(Ordering::SeqCst);
        let l = self.live.load(Ordering::SeqCst);
        let s2 = self.spawns_sent.load(Ordering::SeqCst);
        l == 0 && s1 == r1 && s1 == s2
    }

    /// Deadlock detection (§14.3): live threads, every published `next`
    /// at infinity, nothing in flight — double-scanned with slot versions
    /// even and stable so the snapshot is a consistent quiescent state.
    /// Cold path: only runs on an idle node between parks. `vbuf` is the
    /// caller's reusable version-snapshot buffer.
    pub fn deadlocked(&self, vbuf: &mut Vec<u64>) -> bool {
        vbuf.clear();
        for s in &self.slots {
            let v = s.version.load(Ordering::SeqCst);
            if v % 2 == 1 || s.next.load(Ordering::SeqCst) != u64::MAX {
                return false;
            }
            vbuf.push(v);
        }
        let ms1 = self.msgs_sent.load(Ordering::SeqCst);
        let mr1 = self.msgs_recv.load(Ordering::SeqCst);
        let s1 = self.spawns_sent.load(Ordering::SeqCst);
        let r1 = self.spawns_recv.load(Ordering::SeqCst);
        let l = self.live.load(Ordering::SeqCst);
        if l == 0 || ms1 != mr1 || s1 != r1 {
            return false;
        }
        // Stability re-scan: versions unchanged means no node drained or
        // processed anything between the two scans, so the `next` values
        // and counters describe one global instant.
        for (s, &v) in self.slots.iter().zip(vbuf.iter()) {
            if s.version.load(Ordering::SeqCst) != v {
                return false;
            }
        }
        self.msgs_sent.load(Ordering::SeqCst) == ms1
            && self.msgs_recv.load(Ordering::SeqCst) == mr1
            && self.spawns_sent.load(Ordering::SeqCst) == s1
    }
}

/// What one node's engine hands back when the run is over.
pub(crate) struct NodeOutcome {
    pub node: NodeRuntime,
    pub endpoint: ChannelEndpoint,
    pub errors: Vec<(ThreadUid, VmError)>,
    pub deadlocked: bool,
    pub aborted: bool,
    /// Final length of the local event-payload slab (live-event bound).
    pub slab_high_water: u64,
    /// Windows this node processed (identical on every node under epoch
    /// sync; per-node bursts-with-work under async).
    pub windows: u64,
    /// Round-barrier crossings this node made (zero under async sync).
    pub barrier_waits: u64,
    /// Times this node's safe horizon strictly advanced (async sync).
    pub horizon_advances: u64,
    /// The node's private trace sink, still open: the driver appends the
    /// leftover DSM/endpoint buffers (stamped at the *global* finish time,
    /// which no single node knows) before draining it.
    pub recorder: Option<Box<dyn TraceSink + Send>>,
    /// Wall-clock span profile (`None` unless profiling was on).
    pub profile: Option<NodeWallProfile>,
}

/// A node-local scheduled event (the per-node analogue of the sim driver's
/// global queue entry).
enum NodeEv {
    Local(LocalEv),
    Deliver { src: NodeId, msg: Msg },
}

/// Event-queue ordering key: `(time, step, lane, seq, slab index)`.
type EvKey = (u64, u64, NodeId, u64, usize);

/// One node's conservative event loop, generic over how progress crosses
/// node boundaries (see the module docs). The threads backend runs one per
/// OS thread; the sockets backend one per worker process.
pub(crate) struct SyncEngine {
    pub node: NodeRuntime,
    pub endpoint: ChannelEndpoint,
    pub hz: Horizons,
    /// In-process async-mode shared state (`None` under epoch sync and in
    /// the sockets backend). Its presence also arms the eager global
    /// counter increments in [`SyncEngine::transmit`].
    pub asy: Option<Arc<AsyncShared>>,
    mode: Mode,
    thread_main: MethodId,
    n_nodes: usize,
    /// Strided uid allocation: `id + k·n` — disjoint from every other node
    /// without global coordination. uids are fixed-width on the wire, so
    /// message sizes (and byte counters) match the sim's dense allocation.
    next_uid: ThreadUid,
    lb: BalancerState,
    /// `SpawnThread`s this node shipped per destination (the origin-local
    /// load estimate: remote loads are what we shipped there).
    shipped_to: Vec<u64>,
    /// Self-shipped spawns not yet installed (counted into our own load).
    self_inflight: u64,
    spawns_sent: u64,
    spawns_recv: u64,
    /// Local event queue, deterministically ordered by
    /// `(time, step, lane, seq)`: `step` is the virtual time of the event
    /// that produced the entry, `lane` the producing node, `seq` a local
    /// tie-breaker assigned in deterministic order.
    events: BinaryHeap<Reverse<EvKey>>,
    payloads: Vec<Option<NodeEv>>,
    free_events: Vec<usize>,
    seq: u64,
    errors: Vec<(ThreadUid, VmError)>,
    fx: Vec<Effect>,
    /// Reused drain staging buffer (sorted per round, never reallocated in
    /// the steady state).
    drain_scratch: Vec<(u64, u64, NodeId, u64, Msg)>,
    /// Cumulative data records shipped per destination (async sync);
    /// pairs with [`AsyncShared::acked`] to prune `unacked`.
    sent_to: Vec<u64>,
    /// Send times of records shipped but not yet drained by their
    /// receiver, per destination, in channel (FIFO) order:
    /// `(cumulative send index, virtual send time)`. The oldest front
    /// across all queues is the send-coverage floor every published
    /// `next` is clamped to — the invariant that keeps the async horizon
    /// snapshot valid with records in flight (§14.4).
    unacked: Vec<VecDeque<(u64, u64)>>,
    /// Reused per-drain record counts per source (ack credits).
    ack_scratch: Vec<u64>,
    windows: u64,
    barrier_waits: u64,
    /// Times the safe horizon strictly advanced (async sync only).
    horizon_advances: u64,
    /// This node's private trace sink (`None` = tracing off). Never shared:
    /// recording is a plain method call on thread-local state.
    pub recorder: Option<Box<dyn TraceSink + Send>>,
    /// Wall-clock span profiler (`None` = profiling off: one branch/site).
    pub profiler: Option<SpanRecorder>,
    /// Live-metrics registry (`None` = metrics off: one branch per publish
    /// site). Values go out as single relaxed stores of counters this loop
    /// already maintains — the sampler thread does all derived work.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Flight recorder for recent state transitions (`None` = off).
    pub flight: Option<Arc<FlightRecorder>>,
    /// Watchdog fault injection: sleep this many wall-clock ms before the
    /// first async iteration, pinning peers on our unpublished promise.
    pub stall_inject_ms: Option<u64>,
    /// Cross-process telemetry pump (`None` outside the sockets backend):
    /// ships this node's registry row toward the coordinator as a
    /// `Metrics` envelope. Invoked from the engine thread only — so the
    /// envelope never interleaves with the frame/control stream — at the
    /// same points the registry is published. Rate limiting lives in the
    /// closure, not here; `true` bypasses it (the end-of-run sample must
    /// reach the coordinator so whole-run rates come out right).
    pub metrics_pump: Option<Box<dyn FnMut(bool) + Send>>,
    /// Thread start instant, set by the node thread itself; `wall_ns` is
    /// measured from it independently of the span accounting.
    pub t0: Instant,
}

impl SyncEngine {
    /// Build an engine around a node and its endpoint; the optional
    /// instruments (recorder, profiler, metrics, flight) start disabled —
    /// drivers arm the ones their configuration asks for.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        node: NodeRuntime,
        endpoint: ChannelEndpoint,
        hz: Horizons,
        mode: Mode,
        thread_main: MethodId,
        n_nodes: usize,
        lb: BalancerState,
    ) -> SyncEngine {
        SyncEngine {
            next_uid: node.id as ThreadUid,
            node,
            endpoint,
            hz,
            asy: None,
            mode,
            thread_main,
            n_nodes,
            lb,
            shipped_to: vec![0; n_nodes],
            self_inflight: 0,
            spawns_sent: 0,
            spawns_recv: 0,
            events: BinaryHeap::new(),
            payloads: Vec::new(),
            free_events: Vec::new(),
            seq: 0,
            errors: Vec::new(),
            fx: Vec::new(),
            drain_scratch: Vec::new(),
            sent_to: vec![0; n_nodes],
            unacked: (0..n_nodes).map(|_| VecDeque::new()).collect(),
            ack_scratch: vec![0; n_nodes],
            windows: 0,
            barrier_waits: 0,
            horizon_advances: 0,
            recorder: None,
            profiler: None,
            metrics: None,
            flight: None,
            stall_inject_ms: None,
            metrics_pump: None,
            t0: Instant::now(),
        }
    }

    /// Start the guest `main` thread (worker 0 only, §2), before the first
    /// synchronization point so the first published snapshot counts it.
    pub fn bootstrap_main(&mut self, main_method: MethodId, main_locals: u16) {
        debug_assert_eq!(self.endpoint.id, CONSOLE_NODE);
        let uid = self.alloc_uid();
        let frame = Frame::new(main_method, main_locals, vec![], false);
        let mut fx = std::mem::take(&mut self.fx);
        self.node.add_thread(uid, frame, None, 0, &mut fx);
        self.fx = fx;
        self.apply_effects(0);
    }

    fn push(&mut self, time: u64, step: u64, lane: NodeId, ev: NodeEv) {
        let idx = match self.free_events.pop() {
            Some(i) => {
                self.payloads[i] = Some(ev);
                i
            }
            None => {
                self.payloads.push(Some(ev));
                self.payloads.len() - 1
            }
        };
        self.events.push(Reverse((time, step, lane, self.seq, idx)));
        self.seq += 1;
    }

    fn alloc_uid(&mut self) -> ThreadUid {
        let uid = self.next_uid;
        self.next_uid += self.n_nodes as ThreadUid;
        uid
    }

    /// Record one trace event at virtual time `t` (no-op when disabled).
    #[inline]
    fn record(&mut self, t: u64, ev: TraceEvent) {
        if let Some(r) = &mut self.recorder {
            r.record(Event { t, ev });
        }
    }

    /// Log one flight-recorder transition (no-op when disabled).
    #[inline]
    fn fly(&self, tag: FlightTag, a: u64, b: u64) {
        if let Some(f) = &self.flight {
            f.log(self.endpoint.id, tag, a, b);
        }
    }

    /// Publish this node's registry cells: one relaxed store per value, of
    /// counters the loop already maintains. Called at points the hot path
    /// visits anyway (epoch round publish, async burst publish, pre-park);
    /// with metrics off the whole thing is one untaken branch.
    fn publish_metrics(&self, horizon: u64, next: u64, qnext: u64) {
        let Some(reg) = &self.metrics else {
            return;
        };
        let me = self.endpoint.id;
        reg.set(me, Metric::Ops, self.node.ops);
        reg.set(me, Metric::LiveThreads, self.node.live() as u64);
        reg.set(me, Metric::Windows, self.windows);
        reg.set(me, Metric::BarrierWaits, self.barrier_waits);
        reg.set(me, Metric::HorizonAdvances, self.horizon_advances);
        reg.set(me, Metric::HorizonPs, horizon);
        reg.set(me, Metric::NextEventPs, next);
        reg.set(me, Metric::QueueHeadPs, qnext);
        let ns = &self.endpoint.stats;
        reg.set(me, Metric::NetMsgsSent, ns.msgs_sent);
        reg.set(me, Metric::NetBytesSent, ns.bytes_sent);
        reg.set(me, Metric::NetMsgsRecv, ns.msgs_recv);
        let fs = &self.endpoint.frame_stats;
        reg.set(me, Metric::FramesSent, fs.frames_sent);
        reg.set(me, Metric::NullsSent, fs.nulls_sent + fs.nulls_piggybacked);
        if let Some(d) = self.node.dsm_stats_ref() {
            reg.set(me, Metric::DsmFetches, d.fetches);
            reg.set(me, Metric::DsmDiffs, d.diffs_sent);
            reg.set(me, Metric::DsmInvalidations, d.invalidations);
            reg.set(me, Metric::DsmLockGrants, d.grants_sent);
        }
    }

    /// Ship the registry row cross-process (no-op when no pump is armed).
    #[inline]
    fn pump_metrics(&mut self, force: bool) {
        if let Some(f) = &mut self.metrics_pump {
            f(force);
        }
    }

    /// Stamp and flush this node's clock-free DSM trace buffer at `now`,
    /// then the endpoint's pre-stamped send events — the same order (and
    /// the same call sites, via `FlushTrace`) as the sim driver's
    /// `drain_trace_buffers`, so the per-node recorded sequence matches.
    pub fn drain_trace(&mut self, now: u64) {
        let Some(r) = &mut self.recorder else {
            return;
        };
        for ev in self.node.take_dsm_trace() {
            r.record(Event { t: now, ev });
        }
        if let Some(buf) = &mut self.endpoint.trace {
            for e in buf.drain(..) {
                r.record(e);
            }
        }
    }

    /// Execute a node's effect stream at processing step `step` (the
    /// virtual time of the event being processed).
    fn apply_effects(&mut self, step: u64) {
        let mut fx = std::mem::take(&mut self.fx);
        for f in fx.drain(..) {
            match f {
                Effect::Local { time, ev } => {
                    let lane = self.endpoint.id;
                    self.push(time, step, lane, NodeEv::Local(ev));
                }
                Effect::Send { at, dst, msg } => self.transmit(at, step, dst, msg),
                Effect::Spawn { now, thread_obj, priority } => {
                    self.dispatch_spawn(now, step, thread_obj, priority);
                }
                Effect::Trace { t, ev } => self.record(t, ev),
                Effect::FlushTrace { now } => self.drain_trace(now),
            }
        }
        self.fx = fx;
    }

    /// Encode, account and ship one protocol message at virtual `at`:
    /// remote messages into the destination's pending frame, self-sends
    /// straight back into the local queue.
    fn transmit(&mut self, at: u64, step: u64, dst: NodeId, msg: Msg) {
        // Async termination counters go up *before* the record can enter a
        // channel (`endpoint.transmit` may auto-flush a full frame): a
        // checker that has not seen the increment cannot have seen the
        // message either — the send-before-flight rule §14.3 leans on.
        if matches!(msg, Msg::SpawnThread { .. }) {
            self.spawns_sent += 1;
            if let Some(a) = &self.asy {
                a.spawns_sent.fetch_add(1, Ordering::SeqCst);
            }
        }
        if dst != self.endpoint.id {
            if let Some(a) = &self.asy {
                a.msgs_sent.fetch_add(1, Ordering::SeqCst);
                // Send-coverage bookkeeping (§14.4): until the receiver
                // acks the drain, every published `next` of ours is clamped
                // to this record's send time, so the horizon snapshot keeps
                // covering it while it is in flight.
                self.sent_to[dst as usize] += 1;
                self.unacked[dst as usize].push_back((self.sent_to[dst as usize], at));
            }
        }
        let kind = msg.kind();
        let (deliver, local) = self.endpoint.transmit(at, step, dst, kind, &mut |w| msg.encode_into(w));
        if let Some(wire) = local {
            // Loopback: delivered below any window horizon, so it never
            // crosses the mesh — it goes straight into our queue. The
            // bound is profile-derived (`LinkParams::loopback_ps`, clamped
            // to the base latency); strictly-future delivery keeps the
            // in-window processing order intact. Round-trip the codec
            // anyway: the wire sees what a peer would.
            debug_assert!(
                deliver >= at + self.endpoint.link().loopback_ps(),
                "loopback delivered before its profile bound"
            );
            self.endpoint.record_recv(wire.payload.len(), wire.kind);
            let msg = Msg::decode_from(&mut Reader::new(&wire.payload[..])).expect("loopback codec round-trip");
            self.endpoint.recycle(wire.payload);
            let lane = self.endpoint.id;
            self.push(deliver, step, lane, NodeEv::Deliver { src: lane, msg });
        }
    }

    /// Place a newly started thread (§2's load-balancing plug-in, with an
    /// origin-local load estimate: own load = live + own in-flight, remote
    /// load = spawns shipped there. Identical to the sim's global view as
    /// long as remote threads neither exit nor spawn before placement
    /// finishes — true for the fork-join apps; load gossip is the future
    /// refinement for long-lived remote threads).
    fn dispatch_spawn(&mut self, now: u64, step: u64, thread_obj: jsplit_mjvm::heap::ObjRef, priority: i32) {
        let me = self.endpoint.id;
        match self.mode {
            Mode::Baseline => {
                let uid = self.alloc_uid();
                let image = self.node.image().clone();
                let m = image.method(self.thread_main);
                let frame = Frame::new(self.thread_main, m.max_locals, vec![Value::Ref(thread_obj)], false);
                let mut fx = std::mem::take(&mut self.fx);
                self.node.add_thread(uid, frame, Some(thread_obj), now, &mut fx);
                self.fx = fx;
                self.apply_effects(step);
            }
            Mode::JavaSplit => {
                let loads: Vec<usize> = (0..self.n_nodes)
                    .map(|i| {
                        if i == me as usize {
                            self.node.live() + self.self_inflight as usize
                        } else {
                            self.shipped_to[i] as usize
                        }
                    })
                    .collect();
                let dst = self.lb.pick(&loads, me);
                self.shipped_to[dst as usize] += 1;
                if dst == me {
                    self.self_inflight += 1;
                }
                let msg = self.node.prepare_spawn(thread_obj, priority);
                if let Msg::SpawnThread { thread_gid, .. } = &msg {
                    self.record(now, jsplit_trace::TraceEvent::ThreadShip { from: me, to: dst, thread_gid: thread_gid.0 });
                }
                self.transmit(now, step, dst, msg);
            }
        }
    }

    /// Deliver one protocol message at virtual `time`.
    fn deliver(&mut self, time: u64, src: NodeId, msg: Msg) {
        match msg {
            Msg::Println { line, .. } => self.node.push_console(line),
            Msg::SpawnThread { thread_gid, class, state, priority } => {
                self.spawns_recv += 1;
                if src == self.endpoint.id {
                    self.self_inflight = self.self_inflight.saturating_sub(1);
                }
                let uid = self.alloc_uid();
                let mut fx = std::mem::take(&mut self.fx);
                self.node
                    .install_spawned_thread(uid, thread_gid, class, &state, priority, self.thread_main, time, &mut fx);
                self.fx = fx;
                self.apply_effects(time);
            }
            other => {
                let mut fx = std::mem::take(&mut self.fx);
                self.node.handle_dsm(time, other, &mut fx);
                self.fx = fx;
                self.apply_effects(time);
            }
        }
    }

    /// Drain inbound frames into the local queue, deterministically:
    /// arrival interleaving across senders is scheduler noise, so sort by
    /// the virtual-time key before assigning local sequence numbers.
    /// Records decode in place from the frame buffers (which return to
    /// their senders' pools).
    fn drain_inbox(&mut self) {
        let mut batch = std::mem::take(&mut self.drain_scratch);
        self.endpoint.drain_frames(&mut |src, _kind, deliver_ps, step_ps, seq, payload| {
            let msg = Msg::decode_from(&mut Reader::new(payload)).expect("wire codec round-trip");
            batch.push((deliver_ps, step_ps, src, seq, msg));
        });
        if !batch.is_empty() {
            batch.sort_unstable_by_key(|&(deliver, step, src, seq, _)| (deliver, step, src, seq));
            for (deliver, step, src, _, msg) in batch.drain(..) {
                self.push(deliver, step, src, NodeEv::Deliver { src, msg });
            }
        }
        self.drain_scratch = batch;
    }

    /// Pop-side of the event loop: execute one scheduled event at `time`
    /// whose payload sits at slab `idx` (shared by both sync modes).
    fn process_one(&mut self, time: u64, idx: usize) {
        let ev = self.payloads[idx].take().expect("event payload");
        self.free_events.push(idx);
        match ev {
            NodeEv::Local(LocalEv::Slice { cpu, thread }) => {
                let mut fx = std::mem::take(&mut self.fx);
                let r = self.node.run_slice(time, cpu, thread, &mut fx);
                self.fx = fx;
                if let Some(e) = r.error {
                    self.errors.push((thread, e));
                }
                self.apply_effects(time);
            }
            NodeEv::Local(LocalEv::Wake { thread }) => {
                let mut fx = std::mem::take(&mut self.fx);
                self.node.make_ready(thread, time, &mut fx);
                self.fx = fx;
                self.apply_effects(time);
            }
            NodeEv::Deliver { src, msg } => self.deliver(time, src, msg),
        }
    }

    /// The epoch-sync body: rounds of flush → barrier → drain → publish →
    /// wait → identical decision → process-window, until the cluster-wide
    /// decision says stop. Backend-independent: every synchronization
    /// primitive goes through `peers`.
    pub fn run_epoch(mut self, peers: &mut dyn EpochPeers) -> NodeOutcome {
        let me = self.endpoint.id as usize;
        let n = self.n_nodes;
        let mut deadlocked = false;
        let mut aborted = false;
        let mut round: u64 = 0;
        let mut slots = vec![EpochSlot::default(); n];
        loop {
            round += 1;
            // Span accounting (when on) is boundary-chained: each `mark`
            // closes the segment since the previous boundary, so the seven
            // categories tile this thread's wall time with no gaps. The
            // mark here attributes everything since the last horizon
            // decision — window processing, plus bootstrap on round 1 — to
            // Execute.
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::Execute);
            }
            // Everything this node sent in the previous window (and during
            // bootstrap) ships now; the barrier then guarantees every
            // peer's sends are in our channel before we drain. Draining
            // *after* the barrier is load-bearing: a message missed here
            // could fall inside a later (wider) horizon.
            self.endpoint.flush();
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::FrameFlush);
            }
            peers.barrier();
            self.barrier_waits += 1;
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::BarrierWait);
            }
            self.drain_inbox();
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::InboxDrain);
            }
            // Publish this round's aggregates (in the threads backend:
            // plain field stores, then the epoch release-store that makes
            // them readable; on the wire: an explicit Slot record).
            let next = self.events.peek().map_or(u64::MAX, |Reverse((t, ..))| *t);
            let slot = EpochSlot {
                next_event: next,
                live: self.node.live() as u64,
                spawns_sent: self.spawns_sent,
                spawns_recv: self.spawns_recv,
                ops: self.node.ops,
            };
            peers.publish(me as NodeId, round, &slot);
            self.fly(FlightTag::EpochPublish, round, next);
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::Decide);
            }
            // Wait until every peer has published this round; each node
            // then derives the same global decision from the same values.
            // Attribution splits at the first park: time up to it is
            // SlotSpin, the remainder CondvarWait.
            let mut profiler = self.profiler.take();
            let metrics = self.metrics.clone();
            let flight = self.flight.clone();
            let parked = peers.wait(round, &mut || {
                if let Some(p) = &mut profiler {
                    p.mark(SpanKind::SlotSpin);
                }
                // The parked gauge + flight mark ride the same hook: it
                // runs once, right before the blocking path parks us.
                if let Some(reg) = &metrics {
                    reg.set(me as NodeId, Metric::Parked, 1);
                }
                if let Some(f) = &flight {
                    f.log(me as NodeId, FlightTag::Park, round, next);
                }
            });
            self.profiler = profiler;
            if parked {
                if let Some(reg) = &self.metrics {
                    reg.set(me as NodeId, Metric::Parked, 0);
                }
                self.fly(FlightTag::Unpark, round, next);
            }
            if let Some(p) = &mut self.profiler {
                p.mark(if parked { SpanKind::CondvarWait } else { SpanKind::SlotSpin });
            }
            peers.read(round, &mut slots);
            let mut live = 0u64;
            let mut sent = 0u64;
            let mut recv = 0u64;
            let mut ops = 0u64;
            let mut min_next = u64::MAX;
            for s in &slots {
                live += s.live;
                sent += s.spawns_sent;
                recv += s.spawns_recv;
                ops += s.ops;
                min_next = min_next.min(s.next_event);
            }
            // Spawned-but-undelivered threads count as live: a main that
            // exits immediately after `start()` must not end the run.
            if live == 0 && sent == recv {
                break;
            }
            if ops > self.hz.max_ops {
                aborted = true;
                break;
            }
            if min_next == u64::MAX {
                // Live threads, no scheduled events anywhere, empty
                // channels (anything sent last round was flushed before
                // the barrier and just drained): nothing can ever run
                // again.
                deadlocked = true;
                break;
            }
            self.windows += 1;
            // The safe horizon: no message can be delivered to this node
            // below it (module docs give the argument). n == 1 degenerates
            // to one unbounded window.
            let horizon = if n == 1 {
                u64::MAX
            } else {
                match self.hz.lookahead {
                    Lookahead::Global => min_next.saturating_add(self.hz.window_ps),
                    Lookahead::PerPair => {
                        let mut h = slots[me]
                            .next_event
                            .saturating_add(self.hz.base_ps[me])
                            .saturating_add(self.hz.min_peer_base[me]);
                        for (i, s) in slots.iter().enumerate() {
                            if i != me {
                                h = h.min(s.next_event.saturating_add(self.hz.base_ps[i]));
                            }
                        }
                        h
                    }
                }
            };
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::Decide);
                if horizon != u64::MAX && min_next != u64::MAX {
                    p.window_ps.record(horizon - min_next);
                }
            }
            self.publish_metrics(horizon, next, next);
            self.pump_metrics(false);
            while let Some(&Reverse((time, _, _, _, idx))) = self.events.peek() {
                if time >= horizon {
                    break;
                }
                self.events.pop();
                self.process_one(time, idx);
            }
        }
        self.fly(FlightTag::Decide, if deadlocked { 2 } else if aborted { 3 } else { 1 }, round);
        // Final publish so the sampler's closing sample carries end-of-run
        // counters (the horizon gauge goes to ∞: the run is over, nothing
        // lags anything).
        self.publish_metrics(u64::MAX, self.queue_head(), self.queue_head());
        self.pump_metrics(true);
        self.finish_outcome(deadlocked, aborted)
    }

    /// Close the final profiling segment (the decision that broke the
    /// loop), reconcile against the independently measured thread wall
    /// time, and package the outcome (shared by both sync modes).
    fn finish_outcome(mut self, deadlocked: bool, aborted: bool) -> NodeOutcome {
        let profile = self.profiler.take().map(|mut rec| {
            rec.mark(SpanKind::Decide);
            let wall_ns = u64::try_from(self.t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let mut p = rec.finish(self.endpoint.id, wall_ns);
            if let Some(h) = self.endpoint.frame_hist.take() {
                p.frame_bytes = h;
            }
            p
        });
        NodeOutcome {
            slab_high_water: self.payloads.len() as u64,
            node: self.node,
            endpoint: self.endpoint,
            errors: self.errors,
            deadlocked,
            aborted,
            windows: self.windows,
            barrier_waits: self.barrier_waits,
            horizon_advances: self.horizon_advances,
            recorder: self.recorder,
            profile,
        }
    }

    /// This node's pending-aware `next` (async sync): the earliest local
    /// event, clamped to the send time of the oldest record we shipped
    /// whose receiver has not drained it yet. Publishing this — never the
    /// bare queue head — is the send-coverage invariant (§14.4): a record
    /// in flight is always covered by its *sender's* published `next`,
    /// which is what keeps the snapshot horizon valid with traffic in
    /// flight, without any global quiescence check.
    fn async_next(&self) -> u64 {
        let floor = self.unacked.iter().filter_map(|u| u.front().map(|&(_, t)| t)).min().unwrap_or(u64::MAX);
        self.queue_head().min(floor)
    }

    /// Bare earliest queued event — the node's *executable* demand, as
    /// opposed to the coverage-clamped [`Self::async_next`]. Published as
    /// `qnext` so peers can tell "parked on a runnable event" from
    /// "floor merely pinned by an un-drained send".
    fn queue_head(&self) -> u64 {
        self.events.peek().map_or(u64::MAX, |Reverse((t, ..))| *t)
    }

    /// Drop receiver-acknowledged records from the send-coverage floor.
    /// Channels are FIFO per pair, so the receiver's drain count
    /// identifies exactly the prefix of `unacked` whose coverage has
    /// passed to the receiver's published `next`.
    fn prune_acked(&mut self, asy: &AsyncShared) {
        let me = self.endpoint.id as usize;
        let n = self.n_nodes;
        for dst in 0..n {
            if self.unacked[dst].is_empty() {
                continue;
            }
            let a = asy.acked[me * n + dst].load(Ordering::SeqCst);
            while self.unacked[dst].front().is_some_and(|&(c, _)| c <= a) {
                self.unacked[dst].pop_front();
            }
        }
    }

    /// Drain inbound frames under async sync: data records merge into the
    /// event queue exactly as [`SyncEngine::drain_inbox`], and additionally
    /// advance the per-peer channel clocks — a data record's delivery time
    /// is itself a promise (per-link deliveries are strictly increasing),
    /// a null record carries one explicitly.
    /// Returns the number of data records drained (null promises are not
    /// counted — a drain that only moved promises leaves no observable
    /// trace in the termination-detection state).
    fn drain_inbox_async(&mut self, chan: &mut [u64]) -> u64 {
        let mut batch = std::mem::take(&mut self.drain_scratch);
        let mut records = 0u64;
        self.endpoint.drain_frames_with_nulls(
            &mut |src, _kind, deliver_ps, step_ps, seq, payload| {
                let msg = Msg::decode_from(&mut Reader::new(payload)).expect("wire codec round-trip");
                batch.push((deliver_ps, step_ps, src, seq, msg));
                records += 1;
            },
            &mut |src, promise| {
                let c = &mut chan[src as usize];
                *c = (*c).max(promise);
            },
        );
        if !batch.is_empty() {
            for &(deliver, _, src, _, _) in batch.iter() {
                let c = &mut chan[src as usize];
                *c = (*c).max(deliver);
                self.ack_scratch[src as usize] += 1;
            }
            batch.sort_unstable_by_key(|&(deliver, step, src, seq, _)| (deliver, step, src, seq));
            for (deliver, step, src, _, msg) in batch.drain(..) {
                self.push(deliver, step, src, NodeEv::Deliver { src, msg });
            }
        }
        self.drain_scratch = batch;
        if records > 0 {
            if let Some(asy) = self.asy.clone() {
                // Accounting order is load-bearing for §14.4: republish our
                // `next` (now covering the drained events) *before*
                // crediting the per-pair ack cells — a sender that prunes
                // its coverage floor must already see the handoff in our
                // published slot. (Wire mode has no shared slots: there the
                // per-channel promise discipline alone carries coverage,
                // DESIGN.md §16.3.)
                let me = self.endpoint.id as usize;
                let n = self.n_nodes;
                let next = self.async_next();
                let qhead = self.queue_head();
                asy.slots[me].next.store(next, Ordering::SeqCst);
                asy.slots[me].qnext.store(qhead, Ordering::SeqCst);
                asy.msgs_recv.fetch_add(records, Ordering::SeqCst);
                for src in 0..n {
                    let k = std::mem::replace(&mut self.ack_scratch[src], 0);
                    if k == 0 {
                        continue;
                    }
                    asy.acked[src * n + me].fetch_add(k, Ordering::SeqCst);
                    // Doorbell: the sender's published `next` may be pinned
                    // at these records' send times, capping every horizon in
                    // the cluster. If it is parked it cannot prune by itself
                    // — wake it (value 0 is a no-op promise, pure wakeup).
                    if asy.slots[src].parked.load(Ordering::SeqCst) {
                        self.endpoint.push_null(src as NodeId, 0);
                    }
                }
            } else {
                for k in self.ack_scratch.iter_mut() {
                    *k = 0;
                }
            }
        }
        records
    }

    /// Ring peers whose horizon may hang on this node's progress (async
    /// sync). The promise is `min(pending-aware next, input horizon) +
    /// lookahead`: a bound on the delivery time of anything we may still
    /// send — future sends are triggered either by a queued event
    /// (≥ `next`), by an in-flight record of ours (≥ its send time, the
    /// `async_next` floor), or by a future arrival (≥ the input horizon),
    /// and cost at least the lookahead in flight.
    ///
    /// Since every peer can compute the full snapshot horizon itself from
    /// the published slots ([`SyncEngine::snapshot_horizon`]), nulls carry
    /// no information an awake peer needs — they are *doorbells*. A
    /// standalone null therefore ships only to a peer that is parked on a
    /// runnable event (`qnext < ∞`; an awake peer recomputes from the
    /// slots by itself), and only at the *crossing*: the first promise
    /// that lifts our delivery bound past the peer's executable head.
    /// Below the head our term cannot be what unblocks it; above the head
    /// it already is not what blocks it — either way a frame is a wasted
    /// wakeup. The peer whose term is the last to cross is by definition
    /// the blocker, and its crossing frame is the wakeup that matters; a
    /// crossing that happens while the peer is awake (ring skipped) is
    /// covered by the peer's own pre-park snapshot peek, and any residual
    /// race by its park timeout. Only strict increases ship: a promise
    /// never retracts, and each frame both wakes the peer and advances
    /// its channel clock.
    fn refresh_promises(&mut self, asy: &AsyncShared, promised: &mut [u64], horizon: u64, my_base: u64) {
        let promise = self.async_next().min(horizon).saturating_add(my_base);
        let me = self.endpoint.id as usize;
        for (dst, sent) in promised.iter_mut().enumerate() {
            if dst == me || promise <= *sent {
                continue;
            }
            let slot = &asy.slots[dst];
            let qn = slot.qnext.load(Ordering::SeqCst);
            // Crossing rule: `*sent ≤ qn < promise`, i.e. this frame is
            // the one that first clears the peer's head.
            if qn == u64::MAX || *sent > qn || promise <= qn {
                continue;
            }
            if !slot.parked.load(Ordering::SeqCst) {
                continue;
            }
            self.endpoint.push_null(dst as NodeId, promise);
            *sent = promise;
        }
    }

    /// The wire variant of [`SyncEngine::refresh_promises`]: with no shared
    /// slots to self-serve from, promises are the *only* way a peer's
    /// channel clock advances — so every strict increase ships to every
    /// peer, unconditionally (classic eager Chandy–Misra–Bryant). The
    /// promise bound is the same: anything this node may still send is
    /// triggered by a queued event (≥ queue head) or a future arrival
    /// (≥ the input horizon), and costs ≥ `my_base` in flight. Per-pair
    /// FIFO keeps it sound with records in flight: a promise written after
    /// a data record can only be read after it.
    fn refresh_promises_wire(&mut self, promised: &mut [u64], horizon: u64, my_base: u64) {
        let promise = self.queue_head().min(horizon).saturating_add(my_base);
        let me = self.endpoint.id as usize;
        for (dst, sent) in promised.iter_mut().enumerate() {
            if dst == me || promise <= *sent {
                continue;
            }
            self.endpoint.push_null(dst as NodeId, promise);
            *sent = promise;
        }
    }

    /// Poke every peer with a (possibly repeated) null so that anyone
    /// parked on the inbound channel wakes immediately — owed by the node
    /// that wins the termination race, since balanced-mode suppression
    /// means nobody else may be about to send them anything.
    fn wake_peers(&mut self, promised: &[u64]) {
        let me = self.endpoint.id as usize;
        for (dst, &sent) in promised.iter().enumerate() {
            if dst != me {
                self.endpoint.push_null(dst as NodeId, sent);
            }
        }
    }

    /// Epoch-grade horizon from the published snapshot — valid at every
    /// instant, records in flight or not. The published `next` values are
    /// fed to the §12.2 per-pair (or global-window) horizon rule
    /// verbatim; our own slot contributes the live pending-aware `next`.
    ///
    /// Soundness rests on the send-coverage invariant (§14.4): a node's
    /// published `next` is at all times a lower bound on (a) every event
    /// in its queue — drains republish before acking, loopbacks land
    /// above the section's processing point — and (b) the send time of
    /// every record it has shipped that is still undrained (`async_next`
    /// clamps to the `unacked` floor, and the floor only lifts after the
    /// receiver's published `next` covers the record — the ack-after-
    /// republish order in [`SyncEngine::drain_inbox_async`]). With every
    /// in-flight record covered by its sender, any future send by node
    /// `i` originates at ≥ its published `next_i`, and the §12.2
    /// induction goes through unchanged — no quiescence, no version
    /// stability, no counter bracketing. A straggler in a busy cluster
    /// advances its horizon with `n` atomic loads per burst, waking
    /// nobody.
    fn snapshot_horizon(&self, asy: &AsyncShared, next_me: u64, next_buf: &mut Vec<u64>) -> u64 {
        let me = self.endpoint.id as usize;
        next_buf.clear();
        for (i, s) in asy.slots.iter().enumerate() {
            if i == me {
                next_buf.push(next_me);
            } else {
                next_buf.push(s.next.load(Ordering::SeqCst));
            }
        }
        match self.hz.lookahead {
            Lookahead::Global => {
                let min_next = next_buf.iter().copied().min().unwrap_or(u64::MAX);
                min_next.saturating_add(self.hz.window_ps)
            }
            Lookahead::PerPair => {
                let mut h = next_me.saturating_add(self.hz.base_ps[me]).saturating_add(self.hz.min_peer_base[me]);
                for (i, nx) in next_buf.iter().enumerate() {
                    if i != me {
                        h = h.min(nx.saturating_add(self.hz.base_ps[i]));
                    }
                }
                h
            }
        }
    }

    /// The in-process body under `--sync async` (DESIGN.md §14): no
    /// barrier, no rounds. Each iteration drains whatever has arrived,
    /// advances the safe horizon from the per-peer channel clocks,
    /// executes the burst of events strictly below it, publishes
    /// termination-detection state, ships pending frames plus null
    /// promises, and parks on the inbound channel only when it has nothing
    /// left to do. Requires [`SyncEngine::asy`].
    pub fn run_async(mut self) -> NodeOutcome {
        let me = self.endpoint.id as usize;
        let asy = self.asy.clone().expect("async shared state");
        let n = self.n_nodes;
        // The lookahead this node's promises extend by: its own base link
        // latency per-pair, the cluster-cheapest base under global mode
        // (same conservatism as the epoch global window).
        let my_base = match self.hz.lookahead {
            Lookahead::PerPair => self.hz.base_ps[me],
            Lookahead::Global => self.hz.window_ps,
        };
        // chan[p] = channel clock for peer p: no future record from p can
        // deliver below it. Own entry pinned at ∞ so `min` skips it.
        let mut chan = vec![0u64; n];
        chan[me] = u64::MAX;
        let mut promised = vec![0u64; n];
        let mut vbuf: Vec<u64> = Vec::with_capacity(n);
        let mut next_buf: Vec<u64> = Vec::with_capacity(n);
        // The main thread is prepaid in `AsyncShared::live`; baseline the
        // console node at 1 so its bootstrap burst publishes a zero delta.
        let mut last_live: u64 = if me == CONSOLE_NODE as usize { 1 } else { 0 };
        let mut last_spawns_recv = 0u64;
        let mut last_ops = 0u64;
        let mut horizon = 0u64;
        let mut version = 0u64;
        let outcome;
        // Watchdog fault injection: sleep with our initial slot (next = 0)
        // still published — every peer's horizon pins on our promise until
        // we wake. Wall-clock only; virtual-time results are unchanged.
        if let Some(ms) = self.stall_inject_ms.take() {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        loop {
            // --- Odd section: drain, execute, publish. Checkers treat the
            // whole burst as one atomic step.
            asy.slots[me].version.store(version + 1, Ordering::SeqCst);
            let drained = self.drain_inbox_async(&mut chan);
            self.prune_acked(&asy);
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::InboxDrain);
            }
            let mut h = if n == 1 { u64::MAX } else { chan.iter().copied().min().unwrap_or(u64::MAX) };
            if n > 1 {
                // The snapshot horizon is valid at every instant (§14.4
                // send coverage) — the self-serve path that lets a
                // straggler climb through its own windows without a null
                // round-trip or a peer wakeup. Channel clocks can still
                // exceed it briefly (a data delivery outruns its sender's
                // republished `next`), so take the max of both.
                let next_me = self.async_next();
                let h2 = self.snapshot_horizon(&asy, next_me, &mut next_buf);
                h = h.max(h2);
            }
            if h > horizon {
                self.horizon_advances += 1;
                if let Some(p) = &mut self.profiler {
                    if h != u64::MAX {
                        p.window_ps.record(h - horizon);
                    }
                }
                self.fly(FlightTag::HorizonClimb, h, horizon);
                horizon = h;
            }
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::Decide);
            }
            let mut burst = 0u64;
            while let Some(&Reverse((time, _, _, _, idx))) = self.events.peek() {
                if time >= horizon {
                    break;
                }
                self.events.pop();
                self.process_one(time, idx);
                burst += 1;
                // A long burst must not starve peers whose horizon hangs
                // on our promise (the skew scenario): refresh periodically
                // as `next` climbs, not just at burst end.
                if burst.is_multiple_of(256) {
                    self.refresh_promises(&asy, &mut promised, horizon, my_base);
                }
            }
            if burst > 0 {
                self.windows += 1;
            }
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::Execute);
            }
            let next = self.async_next();
            if drained == 0 && burst == 0 && asy.slots[me].next.load(Ordering::SeqCst) == next {
                // Quiet iteration: only null promises moved, nothing the
                // termination checkers observe changed. (A differing
                // published `next` disqualifies: an idle node's very first
                // iteration must promote the slot's initial 0 to ∞, or its
                // unpublished state drags every peer's fast-path horizon
                // down to one link latency for the whole run.) Revert the
                // version to the previous even value instead of closing a
                // new section — otherwise an idle cluster creeping its
                // horizons through a null cascade would bump versions
                // forever and starve the deadlock detector's stability
                // re-scan.
                asy.slots[me].version.store(version, Ordering::SeqCst);
            } else {
                // Publish counter deltas: live strictly before spawns_recv
                // (§14.3 install rule); deltas wrap mod 2⁶⁴ so the global
                // sums stay exact through decrements.
                let live_now = self.node.live() as u64;
                if live_now != last_live {
                    asy.live.fetch_add(live_now.wrapping_sub(last_live), Ordering::SeqCst);
                    last_live = live_now;
                }
                if self.spawns_recv != last_spawns_recv {
                    asy.spawns_recv.fetch_add(self.spawns_recv - last_spawns_recv, Ordering::SeqCst);
                    last_spawns_recv = self.spawns_recv;
                }
                if self.node.ops != last_ops {
                    asy.ops.fetch_add(self.node.ops - last_ops, Ordering::SeqCst);
                    last_ops = self.node.ops;
                }
                let qhead = self.queue_head();
                asy.slots[me].next.store(next, Ordering::SeqCst);
                asy.slots[me].qnext.store(qhead, Ordering::SeqCst);
                // --- Close the odd section; from here the published
                // snapshot is consistent and we only move frames and
                // promises.
                version += 2;
                asy.slots[me].version.store(version, Ordering::SeqCst);
                self.fly(FlightTag::BurstPublish, version, next);
                self.publish_metrics(horizon, next, qhead);
            }
            self.refresh_promises(&asy, &mut promised, horizon, my_base);
            self.endpoint.flush();
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::FrameFlush);
            }
            let done = asy.done.load(Ordering::SeqCst);
            if done != async_done::RUNNING {
                outcome = done;
                break;
            }
            if asy.ops.load(Ordering::SeqCst) > self.hz.max_ops {
                if asy.decide(async_done::ABORT) {
                    self.wake_peers(&promised);
                }
                continue;
            }
            // Executable-work check on the bare queue head: the published
            // `next` may sit below it (pinned by the in-flight floor), and
            // spinning on that would busy-wait for an ack instead of
            // parking for it.
            if self.queue_head() < horizon {
                // More work is already executable (the burst refreshed our
                // own view mid-flight): loop straight around.
                continue;
            }
            // Idle: we ran out of horizon. Try to detect termination, then
            // park on the inbound channel until a peer's data or promise
            // (or the done flag, within the timeout) moves us.
            if asy.finished() {
                if asy.decide(async_done::FINISH) {
                    self.wake_peers(&promised);
                }
                continue;
            }
            if asy.deadlocked(&mut vbuf) {
                if asy.decide(async_done::DEADLOCK) {
                    self.wake_peers(&promised);
                }
                continue;
            }
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::Decide);
            }
            // A burst that raised our published `next` usually raises the
            // snapshot horizon with it (the self-echo term): peek before
            // parking and spin straight into the next window if it moved —
            // this is the self-serve climb that replaces a null round-trip
            // per window with a handful of atomic loads.
            if n > 1 && self.snapshot_horizon(&asy, self.async_next(), &mut next_buf) > horizon {
                continue;
            }
            // The parked bit is the demand signal `refresh_promises` gates
            // standalone nulls on; raise it only for the wait itself. The
            // registry's gauges refresh right before parking so the
            // watchdog judges the park against current values (quiet
            // iterations skip the burst publish but may have climbed the
            // horizon through nulls).
            let qhead = self.queue_head();
            self.publish_metrics(horizon, self.async_next(), qhead);
            if let Some(reg) = &self.metrics {
                reg.set(me as NodeId, Metric::Parked, 1);
            }
            self.fly(FlightTag::Park, horizon, qhead);
            asy.slots[me].parked.store(true, Ordering::SeqCst);
            self.endpoint.wait_inbound(std::time::Duration::from_millis(1));
            asy.slots[me].parked.store(false, Ordering::SeqCst);
            if let Some(reg) = &self.metrics {
                reg.set(me as NodeId, Metric::Parked, 0);
            }
            self.fly(FlightTag::Unpark, horizon, qhead);
            if let Some(p) = &mut self.profiler {
                p.mark(SpanKind::HorizonWait);
            }
        }
        // Two-phase shutdown: ship anything still pending, rendezvous on
        // the flush counter, then drain leftovers so receive accounting
        // matches the sim (which records both ends at send time). The
        // drained events are dropped unprocessed — exactly the events the
        // sim discards after its termination condition trips.
        self.fly(FlightTag::Decide, outcome, 0);
        self.endpoint.flush();
        asy.flushed.fetch_add(1, Ordering::SeqCst);
        while asy.flushed.load(Ordering::SeqCst) < n as u64 {
            std::thread::yield_now();
        }
        self.drain_inbox_async(&mut chan);
        self.fly(
            FlightTag::FlushRendezvous,
            self.endpoint.frame_stats.frames_sent,
            self.endpoint.frame_stats.msgs_framed,
        );
        // Final publish: the sampler's closing sample sees end-of-run
        // counters, so whole-run mean rates come out right (horizon to ∞:
        // the run is over, nothing lags anything).
        self.publish_metrics(u64::MAX, self.async_next(), self.queue_head());
        self.finish_outcome(outcome == async_done::DEADLOCK, outcome == async_done::ABORT)
    }

    /// The message-passing body under `--sync async` (DESIGN.md §16.3):
    /// pure per-channel Chandy–Misra–Bryant. The horizon is the minimum of
    /// the per-peer channel clocks alone — no shared snapshot exists —
    /// advanced by data deliveries and by the eagerly shipped promises of
    /// [`SyncEngine::refresh_promises_wire`]; termination belongs to the
    /// coordinator, which counts every record it relays and quiesces the
    /// cluster from the workers' idle [`WirePeers::send_state`] reports.
    pub fn run_async_wire(mut self, peers: &mut dyn WirePeers) -> NodeOutcome {
        let me = self.endpoint.id as usize;
        let n = self.n_nodes;
        let my_base = match self.hz.lookahead {
            Lookahead::PerPair => self.hz.base_ps[me],
            Lookahead::Global => self.hz.window_ps,
        };
        let mut chan = vec![0u64; n];
        chan[me] = u64::MAX;
        let mut promised = vec![0u64; n];
        let mut horizon = 0u64;
        /// Retired-op quantum between busy-path state reports: the only
        /// thing they feed is the coordinator's `max_ops` abort scan, so
        /// window granularity is enough (the threads backend is no finer).
        const OPS_QUANTUM: u64 = 1 << 20;
        let mut drained_total = 0u64;
        let mut last_state: Option<(u64, u64, u64, u64)> = None;
        let mut ops_at_state = 0u64;
        let outcome;
        loop {
            drained_total += self.drain_inbox_async(&mut chan);
            let h = if n == 1 { u64::MAX } else { chan.iter().copied().min().unwrap_or(u64::MAX) };
            if h > horizon {
                self.horizon_advances += 1;
                horizon = h;
            }
            let mut burst = 0u64;
            while let Some(&Reverse((time, _, _, _, idx))) = self.events.peek() {
                if time >= horizon {
                    break;
                }
                self.events.pop();
                self.process_one(time, idx);
                burst += 1;
                // Long bursts must not starve peers hanging on our promise.
                if burst.is_multiple_of(256) {
                    self.refresh_promises_wire(&mut promised, horizon, my_base);
                }
            }
            if burst > 0 {
                self.windows += 1;
                self.publish_metrics(horizon, self.async_next(), self.queue_head());
            }
            // The pump rate-limits itself, so calling it on quiet
            // iterations too keeps samples flowing while we idle-park.
            self.pump_metrics(false);
            self.refresh_promises_wire(&mut promised, horizon, my_base);
            // Flush *before* any state report: the report must ride the
            // stream behind every record it accounts for, or the
            // coordinator could observe "all drained" with our records
            // still in the pending buffers (a false quiescence).
            self.endpoint.flush();
            if let Some(o) = peers.poll_done() {
                outcome = o;
                break;
            }
            if self.queue_head() < horizon {
                // Still busy. Feed the coordinator's abort scan on a coarse
                // quantum so a runaway burst sequence is still caught.
                if self.node.ops - ops_at_state >= OPS_QUANTUM {
                    let st = (self.queue_head(), drained_total, self.node.live() as u64, self.node.ops);
                    peers.send_state(st.0, st.1, st.2, st.3);
                    last_state = Some(st);
                    ops_at_state = self.node.ops;
                }
                continue;
            }
            // Idle: report (on change) and park. The coordinator decides
            // termination; its Done doorbell lands in our inbound channel
            // via the ingress pump, so the park always wakes for it.
            let st = (self.queue_head(), drained_total, self.node.live() as u64, self.node.ops);
            if last_state != Some(st) {
                peers.send_state(st.0, st.1, st.2, st.3);
                last_state = Some(st);
                ops_at_state = self.node.ops;
            }
            // Refresh gauges right before parking so the coordinator's
            // watchdog judges the park against current values.
            self.publish_metrics(horizon, self.async_next(), st.0);
            self.endpoint.wait_inbound(std::time::Duration::from_millis(1));
        }
        // Shutdown mirrors the in-process mode's two phases, with the
        // coordinator as the rendezvous: flush leftovers, announce, wait
        // for every peer's leftovers to be relayed to us, drain them so
        // receive accounting matches the sim, then report.
        self.endpoint.flush();
        peers.flush_rendezvous();
        self.drain_inbox_async(&mut chan);
        // Closing sample with end-of-run counters (horizon → ∞: the run is
        // over, nothing lags anything). Forced past the pump's rate limit.
        self.publish_metrics(u64::MAX, self.async_next(), self.queue_head());
        self.pump_metrics(true);
        self.finish_outcome(outcome == async_done::DEADLOCK, outcome == async_done::ABORT)
    }
}
