//! # jsplit-runtime — the JavaSplit distributed runtime
//!
//! Ties every substrate together into the system of the paper's Figure 1,
//! layered as *per-node runtime* / *driver* / *transport* (DESIGN.md §11):
//!
//! * [`node::NodeRuntime`] — everything that is per node in the paper's
//!   sense (paper §2): its heap, its MTS-HLRC engine, its interpreter
//!   threads and two virtual CPUs. It communicates only through an ordered
//!   stream of effects (local events, protocol sends, thread ships).
//! * A [`driver::Driver`] owns time and message delivery.
//!   [`exec::Cluster`] is the reference **sim** driver: one deterministic
//!   discrete-event scheduler whose virtual time advances by the
//!   per-instruction costs of each node's JVM-brand cost model and by the
//!   simulated network's message latencies. [`threads::ThreadsDriver`]
//!   runs each node on its own OS thread under a conservative
//!   barrier-windowed lookahead loop, shipping every protocol message as
//!   encoded bytes over channels — same stdout, same virtual time, same
//!   protocol counters, plus real parallel wall-clock speedup.
//! * The `Transport` trait (`jsplit-net`) abstracts the wire: the
//!   virtual-time `Network` for sim, a mesh of channel endpoints for
//!   threads.
//!
//! Two execution modes:
//!
//! * [`config::Mode::Baseline`] — the *original* (unrewritten) program on a
//!   single node with classic monitors: the paper's "Original" bars and the
//!   denominator of every speedup.
//! * [`config::Mode::JavaSplit`] — the program is passed through the
//!   `jsplit-rewriter`, the `C_static` singletons are created and shared,
//!   the main method starts on worker 0, and newly started threads are
//!   shipped to nodes chosen by a plug-in load-balancing function (least
//!   loaded by default, as in the paper).
//!
//! Worker nodes may join mid-execution ([`config::ClusterConfig::joins`],
//! sim backend only), and nodes of different JVM brands mix freely in one
//! run (paper §6). Pick the backend with
//! [`config::ClusterConfig::with_backend`] or `jsplit run --backend`.

pub mod balance;
pub mod config;
pub mod driver;
pub(crate) mod engine;
pub mod env;
pub mod exec;
pub mod node;
pub mod report;
pub mod sockets;
pub mod telemetry;
pub mod threads;

pub use balance::{Balancer, LoadBalancer};
pub use config::{Backend, ClusterConfig, Lookahead, MetricsConfig, Mode, NodeSpec, SyncMode};
pub use driver::{ClusterError, Driver};
pub use exec::Cluster;
pub use node::NodeRuntime;
pub use report::{RunReport, SyncStats};
pub use sockets::SocketsDriver;
pub use telemetry::{Telemetry, Watchdog, WatchdogSpec};
pub use threads::ThreadsDriver;
