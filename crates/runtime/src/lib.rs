//! # jsplit-runtime — the JavaSplit distributed runtime
//!
//! Ties every substrate together into the system of the paper's Figure 1:
//! a [`exec::Cluster`] administers a pool of worker nodes (paper §2), each
//! with its own heap, its own MTS-HLRC engine and two virtual CPUs, all
//! driven by one deterministic discrete-event scheduler whose virtual time
//! advances by the per-instruction costs of each node's JVM-brand cost model
//! and by the simulated network's message latencies.
//!
//! Two execution modes:
//!
//! * [`config::Mode::Baseline`] — the *original* (unrewritten) program on a
//!   single node with classic monitors: the paper's "Original" bars and the
//!   denominator of every speedup.
//! * [`config::Mode::JavaSplit`] — the program is passed through the
//!   `jsplit-rewriter`, the `C_static` singletons are created and shared,
//!   the main method starts on worker 0, and newly started threads are
//!   shipped to nodes chosen by a plug-in load-balancing function (least
//!   loaded by default, as in the paper).
//!
//! Worker nodes may join mid-execution ([`config::ClusterConfig::joins`]),
//! and nodes of different JVM brands mix freely in one run (paper §6).

pub mod balance;
pub mod config;
pub mod env;
pub mod exec;
pub mod report;

pub use balance::{Balancer, LoadBalancer};
pub use config::{ClusterConfig, Mode, NodeSpec};
pub use exec::Cluster;
pub use report::RunReport;
