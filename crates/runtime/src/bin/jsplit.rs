//! `jsplit` — run a serialized MJVM program on a simulated JavaSplit cluster.
//!
//! ```text
//! jsplit run prog.mjvm [--nodes N] [--profile sun|ibm] [--baseline]
//!        [--protocol mts|classic] [--chunk ELEMS] [--balancer least|rr|pinned]
//!        [--backend sim|threads|sockets] [--lookahead global|per_pair] [--sync epoch|async]
//!        [--no-batch] [--trace out.json] [--stats] [--wall-profile] [--objprof]
//!        [--metrics out.jsonl] [--metrics-interval 50ms] [--watchdog 500ms]
//!        [--listen HOST:PORT] [--no-spawn]
//! jsplit worker --connect HOST:PORT [--node-id N] [--connect-timeout SECS]
//! jsplit info prog.mjvm          # class/method/instruction inventory
//! jsplit demo out.mjvm           # write a demo program file to run
//! ```
//!
//! `--backend sockets` runs the cluster as one OS process per node over
//! TCP: by default the coordinator spawns the workers itself on localhost;
//! with `--no-spawn` it prints its address and waits for externally
//! launched `jsplit worker` processes (other terminals, other machines).
//!
//! Program files are produced with
//! [`jsplit_mjvm::classfile_io::encode_program`] — the same bytes the
//! runtime ships to workers at start-up.

use jsplit_dsm::ProtocolMode;
use jsplit_mjvm::classfile_io;
use jsplit_mjvm::cost::JvmProfile;
use jsplit_runtime::exec::run_cluster;
use jsplit_runtime::{Backend, Balancer, ClusterConfig, Lookahead, MetricsConfig, SyncMode};
use std::time::Duration;

/// Parse a human duration: a bare number is milliseconds; `us`, `ms` and
/// `s` suffixes are accepted (`50ms`, `250us`, `2s`).
fn parse_duration(s: &str) -> Option<Duration> {
    let (num, scale_us) = if let Some(n) = s.strip_suffix("us") {
        (n, 1u64)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1_000)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000_000)
    } else {
        (s, 1_000)
    };
    let v: f64 = num.trim().parse().ok()?;
    if !v.is_finite() || v < 0.0 {
        return None;
    }
    Some(Duration::from_micros((v * scale_us as f64).round() as u64))
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  jsplit run <prog.mjvm> [--nodes N] [--profile sun|ibm] [--baseline]\n\
         \x20          [--protocol mts|classic] [--chunk ELEMS] [--balancer least|rr|pinned]\n\
         \x20          [--backend sim|threads|sockets] [--lookahead global|per_pair] [--sync epoch|async]\n\
         \x20          [--no-batch] [--trace out.json] [--stats] [--wall-profile] [--objprof]\n\
         \x20          [--metrics out.jsonl] [--metrics-interval 50ms] [--watchdog 500ms]\n\
         \x20          [--listen HOST:PORT] [--no-spawn]\n\
         \x20 jsplit worker --connect HOST:PORT [--node-id N] [--connect-timeout SECS]\n\
         \x20 jsplit info <prog.mjvm>\n  jsplit demo <out.mjvm>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => usage(),
    };
    match cmd {
        "run" => cmd_run(rest),
        "worker" => cmd_worker(rest),
        "info" => cmd_info(rest),
        "demo" => cmd_demo(rest),
        _ => usage(),
    }
}

fn cmd_worker(rest: &[String]) {
    if let Err(e) = jsplit_runtime::sockets::worker_main(rest) {
        eprintln!("jsplit worker: {e}");
        std::process::exit(1);
    }
}

fn load_program(path: &str) -> jsplit_mjvm::class::Program {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("jsplit: cannot read {path}: {e}");
        std::process::exit(1);
    });
    classfile_io::decode_program(&bytes).unwrap_or_else(|e| {
        eprintln!("jsplit: {path}: {e}");
        std::process::exit(1);
    })
}

fn cmd_run(rest: &[String]) {
    let Some(path) = rest.first() else { usage() };
    let mut nodes = 4usize;
    let mut profile = JvmProfile::SunSim;
    let mut baseline = false;
    let mut protocol = ProtocolMode::MtsHlrc;
    let mut chunk: Option<u32> = None;
    let mut balancer = Balancer::LeastLoaded;
    let mut trace_path: Option<String> = None;
    let mut stats = false;
    let mut wall_profile = false;
    let mut objprof = false;
    let mut backend = Backend::Sim;
    let mut lookahead = Lookahead::default();
    let mut sync = SyncMode::default();
    let mut wire_batch = true;
    let mut metrics_out: Option<String> = None;
    let mut metrics_interval: Option<Duration> = None;
    let mut watchdog: Option<Duration> = None;
    let mut listen: Option<std::net::SocketAddr> = None;
    let mut spawn_workers = true;
    let mut it = rest[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => nodes = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()),
            "--profile" => {
                profile = match it.next().map(String::as_str) {
                    Some("sun") => JvmProfile::SunSim,
                    Some("ibm") => JvmProfile::IbmSim,
                    _ => usage(),
                }
            }
            "--baseline" => baseline = true,
            "--protocol" => {
                protocol = match it.next().map(String::as_str) {
                    Some("mts") => ProtocolMode::MtsHlrc,
                    Some("classic") => ProtocolMode::ClassicHlrc,
                    _ => usage(),
                }
            }
            "--chunk" => chunk = it.next().and_then(|s| s.parse().ok()),
            "--backend" => {
                backend = match it.next().map(String::as_str) {
                    Some("sim") => Backend::Sim,
                    Some("threads") => Backend::Threads,
                    Some("sockets") => Backend::Sockets,
                    _ => usage(),
                }
            }
            "--listen" => listen = Some(it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())),
            "--no-spawn" => spawn_workers = false,
            "--lookahead" => {
                lookahead = match it.next().map(String::as_str) {
                    Some("global") => Lookahead::Global,
                    Some("per_pair") => Lookahead::PerPair,
                    _ => usage(),
                }
            }
            "--sync" => {
                sync = match it.next().map(String::as_str) {
                    Some("epoch") => SyncMode::Epoch,
                    Some("async") => SyncMode::Async,
                    _ => usage(),
                }
            }
            "--no-batch" => wire_batch = false,
            "--metrics" => metrics_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--metrics-interval" => {
                metrics_interval =
                    Some(it.next().and_then(|s| parse_duration(s)).unwrap_or_else(|| usage()))
            }
            "--watchdog" => {
                watchdog = Some(it.next().and_then(|s| parse_duration(s)).unwrap_or_else(|| usage()))
            }
            "--trace" => trace_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--stats" => stats = true,
            "--wall-profile" => wall_profile = true,
            "--objprof" => objprof = true,
            "--balancer" => {
                balancer = match it.next().map(String::as_str) {
                    Some("least") => Balancer::LeastLoaded,
                    Some("rr") => Balancer::RoundRobin,
                    Some("pinned") => Balancer::Pinned,
                    _ => usage(),
                }
            }
            _ => usage(),
        }
    }

    let program = load_program(path);
    let mut cfg = if baseline {
        ClusterConfig::baseline(profile, 2)
    } else {
        ClusterConfig::javasplit(profile, nodes)
    };
    cfg.protocol = protocol;
    cfg.array_chunk = chunk;
    cfg.balancer = balancer;
    cfg.backend = backend;
    cfg.lookahead = lookahead;
    cfg.sync = sync;
    cfg.wire_batch = wire_batch;
    cfg.sockets.listen = listen;
    cfg.sockets.spawn_workers = spawn_workers;
    // The sockets backend rejects tracing (per-node buffers would need
    // their own wire format); `--stats` still works there from the
    // aggregate counters alone.
    if trace_path.is_some() || (stats && backend != Backend::Sockets) {
        cfg.trace = Some(jsplit_trace::TraceMode::Full);
    }
    // Any telemetry flag arms the registry + sampler; the watchdog rides on
    // the same sampler thread (threads backend, async sync).
    if metrics_out.is_some() || metrics_interval.is_some() || watchdog.is_some() {
        let mut m = MetricsConfig {
            out: metrics_out.as_ref().map(std::path::PathBuf::from),
            watchdog_budget: watchdog,
            ..MetricsConfig::default()
        };
        if let Some(iv) = metrics_interval {
            m.interval = iv;
        }
        cfg.metrics = Some(m);
    }
    // Wall-clock span profiling is a threads-backend feature; `--stats`
    // there includes the stall table too (cheap: aggregates only).
    cfg.profile = wall_profile || (stats && backend == Backend::Threads);
    // Per-object sharing profiler: works on every backend; the heat table
    // rides the `--stats` summary.
    cfg.objprof = objprof;

    let report = run_cluster(cfg, &program).unwrap_or_else(|e| {
        eprintln!("jsplit: {e}");
        std::process::exit(1);
    });
    for line in &report.output {
        println!("{line}");
    }
    let mode = if baseline { "baseline" } else { "javasplit" };
    let backend_name = match backend {
        Backend::Sim => "sim",
        Backend::Threads => "threads",
        Backend::Sockets => "sockets",
    };
    eprintln!(
        "[jsplit] mode={mode} backend={backend_name} nodes={} profile={} time={:.6}s setup={:.6}s wall={:.3}s threads={} msgs={} bytes={}",
        if baseline { 1 } else { nodes },
        profile.name(),
        report.exec_time_secs(),
        report.setup_ps as f64 / 1e12,
        report.host_wall_secs,
        report.threads,
        report.net_total().msgs_sent,
        report.net_total().bytes_sent,
    );
    if matches!(backend, Backend::Threads | Backend::Sockets) {
        let s = &report.sync;
        eprintln!(
            "[jsplit] sync mode={} windows={} barrier_waits={} frames={} msgs_batched={} bytes/frame={:.1}",
            if sync == SyncMode::Async { "async" } else { "epoch" },
            s.windows,
            s.barrier_waits,
            s.frames_sent,
            s.msgs_batched(),
            s.bytes_per_frame_avg(),
        );
        if sync == SyncMode::Async {
            eprintln!(
                "[jsplit] async horizon_advances={} nulls_sent={} nulls_piggybacked={}",
                s.horizon_advances, s.nulls_sent, s.nulls_piggybacked,
            );
        }
    }
    if let Some(t) = &report.telemetry {
        let (p50, p90, p99) = jsplit_runtime::telemetry::lag_percentiles(t);
        eprintln!(
            "[jsplit] telemetry samples={} ops/s peak={:.0} mean={:.0} bytes/s peak={:.0} lag_p50/p90/p99={}/{}/{} ps stalls={}{}",
            t.samples,
            t.peak_ops_per_sec,
            t.mean_ops_per_sec,
            t.peak_bytes_per_sec,
            p50,
            p90,
            p99,
            t.stalls.len(),
            metrics_out.as_deref().map(|p| format!(" -> {p}")).unwrap_or_default(),
        );
    }
    if stats {
        eprint!("{}", report.summary());
    }
    if let Some(out) = trace_path {
        let events = report.trace.as_deref().unwrap_or(&[]);
        // One file, two clock domains: virtual-time lanes per node, plus —
        // on the threads backend — real-time span lanes from the profiler.
        let json = jsplit_trace::chrome_trace_unified(events, report.wall.as_ref());
        std::fs::write(&out, &json).unwrap_or_else(|e| {
            eprintln!("jsplit: cannot write {out}: {e}");
            std::process::exit(1);
        });
        let wall_spans: usize = report.wall.as_ref().map_or(0, |w| w.nodes.iter().map(|n| n.spans.len()).sum());
        eprintln!(
            "[jsplit] wrote {} trace events + {} wall spans ({} B) to {out}",
            events.len(),
            wall_spans,
            json.len()
        );
    }
    if report.deadlocked {
        eprintln!("[jsplit] DEADLOCK: live threads could not make progress");
        std::process::exit(3);
    }
    for (uid, err) in &report.errors {
        eprintln!("[jsplit] thread {uid} trapped: {err}");
    }
    if !report.errors.is_empty() {
        std::process::exit(4);
    }
}

fn cmd_info(rest: &[String]) {
    let Some(path) = rest.first() else { usage() };
    let program = load_program(path);
    println!("main class: {}", program.main_class);
    println!("classes:    {}", program.classes.len());
    println!("instrs:     {}", program.code_size());
    let mut classes: Vec<_> = program.classes.iter().collect();
    classes.sort_by(|a, b| a.name.cmp(&b.name));
    for c in classes {
        let code: usize = c.methods.iter().map(|m| m.code.len()).sum();
        println!(
            "  {:<40} {:>2} fields {:>2} methods {:>5} instrs{}",
            c.name,
            c.fields.len(),
            c.methods.len(),
            code,
            if c.is_bootstrap { "  [bootstrap]" } else { "" }
        );
    }
}

fn cmd_demo(rest: &[String]) {
    let Some(path) = rest.first() else { usage() };
    // The quickstart counter program, persisted as a class-file bundle.
    let program = jsplit_apps::tsp::program(jsplit_apps::tsp::TspParams {
        n: 8,
        seed: 42,
        depth: 2,
        threads: 4,
    });
    let bytes = classfile_io::encode_program(&program);
    std::fs::write(path, &bytes).unwrap_or_else(|e| {
        eprintln!("jsplit: cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {} B ({} classes) to {path}", bytes.len(), program.classes.len());
    println!("try:  jsplit run {path} --nodes 4 --profile ibm");
}
