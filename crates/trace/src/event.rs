//! The structured event vocabulary of the trace layer.
//!
//! Every event is stamped with **virtual picoseconds** by the runtime's
//! recorder; the layers that produce events (scheduler, DSM engine, network)
//! stay clock-free. Identifiers are plain integers (`u16` node ids, `u32`
//! thread uids, `u64` global object ids) so this crate sits below every
//! other workspace crate and all of them can emit events without a
//! dependency cycle.

/// Virtual time in picoseconds.
pub type Ps = u64;
/// Worker-node identifier (mirrors `jsplit_net::NodeId`).
pub type NodeId = u16;
/// Green-thread identifier (mirrors `jsplit_mjvm::heap::ThreadUid`).
pub type ThreadUid = u32;

/// Recorder selection, carried by `ClusterConfig::with_trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Keep every event (required for breakdowns and exports).
    Full,
    /// Keep only the most recent N events (bounded memory for long runs;
    /// derived metrics over a ring are necessarily partial).
    Ring(usize),
}

/// Why a thread left the CPU with `StepState::Blocked`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Queued on a monitor (local or remote acquire in flight).
    Lock,
    /// Waiting for an object fetch from its home.
    Fetch,
    /// Parked in `Object.wait()`.
    Wait,
    /// `Thread.sleep()`.
    Sleep,
    /// Unattributed (baseline-mode monitors).
    Other,
}

impl BlockReason {
    pub fn name(self) -> &'static str {
        match self {
            BlockReason::Lock => "lock-wait",
            BlockReason::Fetch => "fetch-stall",
            BlockReason::Wait => "wait",
            BlockReason::Sleep => "sleep",
            BlockReason::Other => "blocked",
        }
    }
}

/// Protocol message categories (mirrors `jsplit_net::MsgKind`; the network
/// crate converts when recording so this crate stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetKind {
    LockReq,
    LockGrant,
    Diff,
    DiffAck,
    Fetch,
    ObjState,
    Spawn,
    Control,
}

impl NetKind {
    pub fn name(self) -> &'static str {
        match self {
            NetKind::LockReq => "lock_req",
            NetKind::LockGrant => "lock_grant",
            NetKind::Diff => "diff",
            NetKind::DiffAck => "diff_ack",
            NetKind::Fetch => "fetch",
            NetKind::ObjState => "obj_state",
            NetKind::Spawn => "spawn",
            NetKind::Control => "control",
        }
    }
}

/// One structured trace event (unstamped payload).
///
/// Three producers: the **scheduler** (thread lifecycle + CPU slices), the
/// **DSM engine** (locks, diffs, fetches, invalidations, wait/notify) and
/// the **network** (sends with kind, size and computed delivery time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    // ---- scheduler (runtime/exec.rs) ----
    /// A thread was created on `node` (main, or a shipped spawn installed).
    ThreadSpawn { node: NodeId, thread: ThreadUid },
    /// A `Thread.start()` was shipped from `from` to the chosen `to` node;
    /// `thread_gid` is the Thread object's global id (the uid is assigned on
    /// installation at `to`).
    ThreadShip { from: NodeId, to: NodeId, thread_gid: u64 },
    /// A blocked/sleeping thread became runnable again.
    ThreadReady { node: NodeId, thread: ThreadUid },
    /// A CPU slice: `thread` ran on `cpu` from the stamp time until `end`,
    /// retiring `ops` instructions.
    Slice { node: NodeId, cpu: u32, thread: ThreadUid, end: Ps, ops: u64 },
    /// The slice ended with the thread blocked, for `reason`.
    ThreadBlock { node: NodeId, thread: ThreadUid, reason: BlockReason },
    /// The thread's root frame returned (or it trapped).
    ThreadExit { node: NodeId, thread: ThreadUid },

    // ---- DSM engine (dsm/node.rs) ----
    /// A thread queued for a lock it could not immediately enter (local
    /// queue insert or remote LockReq sent).
    LockRequest { node: NodeId, gid: u64, thread: ThreadUid },
    /// A thread entered a contended/shared monitor (including grant
    /// retries). Uncontended fast-path acquires are not traced.
    LockAcquire { node: NodeId, gid: u64, thread: ThreadUid },
    /// Lock ownership (queues + notices) transferred `node` → `to_node` for
    /// `to_thread` — the flow edge of §3.2.
    LockGrant { node: NodeId, gid: u64, to_node: NodeId, to_thread: ThreadUid },
    /// Uncontended ownership voluntarily handed back to the home.
    LockHomeRelease { node: NodeId, gid: u64 },
    /// A diff of `entries` changed fields flushed to the CU's home.
    DiffFlush { node: NodeId, gid: u64, entries: u32 },
    /// Home acknowledgement received (scalar-timestamp mode).
    DiffAck { node: NodeId, gid: u64, version: u32 },
    /// A lock transfer/home-release is now deferred behind outstanding diff
    /// acks (§3.1's scalar-timestamp cost window opens).
    AckWaitBegin { node: NodeId },
    /// All deferred transfers were released (the window closes).
    AckWaitEnd { node: NodeId },
    /// An access miss sent a Fetch to the CU's home.
    FetchRequest { node: NodeId, gid: u64, thread: ThreadUid },
    /// The ObjState reply was installed, waking `woken` threads.
    FetchDone { node: NodeId, gid: u64, woken: u32 },
    /// A write notice invalidated the local cached copy of `gid`.
    Invalidate { node: NodeId, gid: u64 },
    /// A thread parked in `Object.wait()` on `gid`'s wait queue.
    WaitPark { node: NodeId, gid: u64, thread: ThreadUid },
    /// `Object.notify()`/`notifyAll()` — local to the owner (§3.2).
    Notify { node: NodeId, gid: u64, thread: ThreadUid, all: bool },
    /// A local object was promoted into the DSM (assigned `gid`).
    Promote { node: NodeId, gid: u64 },

    // ---- network (net/sim.rs) ----
    /// A message entered the wire at the stamp time and will be delivered
    /// at `deliver` (FIFO per link). Loopback self-sends are recorded too.
    NetSend { src: NodeId, dst: NodeId, kind: NetKind, bytes: u32, deliver: Ps },
}

impl TraceEvent {
    /// The node this event is accounted to (send events: the sender).
    pub fn node(&self) -> NodeId {
        match *self {
            TraceEvent::ThreadSpawn { node, .. }
            | TraceEvent::ThreadReady { node, .. }
            | TraceEvent::Slice { node, .. }
            | TraceEvent::ThreadBlock { node, .. }
            | TraceEvent::ThreadExit { node, .. }
            | TraceEvent::LockRequest { node, .. }
            | TraceEvent::LockAcquire { node, .. }
            | TraceEvent::LockGrant { node, .. }
            | TraceEvent::LockHomeRelease { node, .. }
            | TraceEvent::DiffFlush { node, .. }
            | TraceEvent::DiffAck { node, .. }
            | TraceEvent::AckWaitBegin { node }
            | TraceEvent::AckWaitEnd { node }
            | TraceEvent::FetchRequest { node, .. }
            | TraceEvent::FetchDone { node, .. }
            | TraceEvent::Invalidate { node, .. }
            | TraceEvent::WaitPark { node, .. }
            | TraceEvent::Notify { node, .. }
            | TraceEvent::Promote { node, .. } => node,
            TraceEvent::ThreadShip { from, .. } => from,
            TraceEvent::NetSend { src, .. } => src,
        }
    }

    /// Is this a network event? (Used by the lock-locality assertions.)
    pub fn is_net(&self) -> bool {
        matches!(self, TraceEvent::NetSend { .. })
    }

    /// The thread uid this event names, if any (each variant carries at most
    /// one). Mutable so [`crate::canonicalize`] can rename uids into the
    /// backend-independent dense namespace.
    pub fn thread_uid_mut(&mut self) -> Option<&mut ThreadUid> {
        match self {
            TraceEvent::ThreadSpawn { thread, .. }
            | TraceEvent::ThreadReady { thread, .. }
            | TraceEvent::Slice { thread, .. }
            | TraceEvent::ThreadBlock { thread, .. }
            | TraceEvent::ThreadExit { thread, .. }
            | TraceEvent::LockRequest { thread, .. }
            | TraceEvent::LockAcquire { thread, .. }
            | TraceEvent::FetchRequest { thread, .. }
            | TraceEvent::WaitPark { thread, .. }
            | TraceEvent::Notify { thread, .. } => Some(thread),
            TraceEvent::LockGrant { to_thread, .. } => Some(to_thread),
            TraceEvent::ThreadShip { .. }
            | TraceEvent::LockHomeRelease { .. }
            | TraceEvent::DiffFlush { .. }
            | TraceEvent::DiffAck { .. }
            | TraceEvent::AckWaitBegin { .. }
            | TraceEvent::AckWaitEnd { .. }
            | TraceEvent::FetchDone { .. }
            | TraceEvent::Invalidate { .. }
            | TraceEvent::Promote { .. }
            | TraceEvent::NetSend { .. } => None,
        }
    }
}

/// A stamped event: virtual time plus payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Virtual picoseconds (same clock as `RunReport::exec_time_ps`).
    pub t: Ps,
    pub ev: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_attribution_covers_all_variants() {
        let e = TraceEvent::NetSend { src: 3, dst: 1, kind: NetKind::Diff, bytes: 10, deliver: 5 };
        assert_eq!(e.node(), 3);
        assert!(e.is_net());
        let e = TraceEvent::ThreadShip { from: 2, to: 0, thread_gid: 7 };
        assert_eq!(e.node(), 2);
        assert!(!e.is_net());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(BlockReason::Fetch.name(), "fetch-stall");
        assert_eq!(NetKind::ObjState.name(), "obj_state");
    }
}
