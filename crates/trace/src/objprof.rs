//! Per-object DSM sharing profiler (PR 10).
//!
//! `DsmStats` says *how much* coherence traffic a run generated; this module
//! says *which objects* generated it and *why*. Each node's DSM engine, when
//! profiling is enabled, attributes every protocol event it already counts —
//! cached/uncached reads and writes, fetches, diff flushes/applies,
//! invalidations, lock acquires/grants, delayed-at-home fetches — to the
//! event's **base** `Gid` (chunked-array region CUs fold onto their base
//! object) in an [`ObjProfile`] keyed by (object, accessing node).
//!
//! The same discipline as the trace layer applies:
//!
//! * **Zero cost when off.** The engine holds an `Option<Box<ObjProfile>>`;
//!   a run without profiling pays one untaken branch per potential event,
//!   and on-vs-off runs are bit-identical (events are counted, never acted
//!   on).
//! * **Deterministic.** Counts are a pure function of the virtual-time
//!   execution, which is identical across the sim, threads and sockets
//!   backends — so the merged report (and the HEAT json derived from it) is
//!   byte-identical run-to-run and backend-to-backend.
//! * **Reconciles with `DsmStats`.** Every profiled event with a `DsmStats`
//!   counterpart is bumped at the *same code site* as the aggregate counter,
//!   so per-object sums (plus the [`ObjProfile::unattributed`] bucket for
//!   gid-less events) equal the aggregate totals exactly — an invariant the
//!   heat report self-checks and CI re-validates.
//!
//! On top of the raw matrix, [`classify`] labels each object's sharing
//! pattern from reader/writer set sizes and lock-transfer chains, and
//! [`advise`] scores home-vs-dominant-accessor mismatch into ranked
//! home-migration candidates ([`build_report`]).

use crate::event::NodeId;
use std::collections::HashMap;

/// Number of profiled event kinds (array-indexed cells).
pub const OBJ_KINDS: usize = 15;

/// One profiled per-object event kind.
///
/// The first four (`ReadHit`..`WriteMiss`) have no `DsmStats` counterpart —
/// they exist for the classifier's reader/writer sets. The remaining eleven
/// mirror aggregate counters one-to-one (see [`STATS_MAPPED`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjEvent {
    /// Read of a valid (or self-homed) shared copy.
    ReadHit,
    /// Write to a valid shared copy (twin + dirty).
    WriteHit,
    /// Read that faulted on an invalid copy or stale region.
    ReadMiss,
    /// Write that faulted on an invalid copy or stale region.
    WriteMiss,
    /// Fetch sent to the home (first waiter only — joiners coalesce).
    Fetch,
    /// Fetch delayed at the home behind an in-flight diff (classic mode).
    FetchDelayed,
    /// Diff of this CU flushed to its home.
    DiffSent,
    /// Diff applied at this node (the CU's home).
    DiffApplied,
    /// Cached copy invalidated by a write notice.
    Invalidated,
    /// Shared-monitor acquire without communication.
    AcquireLocal,
    /// Shared-monitor acquire via remote LockReq.
    AcquireRemote,
    /// Lock ownership transferred away from this node.
    Grant,
    /// `Object.wait()` parked on this object.
    Wait,
    /// `Object.notify()`/`notifyAll()` on this object.
    Notify,
    /// Promoted into the DSM at this node (its home).
    Promote,
}

/// All kinds in cell order.
pub const ALL_OBJ_EVENTS: [ObjEvent; OBJ_KINDS] = [
    ObjEvent::ReadHit,
    ObjEvent::WriteHit,
    ObjEvent::ReadMiss,
    ObjEvent::WriteMiss,
    ObjEvent::Fetch,
    ObjEvent::FetchDelayed,
    ObjEvent::DiffSent,
    ObjEvent::DiffApplied,
    ObjEvent::Invalidated,
    ObjEvent::AcquireLocal,
    ObjEvent::AcquireRemote,
    ObjEvent::Grant,
    ObjEvent::Wait,
    ObjEvent::Notify,
    ObjEvent::Promote,
];

impl ObjEvent {
    pub fn index(self) -> usize {
        match self {
            ObjEvent::ReadHit => 0,
            ObjEvent::WriteHit => 1,
            ObjEvent::ReadMiss => 2,
            ObjEvent::WriteMiss => 3,
            ObjEvent::Fetch => 4,
            ObjEvent::FetchDelayed => 5,
            ObjEvent::DiffSent => 6,
            ObjEvent::DiffApplied => 7,
            ObjEvent::Invalidated => 8,
            ObjEvent::AcquireLocal => 9,
            ObjEvent::AcquireRemote => 10,
            ObjEvent::Grant => 11,
            ObjEvent::Wait => 12,
            ObjEvent::Notify => 13,
            ObjEvent::Promote => 14,
        }
    }

    /// Stable snake_case name (heat-JSON field names).
    pub fn name(self) -> &'static str {
        match self {
            ObjEvent::ReadHit => "read_hits",
            ObjEvent::WriteHit => "write_hits",
            ObjEvent::ReadMiss => "read_misses",
            ObjEvent::WriteMiss => "write_misses",
            ObjEvent::Fetch => "fetches",
            ObjEvent::FetchDelayed => "fetches_delayed_at_home",
            ObjEvent::DiffSent => "diffs_sent",
            ObjEvent::DiffApplied => "diffs_applied",
            ObjEvent::Invalidated => "invalidations",
            ObjEvent::AcquireLocal => "shared_acquires_local",
            ObjEvent::AcquireRemote => "shared_acquires_remote",
            ObjEvent::Grant => "grants_sent",
            ObjEvent::Wait => "waits",
            ObjEvent::Notify => "notifies",
            ObjEvent::Promote => "promotions",
        }
    }
}

/// Profiled events that mirror a `DsmStats` counter one-to-one. For each,
/// `Σ_objects Σ_nodes count + unattributed == DsmStats.<field>` — the
/// reconciliation invariant. The `&str` is the `DsmStats` field name.
pub const STATS_MAPPED: [(ObjEvent, &str); 11] = [
    (ObjEvent::Fetch, "fetches"),
    (ObjEvent::FetchDelayed, "fetches_delayed_at_home"),
    (ObjEvent::DiffSent, "diffs_sent"),
    (ObjEvent::DiffApplied, "diffs_applied"),
    (ObjEvent::Invalidated, "invalidations"),
    (ObjEvent::AcquireLocal, "shared_acquires_local"),
    (ObjEvent::AcquireRemote, "shared_acquires_remote"),
    (ObjEvent::Grant, "grants_sent"),
    (ObjEvent::Wait, "waits"),
    (ObjEvent::Notify, "notifies"),
    (ObjEvent::Promote, "promotions"),
];

/// The home node encoded in a raw gid (mirrors `jsplit_mjvm::heap::Gid`,
/// which packs the home id into the bits above the 40-bit counter; this
/// crate sits below mjvm in the workspace DAG, so it re-derives it).
pub fn home_of(gid: u64) -> NodeId {
    (gid >> 40) as NodeId
}

/// One node's per-object event matrix. The accessing node is implicit (each
/// engine owns its own profile); [`build_report`] merges per-node profiles
/// into the cluster-wide (object × node) matrix.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObjProfile {
    /// Base gid → event counts at this node.
    pub objects: HashMap<u64, [u64; OBJ_KINDS]>,
    /// Lock-transfer edges out of this node: base gid → (grantee, count).
    pub grants_to: HashMap<(u64, NodeId), u64>,
    /// Region gid → base gid, for every chunked region this node touched
    /// (lets trace consumers fold region events onto base-object lanes).
    pub region_base: HashMap<u64, u64>,
    /// Events with no gid to attribute to (e.g. `notify` on a never-shared
    /// object still counts in `DsmStats::notifies`).
    pub unattributed: [u64; OBJ_KINDS],
}

impl ObjProfile {
    pub fn new() -> ObjProfile {
        ObjProfile::default()
    }

    #[inline]
    pub fn bump(&mut self, base_gid: u64, ev: ObjEvent) {
        self.objects.entry(base_gid).or_insert([0; OBJ_KINDS])[ev.index()] += 1;
    }

    #[inline]
    pub fn bump_unattributed(&mut self, ev: ObjEvent) {
        self.unattributed[ev.index()] += 1;
    }

    /// Record a lock transfer to `to` (also counts as a [`ObjEvent::Grant`]).
    pub fn grant_edge(&mut self, base_gid: u64, to: NodeId) {
        self.bump(base_gid, ObjEvent::Grant);
        *self.grants_to.entry((base_gid, to)).or_insert(0) += 1;
    }

    /// Remember that `region_gid` is a chunked region of `base_gid`.
    pub fn note_region(&mut self, region_gid: u64, base_gid: u64) {
        self.region_base.entry(region_gid).or_insert(base_gid);
    }

    pub fn is_empty(&self) -> bool {
        self.objects.is_empty() && self.unattributed.iter().all(|&c| c == 0)
    }

    /// Deterministic byte encoding (sockets-backend worker reports).
    pub fn encode(&self, out: &mut Vec<u8>) {
        fn put_u64(out: &mut Vec<u8>, v: u64) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let mut gids: Vec<u64> = self.objects.keys().copied().collect();
        gids.sort_unstable();
        put_u64(out, gids.len() as u64);
        for g in gids {
            put_u64(out, g);
            for c in &self.objects[&g] {
                put_u64(out, *c);
            }
        }
        let mut edges: Vec<(u64, NodeId)> = self.grants_to.keys().copied().collect();
        edges.sort_unstable();
        put_u64(out, edges.len() as u64);
        for (g, to) in edges {
            put_u64(out, g);
            put_u64(out, to as u64);
            put_u64(out, self.grants_to[&(g, to)]);
        }
        let mut regions: Vec<(u64, u64)> = self.region_base.iter().map(|(&r, &b)| (r, b)).collect();
        regions.sort_unstable();
        put_u64(out, regions.len() as u64);
        for (r, b) in regions {
            put_u64(out, r);
            put_u64(out, b);
        }
        for c in &self.unattributed {
            put_u64(out, *c);
        }
    }

    /// Decode an [`ObjProfile::encode`] image starting at `*pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Option<ObjProfile> {
        fn get_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
            let b = buf.get(*pos..*pos + 8)?;
            *pos += 8;
            Some(u64::from_le_bytes(b.try_into().ok()?))
        }
        let mut p = ObjProfile::new();
        let n = get_u64(buf, pos)?;
        for _ in 0..n {
            let g = get_u64(buf, pos)?;
            let mut cells = [0u64; OBJ_KINDS];
            for c in &mut cells {
                *c = get_u64(buf, pos)?;
            }
            p.objects.insert(g, cells);
        }
        let n = get_u64(buf, pos)?;
        for _ in 0..n {
            let g = get_u64(buf, pos)?;
            let to = get_u64(buf, pos)? as NodeId;
            let c = get_u64(buf, pos)?;
            p.grants_to.insert((g, to), c);
        }
        let n = get_u64(buf, pos)?;
        for _ in 0..n {
            let r = get_u64(buf, pos)?;
            let b = get_u64(buf, pos)?;
            p.region_base.insert(r, b);
        }
        for c in &mut p.unattributed {
            *c = get_u64(buf, pos)?;
        }
        Some(p)
    }
}

/// An object's sharing pattern, derived from reader/writer set sizes and
/// lock-transfer chains (rules in DESIGN.md §18).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingClass {
    /// Shared, but only one node ever touched it.
    NodePrivate,
    /// Many readers, (almost) no writes — replicates cheaply.
    ReadMostly,
    /// Exactly one writer node; remote readers consume occasionally.
    SingleWriter,
    /// Accesses travel with the lock around ≥3 nodes.
    Migratory,
    /// One producer flushes diffs, disjoint consumers re-fetch per update.
    ProducerConsumer,
    /// Multiple concurrent writers — invalidation/diff ping-pong.
    WriteShared,
}

impl SharingClass {
    pub fn name(self) -> &'static str {
        match self {
            SharingClass::NodePrivate => "node-private",
            SharingClass::ReadMostly => "read-mostly",
            SharingClass::SingleWriter => "single-writer",
            SharingClass::Migratory => "migratory",
            SharingClass::ProducerConsumer => "producer-consumer",
            SharingClass::WriteShared => "write-shared",
        }
    }
}

/// All classes (classifier coverage tests).
pub const ALL_CLASSES: [SharingClass; 6] = [
    SharingClass::NodePrivate,
    SharingClass::ReadMostly,
    SharingClass::SingleWriter,
    SharingClass::Migratory,
    SharingClass::ProducerConsumer,
    SharingClass::WriteShared,
];

fn idx(ev: ObjEvent) -> usize {
    ev.index()
}

/// Classify one object's sharing pattern from its per-node rows and
/// lock-transfer edges. Pure; rules (checked top-down, documented in
/// DESIGN.md §18):
///
/// 1. ≤1 toucher → node-private.
/// 2. No writers: ≥2 readers → read-mostly; else a lock-only object whose
///    transfers chain through ≥3 nodes → migratory, 2-node transfer
///    ping-pong → write-shared.
/// 3. One writer: reads ≥ 20× writes with remote readers → read-mostly;
///    ≥2 diffs each consumed remotely (fetches+invalidations ≥ diffs) →
///    producer-consumer; else single-writer.
/// 4. ≥2 writers: transfer chain spans ≥3 nodes (or ≥3 nodes all
///    read+write) → migratory; else write-shared (ping-pong).
pub fn classify(rows: &[(NodeId, [u64; OBJ_KINDS])], edges: &[((NodeId, NodeId), u64)]) -> SharingClass {
    let reads = |r: &[u64; OBJ_KINDS]| r[idx(ObjEvent::ReadHit)] + r[idx(ObjEvent::ReadMiss)];
    let writes = |r: &[u64; OBJ_KINDS]| r[idx(ObjEvent::WriteHit)] + r[idx(ObjEvent::WriteMiss)];

    let mut readers: Vec<NodeId> = Vec::new();
    let mut writers: Vec<NodeId> = Vec::new();
    let mut touchers: Vec<NodeId> = Vec::new();
    let (mut total_reads, mut total_writes, mut total_diffs) = (0u64, 0u64, 0u64);
    let (mut total_fetches, mut total_invals) = (0u64, 0u64);
    for (n, r) in rows {
        if reads(r) + r[idx(ObjEvent::Fetch)] > 0 {
            readers.push(*n);
        }
        if writes(r) + r[idx(ObjEvent::DiffSent)] > 0 {
            writers.push(*n);
        }
        if r.iter().any(|&c| c > 0) {
            touchers.push(*n);
        }
        total_reads += reads(r);
        total_writes += writes(r);
        total_diffs += r[idx(ObjEvent::DiffSent)];
        total_fetches += r[idx(ObjEvent::Fetch)];
        total_invals += r[idx(ObjEvent::Invalidated)];
    }
    let transfers: u64 = edges.iter().map(|(_, c)| c).sum();
    let chain: usize = {
        let mut nodes: Vec<NodeId> = edges.iter().flat_map(|((a, b), _)| [*a, *b]).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    };

    if touchers.len() <= 1 {
        return SharingClass::NodePrivate;
    }
    if writers.is_empty() {
        if readers.len() >= 2 || transfers == 0 {
            return SharingClass::ReadMostly;
        }
        // Lock-only object: classify by how the lock travels.
        return if chain >= 3 { SharingClass::Migratory } else { SharingClass::WriteShared };
    }
    if writers.len() == 1 {
        let w = writers[0];
        let remote_readers = readers.iter().any(|&n| n != w);
        if remote_readers && total_writes.saturating_mul(20) < total_reads {
            return SharingClass::ReadMostly;
        }
        if remote_readers && total_diffs >= 2 && total_fetches + total_invals >= total_diffs {
            return SharingClass::ProducerConsumer;
        }
        return SharingClass::SingleWriter;
    }
    if (chain >= 3 && transfers as usize >= chain)
        || (writers.len() >= 3 && readers == writers)
    {
        return SharingClass::Migratory;
    }
    SharingClass::WriteShared
}

/// Home-placement advice for one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Advice {
    /// The node with the most accesses (reads+writes+acquires); ties break
    /// to the lowest id. Falls back to the home when no row has activity.
    pub dominant: NodeId,
    /// Coherence messages the dominant node paid *because* it is not the
    /// home: its fetches + diff flushes + remote acquires. Re-homing the
    /// object at the dominant accessor would eliminate them.
    pub score: u64,
    /// `dominant != home` and the score is non-zero.
    pub migrate: bool,
}

/// Score home-vs-dominant-accessor mismatch for one object (pure).
pub fn advise(home: NodeId, rows: &[(NodeId, [u64; OBJ_KINDS])]) -> Advice {
    let activity = |r: &[u64; OBJ_KINDS]| {
        r[idx(ObjEvent::ReadHit)]
            + r[idx(ObjEvent::ReadMiss)]
            + r[idx(ObjEvent::WriteHit)]
            + r[idx(ObjEvent::WriteMiss)]
            + r[idx(ObjEvent::AcquireLocal)]
            + r[idx(ObjEvent::AcquireRemote)]
    };
    let mut dominant = home;
    let mut best = 0u64;
    for (n, r) in rows {
        let a = activity(r);
        if a > best || (a == best && a > 0 && *n < dominant) {
            dominant = *n;
            best = a;
        }
    }
    let score = rows
        .iter()
        .find(|(n, _)| *n == dominant)
        .map(|(_, r)| {
            r[idx(ObjEvent::Fetch)] + r[idx(ObjEvent::DiffSent)] + r[idx(ObjEvent::AcquireRemote)]
        })
        .unwrap_or(0);
    Advice { dominant, score, migrate: dominant != home && score > 0 }
}

/// One object's merged report row.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjReport {
    /// Base gid.
    pub gid: u64,
    /// The object's home node (from the gid encoding).
    pub home: NodeId,
    pub class: SharingClass,
    /// Remote-coherence event total: fetches + delayed fetches + diffs
    /// sent + diffs applied + invalidations + remote acquires + grants.
    /// The sort key of the heat table.
    pub heat: u64,
    /// Cluster-wide totals per event kind.
    pub total: [u64; OBJ_KINDS],
    /// Per-node rows (ascending node id; nodes with all-zero rows omitted).
    pub rows: Vec<(NodeId, [u64; OBJ_KINDS])>,
    pub advice: Advice,
}

/// The cluster-wide profiler report: every profiled object, hottest first.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObjProfReport {
    /// Objects sorted by heat descending, gid ascending.
    pub objects: Vec<ObjReport>,
    /// Gid-less event counts summed over nodes (reconciliation term).
    pub unattributed: [u64; OBJ_KINDS],
    /// Indices into `objects` of migration candidates, advisor score
    /// descending (gid ascending on ties).
    pub candidates: Vec<usize>,
    /// Merged region gid → base gid map (chunked arrays).
    pub region_base: HashMap<u64, u64>,
}

/// Heat metric: remote-coherence events attributable to the object.
pub fn heat_of(total: &[u64; OBJ_KINDS]) -> u64 {
    total[idx(ObjEvent::Fetch)]
        + total[idx(ObjEvent::FetchDelayed)]
        + total[idx(ObjEvent::DiffSent)]
        + total[idx(ObjEvent::DiffApplied)]
        + total[idx(ObjEvent::Invalidated)]
        + total[idx(ObjEvent::AcquireRemote)]
        + total[idx(ObjEvent::Grant)]
}

/// Merge per-node profiles (index = node id) into the cluster-wide report.
/// Deterministic: output depends only on the profile contents.
pub fn build_report(profiles: &[ObjProfile]) -> ObjProfReport {
    let mut gids: Vec<u64> = profiles.iter().flat_map(|p| p.objects.keys().copied()).collect();
    gids.sort_unstable();
    gids.dedup();

    let mut unattributed = [0u64; OBJ_KINDS];
    let mut region_base: HashMap<u64, u64> = HashMap::new();
    for p in profiles {
        for (k, c) in p.unattributed.iter().enumerate() {
            unattributed[k] += c;
        }
        for (&r, &b) in &p.region_base {
            region_base.entry(r).or_insert(b);
        }
    }

    let mut objects: Vec<ObjReport> = Vec::with_capacity(gids.len());
    for gid in gids {
        let mut total = [0u64; OBJ_KINDS];
        let mut rows: Vec<(NodeId, [u64; OBJ_KINDS])> = Vec::new();
        let mut edges: Vec<((NodeId, NodeId), u64)> = Vec::new();
        for (node, p) in profiles.iter().enumerate() {
            if let Some(cells) = p.objects.get(&gid) {
                for (k, c) in cells.iter().enumerate() {
                    total[k] += c;
                }
                rows.push((node as NodeId, *cells));
            }
            for (&(g, to), &c) in &p.grants_to {
                if g == gid {
                    edges.push(((node as NodeId, to), c));
                }
            }
        }
        edges.sort_unstable();
        let home = home_of(gid);
        let class = classify(&rows, &edges);
        let advice = advise(home, &rows);
        objects.push(ObjReport { gid, home, class, heat: heat_of(&total), total, rows, advice });
    }
    objects.sort_by(|a, b| b.heat.cmp(&a.heat).then(a.gid.cmp(&b.gid)));

    let mut candidates: Vec<usize> = (0..objects.len()).filter(|&i| objects[i].advice.migrate).collect();
    candidates.sort_by(|&a, &b| {
        objects[b]
            .advice
            .score
            .cmp(&objects[a].advice.score)
            .then(objects[a].gid.cmp(&objects[b].gid))
    });

    ObjProfReport { objects, unattributed, candidates, region_base }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(fill: &[(ObjEvent, u64)]) -> [u64; OBJ_KINDS] {
        let mut r = [0u64; OBJ_KINDS];
        for (ev, c) in fill {
            r[ev.index()] = *c;
        }
        r
    }

    #[test]
    fn event_indices_are_dense_and_named() {
        let mut seen = [false; OBJ_KINDS];
        for (pos, ev) in ALL_OBJ_EVENTS.iter().enumerate() {
            assert_eq!(ev.index(), pos, "{ev:?} out of order");
            assert!(!seen[ev.index()]);
            seen[ev.index()] = true;
            assert!(!ev.name().is_empty());
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(STATS_MAPPED.len(), 11);
    }

    #[test]
    fn home_matches_gid_encoding() {
        // Gid::new(home, counter) packs home << 40 | counter.
        assert_eq!(home_of((3u64 << 40) | 17), 3);
        assert_eq!(home_of(5), 0);
    }

    #[test]
    fn classify_node_private() {
        let rows = [(0, row(&[(ObjEvent::ReadHit, 100), (ObjEvent::WriteHit, 40), (ObjEvent::Promote, 1)]))];
        assert_eq!(classify(&rows, &[]), SharingClass::NodePrivate);
        assert_eq!(classify(&[], &[]), SharingClass::NodePrivate);
    }

    #[test]
    fn classify_read_mostly() {
        // Three readers, one of which wrote twice out of hundreds of reads.
        let rows = [
            (0, row(&[(ObjEvent::ReadHit, 200), (ObjEvent::WriteHit, 2), (ObjEvent::DiffSent, 1)])),
            (1, row(&[(ObjEvent::ReadHit, 150), (ObjEvent::Fetch, 1)])),
            (2, row(&[(ObjEvent::ReadHit, 90), (ObjEvent::Fetch, 1)])),
        ];
        assert_eq!(classify(&rows, &[]), SharingClass::ReadMostly);
        // Pure replicated read-only data.
        let ro = [
            (0, row(&[(ObjEvent::ReadHit, 10)])),
            (1, row(&[(ObjEvent::ReadHit, 10), (ObjEvent::Fetch, 1)])),
        ];
        assert_eq!(classify(&ro, &[]), SharingClass::ReadMostly);
    }

    #[test]
    fn classify_single_writer() {
        // One writer, one remote reader, writes dominate.
        let rows = [
            (0, row(&[(ObjEvent::WriteHit, 50), (ObjEvent::ReadHit, 10), (ObjEvent::DiffSent, 1)])),
            (2, row(&[(ObjEvent::ReadHit, 5), (ObjEvent::Fetch, 1)])),
        ];
        assert_eq!(classify(&rows, &[]), SharingClass::SingleWriter);
    }

    #[test]
    fn classify_producer_consumer() {
        // Producer flushes a diff per round; consumers re-fetch each one.
        let rows = [
            (0, row(&[(ObjEvent::WriteHit, 40), (ObjEvent::DiffSent, 10)])),
            (1, row(&[(ObjEvent::ReadHit, 40), (ObjEvent::Fetch, 6), (ObjEvent::Invalidated, 6)])),
            (2, row(&[(ObjEvent::ReadHit, 40), (ObjEvent::Fetch, 5), (ObjEvent::Invalidated, 5)])),
        ];
        assert_eq!(classify(&rows, &[]), SharingClass::ProducerConsumer);
    }

    #[test]
    fn classify_migratory() {
        // Lock+data travel around three nodes.
        let r = row(&[(ObjEvent::ReadHit, 10), (ObjEvent::WriteHit, 10), (ObjEvent::AcquireRemote, 3)]);
        let rows = [(0, r), (1, r), (2, r)];
        let edges = [((0, 1), 3u64), ((1, 2), 3), ((2, 0), 3)];
        assert_eq!(classify(&rows, &edges), SharingClass::Migratory);
        // Data-only migratory: 3 nodes all read+write, no edges recorded.
        assert_eq!(classify(&rows, &[]), SharingClass::Migratory);
        // Lock-only object migrating around 3 nodes.
        let lk = row(&[(ObjEvent::AcquireRemote, 3)]);
        let lock_rows = [(0, lk), (1, lk), (2, lk)];
        assert_eq!(classify(&lock_rows, &edges), SharingClass::Migratory);
    }

    #[test]
    fn classify_write_shared() {
        // Two nodes ping-ponging writes.
        let rows = [
            (0, row(&[(ObjEvent::WriteHit, 30), (ObjEvent::DiffSent, 10), (ObjEvent::Invalidated, 9)])),
            (1, row(&[(ObjEvent::WriteHit, 30), (ObjEvent::DiffSent, 10), (ObjEvent::Invalidated, 10)])),
        ];
        let edges = [((0, 1), 10u64), ((1, 0), 9)];
        assert_eq!(classify(&rows, &edges), SharingClass::WriteShared);
        // Lock-only 2-node ping-pong.
        let lk = row(&[(ObjEvent::AcquireRemote, 10)]);
        assert_eq!(classify(&[(0, lk), (1, lk)], &edges), SharingClass::WriteShared);
    }

    #[test]
    fn advisor_flags_misplaced_home() {
        // Homed at 0, but node 2 does all the work and pays the fetches.
        let gid = 9u64; // homed at node 0

        let rows = [
            (0, row(&[(ObjEvent::ReadHit, 2)])),
            (2, row(&[(ObjEvent::ReadHit, 500), (ObjEvent::WriteHit, 100), (ObjEvent::Fetch, 40), (ObjEvent::DiffSent, 30), (ObjEvent::AcquireRemote, 7)])),
        ];
        let a = advise(home_of(gid), &rows);
        assert_eq!(a.dominant, 2);
        assert_eq!(a.score, 40 + 30 + 7);
        assert!(a.migrate);
        // Dominant == home: nothing to do.
        let a = advise(2, &rows);
        assert!(!a.migrate);
    }

    #[test]
    fn report_merges_ranks_and_reconciles() {
        let mut p0 = ObjProfile::new();
        let mut p1 = ObjProfile::new();
        let hot = 1u64; // homed at node 0

        let cold = (1u64 << 40) | 2;
        for _ in 0..10 {
            p1.bump(hot, ObjEvent::Fetch);
            p1.bump(hot, ObjEvent::ReadMiss);
        }
        p0.bump(hot, ObjEvent::WriteHit);
        p0.bump(hot, ObjEvent::DiffApplied);
        p0.grant_edge(hot, 1);
        p0.bump(cold, ObjEvent::ReadHit);
        p1.bump(cold, ObjEvent::ReadHit);
        p0.bump_unattributed(ObjEvent::Notify);

        let rep = build_report(&[p0.clone(), p1.clone()]);
        assert_eq!(rep.objects.len(), 2);
        assert_eq!(rep.objects[0].gid, hot, "hot object ranks first");
        assert!(rep.objects[0].heat > rep.objects[1].heat);
        assert_eq!(rep.objects[0].home, 0);
        assert_eq!(rep.unattributed[ObjEvent::Notify.index()], 1);
        // The hot object is dominated by node 1 (10 misses) but homed at 0.
        assert_eq!(rep.candidates, vec![0]);
        assert_eq!(rep.objects[0].advice.dominant, 1);
        // Totals reconcile: fetch count summed across nodes.
        assert_eq!(rep.objects[0].total[ObjEvent::Fetch.index()], 10);
        assert_eq!(rep.objects[0].total[ObjEvent::Grant.index()], 1);
        // Determinism: same inputs, same report.
        assert_eq!(rep, build_report(&[p0, p1]));
    }

    #[test]
    fn profile_codec_round_trips() {
        let mut p = ObjProfile::new();
        p.bump(42, ObjEvent::Fetch);
        p.bump((7u64 << 40) | 3, ObjEvent::WriteHit);
        p.grant_edge(42, 3);
        p.note_region(43, 42);
        p.bump_unattributed(ObjEvent::Notify);
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let mut pos = 0;
        let q = ObjProfile::decode(&buf, &mut pos).expect("decode");
        assert_eq!(pos, buf.len());
        assert_eq!(p, q);
        // Truncated image fails cleanly.
        let mut pos = 0;
        assert!(ObjProfile::decode(&buf[..buf.len() - 1], &mut pos).is_none());
    }
}
