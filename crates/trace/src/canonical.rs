//! Backend-independent canonical ordering of a recorded event stream.
//!
//! The sim driver records events in global dispatch order and the threads
//! driver records per-node streams on separate OS threads — two encodings of
//! the *same* per-node histories. Two incidental details would otherwise
//! leak the backend into the bytes of the stream:
//!
//! 1. **Tie order across nodes.** At equal virtual time `t`, the sim's
//!    recording order interleaves nodes by global dispatch order, which no
//!    per-node view can reconstruct.
//! 2. **Thread-uid allocation.** The sim hands out dense global uids at
//!    install time; the threads driver strides them per node (`id + k·n`).
//!
//! [`canonicalize`] erases both: it keys every event with its node's
//! recording sequence number, sorts by `(t, node, seq)` — so per-node order
//! is preserved exactly and cross-node ties break by node id — and then
//! renames thread uids to first-appearance order over that canonical
//! stream. Two backends that produce identical per-node histories therefore
//! produce byte-identical canonical streams, which is what the cross-backend
//! differential trace test asserts.

use crate::event::{Event, ThreadUid};
use std::collections::HashMap;

/// Canonically order a recorded stream (see module docs). The input is the
/// concatenation of per-node record-order streams — either a single global
/// recording (sim) or per-node sink contents chained in node order
/// (threads); per-node subsequence order is all that matters.
pub fn canonicalize(events: Vec<Event>) -> Vec<Event> {
    let mut seq: HashMap<u16, u64> = HashMap::new();
    let mut keyed: Vec<(Event, u64)> = events
        .into_iter()
        .map(|e| {
            let s = seq.entry(e.ev.node()).or_insert(0);
            let k = *s;
            *s += 1;
            (e, k)
        })
        .collect();
    keyed.sort_by_key(|(e, s)| (e.t, e.ev.node(), *s));

    // Rename uids densely by first appearance in canonical order. A uid's
    // first appearance is its ThreadSpawn (nothing can reference a thread
    // before it is installed), so the renaming is the same for any backend
    // that agrees on per-node histories.
    let mut rename: HashMap<ThreadUid, ThreadUid> = HashMap::new();
    let mut out: Vec<Event> = Vec::with_capacity(keyed.len());
    for (mut e, _) in keyed {
        if let Some(u) = e.ev.thread_uid_mut() {
            let next = rename.len() as ThreadUid;
            *u = *rename.entry(*u).or_insert(next);
        }
        out.push(e);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn spawn(t: u64, node: u16, thread: ThreadUid) -> Event {
        Event { t, ev: TraceEvent::ThreadSpawn { node, thread } }
    }

    fn exit(t: u64, node: u16, thread: ThreadUid) -> Event {
        Event { t, ev: TraceEvent::ThreadExit { node, thread } }
    }

    #[test]
    fn per_node_order_is_preserved_and_ties_break_by_node() {
        // Recording order interleaves nodes; node 1's events arrive first.
        let stream = vec![spawn(5, 1, 100), spawn(5, 0, 200), exit(5, 1, 100), exit(9, 0, 200)];
        let c = canonicalize(stream);
        // At t=5 node 0 sorts before node 1; node 1's two events keep order.
        assert!(matches!(c[0].ev, TraceEvent::ThreadSpawn { node: 0, .. }));
        assert!(matches!(c[1].ev, TraceEvent::ThreadSpawn { node: 1, .. }));
        assert!(matches!(c[2].ev, TraceEvent::ThreadExit { node: 1, .. }));
        assert_eq!(c[3].t, 9);
    }

    #[test]
    fn uid_renaming_erases_allocation_policy() {
        // Same histories, one backend using dense uids (0,1), the other
        // strided (0, 2) — canonical streams must be byte-identical.
        let dense = vec![spawn(0, 0, 0), spawn(3, 1, 1), exit(7, 1, 1), exit(8, 0, 0)];
        let strided = vec![spawn(0, 0, 0), spawn(3, 1, 3), exit(7, 1, 3), exit(8, 0, 0)];
        assert_eq!(canonicalize(dense), canonicalize(strided));
    }

    #[test]
    fn renaming_is_a_bijection_in_first_appearance_order() {
        let stream = vec![spawn(0, 0, 42), spawn(1, 1, 7), exit(2, 0, 42), exit(3, 1, 7)];
        let c = canonicalize(stream);
        assert!(matches!(c[0].ev, TraceEvent::ThreadSpawn { thread: 0, .. }));
        assert!(matches!(c[1].ev, TraceEvent::ThreadSpawn { thread: 1, .. }));
        assert!(matches!(c[2].ev, TraceEvent::ThreadExit { thread: 0, .. }));
        assert!(matches!(c[3].ev, TraceEvent::ThreadExit { thread: 1, .. }));
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let stream = vec![spawn(5, 1, 9), spawn(5, 0, 4), exit(6, 1, 9)];
        let once = canonicalize(stream);
        assert_eq!(canonicalize(once.clone()), once);
    }
}
