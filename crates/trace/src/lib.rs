//! jsplit-trace: deterministic virtual-time trace & metrics layer.
//!
//! The simulator is a sealed deterministic machine: every protocol decision
//! happens at a reproducible virtual picosecond. This crate turns that into
//! an observability surface — a structured event stream recorded by the
//! runtime (scheduler), the DSM engine and the simulated network, plus the
//! analyses derived from it:
//!
//! * [`node_breakdown`] — per-node compute / lock-wait / fetch-stall /
//!   ack-wait / idle split that sums *exactly* to `exec_time_ps × cpus`,
//! * [`lock_contention`] — per-lock transfers, queue depth and wait times,
//! * [`chrome_trace`] — a Chrome trace-event JSON export (Perfetto-ready).
//!
//! Design constraints that shaped the API:
//!
//! * **Zero cost when disabled.** Producers hold an `Option`; a run without
//!   tracing performs one branch per potential event and allocates nothing.
//! * **No dependencies.** This crate sits below `net`/`dsm`/`runtime` in
//!   the workspace DAG, so events use raw integer ids and a local
//!   [`NetKind`] mirror of the wire message kinds.
//! * **Producers are clock-free.** The DSM engine is a pure protocol
//!   machine with no notion of time; it buffers unstamped [`TraceEvent`]s
//!   and the runtime stamps them with virtual `now` at its deterministic
//!   drain points. The network knows both send and delivery times and
//!   stamps its own events. Identical seed ⇒ byte-identical stream.

mod breakdown;
mod canonical;
mod chrome;
mod event;
mod flight;
mod hist;
mod json;
mod locks;
mod metrics;
mod objprof;
mod sink;
mod wall;

pub use breakdown::{node_breakdown, NodeBreakdown};
pub use canonical::canonicalize;
pub use chrome::{chrome_trace, chrome_trace_report, chrome_trace_unified, count_exported, ObjLanes};
pub use event::{BlockReason, Event, NetKind, NodeId, Ps, ThreadUid, TraceEvent, TraceMode};
pub use flight::{
    arm_panic_dump, disarm_panic_dump, FlightEntry, FlightRecorder, FlightTag, FLIGHT_RING,
};
pub use hist::{bucket_edge, bucket_of, LogHist, HIST_BUCKETS};
pub use metrics::{
    Metric, MetricKind, MetricsRegistry, StallReport, TelemetrySummary, ALL_METRICS, METRICS,
};
pub use json::validate_json;
pub use objprof::{
    advise, build_report, classify, heat_of, home_of, Advice, ObjEvent, ObjProfReport, ObjProfile,
    ObjReport, SharingClass, ALL_CLASSES, ALL_OBJ_EVENTS, OBJ_KINDS, STATS_MAPPED,
};
pub use locks::{lock_contention, LockStat};
pub use sink::{make_sink, RingRecorder, TraceSink, VecRecorder};
pub use wall::{
    KindStats, NodeWallProfile, SpanKind, SpanRecorder, WallProfile, WallSpan, ALL_SPAN_KINDS,
    MAX_RAW_SPANS, SPAN_KINDS,
};
