//! Log-bucket latency/size histograms (HDR style, powers of √2).
//!
//! Wall-clock observations on the threads backend span nanoseconds (a slot
//! spin) to seconds (a full window of execution) — six orders of magnitude.
//! A fixed-bucket histogram either loses the tail or the head; a powers-of-√2
//! geometry gives ~±19% relative resolution everywhere with a fixed, small
//! footprint (130 counters cover all of `u64`). Recording is one `u128`
//! multiply and a leading-zeros count — cheap enough for per-round hot paths.

/// Bucket count: index 0 holds exact zeros, index `1 + k` holds values in
/// `(√2^(k-1), √2^k]` for `k = 0..=128`. `√2^128 = 2^64 > u64::MAX`, so the
/// top index doubles as the overflow bucket (nothing can land beyond it).
pub const HIST_BUCKETS: usize = 130;

/// √2 as a Q32.32 fixed-point constant (for bucket upper edges). Floored,
/// so odd-k edges under-approximate by at most one unit — edges are labels
/// for display and percentiles, not bucketing boundaries (those are exact
/// via the integer v² comparison in [`bucket_of`]).
const SQRT2_Q32: u128 = 6_074_000_999; // floor(√2 · 2^32)

/// A powers-of-√2 log-bucket histogram over `u64` observations.
#[derive(Debug, Clone)]
pub struct LogHist {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHist {
    fn default() -> Self {
        LogHist { counts: [0; HIST_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

/// Bucket index of one observation: 0 for 0, else `1 + ceil(2·log2(v))`,
/// capped at the top (overflow) bucket.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        return 0;
    }
    // ceil(2·log2 v) = ceil(log2 v²), computed exactly in integers.
    let sq = (v as u128) * (v as u128);
    let k = (128 - (sq - 1).leading_zeros()) as usize;
    (1 + k).min(HIST_BUCKETS - 1)
}

/// Upper edge of bucket `idx` (the largest value it can hold; saturating).
pub fn bucket_edge(idx: usize) -> u64 {
    if idx == 0 {
        return 0;
    }
    let k = (idx - 1) as u32;
    if k >= 128 {
        return u64::MAX;
    }
    // √2^k = 2^(k/2) (k even) or 2^((k-1)/2)·√2 (k odd), floored.
    let base: u128 = 1u128 << (k / 2);
    let edge = if k.is_multiple_of(2) { base } else { (base * SQRT2_Q32) >> 32 };
    u64::try_from(edge).unwrap_or(u64::MAX)
}

impl LogHist {
    pub fn new() -> LogHist {
        LogHist::default()
    }

    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Occupancy of one bucket (test/inspection hook).
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper edge of the bucket that
    /// contains it, clamped to the observed maximum — so `percentile(1.0)`
    /// never over-reports past `max()`.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_edge(i).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHist) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_zero_one_and_boundaries() {
        // 0 is its own bucket; 1 = √2^0 is the first log bucket.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        // 2 = √2^2 lands at k=2; 3 ∈ (√2^3 ≈ 2.83, √2^4 = 4] lands at k=4.
        assert_eq!(bucket_of(2), 3);
        assert_eq!(bucket_of(3), 5);
        assert_eq!(bucket_of(4), 5);
        // Exact powers of two sit on even-k edges: v = 2^m → k = 2m.
        for m in 1..63u32 {
            assert_eq!(bucket_of(1u64 << m), 1 + 2 * m as usize, "2^{m}");
        }
        // One past an even edge spills into the next (odd-k) bucket — valid
        // from m=2 up, where 2^m + 1 ≤ √2·2^m (m=1's 3 > 2.83 skips to k=4,
        // asserted above).
        for m in 2..63u32 {
            assert_eq!(bucket_of((1u64 << m) + 1), 2 + 2 * m as usize, "2^{m}+1");
        }
        // Edges are consistent with membership. Even-k edges (exact powers
        // of two) are exact: the edge is in its bucket and edge+1 spills.
        // Odd-k edges are floored irrationals (some low ones, like (1, √2],
        // contain no integer at all), so only ≤ and monotonicity hold.
        for b in 1..HIST_BUCKETS - 1 {
            let e = bucket_edge(b);
            if e == 0 || e == u64::MAX {
                continue;
            }
            assert!(bucket_of(e) <= b, "edge of {b}");
            assert!(e >= bucket_edge(b - 1), "monotone at {b}");
            if (b - 1) % 2 == 0 {
                assert_eq!(bucket_of(e), b, "even-k edge of {b}");
                assert!(bucket_of(e + 1) > b, "even-k edge+1 of {b}");
            }
        }
    }

    #[test]
    fn max_value_lands_in_overflow_bucket() {
        // u64::MAX > √2^127, so it must land in the top (overflow) bucket,
        // never out of bounds.
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_of(1u64 << 63), 127);
        assert_eq!(bucket_edge(HIST_BUCKETS - 1), u64::MAX);
        let mut h = LogHist::new();
        h.record(u64::MAX);
        assert_eq!(h.bucket_count(HIST_BUCKETS - 1), 1);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(1.0), u64::MAX);
    }

    #[test]
    fn percentiles_track_the_distribution() {
        let mut h = LogHist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(0.5);
        let p90 = h.percentile(0.9);
        let p99 = h.percentile(0.99);
        // Bucket edges over-approximate by at most √2.
        assert!((500..=708).contains(&p50), "p50 = {p50}");
        assert!((900..=1000).contains(&p90), "p90 = {p90}");
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p99 <= h.max());
        assert_eq!(h.percentile(0.0), h.percentile(1e-9));
    }

    #[test]
    fn zeros_percentile_and_mean() {
        let mut h = LogHist::new();
        for _ in 0..10 {
            h.record(0);
        }
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        h.record(100);
        assert!(h.percentile(1.0) <= 100);
        assert_eq!(h.sum(), 100);
    }

    #[test]
    fn merge_accumulates() {
        let (mut a, mut b) = (LogHist::new(), LogHist::new());
        a.record(5);
        b.record(7);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 12);
        assert_eq!(a.max(), 7);
        assert_eq!(a.bucket_count(0), 1);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHist::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(1.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = LogHist::new();
        for v in [3u64, 900, 0, 1 << 40] {
            a.record(v);
        }
        let before = (a.count(), a.sum(), a.max(), a.percentile(0.9));
        a.merge(&LogHist::new());
        assert_eq!((a.count(), a.sum(), a.max(), a.percentile(0.9)), before);
        let mut e = LogHist::new();
        e.merge(&a);
        assert_eq!((e.count(), e.sum(), e.max(), e.percentile(0.9)), before);
        for b in 0..HIST_BUCKETS {
            assert_eq!(e.bucket_count(b), a.bucket_count(b));
        }
    }

    #[test]
    fn cross_node_merge_matches_combined_distribution() {
        // Cluster-wide horizon-lag percentiles are computed by merging one
        // per-node histogram per node: the merge of n disjoint per-node
        // histograms must be indistinguishable from one histogram fed every
        // observation — same buckets, same percentiles at every quantile.
        let mut combined = LogHist::new();
        let mut merged = LogHist::new();
        for node in 0..8u64 {
            let mut per_node = LogHist::new();
            // Skewed per-node distributions (node 7 lags 1000× node 0).
            for i in 0..200u64 {
                let v = (node * node + 1) * (i * 13 % 997);
                per_node.record(v);
                combined.record(v);
            }
            merged.merge(&per_node);
        }
        assert_eq!(merged.count(), combined.count());
        assert_eq!(merged.sum(), combined.sum());
        assert_eq!(merged.max(), combined.max());
        for b in 0..HIST_BUCKETS {
            assert_eq!(merged.bucket_count(b), combined.bucket_count(b), "bucket {b}");
        }
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.percentile(q), combined.percentile(q), "q={q}");
        }
    }
}
