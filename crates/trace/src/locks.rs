//! Per-lock contention statistics derived from the event stream.
//!
//! Pairs each `LockRequest` with the matching `LockAcquire` by
//! `(gid, node, thread)` to measure queue-travel latency, tracks the
//! running number of pending requesters per lock for queue depth, and
//! counts `LockGrant` edges as inter-node transfers (§3.2 queue passing).

use crate::event::{Event, Ps, TraceEvent};
use std::collections::BTreeMap;

/// Contention profile of one DSM lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LockStat {
    /// Global id of the locked object.
    pub gid: u64,
    /// Contended/shared monitor entries (fast-path local re-entries are not
    /// traced and not counted).
    pub acquires: u64,
    /// Inter-node ownership transfers (grant messages).
    pub transfers: u64,
    /// Peak number of simultaneously queued requesters.
    pub max_queue: u32,
    /// Sum of request→acquire latencies.
    pub total_wait_ps: u64,
    /// Worst single request→acquire latency.
    pub max_wait_ps: u64,
}

impl LockStat {
    /// Mean request→acquire latency in picoseconds (0 if never measured).
    pub fn mean_wait_ps(&self) -> u64 {
        self.total_wait_ps.checked_div(self.acquires).unwrap_or(0)
    }
}

/// Derive per-lock stats, sorted by gid. Requires a full stream for exact
/// numbers; over a truncated ring the pairings are best-effort.
pub fn lock_contention(events: &[Event]) -> Vec<LockStat> {
    let mut stats: BTreeMap<u64, LockStat> = BTreeMap::new();
    let mut pending: BTreeMap<(u64, u16, u32), Ps> = BTreeMap::new();
    let mut depth: BTreeMap<u64, u32> = BTreeMap::new();

    for e in events {
        match e.ev {
            TraceEvent::LockRequest { node, gid, thread }
                if pending.insert((gid, node, thread), e.t).is_none() =>
            {
                let d = depth.entry(gid).or_insert(0);
                *d += 1;
                let s = stats.entry(gid).or_default();
                s.gid = gid;
                s.max_queue = s.max_queue.max(*d);
            }
            TraceEvent::LockAcquire { node, gid, thread } => {
                let s = stats.entry(gid).or_default();
                s.gid = gid;
                s.acquires += 1;
                if let Some(t0) = pending.remove(&(gid, node, thread)) {
                    if let Some(d) = depth.get_mut(&gid) {
                        *d = d.saturating_sub(1);
                    }
                    let wait = e.t - t0;
                    s.total_wait_ps += wait;
                    s.max_wait_ps = s.max_wait_ps.max(wait);
                }
            }
            TraceEvent::LockGrant { gid, .. } => {
                let s = stats.entry(gid).or_default();
                s.gid = gid;
                s.transfers += 1;
            }
            _ => {}
        }
    }
    stats.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: Ps, ev: TraceEvent) -> Event {
        Event { t, ev }
    }

    #[test]
    fn request_acquire_pairing_measures_wait() {
        let events = [
            ev(10, TraceEvent::LockRequest { node: 0, gid: 7, thread: 1 }),
            ev(15, TraceEvent::LockRequest { node: 1, gid: 7, thread: 2 }),
            ev(20, TraceEvent::LockAcquire { node: 0, gid: 7, thread: 1 }),
            ev(25, TraceEvent::LockGrant { node: 0, gid: 7, to_node: 1, to_thread: 2 }),
            ev(40, TraceEvent::LockAcquire { node: 1, gid: 7, thread: 2 }),
        ];
        let stats = lock_contention(&events);
        assert_eq!(stats.len(), 1);
        let s = stats[0];
        assert_eq!(s.gid, 7);
        assert_eq!(s.acquires, 2);
        assert_eq!(s.transfers, 1);
        assert_eq!(s.max_queue, 2);
        assert_eq!(s.total_wait_ps, 10 + 25);
        assert_eq!(s.max_wait_ps, 25);
        assert_eq!(s.mean_wait_ps(), 17);
    }

    #[test]
    fn independent_locks_sorted_by_gid() {
        let events = [
            ev(0, TraceEvent::LockGrant { node: 0, gid: 9, to_node: 1, to_thread: 1 }),
            ev(0, TraceEvent::LockGrant { node: 0, gid: 3, to_node: 1, to_thread: 1 }),
        ];
        let stats = lock_contention(&events);
        assert_eq!(stats.iter().map(|s| s.gid).collect::<Vec<_>>(), vec![3, 9]);
    }

    #[test]
    fn acquire_without_request_counts_but_adds_no_wait() {
        let events = [ev(5, TraceEvent::LockAcquire { node: 0, gid: 1, thread: 1 })];
        let s = lock_contention(&events)[0];
        assert_eq!(s.acquires, 1);
        assert_eq!(s.total_wait_ps, 0);
    }
}
