//! Minimal JSON well-formedness checker (no external crates allowed in the
//! workspace, and the exporter's output must be machine-verifiable in tests
//! and in the `repro trace` smoke step). Validates syntax per RFC 8259; it
//! does not build a DOM.

/// Validate that `s` is exactly one well-formed JSON value.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = skip_ws(b, 0);
    pos = value(b, pos)?;
    pos = skip_ws(b, pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {}", pos));
    }
    Ok(())
}

fn skip_ws(b: &[u8], mut pos: usize) -> usize {
    while pos < b.len() && matches!(b[pos], b' ' | b'\t' | b'\n' | b'\r') {
        pos += 1;
    }
    pos
}

fn value(b: &[u8], pos: usize) -> Result<usize, String> {
    match b.get(pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn literal(b: &[u8], pos: usize, lit: &[u8]) -> Result<usize, String> {
    if b.len() >= pos + lit.len() && &b[pos..pos + lit.len()] == lit {
        Ok(pos + lit.len())
    } else {
        Err(format!("bad literal at byte {}", pos))
    }
}

fn object(b: &[u8], mut pos: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos + 1);
    if b.get(pos) == Some(&b'}') {
        return Ok(pos + 1);
    }
    loop {
        if b.get(pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", pos));
        }
        pos = skip_ws(b, string(b, pos)?);
        if b.get(pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", pos));
        }
        pos = skip_ws(b, value(b, skip_ws(b, pos + 1))?);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b'}') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or '}}' at byte {}", pos)),
        }
    }
}

fn array(b: &[u8], mut pos: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos + 1);
    if b.get(pos) == Some(&b']') {
        return Ok(pos + 1);
    }
    loop {
        pos = skip_ws(b, value(b, pos)?);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b']') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or ']' at byte {}", pos)),
        }
    }
}

fn string(b: &[u8], mut pos: usize) -> Result<usize, String> {
    pos += 1; // opening quote
    while let Some(&c) = b.get(pos) {
        match c {
            b'"' => return Ok(pos + 1),
            b'\\' => match b.get(pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => pos += 2,
                Some(b'u') => {
                    if b.len() >= pos + 6 && b[pos + 2..pos + 6].iter().all(u8::is_ascii_hexdigit) {
                        pos += 6;
                    } else {
                        return Err(format!("bad \\u escape at byte {}", pos));
                    }
                }
                _ => return Err(format!("bad escape at byte {}", pos)),
            },
            0x00..=0x1f => return Err(format!("raw control char in string at byte {}", pos)),
            _ => pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], mut pos: usize) -> Result<usize, String> {
    let start = pos;
    if b.get(pos) == Some(&b'-') {
        pos += 1;
    }
    match b.get(pos) {
        Some(b'0') => pos += 1,
        Some(c) if c.is_ascii_digit() => {
            while pos < b.len() && b[pos].is_ascii_digit() {
                pos += 1;
            }
        }
        _ => return Err(format!("bad number at byte {}", start)),
    }
    if b.get(pos) == Some(&b'.') {
        pos += 1;
        if !b.get(pos).is_some_and(u8::is_ascii_digit) {
            return Err(format!("bad fraction at byte {}", pos));
        }
        while pos < b.len() && b[pos].is_ascii_digit() {
            pos += 1;
        }
    }
    if matches!(b.get(pos), Some(b'e' | b'E')) {
        pos += 1;
        if matches!(b.get(pos), Some(b'+' | b'-')) {
            pos += 1;
        }
        if !b.get(pos).is_some_and(u8::is_ascii_digit) {
            return Err(format!("bad exponent at byte {}", pos));
        }
        while pos < b.len() && b[pos].is_ascii_digit() {
            pos += 1;
        }
    }
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e+3",
            "\"a\\nb\\u00ff\"",
            "{\"a\": [1, 2.5, {\"b\": true}], \"c\": null}",
            " { \"traceEvents\" : [ { \"ph\" : \"X\" } ] } ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{:?} rejected: {}", ok, e));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{'a': 1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "{} {}",
            "nul",
        ] {
            assert!(validate_json(bad).is_err(), "{:?} wrongly accepted", bad);
        }
    }
}
