//! Wall-clock span profiling for the threads backend.
//!
//! Each node's OS thread owns one [`SpanRecorder`] — thread-local by
//! construction, so the hot path never takes a lock or touches a shared
//! cache line. Recording uses *boundary-timestamp chaining*: the recorder
//! keeps the `Instant` of the last segment boundary, and [`SpanRecorder::mark`]
//! attributes everything since that boundary to one [`SpanKind`] while
//! advancing the boundary to "now". Consecutive segments therefore share
//! their boundary timestamp and the categories tile the thread's wall time
//! exactly — the ±1% reconciliation against the independently measured
//! thread wall time only has to absorb the (tiny) head and tail outside the
//! instrumented loop, not clock-read skew between segments.
//!
//! A disabled run carries an `Option<SpanRecorder>` that stays `None`: one
//! branch per site, no timestamps taken.

use crate::event::NodeId;
use crate::hist::LogHist;
use std::time::Instant;

/// What a node's thread was doing between two boundaries of its epoch loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// Serializing + shipping pending wire frames to peers.
    FrameFlush,
    /// Blocked in the round's single `Barrier::wait`.
    BarrierWait,
    /// Merging delivered frames into the local event queue.
    InboxDrain,
    /// Publishing the node slot, aggregating peers, computing the horizon.
    Decide,
    /// Spinning on peer slot `epoch` counters (seqlock fast path).
    SlotSpin,
    /// Parked on the epoch condvar after the spin budget ran out.
    CondvarWait,
    /// Blocked waiting for a peer promise to advance the safe horizon
    /// (async sync mode only — the asynchronous analogue of
    /// `BarrierWait` + `CondvarWait`, which are both zero there).
    HorizonWait,
    /// Executing guest events below the horizon (the useful work).
    Execute,
}

/// Number of span kinds (array-indexed accounting). Any single run uses at
/// most seven: epoch-mode runs never record `HorizonWait`, async-mode runs
/// never record `BarrierWait` or `CondvarWait` — either way the categories
/// that do appear tile the thread's wall time exactly.
pub const SPAN_KINDS: usize = 8;

/// All kinds, in display order: useful work first, stalls after.
pub const ALL_SPAN_KINDS: [SpanKind; SPAN_KINDS] = [
    SpanKind::Execute,
    SpanKind::BarrierWait,
    SpanKind::HorizonWait,
    SpanKind::SlotSpin,
    SpanKind::CondvarWait,
    SpanKind::InboxDrain,
    SpanKind::FrameFlush,
    SpanKind::Decide,
];

impl SpanKind {
    pub fn index(self) -> usize {
        match self {
            SpanKind::Execute => 0,
            SpanKind::BarrierWait => 1,
            SpanKind::HorizonWait => 2,
            SpanKind::SlotSpin => 3,
            SpanKind::CondvarWait => 4,
            SpanKind::InboxDrain => 5,
            SpanKind::FrameFlush => 6,
            SpanKind::Decide => 7,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Execute => "execute",
            SpanKind::BarrierWait => "barrier_wait",
            SpanKind::HorizonWait => "horizon_wait",
            SpanKind::SlotSpin => "slot_spin",
            SpanKind::CondvarWait => "condvar_wait",
            SpanKind::InboxDrain => "inbox_drain",
            SpanKind::FrameFlush => "frame_flush",
            SpanKind::Decide => "decide",
        }
    }
}

/// One raw span, kept only when a Chrome export is requested.
/// Times are nanoseconds relative to the driver's shared start instant, so
/// spans from different node threads line up on one real-time axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallSpan {
    pub kind: SpanKind,
    pub start_ns: u64,
    pub dur_ns: u64,
}

/// Keep at most this many raw spans per node (~24 MB/node worst case);
/// beyond it we keep aggregating but count dropped spans.
pub const MAX_RAW_SPANS: usize = 1 << 20;

/// Per-thread span accounting. See module docs for the chaining discipline.
#[derive(Debug)]
pub struct SpanRecorder {
    origin: Instant,
    mark: Instant,
    totals_ns: [u64; SPAN_KINDS],
    counts: [u64; SPAN_KINDS],
    hists: [LogHist; SPAN_KINDS],
    spans: Vec<WallSpan>,
    keep_spans: bool,
    spans_dropped: u64,
    /// Virtual window length (ps) per round — fed by the driver loop.
    pub window_ps: LogHist,
}

impl SpanRecorder {
    /// `origin` is the driver-wide start instant shared by all node threads;
    /// `keep_spans` retains raw spans for the Chrome real-time lanes.
    pub fn new(origin: Instant, keep_spans: bool) -> SpanRecorder {
        SpanRecorder {
            origin,
            mark: Instant::now(),
            totals_ns: [0; SPAN_KINDS],
            counts: [0; SPAN_KINDS],
            hists: std::array::from_fn(|_| LogHist::new()),
            spans: Vec::new(),
            keep_spans,
            spans_dropped: 0,
            window_ps: LogHist::new(),
        }
    }

    /// Close the segment that started at the previous boundary, attributing
    /// it to `kind`, and open the next segment at "now".
    #[inline]
    pub fn mark(&mut self, kind: SpanKind) {
        let now = Instant::now();
        let dur = now.duration_since(self.mark);
        let dur_ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
        let i = kind.index();
        self.totals_ns[i] += dur_ns;
        self.counts[i] += 1;
        self.hists[i].record(dur_ns);
        if self.keep_spans {
            if self.spans.len() < MAX_RAW_SPANS {
                let start = self.mark.duration_since(self.origin);
                let start_ns = u64::try_from(start.as_nanos()).unwrap_or(u64::MAX);
                self.spans.push(WallSpan { kind, start_ns, dur_ns });
            } else {
                self.spans_dropped += 1;
            }
        }
        self.mark = now;
    }

    /// Fold the accounting into a per-node profile. `wall_ns` is the thread's
    /// independently measured wall time (start-of-thread to end), against
    /// which the categories are reconciled.
    pub fn finish(self, node: NodeId, wall_ns: u64) -> NodeWallProfile {
        let kinds = ALL_SPAN_KINDS
            .iter()
            .map(|&k| {
                let i = k.index();
                KindStats {
                    kind: k,
                    count: self.counts[i],
                    total_ns: self.totals_ns[i],
                    hist: self.hists[i].clone(),
                }
            })
            .collect();
        NodeWallProfile {
            node,
            wall_ns,
            kinds,
            window_ps: self.window_ps,
            frame_bytes: LogHist::new(),
            spans: self.spans,
            spans_dropped: self.spans_dropped,
        }
    }
}

/// Aggregate stats for one span kind on one node.
#[derive(Debug, Clone)]
pub struct KindStats {
    pub kind: SpanKind,
    pub count: u64,
    pub total_ns: u64,
    pub hist: LogHist,
}

/// Wall-clock profile of one node's thread.
#[derive(Debug, Clone)]
pub struct NodeWallProfile {
    pub node: NodeId,
    /// Thread wall time, measured independently of the span accounting.
    pub wall_ns: u64,
    /// One entry per [`SpanKind`], in `ALL_SPAN_KINDS` order.
    pub kinds: Vec<KindStats>,
    /// Virtual window length per round (ps).
    pub window_ps: LogHist,
    /// Shipped frame sizes (bytes), from the node's transport endpoint.
    pub frame_bytes: LogHist,
    /// Raw spans for Chrome export (empty unless a trace was requested).
    pub spans: Vec<WallSpan>,
    pub spans_dropped: u64,
}

impl NodeWallProfile {
    /// Sum of all span categories (ns).
    pub fn accounted_ns(&self) -> u64 {
        self.kinds.iter().map(|k| k.total_ns).sum()
    }

    pub fn stats_of(&self, kind: SpanKind) -> &KindStats {
        &self.kinds[ALL_SPAN_KINDS.iter().position(|&k| k == kind).unwrap()]
    }
}

/// Wall-clock profile of a whole threads-backend run.
#[derive(Debug, Clone, Default)]
pub struct WallProfile {
    /// One entry per node, sorted by node id.
    pub nodes: Vec<NodeWallProfile>,
}

impl WallProfile {
    /// The stall kind (anything but `Execute`) with the largest total across
    /// nodes — the headline answer to "where does the wall time go?".
    pub fn dominant_stall(&self) -> Option<(SpanKind, u64)> {
        ALL_SPAN_KINDS
            .iter()
            .filter(|&&k| k != SpanKind::Execute)
            .map(|&k| (k, self.nodes.iter().map(|n| n.stats_of(k).total_ns).sum::<u64>()))
            .max_by_key(|&(_, ns)| ns)
            .filter(|&(_, ns)| ns > 0)
    }

    /// Total wall ns across nodes attributed to `kind`.
    pub fn total_of(&self, kind: SpanKind) -> u64 {
        self.nodes.iter().map(|n| n.stats_of(kind).total_ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chained_marks_tile_wall_time_exactly() {
        let t0 = Instant::now();
        let mut rec = SpanRecorder::new(t0, true);
        // Reset the boundary so the measured interval starts here.
        rec.mark(SpanKind::Decide);
        let begin = Instant::now();
        rec.mark = begin;
        for _ in 0..100 {
            std::hint::black_box((0..100).sum::<u64>());
            rec.mark(SpanKind::Execute);
            rec.mark(SpanKind::BarrierWait);
        }
        let measured = begin.elapsed().as_nanos() as u64;
        let prof = rec.finish(0, measured);
        let exec = prof.stats_of(SpanKind::Execute).total_ns;
        let barrier = prof.stats_of(SpanKind::BarrierWait).total_ns;
        // Chaining means the two categories (plus the pre-loop Decide mark,
        // excluded by resetting the boundary) account for everything between
        // `begin` and the last mark — within the final `elapsed()` call.
        let accounted = exec + barrier;
        assert!(accounted <= measured, "{accounted} > {measured}");
        assert!(measured - accounted < measured / 50 + 50_000, "gap too large");
        assert_eq!(prof.stats_of(SpanKind::Execute).count, 100);
        assert_eq!(prof.spans.len(), 201);
        // Spans are on the shared origin axis and non-overlapping in order.
        for w in prof.spans.windows(2) {
            assert!(w[0].start_ns + w[0].dur_ns <= w[1].start_ns + 1);
        }
    }

    #[test]
    fn disabled_span_keeping_aggregates_only() {
        let mut rec = SpanRecorder::new(Instant::now(), false);
        rec.mark(SpanKind::Execute);
        rec.window_ps.record(1_000_000);
        let prof = rec.finish(3, 123);
        assert!(prof.spans.is_empty());
        assert_eq!(prof.spans_dropped, 0);
        assert_eq!(prof.node, 3);
        assert_eq!(prof.stats_of(SpanKind::Execute).count, 1);
        assert_eq!(prof.window_ps.count(), 1);
    }

    #[test]
    fn dominant_stall_ignores_execute() {
        let mut rec = SpanRecorder::new(Instant::now(), false);
        rec.totals_ns[SpanKind::Execute.index()] = 1_000_000;
        rec.totals_ns[SpanKind::BarrierWait.index()] = 500;
        rec.totals_ns[SpanKind::FrameFlush.index()] = 900;
        let wall = WallProfile { nodes: vec![rec.finish(0, 1_001_400)] };
        let (kind, ns) = wall.dominant_stall().unwrap();
        assert_eq!(kind, SpanKind::FrameFlush);
        assert_eq!(ns, 900);
        assert_eq!(wall.total_of(SpanKind::Execute), 1_000_000);
    }
}
